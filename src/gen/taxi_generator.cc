#include "gen/taxi_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace blot {

STRange TaxiFleetConfig::Universe() const {
  return STRange::FromBounds(x_min, x_max, y_min, y_max,
                             static_cast<double>(t_start),
                             static_cast<double>(t_start + duration_seconds));
}

namespace {

struct Hotspot {
  double x, y;
  double spread;  // Gaussian sigma, degrees
};

// Diurnal activity factor in [0.3, 1]: quiet at 4am, busy at rush hours.
double DiurnalFactor(std::int64_t time) {
  const double hour =
      static_cast<double>(time % 86400) / 3600.0;
  const double morning = std::exp(-std::pow(hour - 8.5, 2) / 8.0);
  const double evening = std::exp(-std::pow(hour - 18.5, 2) / 10.0);
  return 0.3 + 0.7 * std::min(1.0, morning + evening + 0.25);
}

}  // namespace

Dataset GenerateTaxiFleet(const TaxiFleetConfig& config) {
  require(config.num_taxis > 0 && config.samples_per_taxi > 0,
          "GenerateTaxiFleet: need taxis and samples");
  require(config.x_min < config.x_max && config.y_min < config.y_max,
          "GenerateTaxiFleet: bad spatial domain");
  require(config.duration_seconds > 0, "GenerateTaxiFleet: bad duration");
  require(config.hotspot_bias >= 0.0 && config.hotspot_bias <= 1.0,
          "GenerateTaxiFleet: hotspot_bias must be in [0, 1]");

  Rng master(config.seed);
  const double width = config.x_max - config.x_min;
  const double height = config.y_max - config.y_min;

  std::vector<Hotspot> hotspots;
  for (std::size_t h = 0; h < config.num_hotspots; ++h) {
    hotspots.push_back({
        master.NextDouble(config.x_min + 0.15 * width,
                          config.x_max - 0.15 * width),
        master.NextDouble(config.y_min + 0.15 * height,
                          config.y_max - 0.15 * height),
        master.NextDouble(0.02, 0.08) * std::min(width, height),
    });
  }

  const auto clamp_x = [&](double v) {
    return std::clamp(v, config.x_min, config.x_max);
  };
  const auto clamp_y = [&](double v) {
    return std::clamp(v, config.y_min, config.y_max);
  };

  Dataset dataset;
  for (std::size_t taxi = 0; taxi < config.num_taxis; ++taxi) {
    Rng rng = master.Fork();

    // Sampling interval chosen so each taxi spans the whole month.
    const double interval =
        static_cast<double>(config.duration_seconds) /
        static_cast<double>(config.samples_per_taxi);

    const auto pick_destination = [&](double& dx, double& dy) {
      if (!hotspots.empty() && rng.NextBool(config.hotspot_bias)) {
        const Hotspot& h = hotspots[rng.NextUint64(hotspots.size())];
        dx = clamp_x(h.x + rng.NextGaussian() * h.spread);
        dy = clamp_y(h.y + rng.NextGaussian() * h.spread);
      } else {
        dx = rng.NextDouble(config.x_min, config.x_max);
        dy = rng.NextDouble(config.y_min, config.y_max);
      }
    };

    double x, y;
    pick_destination(x, y);
    double dest_x, dest_y;
    pick_destination(dest_x, dest_y);

    bool occupied = rng.NextBool(0.4);
    std::uint8_t passengers =
        occupied ? static_cast<std::uint8_t>(1 + rng.NextUint64(3)) : 0;
    std::uint32_t fare = occupied ? 1100 : 0;  // flag fall, cents
    double speed_kmh = rng.NextDouble(10, 50);

    double t = static_cast<double>(config.t_start) +
               rng.NextDouble() * interval;
    for (std::size_t s = 0; s < config.samples_per_taxi; ++s) {
      // Move towards the destination; ~1 degree latitude = 111 km.
      const double dist_deg = std::hypot(dest_x - x, dest_y - y);
      const double step_hours = interval / 3600.0;
      const double activity = DiurnalFactor(static_cast<std::int64_t>(t));
      const double step_deg =
          speed_kmh * activity * step_hours / 111.0;
      double heading_rad;
      if (dist_deg <= step_deg || dist_deg < 1e-9) {
        // Arrived: end of trip — toggle occupancy, pick a new destination.
        x = dest_x;
        y = dest_y;
        pick_destination(dest_x, dest_y);
        occupied = !occupied;
        if (occupied) {
          passengers = static_cast<std::uint8_t>(1 + rng.NextUint64(3));
          fare = 1100;
        } else {
          passengers = 0;
          fare = 0;
        }
        heading_rad = std::atan2(dest_y - y, dest_x - x);
      } else {
        const double jitter = rng.NextGaussian() * 0.15;
        heading_rad = std::atan2(dest_y - y, dest_x - x) + jitter;
        x = clamp_x(x + std::cos(heading_rad) * step_deg);
        y = clamp_y(y + std::sin(heading_rad) * step_deg);
        if (occupied)
          fare += static_cast<std::uint32_t>(
              speed_kmh * activity * step_hours * 240.0);  // ~2.4 yuan/km
      }
      speed_kmh = std::clamp(speed_kmh + rng.NextGaussian() * 5.0, 0.0, 90.0);

      Record r;
      r.oid = static_cast<std::uint32_t>(taxi);
      r.time = static_cast<std::int64_t>(t);
      // Quantize to GPS-like 1e-6 degree precision.
      r.x = std::round(x * 1e6) / 1e6;
      r.y = std::round(y * 1e6) / 1e6;
      r.speed = static_cast<float>(speed_kmh * activity);
      const double heading_deg =
          std::fmod(heading_rad * 180.0 / std::numbers::pi + 360.0, 360.0);
      r.heading = static_cast<std::uint16_t>(heading_deg);
      r.status = occupied ? 1 : 0;
      r.passengers = passengers;
      r.fare_cents = fare;
      dataset.Append(r);

      t += interval * rng.NextDouble(0.6, 1.4);
      const double t_end =
          static_cast<double>(config.t_start + config.duration_seconds);
      if (t > t_end) t = t_end;
    }
  }
  return dataset;
}

}  // namespace blot
