// Synthetic taxi-fleet GPS trace generator.
//
// Stands in for the paper's evaluation dataset — "a sample of vehicle GPS
// log collected from more than 4,000 taxis in Shanghai during a month"
// (~65 M records, latitude 30-32, longitude 120-122, 2007-11-01 to
// 2007-11-29) — which is proprietary. The generator reproduces the
// properties the evaluation depends on:
//
//   * spatial clustering: taxis travel between hotspot districts (a
//     mixture of Gaussians), so the spatial distribution is highly
//     non-uniform, which is what makes equal-count k-d partitioning
//     differ from uniform grids;
//   * trajectory continuity: consecutive samples of one taxi are nearby
//     in space and time, giving delta/LZ encodings realistic redundancy;
//   * diurnal temporal density: night hours produce fewer active taxis;
//   * realistic attribute dynamics: speed/heading evolve smoothly,
//     occupancy toggles per trip, fares accumulate while occupied.
//
// Generation is deterministic given the seed.
#ifndef BLOT_GEN_TAXI_GENERATOR_H_
#define BLOT_GEN_TAXI_GENERATOR_H_

#include <cstdint>

#include "blot/dataset.h"
#include "util/range.h"

namespace blot {

struct TaxiFleetConfig {
  std::uint64_t seed = 20071101;
  std::size_t num_taxis = 400;
  std::size_t samples_per_taxi = 1000;

  // Spatial domain (degrees), defaulting to the paper's Shanghai box.
  double x_min = 120.0;
  double x_max = 122.0;
  double y_min = 30.0;
  double y_max = 32.0;

  // Temporal domain: 2007-11-01 00:00 UTC, 28 days.
  std::int64_t t_start = 1193875200;
  std::int64_t duration_seconds = 28 * 86400;

  std::size_t num_hotspots = 6;
  // Fraction of destinations drawn from hotspots (rest uniform).
  double hotspot_bias = 0.8;

  std::size_t TotalRecords() const { return num_taxis * samples_per_taxi; }

  // The spatio-temporal universe U implied by the domain bounds.
  STRange Universe() const;
};

// Generates the fleet trace. Records are emitted in (taxi, time) order;
// every record lies inside config.Universe().
Dataset GenerateTaxiFleet(const TaxiFleetConfig& config);

}  // namespace blot

#endif  // BLOT_GEN_TAXI_GENERATOR_H_
