// Spatio-temporal geometry primitives.
//
// BLOT treats every record as a point (x, y, t) in a three-dimensional
// spatio-temporal space and every partition / query as an axis-aligned
// cuboid in that space. Following the paper's Definition 6, a cuboid can be
// described either by min/max bounds or by a size (W, H, T) plus a centroid
// (x, y, t); both constructions are provided.
#ifndef BLOT_UTIL_RANGE_H_
#define BLOT_UTIL_RANGE_H_

#include <iosfwd>
#include <string>

namespace blot {

// A point in spatio-temporal space. `x` and `y` are spatial coordinates
// (e.g. longitude / latitude in degrees); `t` is time (e.g. unix seconds).
struct STPoint {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;

  friend bool operator==(const STPoint&, const STPoint&) = default;
};

// The size of a cuboid: width (x extent), height (y extent), and duration
// (t extent). This is the paper's grouped-query descriptor <W, H, T>.
struct RangeSize {
  double w = 0.0;
  double h = 0.0;
  double t = 0.0;

  double Volume() const { return w * h * t; }

  friend bool operator==(const RangeSize&, const RangeSize&) = default;
};

// A closed axis-aligned cuboid [x_min,x_max] x [y_min,y_max] x
// [t_min,t_max]. Degenerate (zero-extent) cuboids are permitted.
class STRange {
 public:
  // Constructs the empty range (positive-volume intersection identity:
  // intersects nothing, contains nothing).
  STRange();

  // Constructs from explicit bounds. Requires min <= max in every
  // dimension.
  static STRange FromBounds(double x_min, double x_max, double y_min,
                            double y_max, double t_min, double t_max);

  // Constructs from a size and a centroid, the paper's <W,H,T,x,y,t> form.
  // Requires non-negative sizes.
  static STRange FromCentroid(const RangeSize& size, const STPoint& centroid);

  // The smallest range covering both operands.
  static STRange Union(const STRange& a, const STRange& b);

  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  double y_min() const { return y_min_; }
  double y_max() const { return y_max_; }
  double t_min() const { return t_min_; }
  double t_max() const { return t_max_; }

  bool empty() const { return empty_; }

  double Width() const { return empty_ ? 0.0 : x_max_ - x_min_; }
  double Height() const { return empty_ ? 0.0 : y_max_ - y_min_; }
  double Duration() const { return empty_ ? 0.0 : t_max_ - t_min_; }
  RangeSize Size() const { return {Width(), Height(), Duration()}; }
  double Volume() const { return Width() * Height() * Duration(); }
  STPoint Centroid() const;

  // Point containment (closed bounds).
  bool Contains(const STPoint& p) const;

  // Cuboid containment: true iff `other` lies entirely within this range.
  // The empty range contains nothing and is contained by everything
  // non-empty.
  bool Contains(const STRange& other) const;

  // Closed-interval intersection test in all three dimensions; this is the
  // involvement predicate Range(p) ∩ Range(q) != ∅ of Eq. 9.
  bool Intersects(const STRange& other) const;

  // The geometric intersection; empty when the ranges do not intersect.
  STRange Intersection(const STRange& other) const;

  // Grows the range by the given non-negative margins on every side.
  STRange Expanded(double dx, double dy, double dt) const;

  std::string ToString() const;

  friend bool operator==(const STRange&, const STRange&) = default;

 private:
  STRange(double x_min, double x_max, double y_min, double y_max,
          double t_min, double t_max);

  double x_min_, x_max_, y_min_, y_max_, t_min_, t_max_;
  bool empty_;
};

std::ostream& operator<<(std::ostream& os, const STRange& r);

}  // namespace blot

#endif  // BLOT_UTIL_RANGE_H_
