// Cooperative cancellation for the query execution stack.
//
// A CancelToken is a cheap, shared flag (plus an optional monotonic
// deadline) that long-running work polls at natural boundaries: the
// failover loop checks it per attempt, Replica::Execute per partition,
// and the blocked-format scan kernels every kScanBlockRecords records —
// so a cancelled parallel scan stops within one block of the request.
// Cancellation is always *cooperative*: nothing is interrupted
// mid-block, results already produced stay valid, and the cancelled
// path reports exactly how far it got (ScanCounters::interrupted,
// QueryResult::missed_partitions).
//
// Tokens form a two-level tree: Child() tokens observe their parent's
// flag and deadline but can be cancelled independently — the hedged-read
// race hands each racing attempt its own child of the query token, so
// cancelling the loser never touches the winner while a query-level
// deadline still stops both.
//
// A default-constructed token is inert: it holds no state, never
// reports cancellation, and makes every check a null test — the
// zero-deadline fast path costs one pointer compare.
#ifndef BLOT_UTIL_CANCEL_H_
#define BLOT_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace blot {

enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline,   // the query's deadline passed
  kHedgeLost,  // a racing hedged attempt finished first
  kAbandoned,  // the caller gave up (drain, disconnect)
};

class CancelToken {
 public:
  // Inert token: valid() is false, ShouldStop() is always false.
  CancelToken() = default;

  // A live token with no deadline (cancellable only via Cancel()).
  static CancelToken Create() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  // A live token that reports kDeadline once `deadline_ms` of wall time
  // elapse from now.
  static CancelToken WithDeadline(double deadline_ms) {
    CancelToken token = Create();
    token.state_->has_deadline = true;
    token.state_->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms));
    return token;
  }

  bool valid() const { return state_ != nullptr; }

  // True once this token (or its parent) was cancelled or a deadline in
  // the chain passed. Expiry latches: the first check past the deadline
  // stores kDeadline so every sharer observes the same reason.
  bool ShouldStop() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->reason.load(std::memory_order_relaxed) !=
          static_cast<std::uint8_t>(CancelReason::kNone))
        return true;
      if (s->has_deadline && Clock::now() >= s->deadline) {
        std::uint8_t expected = 0;
        s->reason.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
            std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  // Cancels this token (not its parent); the first reason wins. No-op
  // on an inert token.
  void Cancel(CancelReason reason) const {
    if (state_ == nullptr) return;
    std::uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_relaxed);
  }

  // The first reason observed anywhere in the chain; kNone if none.
  CancelReason reason() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      const std::uint8_t r = s->reason.load(std::memory_order_relaxed);
      if (r != static_cast<std::uint8_t>(CancelReason::kNone))
        return static_cast<CancelReason>(r);
    }
    return CancelReason::kNone;
  }

  // True when cancellation was caused by a deadline in the chain.
  bool DeadlineExpired() const {
    return ShouldStop() && reason() == CancelReason::kDeadline;
  }

  bool has_deadline() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
      if (s->has_deadline) return true;
    return false;
  }

  // The earliest deadline in the chain. Only meaningful when
  // has_deadline().
  std::chrono::steady_clock::time_point deadline() const {
    Clock::time_point earliest = Clock::time_point::max();
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
      if (s->has_deadline && s->deadline < earliest) earliest = s->deadline;
    return earliest;
  }

  // A token that observes this one (flag and deadline) but can be
  // cancelled on its own. Child of an inert token is a fresh live token.
  CancelToken Child() const {
    CancelToken child = Create();
    child.state_->parent = state_;
    return child;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct State {
    // mutable: ShouldStop() latches deadline expiry through const
    // walks of the parent chain.
    mutable std::atomic<std::uint8_t> reason{0};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::shared_ptr<State> parent;
  };

  std::shared_ptr<State> state_;
};

}  // namespace blot

#endif  // BLOT_UTIL_CANCEL_H_
