#include "util/range.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace blot {

STRange::STRange()
    : x_min_(0), x_max_(0), y_min_(0), y_max_(0), t_min_(0), t_max_(0),
      empty_(true) {}

STRange::STRange(double x_min, double x_max, double y_min, double y_max,
                 double t_min, double t_max)
    : x_min_(x_min), x_max_(x_max), y_min_(y_min), y_max_(y_max),
      t_min_(t_min), t_max_(t_max), empty_(false) {}

STRange STRange::FromBounds(double x_min, double x_max, double y_min,
                            double y_max, double t_min, double t_max) {
  require(x_min <= x_max && y_min <= y_max && t_min <= t_max,
          "STRange::FromBounds: min bound exceeds max bound");
  return STRange(x_min, x_max, y_min, y_max, t_min, t_max);
}

STRange STRange::FromCentroid(const RangeSize& size, const STPoint& c) {
  require(size.w >= 0 && size.h >= 0 && size.t >= 0,
          "STRange::FromCentroid: sizes must be non-negative");
  return STRange(c.x - size.w / 2, c.x + size.w / 2, c.y - size.h / 2,
                 c.y + size.h / 2, c.t - size.t / 2, c.t + size.t / 2);
}

STRange STRange::Union(const STRange& a, const STRange& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return STRange(std::min(a.x_min_, b.x_min_), std::max(a.x_max_, b.x_max_),
                 std::min(a.y_min_, b.y_min_), std::max(a.y_max_, b.y_max_),
                 std::min(a.t_min_, b.t_min_), std::max(a.t_max_, b.t_max_));
}

STPoint STRange::Centroid() const {
  return {(x_min_ + x_max_) / 2, (y_min_ + y_max_) / 2,
          (t_min_ + t_max_) / 2};
}

bool STRange::Contains(const STPoint& p) const {
  return !empty_ && p.x >= x_min_ && p.x <= x_max_ && p.y >= y_min_ &&
         p.y <= y_max_ && p.t >= t_min_ && p.t <= t_max_;
}

bool STRange::Contains(const STRange& other) const {
  if (empty_) return false;
  if (other.empty_) return true;
  return other.x_min_ >= x_min_ && other.x_max_ <= x_max_ &&
         other.y_min_ >= y_min_ && other.y_max_ <= y_max_ &&
         other.t_min_ >= t_min_ && other.t_max_ <= t_max_;
}

bool STRange::Intersects(const STRange& other) const {
  if (empty_ || other.empty_) return false;
  return x_min_ <= other.x_max_ && other.x_min_ <= x_max_ &&
         y_min_ <= other.y_max_ && other.y_min_ <= y_max_ &&
         t_min_ <= other.t_max_ && other.t_min_ <= t_max_;
}

STRange STRange::Intersection(const STRange& other) const {
  if (!Intersects(other)) return STRange();
  return STRange(std::max(x_min_, other.x_min_), std::min(x_max_, other.x_max_),
                 std::max(y_min_, other.y_min_), std::min(y_max_, other.y_max_),
                 std::max(t_min_, other.t_min_), std::min(t_max_, other.t_max_));
}

STRange STRange::Expanded(double dx, double dy, double dt) const {
  require(dx >= 0 && dy >= 0 && dt >= 0,
          "STRange::Expanded: margins must be non-negative");
  if (empty_) return *this;
  return STRange(x_min_ - dx, x_max_ + dx, y_min_ - dy, y_max_ + dy,
                 t_min_ - dt, t_max_ + dt);
}

std::string STRange::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const STRange& r) {
  if (r.empty()) return os << "[empty]";
  return os << "[" << r.x_min() << "," << r.x_max() << "]x[" << r.y_min()
            << "," << r.y_max() << "]x[" << r.t_min() << "," << r.t_max()
            << "]";
}

}  // namespace blot
