#include "util/csv.h"

#include <istream>
#include <ostream>

#include "util/error.h"

namespace blot {

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  validate(!in_quotes, "ParseCsvLine: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      line += f;
      continue;
    }
    line.push_back('"');
    for (char c : f) {
      if (c == '"') line.push_back('"');
      line.push_back(c);
    }
    line.push_back('"');
  }
  return line;
}

bool CsvReader::ReadRow(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    fields = ParseCsvLine(line);
    return true;
  }
  return false;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  out_ << FormatCsvLine(fields) << '\n';
}

}  // namespace blot
