// Small statistics toolkit: ordinary least squares, k-means clustering,
// and summary statistics.
//
// These back two parts of the reproduction: the ScanRate/ExtraTime
// measurement procedure of Section V-B (linear regression of measured
// partition-scan costs against partition sizes) and the workload-size
// reduction of Section III-C (k-means over query range sizes).
#ifndef BLOT_UTIL_STATS_H_
#define BLOT_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace blot {

// Result of a simple linear fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
};

// Ordinary least squares over paired samples. Requires at least two
// samples and non-constant x.
LinearFit FitLinear(std::span<const double> x, std::span<const double> y);

// Summary statistics of a sample.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  std::size_t count = 0;
};

// Computes summary statistics; requires a non-empty sample.
Summary Summarize(std::span<const double> values);

// Result of k-means clustering of d-dimensional points.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;  // k x d
  std::vector<std::size_t> assignment;         // per point, cluster index
  double inertia = 0.0;  // total squared distance to assigned centroids
  std::size_t iterations = 0;
};

// Lloyd's k-means with k-means++ seeding. `points` is n x d (all rows the
// same dimension, d >= 1). Requires 1 <= k <= n. Deterministic given `rng`.
KMeansResult KMeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, Rng& rng, std::size_t max_iterations = 100);

// Weighted percentile (nearest-rank) of a sample; p in [0, 100].
double Percentile(std::vector<double> values, double p);

}  // namespace blot

#endif  // BLOT_UTIL_STATS_H_
