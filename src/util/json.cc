#include "util/json.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace blot::util {
namespace {

[[noreturn]] void Bad(std::size_t offset, const std::string& what) {
  throw CorruptData("json: " + what + " at offset " +
                    std::to_string(offset));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Bad(pos_, "trailing garbage");
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Bad(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c)
      Bad(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      Bad(pos_, "bad literal");
    pos_ += literal.size();
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = ParseString();
        return v;
      }
      case 't': {
        ExpectLiteral("true");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        ExpectLiteral("false");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        return v;
      }
      case 'n': {
        ExpectLiteral("null");
        return JsonValue();
      }
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.members_.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      v.array_.push_back(ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Bad(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Bad(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Bad(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else Bad(pos_ - 1, "bad \\u escape digit");
          }
          // Our exporters only emit \u for control characters; encode
          // the BMP code point as UTF-8 without surrogate handling.
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default: Bad(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Bad(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Bad(start, "bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) throw CorruptData("json: not a bool");
  return bool_;
}

double JsonValue::AsDouble() const {
  if (type_ != Type::kNumber) throw CorruptData("json: not a number");
  return number_;
}

std::uint64_t JsonValue::AsUint64() const {
  const double v = AsDouble();
  if (v < 0.0 || v != std::floor(v))
    throw CorruptData("json: not a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) throw CorruptData("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (type_ != Type::kArray) throw CorruptData("json: not an array");
  return array_;
}

const JsonValue::Members& JsonValue::AsObject() const {
  if (type_ != Type::kObject) throw CorruptData("json: not an object");
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) throw CorruptData("json: not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr)
    throw CorruptData("json: missing key: " + std::string(key));
  return *v;
}

double JsonValue::DoubleOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsDouble();
}

std::uint64_t JsonValue::Uint64Or(std::string_view key,
                                  std::uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsUint64();
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? std::move(fallback) : v->AsString();
}

}  // namespace blot::util
