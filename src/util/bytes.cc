#include "util/bytes.h"

#include <bit>

#include "util/error.h"

namespace blot {

void ByteWriter::PutF32(float v) { PutU32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::PutF64(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::PutSignedVarint(std::int64_t v) {
  PutVarint(ZigZagEncode(v));
}

void ByteWriter::PutBytes(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::PutLengthPrefixed(BytesView data) {
  PutVarint(data.size());
  PutBytes(data);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteReader::CheckAvailable(std::size_t n) const {
  validate(remaining() >= n, "ByteReader: truncated input");
}

std::uint8_t ByteReader::GetU8() { return GetFixed<std::uint8_t>(); }
std::uint16_t ByteReader::GetU16() { return GetFixed<std::uint16_t>(); }
std::uint32_t ByteReader::GetU32() { return GetFixed<std::uint32_t>(); }
std::uint64_t ByteReader::GetU64() { return GetFixed<std::uint64_t>(); }

float ByteReader::GetF32() { return std::bit_cast<float>(GetU32()); }
double ByteReader::GetF64() { return std::bit_cast<double>(GetU64()); }

std::uint64_t ByteReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    CheckAvailable(1);
    const std::uint8_t byte = data_[position_++];
    validate(shift < 64, "ByteReader: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

BytesView ByteReader::GetBytes(std::size_t n) {
  CheckAvailable(n);
  BytesView view = data_.subspan(position_, n);
  position_ += n;
  return view;
}

BytesView ByteReader::GetLengthPrefixed() {
  const std::uint64_t n = GetVarint();
  validate(n <= remaining(), "ByteReader: length prefix exceeds input");
  return GetBytes(static_cast<std::size_t>(n));
}

std::string ByteReader::GetString() {
  BytesView view = GetLengthPrefixed();
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

std::uint64_t Fnv1a64(BytesView data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace blot
