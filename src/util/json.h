// Minimal JSON DOM parser for the telemetry tooling.
//
// blotmon reads back what the obs layer writes — event-log lines,
// snapshot JSONL, metrics dumps — and the tests assert on exported JSON
// structurally instead of by substring. This parser covers exactly the
// JSON the exporters produce (objects, arrays, strings with the escapes
// JsonEscapeString emits, numbers, booleans, null); it is not a
// general-purpose validating parser. Parse errors throw CorruptData
// with a byte offset.
#ifndef BLOT_UTIL_JSON_H_
#define BLOT_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blot::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Object members keep document order.
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  // Parses one complete JSON document (trailing whitespace allowed,
  // trailing garbage is an error). Throws CorruptData on malformed
  // input.
  static JsonValue Parse(std::string_view text);

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Typed accessors; wrong-type access throws CorruptData (telemetry
  // files are external input, not programmer error).
  bool AsBool() const;
  double AsDouble() const;
  std::uint64_t AsUint64() const;  // requires a non-negative integer
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const Members& AsObject() const;

  // Object lookup: Find returns nullptr when absent, At throws.
  const JsonValue* Find(std::string_view key) const;
  const JsonValue& At(std::string_view key) const;

  // Convenience: At(key) coerced, with `fallback` when the key is
  // absent.
  double DoubleOr(std::string_view key, double fallback) const;
  std::uint64_t Uint64Or(std::string_view key,
                         std::uint64_t fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  Members members_;
};

}  // namespace blot::util

#endif  // BLOT_UTIL_JSON_H_
