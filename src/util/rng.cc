#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace blot {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  require(bound > 0, "Rng::NextUint64: bound must be positive");
  // Lemire's unbiased bounded generation with rejection.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt64(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::NextInt64: lo must not exceed hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  require(lo <= hi, "Rng::NextDouble: lo must not exceed hi");
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::NextBool(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::NextBool: p must be in [0, 1]");
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  require(rate > 0.0, "Rng::NextExponential: rate must be positive");
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

std::size_t Rng::NextZipf(std::size_t n, double s) {
  require(n > 0, "Rng::NextZipf: n must be positive");
  require(s >= 0.0, "Rng::NextZipf: exponent must be non-negative");
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = NextDouble() * norm;
  for (std::size_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(double(k), s);
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = NextUint64(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() {
  return Rng((*this)() ^ (0xA0761D6478BD642Full * ++fork_counter_));
}

}  // namespace blot
