// Fixed-size thread pool for parallel partition scans and request
// scheduling.
//
// BLOT query processing is embarrassingly parallel over involved
// partitions ("it is straightforward to conduct parallel query processing
// by scanning multiple partitions simultaneously", Section II-D). The
// executor uses this pool to decode and filter partitions concurrently;
// the serving layer (src/serve) uses a second pool of the same type to
// run whole queries concurrently.
//
// ## The no-nested-blocking contract
//
// A task running on a pool worker MUST NOT submit work to the *same*
// pool and block on its completion: with all workers busy doing exactly
// that, nobody is left to drain the queue and the pool deadlocks. This
// is why the serving layer splits *request* parallelism (one pool
// running whole queries) from *scan* parallelism (a second pool fanning
// one query's partitions): a query task on the request pool may block on
// ParallelFor of the scan pool, never of its own.
//
// The contract is enforced where the pool can see the blocking:
// ParallelFor asserts (debug builds) that the calling thread is not a
// worker of the pool it is about to wait on. Blocking on a future from
// Submit cannot be intercepted; use InWorkerThread() to assert at such
// call sites. Fire-and-forget Submit from a worker to its own pool is
// fine (no wait, no deadlock) — the background-repair scheduling path
// relies on that.
//
// Observability: each pool carries a name; `pool.queue_depth{pool=name}`
// and `pool.active_workers{pool=name}` gauges track its load whenever
// the global metrics registry is enabled (docs/observability.md).
#ifndef BLOT_UTIL_THREAD_POOL_H_
#define BLOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace blot {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers (>= 1). `name` labels the
  // pool's gauges; pools sharing a name share gauge instances, so give
  // long-lived pools distinct names ("scan", "request", ...).
  explicit ThreadPool(std::size_t num_threads, std::string name = "scan");

  // Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }
  const std::string& name() const { return name_; }

  // True when the calling thread is one of this pool's workers. The
  // building block for asserting the no-nested-blocking contract at
  // call sites that wait on futures from Submit.
  bool InWorkerThread() const;

  // Enqueues a task and returns a future for its result. A task may
  // submit further tasks to its own pool but must not block on them
  // (see the contract above); waiting on the returned future from a
  // worker of this same pool deadlocks when the pool is saturated.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    // Stamp the enqueue time only when metrics are on; 0 marks "don't
    // measure this task" for the worker.
    const std::uint64_t enqueue_ns =
        obs::MetricsRegistry::global().enabled() ? obs::MonotonicNanos()
                                                 : 0;
    {
      std::lock_guard lock(mutex_);
      queue_.push(QueuedTask{[task] { (*task)(); }, enqueue_ns});
      if (enqueue_ns != 0) queue_depth_gauge_->Set(double(queue_.size()));
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  // Blocks, so it must not be called from a worker of this same pool
  // (asserted in debug builds — the no-nested-blocking contract).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  // 0: metrics were off at enqueue time
  };

  void WorkerLoop();

  std::string name_;
  // Stable gauge handles (metric handles never move once created), so
  // the hot path skips the registry map lookup.
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* active_workers_gauge_ = nullptr;
  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace blot

#endif  // BLOT_UTIL_THREAD_POOL_H_
