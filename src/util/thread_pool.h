// Fixed-size thread pool for parallel partition scans.
//
// BLOT query processing is embarrassingly parallel over involved
// partitions ("it is straightforward to conduct parallel query processing
// by scanning multiple partitions simultaneously", Section II-D). The
// executor uses this pool to decode and filter partitions concurrently.
#ifndef BLOT_UTIL_THREAD_POOL_H_
#define BLOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace blot {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  // Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task and returns a future for its result. Tasks may not
  // enqueue further tasks and wait on them (no nested blocking).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    // Stamp the enqueue time only when metrics are on; 0 marks "don't
    // measure this task" for the worker.
    const std::uint64_t enqueue_ns =
        obs::MetricsRegistry::global().enabled() ? obs::MonotonicNanos()
                                                 : 0;
    {
      std::lock_guard lock(mutex_);
      queue_.push(QueuedTask{[task] { (*task)(); }, enqueue_ns});
      if (enqueue_ns != 0) ObserveQueueDepth(queue_.size());
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  // 0: metrics were off at enqueue time
  };

  void WorkerLoop();
  static void ObserveQueueDepth(std::size_t depth);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace blot

#endif  // BLOT_UTIL_THREAD_POOL_H_
