#include "util/thread_pool.h"

#include <atomic>
#include <cassert>
#include <exception>

#include "util/error.h"

namespace blot {
namespace {

// The pool whose WorkerLoop the current thread is running (null on
// non-worker threads). One level is enough: a worker thread belongs to
// exactly one pool for its whole life.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  require(num_threads >= 1, "ThreadPool: need at least one thread");
  auto& registry = obs::MetricsRegistry::global();
  queue_depth_gauge_ =
      &registry.GetGauge("pool.queue_depth", {{"pool", name_}});
  active_workers_gauge_ =
      &registry.GetGauge("pool.active_workers", {{"pool", name_}});
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::InWorkerThread() const {
  return current_worker_pool == this;
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& tasks_total =
      registry.GetCounter("threadpool.tasks_total");
  static obs::Histogram& queue_wait_ms =
      registry.GetHistogram("threadpool.queue_wait_ms");
  static obs::Histogram& task_ms =
      registry.GetHistogram("threadpool.task_ms");
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      if (task.enqueue_ns != 0)
        queue_depth_gauge_->Set(double(queue_.size()));
    }
    // Tasks enqueued with metrics off carry no timestamp and charge no
    // clock reads here either.
    if (task.enqueue_ns != 0) {
      tasks_total.Increment();
      queue_wait_ms.Observe(
          double(obs::MonotonicNanos() - task.enqueue_ns) * 1e-6);
      active_workers_gauge_->Add(1.0);
      obs::ScopedTimerMs timer(&task_ms);
      task.fn();
      active_workers_gauge_->Add(-1.0);
    } else {
      task.fn();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  // The no-nested-blocking contract: waiting for this pool's workers
  // *from* one of this pool's workers deadlocks once every worker does
  // it. The serving layer's two-pool split exists so cross-pool waits
  // (request worker -> scan pool) are the only blocking waits.
  assert(!InWorkerThread() &&
         "ThreadPool::ParallelFor called from a worker of the same pool "
         "(no-nested-blocking contract; use a separate pool)");
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t num_tasks = std::min(n, num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    futures.push_back(Submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace blot
