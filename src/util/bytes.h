// Byte-buffer serialization primitives.
//
// All physical storage layouts (row, column, compressed partitions) are
// serialized through ByteWriter / ByteReader, which provide little-endian
// fixed-width encoding plus LEB128 varints and zig-zag transforms. Readers
// bound-check every access and throw CorruptData on truncated input.
#ifndef BLOT_UTIL_BYTES_H_
#define BLOT_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace blot {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Maps a signed integer to an unsigned one so that small-magnitude values
// (of either sign) become small unsigned values, as required for efficient
// varint coding of deltas.
constexpr std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Appends values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(std::uint8_t v) { buffer_.push_back(v); }
  void PutU16(std::uint16_t v) { PutFixed(v); }
  void PutU32(std::uint32_t v) { PutFixed(v); }
  void PutU64(std::uint64_t v) { PutFixed(v); }
  void PutI64(std::int64_t v) { PutFixed(static_cast<std::uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);

  // Unsigned LEB128.
  void PutVarint(std::uint64_t v);
  // Zig-zag + LEB128.
  void PutSignedVarint(std::int64_t v);

  void PutBytes(BytesView data);
  // Length-prefixed (varint) byte string.
  void PutLengthPrefixed(BytesView data);
  void PutString(std::string_view s);

  std::size_t size() const { return buffer_.size(); }
  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Bytes buffer_;
};

// Sequentially consumes values from a byte span. Throws CorruptData when
// the input is exhausted or malformed.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t GetU8();
  std::uint16_t GetU16();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }
  float GetF32();
  double GetF64();

  std::uint64_t GetVarint();
  std::int64_t GetSignedVarint() { return ZigZagDecode(GetVarint()); }

  // Returns a view of the next `n` bytes and advances past them.
  BytesView GetBytes(std::size_t n);
  BytesView GetLengthPrefixed();
  std::string GetString();

  std::size_t remaining() const { return data_.size() - position_; }
  std::size_t position() const { return position_; }
  bool AtEnd() const { return position_ == data_.size(); }

 private:
  void CheckAvailable(std::size_t n) const;

  template <typename T>
  T GetFixed() {
    CheckAvailable(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(data_[position_ + i]) << (8 * i);
    position_ += sizeof(T);
    return v;
  }

  BytesView data_;
  std::size_t position_ = 0;
};

// FNV-1a 64-bit hash, used as a cheap content checksum on encoded
// partitions.
std::uint64_t Fnv1a64(BytesView data);

}  // namespace blot

#endif  // BLOT_UTIL_BYTES_H_
