// Error types and invariant checking for the BLOT library.
//
// The library signals unrecoverable API misuse and data corruption through
// exceptions derived from blot::Error. Invariants inside algorithms are
// checked with ensure(), which throws InternalError so that a violated
// invariant surfaces as a catchable, testable condition rather than UB.
#ifndef BLOT_UTIL_ERROR_H_
#define BLOT_UTIL_ERROR_H_

#include <stdexcept>
#include <string>
#include <string_view>

namespace blot {

// Base class for all errors thrown by the BLOT library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// An argument passed to a public API violated its documented contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Encoded data failed validation (bad magic, truncation, checksum mismatch).
class CorruptData : public Error {
 public:
  explicit CorruptData(const std::string& what) : Error(what) {}
};

// A storage read failed outright (I/O error, unreachable storage unit).
// Distinct from CorruptData so callers can tell unreadable bytes from
// unverifiable ones; both are survivable via replica failover.
class ReadError : public Error {
 public:
  explicit ReadError(const std::string& what) : Error(what) {}
};

// An internal invariant did not hold; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

// Throws InvalidArgument with `message` unless `condition` holds.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw InvalidArgument(std::string(message));
}

// Throws InternalError with `message` unless `condition` holds.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) throw InternalError(std::string(message));
}

// Throws CorruptData with `message` unless `condition` holds.
inline void validate(bool condition, std::string_view message) {
  if (!condition) throw CorruptData(std::string(message));
}

}  // namespace blot

#endif  // BLOT_UTIL_ERROR_H_
