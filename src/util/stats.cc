#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace blot {

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "FitLinear: size mismatch");
  require(x.size() >= 2, "FitLinear: need at least two samples");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double var_x = sxx - sx * sx / n;
  require(var_x > 0, "FitLinear: x values are constant");
  LinearFit fit;
  fit.slope = (sxy - sx * sy / n) / var_x;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

Summary Summarize(std::span<const double> values) {
  require(!values.empty(), "Summarize: empty sample");
  Summary s;
  s.count = values.size();
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double ssd = 0;
  for (double v : values) ssd += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ssd / static_cast<double>(s.count));
  return s;
}

namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, Rng& rng, std::size_t max_iterations) {
  require(!points.empty(), "KMeans: empty input");
  require(k >= 1 && k <= points.size(), "KMeans: k out of range");
  const std::size_t n = points.size();
  const std::size_t dim = points[0].size();
  require(dim >= 1, "KMeans: zero-dimensional points");
  for (const auto& p : points)
    require(p.size() == dim, "KMeans: inconsistent point dimensions");

  KMeansResult result;
  // k-means++ seeding.
  result.centroids.push_back(points[rng.NextUint64(n)]);
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i],
                          SquaredDistance(points[i], result.centroids.back()));
      total += dist2[i];
    }
    std::size_t chosen = 0;
    if (total > 0) {
      double target = rng.NextDouble() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextUint64(n);
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignment.assign(n, 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[result.assignment[i]]++;
      for (std::size_t d = 0; d < dim; ++d)
        sums[result.assignment[i]][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to keep k clusters.
        result.centroids[c] = points[rng.NextUint64(n)];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0;
  for (std::size_t i = 0; i < n; ++i)
    result.inertia +=
        SquaredDistance(points[i], result.centroids[result.assignment[i]]);
  return result;
}

double Percentile(std::vector<double> values, double p) {
  require(!values.empty(), "Percentile: empty sample");
  require(p >= 0 && p <= 100, "Percentile: p out of range");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace blot
