// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generators, workload
// generators, Monte-Carlo validators) draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256++, seeded via SplitMix64.
#ifndef BLOT_UTIL_RNG_H_
#define BLOT_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace blot {

// xoshiro256++ generator with convenience distributions.
//
// Satisfies the UniformRandomBitGenerator concept, so it can also be used
// with <random> distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  // Next raw 64-bit value.
  std::uint64_t operator()();

  // Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t NextUint64(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt64(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double NextDouble(double lo, double hi);

  // Standard normal variate (Box-Muller, one value per call).
  double NextGaussian();

  // Bernoulli draw with success probability p in [0, 1].
  bool NextBool(double p = 0.5);

  // Exponential variate with the given rate (> 0).
  double NextExponential(double rate);

  // Zipf-distributed rank in [0, n) with exponent s >= 0. Uses the
  // normalized inverse-CDF over n ranks; O(n) setup is avoided by
  // rejection-free linear scan acceptable for small n.
  std::size_t NextZipf(std::size_t n, double s);

  // Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

  // Derives an independent child generator; successive calls yield
  // distinct streams.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  std::uint64_t fork_counter_ = 0;
};

}  // namespace blot

#endif  // BLOT_UTIL_RNG_H_
