// Minimal CSV reading and writing.
//
// Location-tracking datasets are traditionally interchanged as CSV (the
// paper's 3.7 GB dataset is "uncompressed CSV format"); Dataset uses this
// module for text import/export. The dialect is simple: comma separator,
// optional double-quote quoting with "" escapes, and \n or \r\n line ends.
#ifndef BLOT_UTIL_CSV_H_
#define BLOT_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace blot {

// Splits one CSV line into fields, honoring quoting. Throws CorruptData on
// unterminated quotes.
std::vector<std::string> ParseCsvLine(std::string_view line);

// Joins fields into one CSV line (no trailing newline), quoting fields
// that contain separators, quotes, or newlines.
std::string FormatCsvLine(const std::vector<std::string>& fields);

// Streaming CSV reader over an istream.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  // Reads the next row into `fields`; returns false at end of input.
  // Empty lines are skipped.
  bool ReadRow(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

// Streaming CSV writer over an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

}  // namespace blot

#endif  // BLOT_UTIL_CSV_H_
