// An in-memory location-tracking dataset D.
//
// Holds the logical view shared by every replica: a flat vector of
// records. Provides bounding-box computation (the universe U of
// Definition 1), text/binary interchange, sampling (the paper builds its
// cost model from "a small portion of the data"), and query filtering by
// brute force (ground truth for tests).
#ifndef BLOT_BLOT_DATASET_H_
#define BLOT_BLOT_DATASET_H_

#include <iosfwd>
#include <vector>

#include "blot/record.h"
#include "util/range.h"
#include "util/rng.h"

namespace blot {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Record> records)
      : records_(std::move(records)) {}

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  void Append(const Record& record) { records_.push_back(record); }
  void Append(const Dataset& other);

  // The tight spatio-temporal bounding box of all records; empty range for
  // an empty dataset.
  STRange BoundingBox() const;

  // Uniform sample without replacement of min(n, size()) records.
  Dataset Sample(std::size_t n, Rng& rng) const;

  // All records inside `range` (closed bounds), in dataset order. This is
  // the semantic ground truth every replica's query path must match.
  std::vector<Record> FilterByRange(const STRange& range) const;

  // Sorts records by (oid, time) — trajectory order.
  void SortByObjectAndTime();
  // Sorts records by time only.
  void SortByTime();

  // Uncompressed CSV interchange (the paper's baseline format), with a
  // header row.
  void WriteCsv(std::ostream& out) const;
  static Dataset ReadCsv(std::istream& in);

  // Compact binary interchange (fixed-width rows, little-endian).
  void WriteBinary(std::ostream& out) const;
  static Dataset ReadBinary(std::istream& in);

  friend bool operator==(const Dataset&, const Dataset&) = default;

 private:
  std::vector<Record> records_;
};

}  // namespace blot

#endif  // BLOT_BLOT_DATASET_H_
