#include "blot/replica.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include <cmath>

#include "codec/simd/dispatch.h"
#include "core/fault_injection.h"
#include "core/partition_cache.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

// Exact TIME x LOC bounding cuboid over `records`, or nullopt when the
// partition is empty or contains a NaN coordinate (no order → no zone).
// Same semantics as the per-block zone maps in layout.cc, one level up.
std::optional<STRange> ComputePartitionZone(
    const std::vector<Record>& records) {
  if (records.empty()) return std::nullopt;
  double x_min = records[0].x, x_max = records[0].x;
  double y_min = records[0].y, y_max = records[0].y;
  std::int64_t t_min = records[0].time, t_max = records[0].time;
  for (const Record& r : records) {
    if (std::isnan(r.x) || std::isnan(r.y)) return std::nullopt;
    x_min = std::min(x_min, r.x);
    x_max = std::max(x_max, r.x);
    y_min = std::min(y_min, r.y);
    y_max = std::max(y_max, r.y);
    t_min = std::min(t_min, r.time);
    t_max = std::max(t_max, r.time);
  }
  return STRange::FromBounds(x_min, x_max, y_min, y_max,
                             static_cast<double>(t_min),
                             static_cast<double>(t_max));
}

// Encodes one partition's records under the replica's encoding config —
// the shared physical-encode step of Build and RestorePartition.
StoredPartition EncodeStoredPartition(const std::vector<Record>& records,
                                      const ReplicaConfig& config) {
  StoredPartition stored;
  stored.num_records = records.size();
  stored.format = LayoutFormat::kBlocked;
  if (const auto zone = ComputePartitionZone(records)) {
    stored.has_zone = true;
    stored.zone = *zone;
  }
  if (config.policy == EncodingPolicy::kBestCodecPerPartition) {
    // Try every codec over the replica's layout and keep the smallest.
    const Bytes serialized = SerializeRecords(records, config.encoding.layout);
    stored.codec = CodecKind::kNone;
    stored.data = GetCodec(CodecKind::kNone).Compress(serialized);
    for (const CodecKind kind : AllCodecKinds()) {
      if (kind == CodecKind::kNone) continue;
      Bytes candidate = GetCodec(kind).Compress(serialized);
      if (candidate.size() < stored.data.size()) {
        stored.data = std::move(candidate);
        stored.codec = kind;
      }
    }
  } else {
    stored.codec = config.encoding.codec;
    stored.data = EncodePartition(records, config.encoding);
  }
  stored.checksum = Fnv1a64(stored.data);
  return stored;
}

}  // namespace

void Replica::InitCacheState(std::size_t num_partitions) {
  cache_id_ = PartitionCache::NextReplicaId();
  verified_ = std::shared_ptr<std::atomic<std::uint8_t>[]>(
      new std::atomic<std::uint8_t>[num_partitions]());
}

Replica::Replica(const Replica& other)
    : config_(other.config_),
      universe_(other.universe_),
      index_(other.index_),
      partitions_(other.partitions_),
      storage_bytes_(other.storage_bytes_),
      num_records_(other.num_records_) {
  // Fresh identity and fresh (unverified) bits; see header.
  InitCacheState(partitions_.size());
}

Replica& Replica::operator=(const Replica& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  universe_ = other.universe_;
  index_ = other.index_;
  partitions_ = other.partitions_;
  storage_bytes_ = other.storage_bytes_;
  num_records_ = other.num_records_;
  InitCacheState(partitions_.size());
  return *this;
}

Replica Replica::Build(const Dataset& dataset, const ReplicaConfig& config,
                       const STRange& universe, ThreadPool* pool) {
  Replica replica;
  replica.config_ = config;
  replica.universe_ = universe;
  replica.num_records_ = dataset.size();

  PartitionedData partitioned =
      PartitionDataset(dataset, config.partitioning, universe);
  replica.index_ = PartitionIndex(std::move(partitioned.ranges));
  replica.partitions_.resize(partitioned.members.size());
  replica.InitCacheState(replica.partitions_.size());

  const auto encode_one = [&](std::size_t i) {
    const auto& members = partitioned.members[i];
    std::vector<Record> records;
    records.reserve(members.size());
    for (std::uint32_t index : members)
      records.push_back(dataset.records()[index]);
    replica.partitions_[i] = EncodeStoredPartition(records, config);
  };
  if (pool != nullptr) {
    pool->ParallelFor(replica.partitions_.size(), encode_one);
  } else {
    for (std::size_t i = 0; i < replica.partitions_.size(); ++i)
      encode_one(i);
  }

  replica.storage_bytes_ = 0;
  for (const StoredPartition& p : replica.partitions_)
    replica.storage_bytes_ += p.data.size();
  return replica;
}

void Replica::VerifyPartition(std::size_t partition) const {
  std::atomic<std::uint8_t>& verified = verified_[partition];
  if (verified.load(std::memory_order_acquire) != 0) return;
  const StoredPartition& stored = partitions_[partition];
  validate(Fnv1a64(stored.data) == stored.checksum,
           "Replica: partition checksum mismatch (corrupt storage unit)");
  verified.store(1, std::memory_order_release);
}

void Replica::MaybeInjectFault(std::size_t partition) const {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return;
  const StoredPartition& stored = partitions_[partition];
  const FaultDecision decision =
      injector.OnPartitionRead(config_.Name(), partition, stored.data.size());
  if (!decision.fire) return;
  switch (decision.kind) {
    case FaultKind::kReadError:
      throw ReadError("Replica: injected read error on partition " +
                      std::to_string(partition) + " of " + config_.Name());
    case FaultKind::kLatency:
      std::this_thread::sleep_for(std::chrono::milliseconds(decision.param));
      return;
    case FaultKind::kBitFlip:
    case FaultKind::kTruncate:
    case FaultKind::kTornRead: {
      // Corrupt a copy of the read and push it through the real checksum
      // check, so the injected fault exercises exactly the detection path
      // a failing medium would.
      Bytes corrupted = stored.data;
      FaultInjector::ApplyMutation(corrupted, decision.kind, decision.param);
      validate(Fnv1a64(corrupted) == stored.checksum,
               "Replica: partition checksum mismatch (corrupt storage unit)");
      return;
    }
  }
}

std::vector<Record> Replica::DecodePartitionRecords(
    std::size_t partition) const {
  require(partition < partitions_.size(),
          "Replica::DecodePartitionRecords: bad partition");
  MaybeInjectFault(partition);
  VerifyPartition(partition);
  const StoredPartition& stored = partitions_[partition];
  std::vector<Record> records =
      DecodePartition(stored.data, PartitionScheme(stored), stored.format);
  validate(records.size() == stored.num_records,
           "Replica: decoded record count mismatch");
  return records;
}

std::shared_ptr<const std::vector<Record>> Replica::CachedPartitionRecords(
    std::size_t partition, bool* cache_hit) const {
  PartitionCache& cache = PartitionCache::Global();
  if (cache.enabled()) {
    if (auto records = cache.Lookup(cache_id_, partition)) {
      if (cache_hit != nullptr) *cache_hit = true;
      return records;
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;
  std::vector<Record> decoded = DecodePartitionRecords(partition);
  if (!cache.enabled())
    return std::make_shared<const std::vector<Record>>(std::move(decoded));
  return cache.Insert(cache_id_, partition, std::move(decoded));
}

std::vector<Record> Replica::ScanPartitionInRange(
    std::size_t partition, const STRange& query) const {
  return ScanPartitionInRange(partition, query,
                              simd::ZoneMapPruningEnabled(), nullptr);
}

std::vector<Record> Replica::ScanPartitionInRange(
    std::size_t partition, const STRange& query, bool prune_blocks,
    ScanCounters* counters, const CancelToken* cancel) const {
  require(partition < partitions_.size(),
          "Replica::ScanPartitionInRange: bad partition");
  MaybeInjectFault(partition);
  VerifyPartition(partition);
  const StoredPartition& stored = partitions_[partition];
  std::uint64_t total_records = 0;
  std::vector<Record> matches = DecodePartitionInRange(
      stored.data, PartitionScheme(stored), query, &total_records,
      stored.format, prune_blocks, counters, cancel);
  // An interrupted walk left before the end of the stream; the count it
  // covered is by construction short, not corrupt.
  if (counters == nullptr || !counters->interrupted)
    validate(total_records == stored.num_records,
             "Replica: decoded record count mismatch");
  return matches;
}

StoredPartition& Replica::MutablePartition(std::size_t i) {
  require(i < partitions_.size(), "Replica::MutablePartition: bad partition");
  verified_[i].store(0, std::memory_order_release);
  PartitionCache::Global().Invalidate(cache_id_, i);
  return partitions_[i];
}

QueryResult Replica::Execute(const STRange& query, ThreadPool* pool,
                             obs::QueryProfile* profile) const {
  ScanOptions options;
  options.pool = pool;
  options.profile = profile;
  return Execute(query, options);
}

QueryResult Replica::Execute(const STRange& query,
                             const ScanOptions& options) const {
  ThreadPool* pool = options.pool;
  obs::QueryProfile* profile = options.profile;
  const bool prune =
      options.zone_map_pruning.value_or(simd::ZoneMapPruningEnabled());
  const std::vector<std::size_t> index_involved =
      index_.InvolvedPartitions(query);
  // Partition-level zone skip: the stored zone is the exact bounding
  // cuboid over the partition's records, tighter than the partitioning
  // cell the index tested, so a partition can survive the index and
  // still be provably empty for this query.
  std::vector<std::size_t> involved;
  std::size_t zone_pruned = 0;
  if (prune) {
    involved.reserve(index_involved.size());
    for (const std::size_t p : index_involved) {
      const StoredPartition& sp = partitions_[p];
      if (sp.has_zone && !query.Intersects(sp.zone)) {
        ++zone_pruned;
        continue;
      }
      involved.push_back(p);
    }
  } else {
    involved = index_involved;
  }
  // Excluded partitions (degraded serving around quarantined units) are
  // removed from the scan up front and reported missed.
  std::vector<std::size_t> excluded;
  if (options.exclude_partitions != nullptr &&
      !options.exclude_partitions->empty()) {
    std::vector<std::size_t> kept;
    kept.reserve(involved.size());
    for (const std::size_t p : involved) {
      if (std::binary_search(options.exclude_partitions->begin(),
                             options.exclude_partitions->end(), p)) {
        excluded.push_back(p);
      } else {
        kept.push_back(p);
      }
    }
    involved.swap(kept);
  }
  QueryResult result;

  const CancelToken* cancel = options.cancel;
  const bool use_cache = PartitionCache::Global().enabled();
  const bool profiling = profile != nullptr;
  std::vector<std::vector<Record>> matches(involved.size());
  std::vector<QueryStats> stats(involved.size());
  std::vector<ScanCounters> counters(involved.size());
  // One flag per involved partition: set when the scan never ran (cancel
  // fired before it) or was interrupted mid-partition. Either way the
  // partition counts wholly as missed.
  std::vector<std::uint8_t> skipped(involved.size(), 0);
  if (profiling)
    for (ScanCounters& c : counters) c.timed = true;
  // Sub-stage wall time per partition, merged single-threaded below so
  // the parallel scan never shares a profile accumulator.
  struct PartitionTimes {
    double probe_ms = 0.0, decode_ms = 0.0, filter_ms = 0.0;
  };
  std::vector<PartitionTimes> times(profiling ? involved.size() : 0);
  // Per-partition read faults land in `fault_messages` (empty string =
  // healthy) rather than aborting the scan, so one bad storage unit does
  // not hide the health of the rest and the store learns every failing
  // partition in a single pass.
  std::vector<std::string> fault_messages(involved.size());
  const auto scan_one = [&](std::size_t k) {
    const std::size_t p = involved[k];
    if (cancel != nullptr && cancel->ShouldStop()) {
      skipped[k] = 1;
      return;
    }
    try {
      if (use_cache) {
        bool hit = false;
        const std::uint64_t t0 = profiling ? obs::MonotonicNanos() : 0;
        const auto records = CachedPartitionRecords(p, &hit);
        const std::uint64_t t1 = profiling ? obs::MonotonicNanos() : 0;
        stats[k].records_scanned = records->size();
        stats[k].bytes_read = hit ? 0 : partitions_[p].data.size();
        stats[k].cache_hits = hit ? 1 : 0;
        stats[k].cache_misses = hit ? 0 : 1;
        for (const Record& r : *records)
          if (query.Contains(r.Position())) matches[k].push_back(r);
        if (profiling) {
          const double lookup_ms = double(t1 - t0) * 1e-6;
          // A hit's latency is the probe itself; a miss's is dominated
          // by the decode (+ cache insert) behind the probe.
          (hit ? times[k].probe_ms : times[k].decode_ms) = lookup_ms;
          times[k].filter_ms = double(obs::MonotonicNanos() - t1) * 1e-6;
        }
      } else {
        // Fused decode-filter kernel: no intermediate full-partition
        // vector on this path.
        const std::uint64_t t0 = profiling ? obs::MonotonicNanos() : 0;
        matches[k] = ScanPartitionInRange(p, query, prune, &counters[k],
                                          cancel);
        if (profiling)
          times[k].decode_ms = double(obs::MonotonicNanos() - t0) * 1e-6;
        if (counters[k].interrupted) {
          // Partition-granular coverage: the prefix scanned before the
          // cancellation is discarded so `served` stays exact.
          skipped[k] = 1;
          matches[k].clear();
          return;
        }
        stats[k].records_scanned = partitions_[p].num_records;
        stats[k].bytes_read = partitions_[p].data.size();
      }
    } catch (const CorruptData& e) {
      fault_messages[k] = e.what();
    } catch (const ReadError& e) {
      fault_messages[k] = e.what();
    }
  };
  // `workers` is the number of concurrent scan tasks; each walks the
  // involved list with stride `workers`, so the k-indexed merge below is
  // deterministic regardless of scheduling.
  std::size_t workers = involved.size();
  if (options.max_parallelism > 0)
    workers = std::min(workers, options.max_parallelism);
  if (pool != nullptr && workers > 1) {
    const std::size_t n = involved.size();
    pool->ParallelFor(workers, [&](std::size_t w) {
      for (std::size_t k = w; k < n; k += workers) scan_one(k);
    });
  } else {
    for (std::size_t k = 0; k < involved.size(); ++k) scan_one(k);
  }

  std::vector<std::size_t> faulty;
  for (std::size_t k = 0; k < involved.size(); ++k)
    if (!fault_messages[k].empty()) faulty.push_back(involved[k]);
  if (!faulty.empty()) {
    std::string what = "Replica " + config_.Name() + ": read faults on " +
                       std::to_string(faulty.size()) + " partition(s):";
    for (std::size_t k = 0; k < involved.size(); ++k) {
      if (fault_messages[k].empty()) continue;
      what += " [p" + std::to_string(involved[k]) + ": " + fault_messages[k] +
              "]";
    }
    throw PartitionFaultError(what, config_.Name(), std::move(faulty));
  }

  // Coverage report: exact served/missed partition sets whenever the
  // scan was not complete (cancellation or exclusion).
  std::size_t served_count = 0;
  for (std::size_t k = 0; k < involved.size(); ++k)
    if (skipped[k] == 0) ++served_count;
  result.stats.partitions_scanned = served_count;
  if (served_count < involved.size() || !excluded.empty()) {
    result.truncated = true;
    result.served_partitions.reserve(served_count);
    result.missed_partitions.reserve(involved.size() - served_count +
                                     excluded.size());
    for (std::size_t k = 0; k < involved.size(); ++k) {
      if (skipped[k] == 0)
        result.served_partitions.push_back(involved[k]);
      else
        result.missed_partitions.push_back(involved[k]);
    }
    result.missed_partitions.insert(result.missed_partitions.end(),
                                    excluded.begin(), excluded.end());
    std::sort(result.missed_partitions.begin(),
              result.missed_partitions.end());
  }

  for (std::size_t k = 0; k < involved.size(); ++k) {
    if (skipped[k] != 0) continue;
    result.stats.records_scanned += stats[k].records_scanned;
    result.stats.bytes_read += stats[k].bytes_read;
    result.stats.cache_hits += stats[k].cache_hits;
    result.stats.cache_misses += stats[k].cache_misses;
    result.records.insert(result.records.end(), matches[k].begin(),
                          matches[k].end());
    if (profiling) {
      const std::uint64_t encoded = partitions_[involved[k]].data.size();
      profile->AddStage(obs::Stage::kCacheProbe, times[k].probe_ms,
                        stats[k].cache_hits != 0 ? encoded : 0);
      profile->AddStage(obs::Stage::kDecode, times[k].decode_ms,
                        stats[k].bytes_read);
      profile->AddStage(obs::Stage::kFilter, times[k].filter_ms);
      profile->AddStage(obs::Stage::kZoneMapPrune,
                        double(counters[k].prune_ns) * 1e-6);
      profile->AddStage(obs::Stage::kSimd,
                        double(counters[k].decode_ns) * 1e-6);
      profile->cache_hit_bytes += stats[k].cache_hits != 0 ? encoded : 0;
      profile->cache_miss_bytes += stats[k].bytes_read;
    }
  }
  std::uint64_t blocks_scanned = 0, blocks_pruned = 0;
  for (const ScanCounters& c : counters) {
    blocks_scanned += c.blocks_total - c.blocks_pruned;
    blocks_pruned += c.blocks_pruned;
  }
  if (profiling) {
    profile->partitions_touched += served_count;
    profile->partitions_skipped += partitions_.size() - involved.size();
    profile->partitions_zone_pruned += zone_pruned;
    profile->blocks_scanned += blocks_scanned;
    profile->blocks_pruned += blocks_pruned;
    profile->scan_engine =
        std::string(simd::ScanEngineName(simd::ActiveScanEngine()));
    profile->records_scanned += result.stats.records_scanned;
    profile->cache_hits += result.stats.cache_hits;
    profile->cache_misses += result.stats.cache_misses;
    if (pool != nullptr && workers > 1) profile->parallel_scan = true;
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    static obs::Counter* blocks_scanned_total =
        &registry.GetCounter("scan.blocks_scanned_total");
    static obs::Counter* blocks_pruned_total =
        &registry.GetCounter("scan.blocks_pruned_total");
    static obs::Counter* zone_pruned_total =
        &registry.GetCounter("scan.partitions_zone_pruned_total");
    static auto* engine_scans = [] {
      auto* counters = new std::array<obs::Counter*, 3>();
      for (std::uint8_t e = 0; e < 3; ++e)
        (*counters)[e] = &obs::MetricsRegistry::global().GetCounter(
            "scan.engine_scans_total",
            {{"engine", std::string(simd::ScanEngineName(
                            static_cast<simd::ScanEngine>(e)))}});
      return counters;
    }();
    blocks_scanned_total->Increment(blocks_scanned);
    blocks_pruned_total->Increment(blocks_pruned);
    zone_pruned_total->Increment(zone_pruned);
    (*engine_scans)[static_cast<std::uint8_t>(simd::ActiveScanEngine())]
        ->Increment();
  }
  return result;
}

void Replica::RestorePartition(std::size_t partition,
                               const std::vector<Record>& records) {
  require(partition < partitions_.size(),
          "Replica::RestorePartition: bad partition");
  StoredPartition& stored = partitions_[partition];
  storage_bytes_ -= stored.data.size();
  num_records_ -= stored.num_records;
  stored = EncodeStoredPartition(records, config_);
  storage_bytes_ += stored.data.size();
  num_records_ += stored.num_records;
  // Decodes cached under the pre-repair identity must never satisfy a
  // post-repair query: drop them and take a fresh process-unique id.
  const std::uint64_t old_id = cache_id_;
  PartitionCache::Global().InvalidateReplica(old_id, partitions_.size());
  InitCacheState(partitions_.size());
  ensure(cache_id_ != old_id,
         "Replica::RestorePartition: cache identity was not refreshed");
}

Dataset Replica::Reconstruct() const {
  Dataset dataset;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    for (const Record& r : DecodePartitionRecords(p)) dataset.Append(r);
  }
  return dataset;
}

Replica Replica::FromParts(const ReplicaConfig& config,
                           const STRange& universe,
                           std::vector<STRange> ranges,
                           std::vector<StoredPartition> partitions) {
  require(ranges.size() == partitions.size(),
          "Replica::FromParts: range/partition count mismatch");
  require(ranges.size() == config.partitioning.TotalPartitions(),
          "Replica::FromParts: partition count does not match config");
  Replica replica;
  replica.config_ = config;
  replica.universe_ = universe;
  replica.index_ = PartitionIndex(std::move(ranges));
  replica.partitions_ = std::move(partitions);
  replica.InitCacheState(replica.partitions_.size());
  replica.storage_bytes_ = 0;
  replica.num_records_ = 0;
  for (const StoredPartition& p : replica.partitions_) {
    replica.storage_bytes_ += p.data.size();
    replica.num_records_ += p.num_records;
  }
  return replica;
}

Replica RecoverReplica(const Replica& source,
                       const ReplicaConfig& target_config, ThreadPool* pool) {
  return Replica::Build(source.Reconstruct(), target_config,
                        source.universe(), pool);
}

}  // namespace blot
