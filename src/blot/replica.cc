#include "blot/replica.h"

#include <algorithm>

#include "util/error.h"

namespace blot {

Replica Replica::Build(const Dataset& dataset, const ReplicaConfig& config,
                       const STRange& universe, ThreadPool* pool) {
  Replica replica;
  replica.config_ = config;
  replica.universe_ = universe;
  replica.num_records_ = dataset.size();

  PartitionedData partitioned =
      PartitionDataset(dataset, config.partitioning, universe);
  replica.index_ = PartitionIndex(std::move(partitioned.ranges));
  replica.partitions_.resize(partitioned.members.size());

  const auto encode_one = [&](std::size_t i) {
    const auto& members = partitioned.members[i];
    std::vector<Record> records;
    records.reserve(members.size());
    for (std::uint32_t index : members)
      records.push_back(dataset.records()[index]);
    StoredPartition& stored = replica.partitions_[i];
    stored.num_records = records.size();
    if (config.policy == EncodingPolicy::kBestCodecPerPartition) {
      // Try every codec over the replica's layout and keep the smallest.
      const Bytes serialized = SerializeRecords(records,
                                                config.encoding.layout);
      stored.codec = CodecKind::kNone;
      stored.data = GetCodec(CodecKind::kNone).Compress(serialized);
      for (const CodecKind kind : AllCodecKinds()) {
        if (kind == CodecKind::kNone) continue;
        Bytes candidate = GetCodec(kind).Compress(serialized);
        if (candidate.size() < stored.data.size()) {
          stored.data = std::move(candidate);
          stored.codec = kind;
        }
      }
    } else {
      stored.codec = config.encoding.codec;
      stored.data = EncodePartition(records, config.encoding);
    }
    stored.checksum = Fnv1a64(stored.data);
  };
  if (pool != nullptr) {
    pool->ParallelFor(replica.partitions_.size(), encode_one);
  } else {
    for (std::size_t i = 0; i < replica.partitions_.size(); ++i)
      encode_one(i);
  }

  replica.storage_bytes_ = 0;
  for (const StoredPartition& p : replica.partitions_)
    replica.storage_bytes_ += p.data.size();
  return replica;
}

std::vector<Record> Replica::DecodePartitionRecords(
    std::size_t partition) const {
  require(partition < partitions_.size(),
          "Replica::DecodePartitionRecords: bad partition");
  const StoredPartition& stored = partitions_[partition];
  validate(Fnv1a64(stored.data) == stored.checksum,
           "Replica: partition checksum mismatch (corrupt storage unit)");
  std::vector<Record> records = DecodePartition(
      stored.data, {config_.encoding.layout, stored.codec});
  validate(records.size() == stored.num_records,
           "Replica: decoded record count mismatch");
  return records;
}

QueryResult Replica::Execute(const STRange& query, ThreadPool* pool) const {
  const std::vector<std::size_t> involved = index_.InvolvedPartitions(query);
  QueryResult result;
  result.stats.partitions_scanned = involved.size();

  std::vector<std::vector<Record>> matches(involved.size());
  std::vector<QueryStats> stats(involved.size());
  const auto scan_one = [&](std::size_t k) {
    const std::size_t p = involved[k];
    const std::vector<Record> records = DecodePartitionRecords(p);
    stats[k].records_scanned = records.size();
    stats[k].bytes_read = partitions_[p].data.size();
    for (const Record& r : records)
      if (query.Contains(r.Position())) matches[k].push_back(r);
  };
  if (pool != nullptr) {
    pool->ParallelFor(involved.size(), scan_one);
  } else {
    for (std::size_t k = 0; k < involved.size(); ++k) scan_one(k);
  }

  for (std::size_t k = 0; k < involved.size(); ++k) {
    result.stats.records_scanned += stats[k].records_scanned;
    result.stats.bytes_read += stats[k].bytes_read;
    result.records.insert(result.records.end(), matches[k].begin(),
                          matches[k].end());
  }
  return result;
}

Dataset Replica::Reconstruct() const {
  Dataset dataset;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    for (const Record& r : DecodePartitionRecords(p)) dataset.Append(r);
  }
  return dataset;
}

Replica Replica::FromParts(const ReplicaConfig& config,
                           const STRange& universe,
                           std::vector<STRange> ranges,
                           std::vector<StoredPartition> partitions) {
  require(ranges.size() == partitions.size(),
          "Replica::FromParts: range/partition count mismatch");
  require(ranges.size() == config.partitioning.TotalPartitions(),
          "Replica::FromParts: partition count does not match config");
  Replica replica;
  replica.config_ = config;
  replica.universe_ = universe;
  replica.index_ = PartitionIndex(std::move(ranges));
  replica.partitions_ = std::move(partitions);
  replica.storage_bytes_ = 0;
  replica.num_records_ = 0;
  for (const StoredPartition& p : replica.partitions_) {
    replica.storage_bytes_ += p.data.size();
    replica.num_records_ += p.num_records;
  }
  return replica;
}

Replica RecoverReplica(const Replica& source,
                       const ReplicaConfig& target_config, ThreadPool* pool) {
  return Replica::Build(source.Reconstruct(), target_config,
                        source.universe(), pool);
}

}  // namespace blot
