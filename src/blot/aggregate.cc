#include "blot/aggregate.h"

#include <algorithm>
#include <set>
#include <vector>

namespace blot {
namespace {

struct PartialAggregate {
  RangeStatistics statistics;
  std::set<std::uint32_t> objects;
};

void FoldRecord(PartialAggregate& partial, const Record& r) {
  RangeStatistics& s = partial.statistics;
  ++s.count;
  if (r.status == 1) {
    ++s.occupied;
    s.fare_cents_sum += r.fare_cents;
  }
  s.speed_sum += r.speed;
  s.first_time = std::min(s.first_time, r.time);
  s.last_time = std::max(s.last_time, r.time);
  partial.objects.insert(r.oid);
}

}  // namespace

RangeStatistics AggregateRange(const Replica& replica, const STRange& query,
                               ThreadPool* pool) {
  const std::vector<std::size_t> involved =
      replica.index().InvolvedPartitions(query);
  std::vector<PartialAggregate> partials(involved.size());

  const auto scan_one = [&](std::size_t k) {
    const std::size_t p = involved[k];
    const std::vector<Record> records = replica.DecodePartitionRecords(p);
    partials[k].statistics.stats.records_scanned = records.size();
    partials[k].statistics.stats.bytes_read =
        replica.partition(p).data.size();
    for (const Record& r : records)
      if (query.Contains(r.Position())) FoldRecord(partials[k], r);
  };
  if (pool != nullptr) {
    pool->ParallelFor(involved.size(), scan_one);
  } else {
    for (std::size_t k = 0; k < involved.size(); ++k) scan_one(k);
  }

  RangeStatistics total;
  total.stats.partitions_scanned = involved.size();
  std::set<std::uint32_t> objects;
  for (const PartialAggregate& partial : partials) {
    const RangeStatistics& s = partial.statistics;
    total.count += s.count;
    total.occupied += s.occupied;
    total.speed_sum += s.speed_sum;
    total.fare_cents_sum += s.fare_cents_sum;
    total.first_time = std::min(total.first_time, s.first_time);
    total.last_time = std::max(total.last_time, s.last_time);
    total.stats.records_scanned += s.stats.records_scanned;
    total.stats.bytes_read += s.stats.bytes_read;
    objects.insert(partial.objects.begin(), partial.objects.end());
  }
  total.distinct_objects = objects.size();
  return total;
}

}  // namespace blot
