// The partitioning index: the "small global data structure to index the
// spatio-temporal ranges of all data partitions" (Section II-B).
//
// Supports the one operation query processing needs — find every partition
// whose range intersects a query range — plus exact involved-partition
// counting for the cost model (Np(q, r) for concrete queries).
#ifndef BLOT_BLOT_PARTITION_INDEX_H_
#define BLOT_BLOT_PARTITION_INDEX_H_

#include <cstdint>
#include <vector>

#include "util/range.h"

namespace blot {

class PartitionIndex {
 public:
  PartitionIndex() = default;
  explicit PartitionIndex(std::vector<STRange> ranges);

  std::size_t NumPartitions() const { return ranges_.size(); }
  const STRange& Range(std::size_t partition) const {
    return ranges_[partition];
  }
  const std::vector<STRange>& ranges() const { return ranges_; }

  // Indices of all partitions intersecting `query`, ascending.
  std::vector<std::size_t> InvolvedPartitions(const STRange& query) const;

  // |InvolvedPartitions(query)| without materializing the list.
  std::size_t CountInvolved(const STRange& query) const;

  // The union of all partition ranges (the universe for tiling schemes).
  STRange Cover() const;

 private:
  // Temporal bucketing: partitions are binned by their time interval so a
  // lookup only tests partitions in buckets the query's time range
  // overlaps. Fine partitionings produce up to ~1M partitions
  // (4096 x 256 in the paper's sweep); time-selective queries then skip
  // the vast majority without a range test.
  void BuildBuckets();
  std::pair<std::size_t, std::size_t> BucketSpan(const STRange& query) const;

  std::vector<STRange> ranges_;
  double t_min_ = 0.0;
  double bucket_width_ = 0.0;
  // buckets_[b] holds indices of partitions whose time interval overlaps
  // bucket b; first_bucket_[i] is the first bucket of partition i (used
  // to test each partition exactly once per query).
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> first_bucket_;
};

}  // namespace blot

#endif  // BLOT_BLOT_PARTITION_INDEX_H_
