#include "blot/segment_store.h"

#include <fstream>

#include "util/bytes.h"
#include "util/error.h"

namespace blot {
namespace {

constexpr std::uint64_t kManifestMagic = 0x31474553544F4C42ull;  // "BLOTSEG1"
// Version history:
//   1 — original layout: per-partition {range, num_records, offset, size,
//       checksum, codec}. Payloads predate the blocked wire format.
//   2 — adds per-partition {layout format, has_zone, zone range}: the
//       wire format the payload was serialized with and the partition's
//       exact bounding cuboid for zone-map pruning.
// Load accepts both; version-1 partitions come back as kLegacy with no
// zone, so old segment directories keep working unchanged.
constexpr std::uint32_t kManifestVersion = 2;

const char* kManifestName = "manifest.blot";
const char* kSegmentsName = "segments.dat";

void WriteFileAtomically(const std::filesystem::path& path,
                         const Bytes& contents) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "SegmentStore: cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(contents.data()),
              static_cast<std::streamsize>(contents.size()));
    require(out.good(), "SegmentStore: short write to " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

Bytes ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  // An unreadable file is an I/O fault (survivable via replica
  // failover), not an API-contract violation.
  if (!in.good())
    throw ReadError("SegmentStore: cannot open " + path.string());
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void PutRange(ByteWriter& w, const STRange& r) {
  w.PutF64(r.x_min());
  w.PutF64(r.x_max());
  w.PutF64(r.y_min());
  w.PutF64(r.y_max());
  w.PutF64(r.t_min());
  w.PutF64(r.t_max());
}

STRange GetRange(ByteReader& r) {
  const double x_min = r.GetF64();
  const double x_max = r.GetF64();
  const double y_min = r.GetF64();
  const double y_max = r.GetF64();
  const double t_min = r.GetF64();
  const double t_max = r.GetF64();
  validate(x_min <= x_max && y_min <= y_max && t_min <= t_max,
           "SegmentStore: malformed range in manifest");
  return STRange::FromBounds(x_min, x_max, y_min, y_max, t_min, t_max);
}

}  // namespace

void SegmentStore::Save(const Replica& replica,
                        const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);

  // Data file first: concatenated encoded partitions.
  Bytes segments;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(replica.NumPartitions());
  for (std::size_t p = 0; p < replica.NumPartitions(); ++p) {
    offsets.push_back(segments.size());
    const Bytes& data = replica.partition(p).data;
    segments.insert(segments.end(), data.begin(), data.end());
  }
  WriteFileAtomically(directory / kSegmentsName, segments);

  // Manifest second, so a crash between the two renames leaves a stale
  // manifest pointing at complete (old or new both checksummed) data or
  // no manifest at all.
  ByteWriter manifest;
  manifest.PutU64(kManifestMagic);
  manifest.PutU32(kManifestVersion);
  manifest.PutString(replica.config().encoding.Name());
  manifest.PutU8(replica.config().policy ==
                         EncodingPolicy::kBestCodecPerPartition
                     ? 1
                     : 0);
  manifest.PutString(SpatialMethodName(replica.config().partitioning.method));
  manifest.PutVarint(replica.config().partitioning.spatial_partitions);
  manifest.PutVarint(replica.config().partitioning.temporal_partitions);
  PutRange(manifest, replica.universe());
  manifest.PutVarint(replica.NumPartitions());
  for (std::size_t p = 0; p < replica.NumPartitions(); ++p) {
    const StoredPartition& stored = replica.partition(p);
    PutRange(manifest, replica.index().Range(p));
    manifest.PutVarint(stored.num_records);
    manifest.PutVarint(offsets[p]);
    manifest.PutVarint(stored.data.size());
    manifest.PutU64(stored.checksum);
    manifest.PutString(std::string(CodecKindName(stored.codec)));
    manifest.PutU8(static_cast<std::uint8_t>(stored.format));
    manifest.PutU8(stored.has_zone ? 1 : 0);
    if (stored.has_zone) PutRange(manifest, stored.zone);
  }
  // Whole-manifest checksum excluding this trailing field.
  manifest.PutU64(Fnv1a64(manifest.buffer()));
  WriteFileAtomically(directory / kManifestName, manifest.buffer());
}

Replica SegmentStore::Load(const std::filesystem::path& directory) {
  require(Exists(directory),
          "SegmentStore::Load: no manifest in " + directory.string());
  const Bytes manifest_bytes = ReadFile(directory / kManifestName);
  validate(manifest_bytes.size() > 8, "SegmentStore: manifest too small");
  const BytesView body(manifest_bytes.data(), manifest_bytes.size() - 8);
  ByteReader trailer(BytesView(manifest_bytes.data() + body.size(), 8));
  validate(trailer.GetU64() == Fnv1a64(body),
           "SegmentStore: manifest checksum mismatch");

  ByteReader manifest(body);
  validate(manifest.GetU64() == kManifestMagic,
           "SegmentStore: bad manifest magic");
  const std::uint32_t version = manifest.GetU32();
  validate(version == 1 || version == kManifestVersion,
           "SegmentStore: unsupported manifest version");
  ReplicaConfig config;
  config.encoding = EncodingScheme::FromName(manifest.GetString());
  config.policy = manifest.GetU8() == 1
                      ? EncodingPolicy::kBestCodecPerPartition
                      : EncodingPolicy::kUniform;
  const std::string method = manifest.GetString();
  config.partitioning.method =
      method == "KD" ? SpatialMethod::kKdTree : SpatialMethod::kGrid;
  config.partitioning.spatial_partitions =
      static_cast<std::size_t>(manifest.GetVarint());
  config.partitioning.temporal_partitions =
      static_cast<std::size_t>(manifest.GetVarint());
  const STRange universe = GetRange(manifest);
  const std::uint64_t num_partitions = manifest.GetVarint();
  validate(num_partitions == config.partitioning.TotalPartitions(),
           "SegmentStore: partition count mismatch");

  const Bytes segments = ReadFile(directory / kSegmentsName);
  std::vector<STRange> ranges;
  std::vector<StoredPartition> partitions;
  ranges.reserve(num_partitions);
  partitions.reserve(num_partitions);
  for (std::uint64_t p = 0; p < num_partitions; ++p) {
    ranges.push_back(GetRange(manifest));
    StoredPartition stored;
    stored.num_records = manifest.GetVarint();
    const std::uint64_t offset = manifest.GetVarint();
    const std::uint64_t size = manifest.GetVarint();
    stored.checksum = manifest.GetU64();
    stored.codec = CodecKindFromName(manifest.GetString());
    if (version >= 2) {
      const std::uint8_t format = manifest.GetU8();
      validate(format == static_cast<std::uint8_t>(LayoutFormat::kLegacy) ||
                   format == static_cast<std::uint8_t>(LayoutFormat::kBlocked),
               "SegmentStore: unknown partition layout format");
      stored.format = static_cast<LayoutFormat>(format);
      const std::uint8_t has_zone = manifest.GetU8();
      validate(has_zone <= 1, "SegmentStore: bad partition zone flag");
      stored.has_zone = has_zone == 1;
      if (stored.has_zone) stored.zone = GetRange(manifest);
    } else {
      // Pre-zone-map segment: the payload is the monolithic legacy wire
      // format and no zone exists — the partition is never zone-skipped.
      stored.format = LayoutFormat::kLegacy;
      stored.has_zone = false;
    }
    validate(offset + size <= segments.size(),
             "SegmentStore: segment extends past data file");
    stored.data.assign(segments.begin() + static_cast<std::ptrdiff_t>(offset),
                       segments.begin() +
                           static_cast<std::ptrdiff_t>(offset + size));
    partitions.push_back(std::move(stored));
  }
  validate(manifest.AtEnd(), "SegmentStore: trailing manifest bytes");
  return Replica::FromParts(config, universe, std::move(ranges),
                            std::move(partitions));
}

bool SegmentStore::Exists(const std::filesystem::path& directory) {
  return std::filesystem::exists(directory / kManifestName);
}

std::uintmax_t SegmentStore::DiskBytes(
    const std::filesystem::path& directory) {
  require(Exists(directory),
          "SegmentStore::DiskBytes: no manifest in " + directory.string());
  return std::filesystem::file_size(directory / kManifestName) +
         std::filesystem::file_size(directory / kSegmentsName);
}

}  // namespace blot
