// Spatio-temporal partitioning schemes.
//
// Paper Section II-B / V-A: data are partitioned first by space, then by
// time, into equal-record-count partitions; space is decomposed with a
// k-d tree that "recursively decomposes the space by alternatively using
// each space dimension". The resulting space partitions tile the universe
// U (Definition 1: union = U, pairwise disjoint interiors), which the cost
// model of Section IV relies on.
//
// A uniform-grid alternative is provided as an ablation: it produces
// skewed record counts on clustered data, violating the cost model's
// non-skew assumption.
#ifndef BLOT_BLOT_PARTITIONER_H_
#define BLOT_BLOT_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "blot/dataset.h"
#include "util/range.h"

namespace blot {

enum class SpatialMethod {
  kKdTree,  // equal-count median splits (the paper's choice)
  kGrid,    // uniform cells (ablation baseline)
};

std::string SpatialMethodName(SpatialMethod method);

// A candidate partitioning scheme P: how many space partitions, how many
// time partitions per space partition, and the spatial decomposition.
struct PartitioningSpec {
  std::size_t spatial_partitions = 16;
  std::size_t temporal_partitions = 16;
  SpatialMethod method = SpatialMethod::kKdTree;

  std::size_t TotalPartitions() const {
    return spatial_partitions * temporal_partitions;
  }

  // Stable identifier, e.g. "KD64xT32".
  std::string Name() const;

  friend bool operator==(const PartitioningSpec&,
                         const PartitioningSpec&) = default;
};

// The output of partitioning: per partition, its tiling cuboid and the
// indices of member records. Partition i's range and members align;
// ranges tile `universe`; members partition [0, dataset.size()).
struct PartitionedData {
  std::vector<STRange> ranges;
  std::vector<std::vector<std::uint32_t>> members;

  std::size_t NumPartitions() const { return ranges.size(); }
};

// Partitions `dataset` under `spec` within `universe` (which must contain
// every record). Requires positive partition counts. Empty datasets yield
// uniform tilings with empty membership.
PartitionedData PartitionDataset(const Dataset& dataset,
                                 const PartitioningSpec& spec,
                                 const STRange& universe);

// Maximum over partitions of |D(p)| / (|D| / #partitions) — 1.0 means
// perfectly balanced. Used to validate the non-skew assumption.
double PartitionSkew(const PartitionedData& partitioned,
                     std::size_t dataset_size);

}  // namespace blot

#endif  // BLOT_BLOT_PARTITIONER_H_
