// A replica r = <D, P, E>: one physical organization of the dataset
// (Definition 4) — records partitioned by a partitioning scheme and each
// partition encoded by an encoding scheme, plus the partitioning index.
//
// Replicas answer range queries by scanning involved partitions
// (Section II-D) and expose their storage size (Definition 5). Because
// every replica stores the same logical record set, any replica can be
// reconstructed from any other (Section II-E's fault-tolerance argument);
// Reconstruct() returns that logical view.
#ifndef BLOT_BLOT_REPLICA_H_
#define BLOT_BLOT_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blot/dataset.h"
#include "blot/encoding_scheme.h"
#include "blot/partition_index.h"
#include "blot/partitioner.h"
#include "obs/profile.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace blot {

// Execute() failed on specific storage units of one replica. Derives
// CorruptData (the dominant cause) so legacy catch sites keep working,
// but carries the exact failing partitions so the store can quarantine
// them and fail over to another replica instead of failing the query.
class PartitionFaultError : public CorruptData {
 public:
  PartitionFaultError(const std::string& what, std::string replica,
                      std::vector<std::size_t> partitions)
      : CorruptData(what),
        replica_(std::move(replica)),
        partitions_(std::move(partitions)) {}

  const std::string& replica_name() const { return replica_; }
  const std::vector<std::size_t>& partitions() const { return partitions_; }

 private:
  std::string replica_;
  std::vector<std::size_t> partitions_;
};

// Per-partition encoding policy. The paper's base definition encodes all
// partitions of a replica identically but notes the analysis "can be
// easily generalized for BLOT systems that allow a separate encoding
// scheme for each partition"; kBestCodecPerPartition implements that
// generalization by picking, for every partition, the codec that
// minimizes its encoded size (the layout stays replica-wide).
enum class EncodingPolicy { kUniform, kBestCodecPerPartition };

// A candidate replica configuration: partitioning scheme x encoding
// scheme. This is the unit the replica selection problem chooses among.
struct ReplicaConfig {
  PartitioningSpec partitioning;
  EncodingScheme encoding;
  EncodingPolicy policy = EncodingPolicy::kUniform;

  // Stable identifier, e.g. "KD64xT32/ROW-GZIP" (suffix "+HYBRID" under
  // the per-partition policy).
  std::string Name() const {
    std::string name = partitioning.Name() + "/" + encoding.Name();
    if (policy == EncodingPolicy::kBestCodecPerPartition) name += "+HYBRID";
    return name;
  }

  friend bool operator==(const ReplicaConfig&, const ReplicaConfig&) = default;
};

// One storage unit: an encoded partition plus integrity metadata. `codec`
// is the replica's codec under the uniform policy, or this partition's
// chosen codec under kBestCodecPerPartition. `format` is the wire format
// the payload was serialized with (segments written before zone maps
// existed load as kLegacy). `zone`, when `has_zone`, is the exact min/max
// TIME x LOC cuboid over the partition's records — tighter than the
// partitioning cell, so Execute can skip the whole partition without
// touching its bytes; partitions containing NaN coordinates carry no
// zone and are never skipped.
struct StoredPartition {
  std::uint64_t num_records = 0;
  Bytes data;               // encoded (layout + codec) bytes
  std::uint64_t checksum = 0;  // FNV-1a of `data`
  CodecKind codec = CodecKind::kNone;
  LayoutFormat format = LayoutFormat::kBlocked;
  bool has_zone = false;
  STRange zone;
};

// Per-query execution accounting, the raw inputs of the cost model:
// Cost(q, r) is driven by records scanned and partitions touched (Eq. 7).
struct QueryStats {
  std::size_t partitions_scanned = 0;
  std::uint64_t records_scanned = 0;
  // Encoded bytes actually decoded; partitions served from the decoded-
  // partition cache contribute 0.
  std::uint64_t bytes_read = 0;
  // Partitions served from / missed in the decoded-partition cache
  // (both 0 whenever the global cache is disabled).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct QueryResult {
  std::vector<Record> records;
  QueryStats stats;
  // True when the scan did not cover every involved partition — either a
  // cancellation fired (ScanOptions::cancel) or partitions were excluded
  // up front (ScanOptions::exclude_partitions). `records` then covers
  // exactly `served_partitions`; an interrupted partition contributes no
  // records at all (partition-granular coverage, never a silent prefix).
  bool truncated = false;
  // Filled only when truncated: involved partitions fully scanned /
  // not scanned, ascending. Partitions pruned by the index or a zone
  // map are provably empty for the query and appear in neither list.
  std::vector<std::size_t> served_partitions;
  std::vector<std::size_t> missed_partitions;
};

// Knobs for Replica::Execute. Results are byte-identical across every
// combination — these trade time for resources, never answers — except
// `cancel`/`exclude_partitions`, which trade *coverage* for time and
// report exactly what was given up (QueryResult::truncated).
struct ScanOptions {
  // Partitions scan concurrently when non-null.
  ThreadPool* pool = nullptr;
  // Filled with scan sub-stages and counters when non-null.
  obs::QueryProfile* profile = nullptr;
  // Cap on partitions scanned concurrently; 0 = one task per involved
  // partition (the pool's width is the only limit).
  std::size_t max_parallelism = 0;
  // Overrides the process-wide zone-map toggle
  // (simd::ZoneMapPruningEnabled) for this query when set.
  std::optional<bool> zone_map_pruning;
  // Cooperative cancellation, polled before each partition scan and at
  // every block boundary inside it (so a parallel scan stops within one
  // block per worker). A partition whose scan was interrupted counts
  // wholly as missed: its partial matches are discarded so the coverage
  // report stays exact.
  const CancelToken* cancel = nullptr;
  // Involved partitions to skip (sorted ascending); each is reported in
  // missed_partitions. The degraded-serving path uses this to scan
  // around quarantined partitions instead of failing the query.
  const std::vector<std::size_t>* exclude_partitions = nullptr;
};

class Replica {
 public:
  // Builds the physical replica. Every record of `dataset` must lie in
  // `universe`. When `pool` is non-null, partitions are encoded in
  // parallel.
  static Replica Build(const Dataset& dataset, const ReplicaConfig& config,
                       const STRange& universe, ThreadPool* pool = nullptr);

  // Copies get a fresh cache identity: the copy's partitions may be
  // mutated independently, so sharing cache keys could serve one copy's
  // decoded records for the other's bytes. Moves keep the identity (the
  // stored bytes travel with it).
  Replica(const Replica& other);
  Replica& operator=(const Replica& other);
  Replica(Replica&&) noexcept = default;
  Replica& operator=(Replica&&) noexcept = default;

  const ReplicaConfig& config() const { return config_; }
  const PartitionIndex& index() const { return index_; }
  const STRange& universe() const { return universe_; }

  std::size_t NumPartitions() const { return partitions_.size(); }
  std::uint64_t NumRecords() const { return num_records_; }

  // Total encoded bytes across partitions: Storage(r) of Definition 5.
  std::uint64_t StorageBytes() const { return storage_bytes_; }

  // Answers a range query: scans involved partitions and filters records
  // by `query` (Section II-D). Partitions are scanned in parallel when
  // `pool` is non-null. Each involved partition is served from the global
  // PartitionCache when it is enabled (miss: full decode + insert);
  // otherwise through the fused decode-filter kernel, which never
  // materializes non-matching records.
  //
  // Per-partition read faults (CorruptData, ReadError — real or injected)
  // are collected across all involved partitions and rethrown as one
  // PartitionFaultError naming every failing partition, so a caller can
  // quarantine precisely and fail over. Other exceptions propagate as-is.
  //
  // When `profile` is non-null the scan fills in its sub-stages
  // (cache_probe / decode / filter wall time and bytes), partition and
  // cache counters. On the cache path a hit's lookup time lands in
  // cache_probe and a miss's decode+insert in decode; the fused
  // no-cache kernel decodes and filters in one pass, accounted as
  // decode. Under a pool the sub-stages sum CPU time across workers
  // (profile->parallel_scan is set).
  // Before any of that, partitions whose stored zone (see StoredPartition)
  // does not intersect `query` are skipped outright — never read, decoded
  // or fault-injected — and inside surviving blocked-format partitions the
  // per-block zone maps prune non-intersecting blocks. The scan engine
  // (scalar / SSE4.2 / AVX2, picked at startup) decodes the rest.
  QueryResult Execute(const STRange& query, const ScanOptions& options) const;

  // Convenience overload: default ScanOptions with the given pool/profile.
  QueryResult Execute(const STRange& query, ThreadPool* pool = nullptr,
                      obs::QueryProfile* profile = nullptr) const;

  // Decodes one partition, verifying its checksum on first read (later
  // reads skip the hash; MutablePartition re-arms it); throws
  // CorruptData on integrity failure and ReadError on (injected) read
  // failure. When the global FaultInjector is armed it is consulted
  // before verification; injected corruption mutates a copy of the
  // encoded bytes and runs the ordinary checksum check against it.
  std::vector<Record> DecodePartitionRecords(std::size_t partition) const;

  // DecodePartitionRecords through the global PartitionCache: returns the
  // pinned cached entry on a hit, otherwise decodes, caches and returns.
  // When the cache is disabled this is exactly DecodePartitionRecords
  // (wrapped). `cache_hit` (optional) reports which path was taken.
  std::shared_ptr<const std::vector<Record>> CachedPartitionRecords(
      std::size_t partition, bool* cache_hit = nullptr) const;

  // Fused decode-filter scan of one partition: the records of `partition`
  // inside `query`, without materializing the rest (layout.h). Verifies
  // the checksum like DecodePartitionRecords. `prune_blocks` controls the
  // block-level zone map (the two-arg overload follows the process-wide
  // toggle); `counters` (optional) receives block-level accounting;
  // `cancel` (requires `counters`) stops at the next block boundary with
  // `counters->interrupted` set.
  std::vector<Record> ScanPartitionInRange(std::size_t partition,
                                           const STRange& query) const;
  std::vector<Record> ScanPartitionInRange(
      std::size_t partition, const STRange& query, bool prune_blocks,
      ScanCounters* counters, const CancelToken* cancel = nullptr) const;

  const StoredPartition& partition(std::size_t i) const {
    return partitions_[i];
  }

  // Mutable partition access for failure-injection tests and recovery
  // tooling; production query paths never mutate partitions. Re-arms the
  // partition's checksum verification and invalidates its entry in the
  // global PartitionCache, so corruption introduced through the returned
  // reference is detected (never served stale) on the next read.
  StoredPartition& MutablePartition(std::size_t i);

  // Process-unique, never-reused identity for PartitionCache keys.
  std::uint64_t cache_id() const { return cache_id_; }

  // Partition-granular self-healing: replaces partition `partition`'s
  // stored bytes by re-encoding `records` under this replica's config
  // (same per-partition codec policy as Build). The replica takes a fresh
  // cache identity and the old one is invalidated, so a decode cached
  // before the repair can never satisfy a query after it.
  void RestorePartition(std::size_t partition,
                        const std::vector<Record>& records);

  // The shared logical view: every stored record, in partition order.
  // Any other replica can be rebuilt from this (replica recovery).
  Dataset Reconstruct() const;

  // Reassembles a replica from previously persisted parts (see
  // SegmentStore). `ranges` and `partitions` must be index-aligned;
  // counts and checksums are trusted here and re-verified on every read.
  static Replica FromParts(const ReplicaConfig& config,
                           const STRange& universe,
                           std::vector<STRange> ranges,
                           std::vector<StoredPartition> partitions);

 private:
  Replica() = default;

  // The per-partition encoding scheme (layout is replica-wide; the codec
  // may vary under kBestCodecPerPartition).
  EncodingScheme PartitionScheme(const StoredPartition& stored) const {
    return {config_.encoding.layout, stored.codec};
  }
  // Checksum verification with a sticky verified bit: the FNV-1a pass
  // over the encoded bytes runs on the first read of each partition and
  // is skipped afterwards. MutablePartition clears the bit.
  void VerifyPartition(std::size_t partition) const;
  // Consults the global FaultInjector for this read (no-op when it is
  // disarmed): may throw ReadError, sleep (latency spike), or verify a
  // deterministically corrupted copy of the encoded bytes, surfacing the
  // fault as the same CorruptData a real media error would produce.
  void MaybeInjectFault(std::size_t partition) const;
  void InitCacheState(std::size_t num_partitions);

  ReplicaConfig config_;
  STRange universe_;
  PartitionIndex index_;
  std::vector<StoredPartition> partitions_;
  std::uint64_t storage_bytes_ = 0;
  std::uint64_t num_records_ = 0;
  std::uint64_t cache_id_ = 0;
  // Shared (not unique) so Replica stays copyable; copies sharing
  // verified bits is benign — the bits only ever skip a re-hash of bytes
  // that were already verified.
  std::shared_ptr<std::atomic<std::uint8_t>[]> verified_;
};

// Rebuilds a replica with `target_config` from the logical view of
// `source` — the diverse-replica recovery path of Section II-E: "diverse
// replicas can recover each other when failures occur because they share
// the same logical view of the data."
Replica RecoverReplica(const Replica& source, const ReplicaConfig& target_config,
                       ThreadPool* pool = nullptr);

}  // namespace blot

#endif  // BLOT_BLOT_REPLICA_H_
