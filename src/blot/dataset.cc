#include "blot/dataset.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/bytes.h"
#include "util/csv.h"
#include "util/error.h"

namespace blot {

void Dataset::Append(const Dataset& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

STRange Dataset::BoundingBox() const {
  if (records_.empty()) return STRange();
  double x_min = records_[0].x, x_max = records_[0].x;
  double y_min = records_[0].y, y_max = records_[0].y;
  double t_min = static_cast<double>(records_[0].time);
  double t_max = t_min;
  for (const Record& r : records_) {
    x_min = std::min(x_min, r.x);
    x_max = std::max(x_max, r.x);
    y_min = std::min(y_min, r.y);
    y_max = std::max(y_max, r.y);
    t_min = std::min(t_min, static_cast<double>(r.time));
    t_max = std::max(t_max, static_cast<double>(r.time));
  }
  return STRange::FromBounds(x_min, x_max, y_min, y_max, t_min, t_max);
}

Dataset Dataset::Sample(std::size_t n, Rng& rng) const {
  if (n >= size()) return *this;
  // Partial Fisher-Yates over an index array: first n entries are a
  // uniform sample without replacement.
  std::vector<std::size_t> indices(size());
  for (std::size_t i = 0; i < size(); ++i) indices[i] = i;
  std::vector<Record> sample;
  sample.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.NextUint64(size() - i);
    std::swap(indices[i], indices[j]);
    sample.push_back(records_[indices[i]]);
  }
  return Dataset(std::move(sample));
}

std::vector<Record> Dataset::FilterByRange(const STRange& range) const {
  std::vector<Record> result;
  for (const Record& r : records_)
    if (range.Contains(r.Position())) result.push_back(r);
  return result;
}

void Dataset::SortByObjectAndTime() {
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) {
              if (a.oid != b.oid) return a.oid < b.oid;
              return a.time < b.time;
            });
}

void Dataset::SortByTime() {
  std::stable_sort(
      records_.begin(), records_.end(),
      [](const Record& a, const Record& b) { return a.time < b.time; });
}

void Dataset::WriteCsv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.WriteRow(RecordFieldNames());
  for (const Record& r : records_) writer.WriteRow(RecordToCsv(r));
}

Dataset Dataset::ReadCsv(std::istream& in) {
  CsvReader reader(in);
  std::vector<std::string> fields;
  validate(reader.ReadRow(fields), "Dataset::ReadCsv: missing header");
  validate(fields == RecordFieldNames(),
           "Dataset::ReadCsv: unexpected header");
  Dataset dataset;
  while (reader.ReadRow(fields)) dataset.Append(RecordFromCsv(fields));
  return dataset;
}

void Dataset::WriteBinary(std::ostream& out) const {
  ByteWriter w;
  w.PutU64(records_.size());
  for (const Record& r : records_) {
    w.PutU32(r.oid);
    w.PutI64(r.time);
    w.PutF64(r.x);
    w.PutF64(r.y);
    w.PutF32(r.speed);
    w.PutU16(r.heading);
    w.PutU8(r.status);
    w.PutU8(r.passengers);
    w.PutU32(r.fare_cents);
  }
  const Bytes& buf = w.buffer();
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

Dataset Dataset::ReadBinary(std::istream& in) {
  Bytes buf((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
  ByteReader r(buf);
  const std::uint64_t count = r.GetU64();
  validate(r.remaining() == count * kRecordRowBytes,
           "Dataset::ReadBinary: size mismatch");
  Dataset dataset;
  for (std::uint64_t i = 0; i < count; ++i) {
    Record record;
    record.oid = r.GetU32();
    record.time = r.GetI64();
    record.x = r.GetF64();
    record.y = r.GetF64();
    record.speed = r.GetF32();
    record.heading = r.GetU16();
    record.status = r.GetU8();
    record.passengers = r.GetU8();
    record.fare_cents = r.GetU32();
    dataset.Append(record);
  }
  return dataset;
}

}  // namespace blot
