#include "blot/encoding_scheme.h"

#include "util/error.h"

namespace blot {

std::string EncodingScheme::Name() const {
  return std::string(LayoutName(layout)) + "-" +
         std::string(CodecKindName(codec));
}

EncodingScheme EncodingScheme::FromName(const std::string& name) {
  const std::size_t dash = name.find('-');
  require(dash != std::string::npos,
          "EncodingScheme::FromName: expected LAYOUT-CODEC: " + name);
  return {LayoutFromName(name.substr(0, dash)),
          CodecKindFromName(name.substr(dash + 1))};
}

std::vector<EncodingScheme> AllEncodingSchemes() {
  std::vector<EncodingScheme> schemes;
  for (const Layout layout : {Layout::kRow, Layout::kColumn}) {
    for (const CodecKind codec : AllCodecKinds()) {
      if (layout == Layout::kColumn && codec == CodecKind::kNone) continue;
      schemes.push_back({layout, codec});
    }
  }
  return schemes;
}

Bytes EncodePartition(std::span<const Record> records,
                      const EncodingScheme& scheme, LayoutFormat format) {
  const Bytes serialized = SerializeRecords(records, scheme.layout, format);
  return GetCodec(scheme.codec).Compress(serialized);
}

std::vector<Record> DecodePartition(BytesView data,
                                    const EncodingScheme& scheme,
                                    LayoutFormat format) {
  const Bytes serialized = GetCodec(scheme.codec).Decompress(data);
  return DeserializeRecords(serialized, scheme.layout, format);
}

std::vector<Record> DecodePartitionInRange(BytesView data,
                                           const EncodingScheme& scheme,
                                           const STRange& range,
                                           std::uint64_t* total_records,
                                           LayoutFormat format,
                                           bool prune_blocks,
                                           ScanCounters* counters,
                                           const CancelToken* cancel) {
  if (cancel != nullptr && counters != nullptr && cancel->ShouldStop()) {
    counters->interrupted = true;
    if (total_records != nullptr) *total_records = 0;
    return {};
  }
  const Bytes serialized = GetCodec(scheme.codec).Decompress(data);
  return DeserializeRecordsInRange(serialized, scheme.layout, range,
                                   total_records, format, prune_blocks,
                                   counters, cancel);
}

double MeasureCompressionRatio(std::span<const Record> sample,
                               const EncodingScheme& scheme) {
  require(!sample.empty(), "MeasureCompressionRatio: empty sample");
  const Bytes encoded = EncodePartition(sample, scheme);
  const double raw =
      static_cast<double>(sample.size()) * kRecordRowBytes;
  return static_cast<double>(encoded.size()) / raw;
}

}  // namespace blot
