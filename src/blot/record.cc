#include "blot/record.h"

#include <charconv>
#include <cstdlib>

#include "util/error.h"

namespace blot {
namespace {

double ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  validate(end == s.c_str() + s.size() && !s.empty(),
           "RecordFromCsv: bad floating-point field: " + s);
  return v;
}

template <typename T>
T ParseInteger(const std::string& s) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  validate(ec == std::errc() && ptr == s.data() + s.size(),
           "RecordFromCsv: bad integer field: " + s);
  return v;
}

}  // namespace

const std::vector<std::string>& RecordFieldNames() {
  static const std::vector<std::string> names = {
      "oid",     "time",       "lon",    "lat",       "speed",
      "heading", "status",     "passengers", "fare_cents"};
  return names;
}

std::vector<std::string> RecordToCsv(const Record& r) {
  char buffer[64];
  const auto format_double = [&buffer](double v) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return std::string(buffer);
  };
  return {std::to_string(r.oid),
          std::to_string(r.time),
          format_double(r.x),
          format_double(r.y),
          format_double(r.speed),
          std::to_string(r.heading),
          std::to_string(r.status),
          std::to_string(r.passengers),
          std::to_string(r.fare_cents)};
}

Record RecordFromCsv(const std::vector<std::string>& fields) {
  validate(fields.size() == RecordFieldNames().size(),
           "RecordFromCsv: wrong field count");
  Record r;
  r.oid = ParseInteger<std::uint32_t>(fields[0]);
  r.time = ParseInteger<std::int64_t>(fields[1]);
  r.x = ParseDouble(fields[2]);
  r.y = ParseDouble(fields[3]);
  r.speed = static_cast<float>(ParseDouble(fields[4]));
  r.heading = ParseInteger<std::uint16_t>(fields[5]);
  r.status = ParseInteger<std::uint8_t>(fields[6]);
  r.passengers = ParseInteger<std::uint8_t>(fields[7]);
  r.fare_cents = ParseInteger<std::uint32_t>(fields[8]);
  return r;
}

}  // namespace blot
