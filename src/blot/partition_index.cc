#include "blot/partition_index.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace blot {

PartitionIndex::PartitionIndex(std::vector<STRange> ranges)
    : ranges_(std::move(ranges)) {
  BuildBuckets();
}

void PartitionIndex::BuildBuckets() {
  buckets_.clear();
  if (ranges_.empty()) return;
  double t_max = ranges_[0].t_max();
  t_min_ = ranges_[0].t_min();
  for (const STRange& r : ranges_) {
    t_min_ = std::min(t_min_, r.t_min());
    t_max = std::max(t_max, r.t_max());
  }
  // ~sqrt(n) buckets balances bucket scan width against per-bucket size;
  // capped so degenerate time extents still work.
  const std::size_t num_buckets = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::sqrt(double(ranges_.size()))), 1, 4096);
  const double extent = t_max - t_min_;
  bucket_width_ = extent > 0 ? extent / static_cast<double>(num_buckets) : 0;
  buckets_.assign(bucket_width_ > 0 ? num_buckets : 1, {});
  first_bucket_.assign(ranges_.size(), 0);
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    std::size_t lo = 0, hi = 0;
    if (bucket_width_ > 0) {
      lo = std::min<std::size_t>(
          num_buckets - 1,
          static_cast<std::size_t>((ranges_[i].t_min() - t_min_) /
                                   bucket_width_));
      hi = std::min<std::size_t>(
          num_buckets - 1,
          static_cast<std::size_t>((ranges_[i].t_max() - t_min_) /
                                   bucket_width_));
    }
    first_bucket_[i] = static_cast<std::uint32_t>(lo);
    for (std::size_t b = lo; b <= hi; ++b)
      buckets_[b].push_back(static_cast<std::uint32_t>(i));
  }
}

std::pair<std::size_t, std::size_t> PartitionIndex::BucketSpan(
    const STRange& query) const {
  if (bucket_width_ <= 0) return {0, 0};
  const double lo_raw = (query.t_min() - t_min_) / bucket_width_;
  const double hi_raw = (query.t_max() - t_min_) / bucket_width_;
  const std::size_t last = buckets_.size() - 1;
  const std::size_t lo = lo_raw <= 0 ? 0
                         : std::min<std::size_t>(
                               last, static_cast<std::size_t>(lo_raw));
  const std::size_t hi = hi_raw <= 0 ? 0
                         : std::min<std::size_t>(
                               last, static_cast<std::size_t>(hi_raw));
  return {lo, hi};
}

std::vector<std::size_t> PartitionIndex::InvolvedPartitions(
    const STRange& query) const {
  std::vector<std::size_t> involved;
  if (ranges_.empty() || query.empty()) return involved;
  const auto [lo, hi] = BucketSpan(query);
  // A partition spanning several buckets appears in each of them; it is
  // tested exactly once, at the first bucket where its span and the
  // query's bucket span meet: bucket `lo` if it started earlier, its own
  // first bucket otherwise.
  for (std::size_t b = lo; b <= hi; ++b) {
    for (const std::uint32_t i : buckets_[b]) {
      if (b != lo && first_bucket_[i] != b) continue;
      if (ranges_[i].Intersects(query)) involved.push_back(i);
    }
  }
  std::sort(involved.begin(), involved.end());
  return involved;
}

std::size_t PartitionIndex::CountInvolved(const STRange& query) const {
  return InvolvedPartitions(query).size();
}

STRange PartitionIndex::Cover() const {
  STRange cover;
  for (const STRange& range : ranges_) cover = STRange::Union(cover, range);
  return cover;
}

}  // namespace blot
