// Shared-scan batch query execution.
//
// Analytical workloads issue many range queries at once — the paper's own
// example is grid-cell statistics ("users use an equal-sized grid to
// decompose the space and then conduct simple statistics for each grid
// cell", Section III-C1) — and neighbouring queries involve overlapping
// partitions. Executing the batch with one decode per involved partition
// divides the dominant cost (decompression) by the overlap factor, the
// classic shared-scan optimization.
#ifndef BLOT_BLOT_BATCH_H_
#define BLOT_BLOT_BATCH_H_

#include <span>
#include <vector>

#include "blot/replica.h"

namespace blot {

struct BatchResult {
  // per_query[i]: the records matching queries[i].
  std::vector<std::vector<Record>> per_query;
  // Accounting for the shared scan actually performed.
  QueryStats stats;
  // Sum of per-query involved-partition counts — what one-at-a-time
  // execution would have scanned. stats.partitions_scanned / this ratio
  // is the sharing factor.
  std::size_t naive_partition_scans = 0;
};

// Answers every query in `queries`, decoding each involved partition
// exactly once (in parallel when `pool` is non-null). Result order
// follows `queries`.
BatchResult ExecuteBatch(const Replica& replica,
                         std::span<const STRange> queries,
                         ThreadPool* pool = nullptr);

}  // namespace blot

#endif  // BLOT_BLOT_BATCH_H_
