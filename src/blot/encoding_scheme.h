// Encoding schemes E: a physical layout plus an optional general-purpose
// compressor (Section II-C, Table I).
//
// The paper's candidate set stores data "either by row or by column (with
// delta encoding), with an option of whether or not using a general
// compression method chosen from Gzip, Snappy and LZMA2", excluding the
// uncompressed column store — 2 x 4 - 1 = 7 schemes. AllEncodingSchemes()
// returns exactly that set.
#ifndef BLOT_BLOT_ENCODING_SCHEME_H_
#define BLOT_BLOT_ENCODING_SCHEME_H_

#include <span>
#include <string>
#include <vector>

#include "blot/layout.h"
#include "blot/record.h"
#include "codec/codec.h"

namespace blot {

struct EncodingScheme {
  Layout layout = Layout::kRow;
  CodecKind codec = CodecKind::kNone;

  // Stable identifier, e.g. "ROW-GZIP" or "COL-LZMA".
  std::string Name() const;
  static EncodingScheme FromName(const std::string& name);

  friend bool operator==(const EncodingScheme&,
                         const EncodingScheme&) = default;
};

// The paper's 7 candidate encoding schemes (COL-PLAIN excluded: "poor
// performance in terms of both compression ratio and scan speed").
std::vector<EncodingScheme> AllEncodingSchemes();

// Encodes records: layout serialization (under `format`) followed by
// block compression.
Bytes EncodePartition(std::span<const Record> records,
                      const EncodingScheme& scheme,
                      LayoutFormat format = LayoutFormat::kBlocked);

// Inverse of EncodePartition. `format` must match what the partition was
// encoded with (segment manifests record it per partition).
std::vector<Record> DecodePartition(
    BytesView data, const EncodingScheme& scheme,
    LayoutFormat format = LayoutFormat::kBlocked);

// Fused decode-filter: decompresses, then deserializes only the records
// inside `range` (layout.h's DeserializeRecordsInRange). Returns exactly
// the records DecodePartition + filter would, in the same order;
// `total_records` receives the partition's record count for scan
// accounting. Under kBlocked, `prune_blocks` controls zone-map block
// skipping and `counters` receives block-level scan accounting.
// `cancel` (requires `counters`) stops the scan at the next block
// boundary, reporting `counters->interrupted`; an already-cancelled
// token skips even the decompression.
std::vector<Record> DecodePartitionInRange(
    BytesView data, const EncodingScheme& scheme, const STRange& range,
    std::uint64_t* total_records = nullptr,
    LayoutFormat format = LayoutFormat::kBlocked, bool prune_blocks = true,
    ScanCounters* counters = nullptr, const CancelToken* cancel = nullptr);

// Compressed bytes / uncompressed-row-layout bytes, measured on a sample
// (Table I's metric; the paper estimates Storage(r) this way because
// "compression ratio is stable in most situations").
double MeasureCompressionRatio(std::span<const Record> sample,
                               const EncodingScheme& scheme);

}  // namespace blot

#endif  // BLOT_BLOT_ENCODING_SCHEME_H_
