// Object-trajectory retrieval over a replica.
//
// OID is a core attribute of the BLOT data model (Section II-A), and
// retrieving one object's trajectory over a time window is the classic
// access path of the trajectory stores BLOT generalizes (TrajStore,
// CloST). Spatio-temporal partitioning gives no spatial constraint for
// such queries — the object may be anywhere — so a naive scan touches
// every partition whose time slice intersects the window.
//
// TrajectoryIndex adds a small per-partition object digest (min/max OID
// plus a 64-bit Bloom filter) to the partitioning index so that
// partitions that cannot contain the object are pruned without being
// decoded. Digests are conservative: false positives cost an extra scan,
// never a missed record.
#ifndef BLOT_BLOT_TRAJECTORY_H_
#define BLOT_BLOT_TRAJECTORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "blot/replica.h"

namespace blot {

// Compact membership summary of the OIDs in one partition.
struct ObjectDigest {
  std::uint32_t min_oid = 0xFFFFFFFFu;
  std::uint32_t max_oid = 0;
  std::uint64_t bloom = 0;  // two hash functions over a 64-bit field

  static ObjectDigest Build(std::span<const Record> records);

  // Never false-negative: returns true for every OID present.
  bool MayContain(std::uint32_t oid) const;

  bool empty() const { return min_oid > max_oid; }
};

class TrajectoryIndex {
 public:
  // Builds digests by decoding each partition once (in parallel when
  // `pool` is non-null). The index is only valid for the replica it was
  // built from.
  explicit TrajectoryIndex(const Replica& replica,
                           ThreadPool* pool = nullptr);

  struct Result {
    // Records of the object within the window, ordered by time.
    std::vector<Record> records;
    std::size_t partitions_considered = 0;  // time-intersecting
    std::size_t partitions_scanned = 0;     // after digest pruning
  };

  // All records of `oid` with time in [t_min, t_max].
  Result Query(const Replica& replica, std::uint32_t oid,
               std::int64_t t_min, std::int64_t t_max,
               ThreadPool* pool = nullptr) const;

  const ObjectDigest& digest(std::size_t partition) const {
    return digests_[partition];
  }

 private:
  std::vector<ObjectDigest> digests_;
};

}  // namespace blot

#endif  // BLOT_BLOT_TRAJECTORY_H_
