// Persistent storage-unit layer backed by the local filesystem.
//
// Paper Section II-B: "a storage unit can be an object stored in Amazon
// S3, a file on HDFS, a segment of a file on a local file system". This
// module implements the last option: a replica is persisted as one data
// file holding every encoded partition back to back, plus a manifest
// recording the replica configuration, partition ranges, offsets, record
// counts, and checksums (the partitioning index, made durable).
//
// Layout under the replica directory:
//   manifest.blot   header + per-partition metadata
//   segments.dat    concatenated encoded partitions
//
// Writes are crash-safe: both files are written to *.tmp and renamed into
// place, manifest last, so a torn write leaves either the old replica or
// no replica — never a manifest pointing at missing data. Loads verify
// magic, version, and per-partition checksums lazily (checksums are
// re-verified by Replica on every partition read).
#ifndef BLOT_BLOT_SEGMENT_STORE_H_
#define BLOT_BLOT_SEGMENT_STORE_H_

#include <filesystem>

#include "blot/replica.h"

namespace blot {

class SegmentStore {
 public:
  // Persists `replica` under `directory` (created if missing),
  // atomically replacing any previous replica stored there.
  static void Save(const Replica& replica,
                   const std::filesystem::path& directory);

  // Loads a previously saved replica. Throws CorruptData on malformed or
  // truncated files and InvalidArgument if `directory` has no manifest.
  static Replica Load(const std::filesystem::path& directory);

  // True if `directory` contains a manifest.
  static bool Exists(const std::filesystem::path& directory);

  // Bytes on disk (manifest + segments) for a saved replica.
  static std::uintmax_t DiskBytes(const std::filesystem::path& directory);
};

}  // namespace blot

#endif  // BLOT_BLOT_SEGMENT_STORE_H_
