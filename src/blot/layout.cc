#include "blot/layout.h"

#include "codec/columnar.h"
#include "util/error.h"

namespace blot {

std::string_view LayoutName(Layout layout) {
  switch (layout) {
    case Layout::kRow:
      return "ROW";
    case Layout::kColumn:
      return "COL";
  }
  throw InvalidArgument("LayoutName: unknown layout");
}

Layout LayoutFromName(std::string_view name) {
  if (name == "ROW") return Layout::kRow;
  if (name == "COL") return Layout::kColumn;
  throw InvalidArgument("LayoutFromName: unknown layout name: " +
                        std::string(name));
}

namespace {

Bytes SerializeRows(std::span<const Record> records) {
  ByteWriter w;
  w.PutVarint(records.size());
  for (const Record& r : records) {
    w.PutU32(r.oid);
    w.PutI64(r.time);
    w.PutF64(r.x);
    w.PutF64(r.y);
    w.PutF32(r.speed);
    w.PutU16(r.heading);
    w.PutU8(r.status);
    w.PutU8(r.passengers);
    w.PutU32(r.fare_cents);
  }
  return w.Take();
}

std::vector<Record> DeserializeRows(ByteReader& in, std::size_t count) {
  std::vector<Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Record r;
    r.oid = in.GetU32();
    r.time = in.GetI64();
    r.x = in.GetF64();
    r.y = in.GetF64();
    r.speed = in.GetF32();
    r.heading = in.GetU16();
    r.status = in.GetU8();
    r.passengers = in.GetU8();
    r.fare_cents = in.GetU32();
    records.push_back(r);
  }
  return records;
}

Bytes SerializeColumns(std::span<const Record> records) {
  ByteWriter w;
  w.PutVarint(records.size());
  const std::size_t n = records.size();

  std::vector<std::int64_t> ints(n);
  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].oid;
  EncodeDeltaColumn(w, ints);
  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].time;
  EncodeDeltaColumn(w, ints);

  std::vector<double> doubles(n);
  for (std::size_t i = 0; i < n; ++i) doubles[i] = records[i].x;
  EncodeAdaptiveDoubleColumn(w, doubles);
  for (std::size_t i = 0; i < n; ++i) doubles[i] = records[i].y;
  EncodeAdaptiveDoubleColumn(w, doubles);

  std::vector<float> floats(n);
  for (std::size_t i = 0; i < n; ++i) floats[i] = records[i].speed;
  EncodeF32Column(w, floats);

  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].heading;
  EncodeDeltaColumn(w, ints);

  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = records[i].status;
  EncodeRleColumn(w, bytes);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = records[i].passengers;
  EncodeRleColumn(w, bytes);

  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].fare_cents;
  EncodeDeltaColumn(w, ints);
  return w.Take();
}

std::vector<Record> DeserializeColumns(ByteReader& in, std::size_t count) {
  std::vector<Record> records(count);
  const auto oids = DecodeDeltaColumn(in, count);
  const auto times = DecodeDeltaColumn(in, count);
  const auto xs = DecodeAdaptiveDoubleColumn(in, count);
  const auto ys = DecodeAdaptiveDoubleColumn(in, count);
  const auto speeds = DecodeF32Column(in, count);
  const auto headings = DecodeDeltaColumn(in, count);
  const auto statuses = DecodeRleColumn(in, count);
  const auto passengers = DecodeRleColumn(in, count);
  const auto fares = DecodeDeltaColumn(in, count);
  for (std::size_t i = 0; i < count; ++i) {
    validate(oids[i] >= 0 && oids[i] <= 0xFFFFFFFFll,
             "DeserializeColumns: oid out of range");
    validate(headings[i] >= 0 && headings[i] <= 0xFFFFll,
             "DeserializeColumns: heading out of range");
    validate(fares[i] >= 0 && fares[i] <= 0xFFFFFFFFll,
             "DeserializeColumns: fare out of range");
    records[i].oid = static_cast<std::uint32_t>(oids[i]);
    records[i].time = times[i];
    records[i].x = xs[i];
    records[i].y = ys[i];
    records[i].speed = speeds[i];
    records[i].heading = static_cast<std::uint16_t>(headings[i]);
    records[i].status = statuses[i];
    records[i].passengers = passengers[i];
    records[i].fare_cents = static_cast<std::uint32_t>(fares[i]);
  }
  return records;
}

// Streaming row filter: rows are fixed-width, so non-matching rows skip
// their 12 attribute bytes (speed, heading, status, passengers, fare)
// without parsing them.
std::vector<Record> ScanRowsInRange(ByteReader& in, std::size_t count,
                                    const STRange& range) {
  constexpr std::size_t kAttributeBytes = 4 + 2 + 1 + 1 + 4;
  validate(in.remaining() == count * kRecordRowBytes,
           "ScanRowsInRange: row payload size mismatch");
  std::vector<Record> matches;
  for (std::size_t i = 0; i < count; ++i) {
    Record r;
    r.oid = in.GetU32();
    r.time = in.GetI64();
    r.x = in.GetF64();
    r.y = in.GetF64();
    if (!range.Contains(r.Position())) {
      in.GetBytes(kAttributeBytes);
      continue;
    }
    r.speed = in.GetF32();
    r.heading = in.GetU16();
    r.status = in.GetU8();
    r.passengers = in.GetU8();
    r.fare_cents = in.GetU32();
    matches.push_back(r);
  }
  return matches;
}

// Columnar predicate pushdown: decode the core columns, compute the match
// set, and decode + materialize the attribute columns only when at least
// one row matched.
std::vector<Record> ScanColumnsInRange(ByteReader& in, std::size_t count,
                                       const STRange& range) {
  const auto oids = DecodeDeltaColumn(in, count);
  const auto times = DecodeDeltaColumn(in, count);
  const auto xs = DecodeAdaptiveDoubleColumn(in, count);
  const auto ys = DecodeAdaptiveDoubleColumn(in, count);

  std::vector<std::uint32_t> match_rows;
  for (std::size_t i = 0; i < count; ++i) {
    if (range.Contains({xs[i], ys[i], static_cast<double>(times[i])}))
      match_rows.push_back(static_cast<std::uint32_t>(i));
  }
  if (match_rows.empty()) return {};

  const auto speeds = DecodeF32Column(in, count);
  const auto headings = DecodeDeltaColumn(in, count);
  const auto statuses = DecodeRleColumn(in, count);
  const auto passengers = DecodeRleColumn(in, count);
  const auto fares = DecodeDeltaColumn(in, count);
  std::vector<Record> matches(match_rows.size());
  for (std::size_t j = 0; j < match_rows.size(); ++j) {
    const std::size_t i = match_rows[j];
    validate(oids[i] >= 0 && oids[i] <= 0xFFFFFFFFll,
             "ScanColumnsInRange: oid out of range");
    validate(headings[i] >= 0 && headings[i] <= 0xFFFFll,
             "ScanColumnsInRange: heading out of range");
    validate(fares[i] >= 0 && fares[i] <= 0xFFFFFFFFll,
             "ScanColumnsInRange: fare out of range");
    Record& r = matches[j];
    r.oid = static_cast<std::uint32_t>(oids[i]);
    r.time = times[i];
    r.x = xs[i];
    r.y = ys[i];
    r.speed = speeds[i];
    r.heading = static_cast<std::uint16_t>(headings[i]);
    r.status = statuses[i];
    r.passengers = passengers[i];
    r.fare_cents = static_cast<std::uint32_t>(fares[i]);
  }
  return matches;
}

}  // namespace

Bytes SerializeRecords(std::span<const Record> records, Layout layout) {
  switch (layout) {
    case Layout::kRow:
      return SerializeRows(records);
    case Layout::kColumn:
      return SerializeColumns(records);
  }
  throw InvalidArgument("SerializeRecords: unknown layout");
}

std::vector<Record> DeserializeRecords(BytesView data, Layout layout) {
  ByteReader in(data);
  const std::uint64_t count64 = in.GetVarint();
  validate(count64 <= data.size(),
           "DeserializeRecords: implausible record count");
  const std::size_t count = static_cast<std::size_t>(count64);
  std::vector<Record> records;
  switch (layout) {
    case Layout::kRow:
      records = DeserializeRows(in, count);
      break;
    case Layout::kColumn:
      records = DeserializeColumns(in, count);
      break;
    default:
      throw InvalidArgument("DeserializeRecords: unknown layout");
  }
  validate(in.AtEnd(), "DeserializeRecords: trailing bytes");
  return records;
}

std::vector<Record> DeserializeRecordsInRange(BytesView data, Layout layout,
                                              const STRange& range,
                                              std::uint64_t* total_records) {
  ByteReader in(data);
  const std::uint64_t count64 = in.GetVarint();
  validate(count64 <= data.size(),
           "DeserializeRecordsInRange: implausible record count");
  if (total_records != nullptr) *total_records = count64;
  const std::size_t count = static_cast<std::size_t>(count64);
  switch (layout) {
    case Layout::kRow:
      return ScanRowsInRange(in, count, range);
    case Layout::kColumn:
      return ScanColumnsInRange(in, count, range);
  }
  throw InvalidArgument("DeserializeRecordsInRange: unknown layout");
}

}  // namespace blot
