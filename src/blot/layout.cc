#include "blot/layout.h"

#include <bit>
#include <cmath>
#include <limits>

#include "codec/columnar.h"
#include "codec/simd/dispatch.h"
#include "codec/simd/kernels.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot {

std::string_view LayoutName(Layout layout) {
  switch (layout) {
    case Layout::kRow:
      return "ROW";
    case Layout::kColumn:
      return "COL";
  }
  throw InvalidArgument("LayoutName: unknown layout");
}

Layout LayoutFromName(std::string_view name) {
  if (name == "ROW") return Layout::kRow;
  if (name == "COL") return Layout::kColumn;
  throw InvalidArgument("LayoutFromName: unknown layout name: " +
                        std::string(name));
}

std::string_view LayoutFormatName(LayoutFormat format) {
  switch (format) {
    case LayoutFormat::kLegacy:
      return "LEGACY";
    case LayoutFormat::kBlocked:
      return "BLOCKED";
  }
  throw InvalidArgument("LayoutFormatName: unknown format");
}

namespace {

// ---------------------------------------------------------------------
// Shared chunk coders: one contiguous run of records, no count prefix.
// The legacy format is one chunk per partition; the blocked format is
// one chunk per block with every transform restarted.
// ---------------------------------------------------------------------

void EncodeRowChunk(ByteWriter& w, std::span<const Record> records) {
  for (const Record& r : records) {
    w.PutU32(r.oid);
    w.PutI64(r.time);
    w.PutF64(r.x);
    w.PutF64(r.y);
    w.PutF32(r.speed);
    w.PutU16(r.heading);
    w.PutU8(r.status);
    w.PutU8(r.passengers);
    w.PutU32(r.fare_cents);
  }
}

std::vector<Record> DeserializeRows(ByteReader& in, std::size_t count) {
  std::vector<Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Record r;
    r.oid = in.GetU32();
    r.time = in.GetI64();
    r.x = in.GetF64();
    r.y = in.GetF64();
    r.speed = in.GetF32();
    r.heading = in.GetU16();
    r.status = in.GetU8();
    r.passengers = in.GetU8();
    r.fare_cents = in.GetU32();
    records.push_back(r);
  }
  return records;
}

void EncodeColumnChunk(ByteWriter& w, std::span<const Record> records) {
  const std::size_t n = records.size();
  std::vector<std::int64_t> ints(n);
  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].oid;
  EncodeDeltaColumn(w, ints);
  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].time;
  EncodeDeltaColumn(w, ints);

  std::vector<double> doubles(n);
  for (std::size_t i = 0; i < n; ++i) doubles[i] = records[i].x;
  EncodeAdaptiveDoubleColumn(w, doubles);
  for (std::size_t i = 0; i < n; ++i) doubles[i] = records[i].y;
  EncodeAdaptiveDoubleColumn(w, doubles);

  std::vector<float> floats(n);
  for (std::size_t i = 0; i < n; ++i) floats[i] = records[i].speed;
  EncodeF32Column(w, floats);

  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].heading;
  EncodeDeltaColumn(w, ints);

  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = records[i].status;
  EncodeRleColumn(w, bytes);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = records[i].passengers;
  EncodeRleColumn(w, bytes);

  for (std::size_t i = 0; i < n; ++i) ints[i] = records[i].fare_cents;
  EncodeDeltaColumn(w, ints);
}

std::vector<Record> DeserializeColumns(ByteReader& in, std::size_t count) {
  std::vector<Record> records(count);
  const auto oids = DecodeDeltaColumn(in, count);
  const auto times = DecodeDeltaColumn(in, count);
  const auto xs = DecodeAdaptiveDoubleColumn(in, count);
  const auto ys = DecodeAdaptiveDoubleColumn(in, count);
  const auto speeds = DecodeF32Column(in, count);
  const auto headings = DecodeDeltaColumn(in, count);
  const auto statuses = DecodeRleColumn(in, count);
  const auto passengers = DecodeRleColumn(in, count);
  const auto fares = DecodeDeltaColumn(in, count);
  for (std::size_t i = 0; i < count; ++i) {
    validate(oids[i] >= 0 && oids[i] <= 0xFFFFFFFFll,
             "DeserializeColumns: oid out of range");
    validate(headings[i] >= 0 && headings[i] <= 0xFFFFll,
             "DeserializeColumns: heading out of range");
    validate(fares[i] >= 0 && fares[i] <= 0xFFFFFFFFll,
             "DeserializeColumns: fare out of range");
    records[i].oid = static_cast<std::uint32_t>(oids[i]);
    records[i].time = times[i];
    records[i].x = xs[i];
    records[i].y = ys[i];
    records[i].speed = speeds[i];
    records[i].heading = static_cast<std::uint16_t>(headings[i]);
    records[i].status = statuses[i];
    records[i].passengers = passengers[i];
    records[i].fare_cents = static_cast<std::uint32_t>(fares[i]);
  }
  return records;
}

// Streaming row filter: rows are fixed-width, so non-matching rows skip
// their 12 attribute bytes (speed, heading, status, passengers, fare)
// without parsing them.
std::vector<Record> ScanRowsInRange(ByteReader& in, std::size_t count,
                                    const STRange& range) {
  constexpr std::size_t kAttributeBytes = 4 + 2 + 1 + 1 + 4;
  validate(in.remaining() == count * kRecordRowBytes,
           "ScanRowsInRange: row payload size mismatch");
  std::vector<Record> matches;
  for (std::size_t i = 0; i < count; ++i) {
    Record r;
    r.oid = in.GetU32();
    r.time = in.GetI64();
    r.x = in.GetF64();
    r.y = in.GetF64();
    if (!range.Contains(r.Position())) {
      in.GetBytes(kAttributeBytes);
      continue;
    }
    r.speed = in.GetF32();
    r.heading = in.GetU16();
    r.status = in.GetU8();
    r.passengers = in.GetU8();
    r.fare_cents = in.GetU32();
    matches.push_back(r);
  }
  return matches;
}

// Legacy columnar predicate pushdown: decode the core columns, compute
// the match set, and decode + materialize the attribute columns only when
// at least one row matched.
std::vector<Record> ScanColumnsInRange(ByteReader& in, std::size_t count,
                                       const STRange& range) {
  const auto oids = DecodeDeltaColumn(in, count);
  const auto times = DecodeDeltaColumn(in, count);
  const auto xs = DecodeAdaptiveDoubleColumn(in, count);
  const auto ys = DecodeAdaptiveDoubleColumn(in, count);

  std::vector<std::uint32_t> match_rows;
  for (std::size_t i = 0; i < count; ++i) {
    if (range.Contains({xs[i], ys[i], static_cast<double>(times[i])}))
      match_rows.push_back(static_cast<std::uint32_t>(i));
  }
  if (match_rows.empty()) return {};

  const auto speeds = DecodeF32Column(in, count);
  const auto headings = DecodeDeltaColumn(in, count);
  const auto statuses = DecodeRleColumn(in, count);
  const auto passengers = DecodeRleColumn(in, count);
  const auto fares = DecodeDeltaColumn(in, count);
  std::vector<Record> matches(match_rows.size());
  for (std::size_t j = 0; j < match_rows.size(); ++j) {
    const std::size_t i = match_rows[j];
    validate(oids[i] >= 0 && oids[i] <= 0xFFFFFFFFll,
             "ScanColumnsInRange: oid out of range");
    validate(headings[i] >= 0 && headings[i] <= 0xFFFFll,
             "ScanColumnsInRange: heading out of range");
    validate(fares[i] >= 0 && fares[i] <= 0xFFFFFFFFll,
             "ScanColumnsInRange: fare out of range");
    Record& r = matches[j];
    r.oid = static_cast<std::uint32_t>(oids[i]);
    r.time = times[i];
    r.x = xs[i];
    r.y = ys[i];
    r.speed = speeds[i];
    r.heading = static_cast<std::uint16_t>(headings[i]);
    r.status = statuses[i];
    r.passengers = passengers[i];
    r.fare_cents = static_cast<std::uint32_t>(fares[i]);
  }
  return matches;
}

// ---------------------------------------------------------------------
// Blocked format.
// ---------------------------------------------------------------------

constexpr std::uint8_t kBlockHasZone = 1;
// A block never legitimately exceeds the writer's block size; the bound
// caps what a corrupt header can make the decoder allocate.
constexpr std::uint64_t kMaxBlockSize = 1u << 20;

struct BlockZone {
  bool has_zone = false;
  std::int64_t t_min = 0, t_max = 0;
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
};

// Min/max over the block's records. NaN coordinates have no order, so a
// block containing one gets no zone (scans never prune it).
BlockZone ComputeBlockZone(std::span<const Record> records) {
  BlockZone z;
  if (records.empty()) return z;
  z.has_zone = true;
  z.t_min = z.t_max = records[0].time;
  z.x_min = z.x_max = records[0].x;
  z.y_min = z.y_max = records[0].y;
  for (const Record& r : records) {
    if (std::isnan(r.x) || std::isnan(r.y)) return BlockZone{};
    z.t_min = std::min(z.t_min, r.time);
    z.t_max = std::max(z.t_max, r.time);
    z.x_min = std::min(z.x_min, r.x);
    z.x_max = std::max(z.x_max, r.x);
    z.y_min = std::min(z.y_min, r.y);
    z.y_max = std::max(z.y_max, r.y);
  }
  return z;
}

Bytes SerializeBlocked(std::span<const Record> records, Layout layout) {
  ByteWriter w;
  w.PutVarint(records.size());
  w.PutVarint(kScanBlockRecords);
  for (std::size_t off = 0; off < records.size();
       off += kScanBlockRecords) {
    const std::size_t n =
        std::min(kScanBlockRecords, records.size() - off);
    const std::span<const Record> block = records.subspan(off, n);
    const BlockZone zone = ComputeBlockZone(block);
    ByteWriter body;
    if (layout == Layout::kRow) {
      EncodeRowChunk(body, block);
    } else {
      EncodeColumnChunk(body, block);
    }
    w.PutVarint(n);
    w.PutU8(zone.has_zone ? kBlockHasZone : 0);
    w.PutI64(zone.t_min);
    w.PutI64(zone.t_max);
    w.PutF64(zone.x_min);
    w.PutF64(zone.x_max);
    w.PutF64(zone.y_min);
    w.PutF64(zone.y_max);
    w.PutVarint(body.size());
    w.PutBytes(body.buffer());
  }
  return w.Take();
}

// Walks the block stream: parses + validates every header, prunes
// non-intersecting blocks when `prune` is set, and hands surviving block
// payloads to `scan_block(body, n)`. Counter/timing accounting lands in
// `counters` when provided. `cancel` (requires `counters`) is polled at
// every block boundary: when it fires the walk returns early with
// `counters->interrupted` set, skipping the trailing-bytes validation —
// the stream is fine, the scan just left before its end.
template <typename Fn>
void WalkBlocks(ByteReader& in, std::uint64_t total, const STRange* prune,
                ScanCounters* counters, const CancelToken* cancel,
                Fn&& scan_block) {
  const std::uint64_t block_size = in.GetVarint();
  validate(total == 0 || (block_size > 0 && block_size <= kMaxBlockSize),
           "WalkBlocks: implausible block size");
  const bool timed = counters != nullptr && counters->timed;
  std::uint64_t done = 0;
  while (done < total) {
    if (cancel != nullptr && counters != nullptr && cancel->ShouldStop()) {
      counters->interrupted = true;
      return;
    }
    const std::uint64_t t0 = timed ? obs::MonotonicNanos() : 0;
    const std::uint64_t n64 = in.GetVarint();
    validate(n64 > 0 && n64 <= block_size && n64 <= total - done,
             "WalkBlocks: bad block record count");
    const std::uint8_t flags = in.GetU8();
    validate(flags <= kBlockHasZone, "WalkBlocks: bad block flags");
    const std::int64_t t_min = in.GetI64();
    const std::int64_t t_max = in.GetI64();
    const double x_min = in.GetF64();
    const double x_max = in.GetF64();
    const double y_min = in.GetF64();
    const double y_max = in.GetF64();
    if ((flags & kBlockHasZone) != 0)
      validate(t_min <= t_max && x_min <= x_max && y_min <= y_max,
               "WalkBlocks: malformed block zone map");
    const std::uint64_t payload = in.GetVarint();
    validate(payload <= in.remaining(),
             "WalkBlocks: block payload extends past input");
    const BytesView body = in.GetBytes(static_cast<std::size_t>(payload));
    if (counters != nullptr) ++counters->blocks_total;
    bool pruned = false;
    if (prune != nullptr && (flags & kBlockHasZone) != 0) {
      const STRange zone = STRange::FromBounds(
          x_min, x_max, y_min, y_max, static_cast<double>(t_min),
          static_cast<double>(t_max));
      pruned = !prune->Intersects(zone);
    }
    if (pruned) {
      if (counters != nullptr) {
        ++counters->blocks_pruned;
        if (timed) counters->prune_ns += obs::MonotonicNanos() - t0;
      }
    } else {
      scan_block(body, static_cast<std::size_t>(n64));
      if (timed) counters->decode_ns += obs::MonotonicNanos() - t0;
    }
    done += n64;
  }
  validate(in.AtEnd(), "WalkBlocks: trailing bytes");
}

// Reusable per-scan decode buffers: one set per partition scan, so block
// iteration does not allocate.
struct ColumnScratch {
  std::vector<std::int64_t> oids, times, ints, headings, fares;
  std::vector<double> xs, ys, ts;
  std::vector<float> speeds;
  std::vector<std::uint8_t> statuses, passengers;
  std::vector<std::uint64_t> bitmap;

  void Resize(std::size_t n) {
    oids.resize(n);
    times.resize(n);
    ints.resize(n);
    headings.resize(n);
    fares.resize(n);
    xs.resize(n);
    ys.resize(n);
    ts.resize(n);
    speeds.resize(n);
    statuses.resize(n);
    passengers.resize(n);
    bitmap.resize((n + 63) / 64);
  }
};

// Kernel-based inverse of EncodeAdaptiveDoubleColumn for one chunk.
// Mode bytes mirror codec/columnar.cc: 0 = XOR, 1 = quantized.
std::size_t DecodeAdaptiveChunk(simd::ScanEngine engine,
                                const std::uint8_t* p,
                                const std::uint8_t* end, double* out,
                                std::size_t n,
                                std::vector<std::int64_t>& tmp) {
  validate(p < end, "ByteReader: truncated input");
  const std::uint8_t mode = *p;
  if (mode == 0) return 1 + simd::DecodeXorF64(engine, p + 1, end, out, n);
  validate(mode == 1, "DecodeAdaptiveDoubleColumn: unknown mode");
  validate(static_cast<std::size_t>(end - p) >= 9,
           "ByteReader: truncated input");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(p[1 + i]) << (8 * i);
  const double denominator = std::bit_cast<double>(bits);
  validate(denominator > 0, "DecodeAdaptiveDoubleColumn: bad denominator");
  std::size_t consumed =
      9 + simd::DecodeZigZagDeltaI64(engine, p + 9, end, tmp.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<double>(tmp[i]) / denominator;
  return consumed;
}

// Vectorized fused scan of one column block: decode core columns through
// the engine's kernels, build the selection bitmap, and parse the
// attribute columns only when something matched (their bytes are skipped
// wholesale otherwise — the block payload is length-prefixed).
void ScanColumnBlock(BytesView body, std::size_t n, const STRange& range,
                     simd::ScanEngine engine, ColumnScratch& s,
                     std::vector<Record>& out) {
  s.Resize(n);
  const std::uint8_t* base = body.data();
  const std::uint8_t* end = base + body.size();
  std::size_t pos = 0;
  pos += simd::DecodeZigZagDeltaI64(engine, base + pos, end, s.oids.data(), n);
  pos +=
      simd::DecodeZigZagDeltaI64(engine, base + pos, end, s.times.data(), n);
  pos += DecodeAdaptiveChunk(engine, base + pos, end, s.xs.data(), n, s.ints);
  pos += DecodeAdaptiveChunk(engine, base + pos, end, s.ys.data(), n, s.ints);
  for (std::size_t i = 0; i < n; ++i)
    s.ts[i] = static_cast<double>(s.times[i]);

  double bounds[6];
  if (range.empty()) {
    // Inverted bounds: nothing matches, mirroring STRange::Contains on
    // the empty range.
    const double inf = std::numeric_limits<double>::infinity();
    bounds[0] = bounds[2] = bounds[4] = inf;
    bounds[1] = bounds[3] = bounds[5] = -inf;
  } else {
    bounds[0] = range.x_min();
    bounds[1] = range.x_max();
    bounds[2] = range.y_min();
    bounds[3] = range.y_max();
    bounds[4] = range.t_min();
    bounds[5] = range.t_max();
  }
  const std::size_t matched = simd::FilterRangeBitmap(
      engine, s.xs.data(), s.ys.data(), s.ts.data(), n, bounds,
      s.bitmap.data());
  if (matched == 0) return;

  pos += simd::DecodeF32(engine, base + pos, end, s.speeds.data(), n);
  pos += simd::DecodeZigZagDeltaI64(engine, base + pos, end,
                                    s.headings.data(), n);
  pos += simd::DecodeRleU8(engine, base + pos, end, s.statuses.data(), n);
  pos += simd::DecodeRleU8(engine, base + pos, end, s.passengers.data(), n);
  pos +=
      simd::DecodeZigZagDeltaI64(engine, base + pos, end, s.fares.data(), n);
  validate(pos == body.size(), "ScanColumnsInRange: trailing block bytes");

  out.reserve(out.size() + matched);
  for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
    std::uint64_t word = s.bitmap[w];
    while (word != 0) {
      const std::size_t i =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      validate(s.oids[i] >= 0 && s.oids[i] <= 0xFFFFFFFFll,
               "ScanColumnsInRange: oid out of range");
      validate(s.headings[i] >= 0 && s.headings[i] <= 0xFFFFll,
               "ScanColumnsInRange: heading out of range");
      validate(s.fares[i] >= 0 && s.fares[i] <= 0xFFFFFFFFll,
               "ScanColumnsInRange: fare out of range");
      Record r;
      r.oid = static_cast<std::uint32_t>(s.oids[i]);
      r.time = s.times[i];
      r.x = s.xs[i];
      r.y = s.ys[i];
      r.speed = s.speeds[i];
      r.heading = static_cast<std::uint16_t>(s.headings[i]);
      r.status = s.statuses[i];
      r.passengers = s.passengers[i];
      r.fare_cents = static_cast<std::uint32_t>(s.fares[i]);
      out.push_back(r);
    }
  }
}

}  // namespace

Bytes SerializeRecords(std::span<const Record> records, Layout layout,
                       LayoutFormat format) {
  if (format == LayoutFormat::kBlocked)
    return SerializeBlocked(records, layout);
  ByteWriter w;
  w.PutVarint(records.size());
  switch (layout) {
    case Layout::kRow:
      EncodeRowChunk(w, records);
      break;
    case Layout::kColumn:
      EncodeColumnChunk(w, records);
      break;
    default:
      throw InvalidArgument("SerializeRecords: unknown layout");
  }
  return w.Take();
}

std::vector<Record> DeserializeRecords(BytesView data, Layout layout,
                                       LayoutFormat format) {
  ByteReader in(data);
  const std::uint64_t count64 = in.GetVarint();
  validate(count64 <= data.size(),
           "DeserializeRecords: implausible record count");
  const std::size_t count = static_cast<std::size_t>(count64);
  std::vector<Record> records;
  if (format == LayoutFormat::kBlocked) {
    records.reserve(count);
    WalkBlocks(in, count64, nullptr, nullptr, nullptr,
               [&](BytesView body, std::size_t n) {
                 ByteReader block(body);
                 std::vector<Record> chunk =
                     layout == Layout::kRow ? DeserializeRows(block, n)
                                            : DeserializeColumns(block, n);
                 validate(block.AtEnd(),
                          "DeserializeRecords: trailing block bytes");
                 records.insert(records.end(), chunk.begin(), chunk.end());
               });
    return records;
  }
  switch (layout) {
    case Layout::kRow:
      records = DeserializeRows(in, count);
      break;
    case Layout::kColumn:
      records = DeserializeColumns(in, count);
      break;
    default:
      throw InvalidArgument("DeserializeRecords: unknown layout");
  }
  validate(in.AtEnd(), "DeserializeRecords: trailing bytes");
  return records;
}

std::vector<Record> DeserializeRecordsInRange(
    BytesView data, Layout layout, const STRange& range,
    std::uint64_t* total_records, LayoutFormat format, bool prune_blocks,
    ScanCounters* counters, const CancelToken* cancel) {
  // Cancellation needs `counters` to report the interruption; without it
  // a partial prefix would masquerade as a full answer.
  if (counters == nullptr) cancel = nullptr;
  ByteReader in(data);
  const std::uint64_t count64 = in.GetVarint();
  validate(count64 <= data.size(),
           "DeserializeRecordsInRange: implausible record count");
  if (total_records != nullptr) *total_records = count64;
  const std::size_t count = static_cast<std::size_t>(count64);
  if (format == LayoutFormat::kBlocked) {
    const simd::ScanEngine engine = simd::ActiveScanEngine();
    std::vector<Record> matches;
    if (layout == Layout::kRow) {
      WalkBlocks(in, count64, prune_blocks ? &range : nullptr, counters,
                 cancel, [&](BytesView body, std::size_t n) {
                   ByteReader block(body);
                   std::vector<Record> chunk =
                       ScanRowsInRange(block, n, range);
                   matches.insert(matches.end(), chunk.begin(), chunk.end());
                 });
    } else {
      ColumnScratch scratch;
      WalkBlocks(in, count64, prune_blocks ? &range : nullptr, counters,
                 cancel, [&](BytesView body, std::size_t n) {
                   ScanColumnBlock(body, n, range, engine, scratch, matches);
                 });
    }
    return matches;
  }
  // kLegacy has no block boundaries: the only cancellation point is the
  // scan's entry.
  if (cancel != nullptr && cancel->ShouldStop()) {
    counters->interrupted = true;
    return {};
  }
  switch (layout) {
    case Layout::kRow:
      return ScanRowsInRange(in, count, range);
    case Layout::kColumn:
      return ScanColumnsInRange(in, count, range);
  }
  throw InvalidArgument("DeserializeRecordsInRange: unknown layout");
}

}  // namespace blot
