// Aggregate range queries over a replica.
//
// The paper motivates BLOT systems with analytical workloads ("simple
// statistics for each grid cell", Section III-C1). This module evaluates
// the common statistics directly during the partition scan, so analytics
// never materialize full result sets: each involved partition is decoded
// once, filtered by range, and folded into a running aggregate.
#ifndef BLOT_BLOT_AGGREGATE_H_
#define BLOT_BLOT_AGGREGATE_H_

#include <cstdint>
#include <limits>

#include "blot/replica.h"

namespace blot {

// Statistics of the records inside a range.
struct RangeStatistics {
  std::uint64_t count = 0;
  std::uint64_t occupied = 0;        // records with status == 1
  std::uint64_t distinct_objects = 0;
  double speed_sum = 0.0;
  double fare_cents_sum = 0.0;       // over occupied records
  std::int64_t first_time = std::numeric_limits<std::int64_t>::max();
  std::int64_t last_time = std::numeric_limits<std::int64_t>::min();

  double MeanSpeed() const {
    return count == 0 ? 0.0 : speed_sum / static_cast<double>(count);
  }
  double OccupancyRate() const {
    return count == 0 ? 0.0
                      : static_cast<double>(occupied) /
                            static_cast<double>(count);
  }

  // Execution accounting, as in QueryResult.
  QueryStats stats;
};

// Computes RangeStatistics for `query` on `replica`, scanning involved
// partitions (in parallel when `pool` is non-null) without materializing
// matching records.
RangeStatistics AggregateRange(const Replica& replica, const STRange& query,
                               ThreadPool* pool = nullptr);

}  // namespace blot

#endif  // BLOT_BLOT_AGGREGATE_H_
