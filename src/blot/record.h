// The location-tracking record and its schema.
//
// Paper Section II-A: every record is (OID, TIME, LOC, A1..Am) — three
// core attributes plus dataset-specific common attributes. This library
// fixes a concrete schema modeled on the paper's evaluation dataset, a
// taxi-fleet GPS log with 8 attributes (3 core + 5 common).
#ifndef BLOT_BLOT_RECORD_H_
#define BLOT_BLOT_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/range.h"

namespace blot {

// One GPS sample from one tracked object.
struct Record {
  // Core attributes.
  std::uint32_t oid = 0;   // object (vehicle) identifier
  std::int64_t time = 0;   // unix seconds
  double x = 0.0;          // longitude, degrees
  double y = 0.0;          // latitude, degrees
  // Common attributes.
  float speed = 0.0f;          // km/h
  std::uint16_t heading = 0;   // degrees clockwise from north, [0, 360)
  std::uint8_t status = 0;     // e.g. 0 = vacant, 1 = occupied
  std::uint8_t passengers = 0;
  std::uint32_t fare_cents = 0;

  STPoint Position() const {
    return {x, y, static_cast<double>(time)};
  }

  friend bool operator==(const Record&, const Record&) = default;
};

// Size of one record in the fixed-width row layout.
inline constexpr std::size_t kRecordRowBytes =
    4 + 8 + 8 + 8 + 4 + 2 + 1 + 1 + 4;

// Column names in schema order, for CSV headers and diagnostics.
const std::vector<std::string>& RecordFieldNames();

// CSV conversion for one record (fields in RecordFieldNames() order).
std::vector<std::string> RecordToCsv(const Record& r);
Record RecordFromCsv(const std::vector<std::string>& fields);

}  // namespace blot

#endif  // BLOT_BLOT_RECORD_H_
