#include "blot/batch.h"

#include <algorithm>
#include <map>

namespace blot {

BatchResult ExecuteBatch(const Replica& replica,
                         std::span<const STRange> queries,
                         ThreadPool* pool) {
  BatchResult result;
  result.per_query.resize(queries.size());

  // Invert: partition -> queries interested in it.
  std::map<std::size_t, std::vector<std::size_t>> interested;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<std::size_t> involved =
        replica.index().InvolvedPartitions(queries[q]);
    result.naive_partition_scans += involved.size();
    for (std::size_t p : involved) interested[p].push_back(q);
  }

  // One decode per partition; filter into every interested query.
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> work(
      interested.begin(), interested.end());
  std::vector<std::vector<std::vector<Record>>> partial(
      work.size(), std::vector<std::vector<Record>>());
  std::vector<QueryStats> stats(work.size());
  const auto scan_one = [&](std::size_t k) {
    const auto& [p, query_ids] = work[k];
    const std::vector<Record> records = replica.DecodePartitionRecords(p);
    stats[k].records_scanned = records.size();
    stats[k].bytes_read = replica.partition(p).data.size();
    partial[k].resize(query_ids.size());
    for (const Record& r : records) {
      const STPoint position = r.Position();
      for (std::size_t j = 0; j < query_ids.size(); ++j)
        if (queries[query_ids[j]].Contains(position))
          partial[k][j].push_back(r);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(work.size(), scan_one);
  } else {
    for (std::size_t k = 0; k < work.size(); ++k) scan_one(k);
  }

  result.stats.partitions_scanned = work.size();
  for (std::size_t k = 0; k < work.size(); ++k) {
    result.stats.records_scanned += stats[k].records_scanned;
    result.stats.bytes_read += stats[k].bytes_read;
    const auto& query_ids = work[k].second;
    for (std::size_t j = 0; j < query_ids.size(); ++j) {
      auto& out = result.per_query[query_ids[j]];
      out.insert(out.end(), partial[k][j].begin(), partial[k][j].end());
    }
  }
  return result;
}

}  // namespace blot
