#include "blot/batch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/partition_cache.h"

namespace blot {

BatchResult ExecuteBatch(const Replica& replica,
                         std::span<const STRange> queries,
                         ThreadPool* pool) {
  BatchResult result;
  result.per_query.resize(queries.size());

  // Invert: partition -> queries interested in it. `slot` maps a
  // partition id to its position in the compact `work` list, so the
  // inversion stays O(total involvement) without an ordered map's
  // node allocations.
  constexpr std::uint32_t kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> slot(replica.NumPartitions(), kUnseen);
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> work;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<std::size_t> involved =
        replica.index().InvolvedPartitions(queries[q]);
    result.naive_partition_scans += involved.size();
    for (std::size_t p : involved) {
      if (slot[p] == kUnseen) {
        slot[p] = static_cast<std::uint32_t>(work.size());
        work.emplace_back(p, std::vector<std::size_t>());
      }
      work[slot[p]].second.push_back(q);
    }
  }
  // Scan in ascending partition order so per-query record order matches
  // one-at-a-time execution.
  std::sort(work.begin(), work.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // One decode per partition (served from the decoded-partition cache
  // when enabled); filter into every interested query.
  const bool use_cache = PartitionCache::Global().enabled();
  std::vector<std::vector<std::vector<Record>>> partial(
      work.size(), std::vector<std::vector<Record>>());
  std::vector<QueryStats> stats(work.size());
  const auto scan_one = [&](std::size_t k) {
    const auto& [p, query_ids] = work[k];
    bool hit = false;
    const std::shared_ptr<const std::vector<Record>> records =
        replica.CachedPartitionRecords(p, &hit);
    stats[k].records_scanned = records->size();
    stats[k].bytes_read = hit ? 0 : replica.partition(p).data.size();
    if (use_cache) {
      stats[k].cache_hits = hit ? 1 : 0;
      stats[k].cache_misses = hit ? 0 : 1;
    }
    partial[k].resize(query_ids.size());
    for (const Record& r : *records) {
      const STPoint position = r.Position();
      for (std::size_t j = 0; j < query_ids.size(); ++j)
        if (queries[query_ids[j]].Contains(position))
          partial[k][j].push_back(r);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(work.size(), scan_one);
  } else {
    for (std::size_t k = 0; k < work.size(); ++k) scan_one(k);
  }

  result.stats.partitions_scanned = work.size();
  for (std::size_t k = 0; k < work.size(); ++k) {
    result.stats.records_scanned += stats[k].records_scanned;
    result.stats.bytes_read += stats[k].bytes_read;
    result.stats.cache_hits += stats[k].cache_hits;
    result.stats.cache_misses += stats[k].cache_misses;
    const auto& query_ids = work[k].second;
    for (std::size_t j = 0; j < query_ids.size(); ++j) {
      auto& out = result.per_query[query_ids[j]];
      out.insert(out.end(), partial[k][j].begin(), partial[k][j].end());
    }
  }
  return result;
}

}  // namespace blot
