#include "blot/trajectory.h"

#include <algorithm>

#include "util/error.h"

namespace blot {
namespace {

// Two cheap independent hashes into [0, 64).
std::uint64_t BloomMask(std::uint32_t oid) {
  const std::uint64_t h1 = (oid * 0x9E3779B1ull) >> 26;        // top 6 bits
  const std::uint64_t h2 = (oid * 0x85EBCA77ull + 0x165667B1ull) >> 26;
  return (std::uint64_t{1} << (h1 & 63)) | (std::uint64_t{1} << (h2 & 63));
}

}  // namespace

ObjectDigest ObjectDigest::Build(std::span<const Record> records) {
  ObjectDigest digest;
  for (const Record& r : records) {
    digest.min_oid = std::min(digest.min_oid, r.oid);
    digest.max_oid = std::max(digest.max_oid, r.oid);
    digest.bloom |= BloomMask(r.oid);
  }
  return digest;
}

bool ObjectDigest::MayContain(std::uint32_t oid) const {
  if (empty()) return false;
  if (oid < min_oid || oid > max_oid) return false;
  const std::uint64_t mask = BloomMask(oid);
  return (bloom & mask) == mask;
}

TrajectoryIndex::TrajectoryIndex(const Replica& replica, ThreadPool* pool)
    : digests_(replica.NumPartitions()) {
  const auto build_one = [&](std::size_t p) {
    digests_[p] = ObjectDigest::Build(replica.DecodePartitionRecords(p));
  };
  if (pool != nullptr) {
    pool->ParallelFor(digests_.size(), build_one);
  } else {
    for (std::size_t p = 0; p < digests_.size(); ++p) build_one(p);
  }
}

TrajectoryIndex::Result TrajectoryIndex::Query(const Replica& replica,
                                               std::uint32_t oid,
                                               std::int64_t t_min,
                                               std::int64_t t_max,
                                               ThreadPool* pool) const {
  require(digests_.size() == replica.NumPartitions(),
          "TrajectoryIndex: index does not match replica");
  require(t_min <= t_max, "TrajectoryIndex::Query: bad time window");

  Result result;
  std::vector<std::size_t> candidates;
  for (std::size_t p = 0; p < replica.NumPartitions(); ++p) {
    const STRange& range = replica.index().Range(p);
    if (range.t_max() < static_cast<double>(t_min) ||
        range.t_min() > static_cast<double>(t_max))
      continue;
    ++result.partitions_considered;
    if (digests_[p].MayContain(oid)) candidates.push_back(p);
  }
  result.partitions_scanned = candidates.size();

  std::vector<std::vector<Record>> matches(candidates.size());
  const auto scan_one = [&](std::size_t k) {
    for (const Record& r :
         replica.DecodePartitionRecords(candidates[k])) {
      if (r.oid == oid && r.time >= t_min && r.time <= t_max)
        matches[k].push_back(r);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(candidates.size(), scan_one);
  } else {
    for (std::size_t k = 0; k < candidates.size(); ++k) scan_one(k);
  }
  for (const auto& m : matches)
    result.records.insert(result.records.end(), m.begin(), m.end());
  std::stable_sort(
      result.records.begin(), result.records.end(),
      [](const Record& a, const Record& b) { return a.time < b.time; });
  return result;
}

}  // namespace blot
