#include "blot/partitioner.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace blot {

std::string SpatialMethodName(SpatialMethod method) {
  switch (method) {
    case SpatialMethod::kKdTree:
      return "KD";
    case SpatialMethod::kGrid:
      return "GRID";
  }
  throw InvalidArgument("SpatialMethodName: unknown method");
}

std::string PartitioningSpec::Name() const {
  return SpatialMethodName(method) + std::to_string(spatial_partitions) +
         "xT" + std::to_string(temporal_partitions);
}

namespace {

struct Box2D {
  double x_min, x_max, y_min, y_max;
};

// Equal-count k-d decomposition of `indices` into `leaves` cells,
// alternating the split axis by depth. Appends (box, member list) pairs.
void KdSplit(const Dataset& dataset, std::vector<std::uint32_t>& indices,
             std::size_t begin, std::size_t end, std::size_t leaves,
             const Box2D& box, int depth,
             std::vector<Box2D>& out_boxes,
             std::vector<std::vector<std::uint32_t>>& out_members) {
  if (leaves == 1) {
    out_boxes.push_back(box);
    out_members.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                             indices.begin() + static_cast<std::ptrdiff_t>(end));
    return;
  }
  const std::size_t left_leaves = leaves / 2;
  const std::size_t right_leaves = leaves - left_leaves;
  const std::size_t count = end - begin;
  // Allocate records proportionally to leaf counts so every leaf ends up
  // with ~|D|/#leaves records even when `leaves` is odd.
  const std::size_t left_count =
      count * left_leaves / leaves;
  const bool split_x = (depth % 2) == 0;

  const auto axis_less = [&dataset, split_x](std::uint32_t a,
                                             std::uint32_t b) {
    const Record& ra = dataset.records()[a];
    const Record& rb = dataset.records()[b];
    return split_x ? ra.x < rb.x : ra.y < rb.y;
  };
  double boundary;
  if (count == 0) {
    // No data to take a median from: split the box geometrically.
    boundary = split_x ? (box.x_min + box.x_max) / 2
                       : (box.y_min + box.y_max) / 2;
  } else {
    const auto nth =
        indices.begin() + static_cast<std::ptrdiff_t>(begin + left_count);
    std::nth_element(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                     nth == indices.begin() + static_cast<std::ptrdiff_t>(end)
                         ? nth - 1
                         : nth,
                     indices.begin() + static_cast<std::ptrdiff_t>(end),
                     axis_less);
    const std::size_t pivot_index =
        left_count == count ? count - 1 : left_count;
    const Record& pivot = dataset.records()[indices[begin + pivot_index]];
    boundary = split_x ? pivot.x : pivot.y;
    // Keep the boundary inside the box so child boxes stay valid even for
    // duplicate coordinates.
    if (split_x)
      boundary = std::clamp(boundary, box.x_min, box.x_max);
    else
      boundary = std::clamp(boundary, box.y_min, box.y_max);
  }

  Box2D left_box = box;
  Box2D right_box = box;
  if (split_x) {
    left_box.x_max = boundary;
    right_box.x_min = boundary;
  } else {
    left_box.y_max = boundary;
    right_box.y_min = boundary;
  }
  KdSplit(dataset, indices, begin, begin + left_count, left_leaves, left_box,
          depth + 1, out_boxes, out_members);
  KdSplit(dataset, indices, begin + left_count, end, right_leaves, right_box,
          depth + 1, out_boxes, out_members);
}

// Factors n into the pair (a, b), a*b == n, with a <= b and a maximal —
// the most-square grid decomposition.
std::pair<std::size_t, std::size_t> SquarestFactors(std::size_t n) {
  std::size_t a = static_cast<std::size_t>(std::sqrt(double(n)));
  while (a > 1 && n % a != 0) --a;
  return {a, n / a};
}

// Splits each spatial cell's members into `slices` equal-count time
// slices; boundaries tile [universe.t_min, universe.t_max].
void TemporalSplit(const Dataset& dataset, const STRange& universe,
                   const Box2D& box, std::vector<std::uint32_t>& members,
                   std::size_t slices, std::vector<STRange>& out_ranges,
                   std::vector<std::vector<std::uint32_t>>& out_members) {
  std::sort(members.begin(), members.end(),
            [&dataset](std::uint32_t a, std::uint32_t b) {
              return dataset.records()[a].time < dataset.records()[b].time;
            });
  const std::size_t count = members.size();
  double prev_boundary = universe.t_min();
  std::size_t prev_offset = 0;
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t next_offset = count * (s + 1) / slices;
    double next_boundary;
    if (s + 1 == slices) {
      next_boundary = universe.t_max();
    } else if (count == 0) {
      next_boundary =
          universe.t_min() +
          universe.Duration() * static_cast<double>(s + 1) /
              static_cast<double>(slices);
    } else {
      const std::size_t split =
          std::min(next_offset, count - 1);
      next_boundary =
          static_cast<double>(dataset.records()[members[split]].time);
      next_boundary =
          std::clamp(next_boundary, prev_boundary, universe.t_max());
    }
    out_ranges.push_back(STRange::FromBounds(box.x_min, box.x_max, box.y_min,
                                             box.y_max, prev_boundary,
                                             next_boundary));
    out_members.emplace_back(
        members.begin() + static_cast<std::ptrdiff_t>(prev_offset),
        members.begin() + static_cast<std::ptrdiff_t>(next_offset));
    prev_boundary = next_boundary;
    prev_offset = next_offset;
  }
}

}  // namespace

PartitionedData PartitionDataset(const Dataset& dataset,
                                 const PartitioningSpec& spec,
                                 const STRange& universe) {
  require(spec.spatial_partitions >= 1 && spec.temporal_partitions >= 1,
          "PartitionDataset: partition counts must be positive");
  require(!universe.empty(), "PartitionDataset: empty universe");
  for (const Record& r : dataset.records())
    require(universe.Contains(r.Position()),
            "PartitionDataset: record outside universe");

  std::vector<Box2D> boxes;
  std::vector<std::vector<std::uint32_t>> cell_members;
  const Box2D root{universe.x_min(), universe.x_max(), universe.y_min(),
                   universe.y_max()};

  if (spec.method == SpatialMethod::kKdTree) {
    std::vector<std::uint32_t> indices(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i)
      indices[i] = static_cast<std::uint32_t>(i);
    KdSplit(dataset, indices, 0, indices.size(), spec.spatial_partitions,
            root, 0, boxes, cell_members);
  } else {
    const auto [gx, gy] = SquarestFactors(spec.spatial_partitions);
    const double dx = universe.Width() / static_cast<double>(gx);
    const double dy = universe.Height() / static_cast<double>(gy);
    for (std::size_t ix = 0; ix < gx; ++ix) {
      for (std::size_t iy = 0; iy < gy; ++iy) {
        boxes.push_back({universe.x_min() + dx * static_cast<double>(ix),
                         universe.x_min() + dx * static_cast<double>(ix + 1),
                         universe.y_min() + dy * static_cast<double>(iy),
                         universe.y_min() + dy * static_cast<double>(iy + 1)});
        cell_members.emplace_back();
      }
    }
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      const Record& r = dataset.records()[i];
      std::size_t ix = dx > 0 ? static_cast<std::size_t>(
                                    (r.x - universe.x_min()) / dx)
                              : 0;
      std::size_t iy = dy > 0 ? static_cast<std::size_t>(
                                    (r.y - universe.y_min()) / dy)
                              : 0;
      ix = std::min(ix, gx - 1);
      iy = std::min(iy, gy - 1);
      cell_members[ix * gy + iy].push_back(static_cast<std::uint32_t>(i));
    }
  }

  PartitionedData result;
  result.ranges.reserve(spec.TotalPartitions());
  result.members.reserve(spec.TotalPartitions());
  for (std::size_t cell = 0; cell < boxes.size(); ++cell) {
    TemporalSplit(dataset, universe, boxes[cell], cell_members[cell],
                  spec.temporal_partitions, result.ranges, result.members);
  }
  ensure(result.NumPartitions() == spec.TotalPartitions(),
         "PartitionDataset: produced wrong partition count");
  return result;
}

double PartitionSkew(const PartitionedData& partitioned,
                     std::size_t dataset_size) {
  if (dataset_size == 0 || partitioned.NumPartitions() == 0) return 1.0;
  const double expected = static_cast<double>(dataset_size) /
                          static_cast<double>(partitioned.NumPartitions());
  double max_count = 0;
  for (const auto& members : partitioned.members)
    max_count = std::max(max_count, static_cast<double>(members.size()));
  return expected > 0 ? max_count / expected : 1.0;
}

}  // namespace blot
