// Physical record layouts within a partition (Section II-C).
//
//   kRow    — fixed-width binary rows, the "binary format instead of text
//             format" baseline; fastest to scan.
//   kColumn — column-major with per-column transforms ("organize the data
//             in column fashion and then apply column-wise encoding
//             schemes (e.g., delta encoding and run-length encoding)"):
//             delta+varint integers, XOR-coded doubles, RLE flags.
//
// Both layouts are lossless; a general-purpose codec is applied on top by
// the encoding scheme. Serialized partitions begin with a varint record
// count so decoders are self-contained.
#ifndef BLOT_BLOT_LAYOUT_H_
#define BLOT_BLOT_LAYOUT_H_

#include <span>
#include <string_view>
#include <vector>

#include "blot/record.h"
#include "util/bytes.h"

namespace blot {

enum class Layout { kRow, kColumn };

std::string_view LayoutName(Layout layout);
Layout LayoutFromName(std::string_view name);

// Serializes records under the given layout.
Bytes SerializeRecords(std::span<const Record> records, Layout layout);

// Inverse of SerializeRecords; throws CorruptData on malformed input.
std::vector<Record> DeserializeRecords(BytesView data, Layout layout);

// Fused decode-filter kernel: deserializes `data` but materializes only
// the records whose Position() lies inside `range` — exactly the records
// DeserializeRecords + filter would return, in the same order.
//
//   kColumn — decodes the oid/time/x/y columns first, computes the match
//             set against `range`, and only then materializes matching
//             rows; when nothing matches, the five attribute columns are
//             never decoded at all (predicate pushdown).
//   kRow    — streams over the fixed-width rows, parsing the core
//             attributes and skipping the 12 attribute bytes of rows
//             that fall outside `range`; no intermediate full-partition
//             vector is built.
//
// `total_records` (optional) receives the partition's record count from
// the serialized header, for scan accounting and count validation. The
// fused path validates the framing it actually touches; byte-level
// integrity is the caller's checksum's job.
std::vector<Record> DeserializeRecordsInRange(
    BytesView data, Layout layout, const STRange& range,
    std::uint64_t* total_records = nullptr);

}  // namespace blot

#endif  // BLOT_BLOT_LAYOUT_H_
