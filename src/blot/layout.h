// Physical record layouts within a partition (Section II-C).
//
//   kRow    — fixed-width binary rows, the "binary format instead of text
//             format" baseline; fastest to scan.
//   kColumn — column-major with per-column transforms ("organize the data
//             in column fashion and then apply column-wise encoding
//             schemes (e.g., delta encoding and run-length encoding)"):
//             delta+varint integers, XOR-coded doubles, RLE flags.
//
// Both layouts are lossless; a general-purpose codec is applied on top by
// the encoding scheme. Two wire formats exist:
//
//   kLegacy  — one monolithic run per partition (varint record count, then
//              the whole payload). Retained so segments written before
//              zone maps existed still load and scan.
//   kBlocked — the partition is cut into blocks of kScanBlockRecords
//              records; each block carries a zone-map header (min/max
//              TIME and LOC over its records) plus its payload byte
//              length, and every per-column transform restarts at the
//              block boundary. Range scans consult the zone map and skip
//              non-intersecting blocks without decoding them, and the
//              surviving blocks decode through the vectorized kernels in
//              codec/simd/ (engine picked at startup by CPUID).
#ifndef BLOT_BLOT_LAYOUT_H_
#define BLOT_BLOT_LAYOUT_H_

#include <span>
#include <string_view>
#include <vector>

#include "blot/record.h"
#include "util/bytes.h"
#include "util/cancel.h"

namespace blot {

enum class Layout { kRow, kColumn };

std::string_view LayoutName(Layout layout);
Layout LayoutFromName(std::string_view name);

// Wire format of a serialized partition. Numeric values are persisted in
// segment manifests; never renumber.
enum class LayoutFormat : std::uint8_t { kLegacy = 1, kBlocked = 2 };

std::string_view LayoutFormatName(LayoutFormat format);

// Records per block under kBlocked. Chosen so a block's columns stay
// cache-resident while the per-block zone-map header (~55 bytes) stays
// under 0.3% of a raw row block.
inline constexpr std::size_t kScanBlockRecords = 512;

// Scan-internal accounting for the blocked format, surfaced through the
// query profile (zone_map_prune / simd sub-stages) and scan.* metrics.
// Timings are captured only when `timed` is set — the two clock reads
// per block are not free — counters always.
struct ScanCounters {
  std::uint64_t blocks_total = 0;   // blocks seen (scanned + pruned)
  std::uint64_t blocks_pruned = 0;  // skipped via the zone map
  std::uint64_t decode_ns = 0;      // decode+filter time in surviving blocks
  std::uint64_t prune_ns = 0;       // header-parse+skip time of pruned blocks
  bool timed = false;
  // The scan stopped at a cancellation point before covering the whole
  // partition: the returned matches are a prefix, not the full answer.
  bool interrupted = false;
};

// Serializes records under the given layout and wire format.
Bytes SerializeRecords(std::span<const Record> records, Layout layout,
                       LayoutFormat format = LayoutFormat::kBlocked);

// Inverse of SerializeRecords; throws CorruptData on malformed input.
std::vector<Record> DeserializeRecords(
    BytesView data, Layout layout,
    LayoutFormat format = LayoutFormat::kBlocked);

// Fused decode-filter kernel: deserializes `data` but materializes only
// the records whose Position() lies inside `range` — exactly the records
// DeserializeRecords + filter would return, in the same order.
//
//   kColumn — decodes the oid/time/x/y columns first, computes the match
//             set against `range` (a selection bitmap via the vectorized
//             filter under kBlocked), and only then materializes matching
//             rows; when nothing matches, the five attribute columns are
//             never decoded at all (predicate pushdown).
//   kRow    — streams over the fixed-width rows, parsing the core
//             attributes and skipping the 12 attribute bytes of rows
//             that fall outside `range`; no intermediate full-partition
//             vector is built.
//
// Under kBlocked with `prune_blocks`, whole blocks whose zone map does
// not intersect `range` are skipped without touching their payload.
// `total_records` (optional) receives the partition's record count from
// the serialized header, for scan accounting and count validation;
// `counters` (optional) receives block-level prune/decode accounting.
// The fused path validates the framing it actually touches; byte-level
// integrity is the caller's checksum's job.
//
// `cancel` (optional) is polled at every block boundary (once at entry
// for kLegacy, which has no blocks): when it fires, the walk stops,
// `counters->interrupted` is set, and the records decoded so far are
// returned — callers must treat an interrupted partition as not served.
// Cancellation requires `counters`; without a place to report the
// truncation, a partial prefix would be indistinguishable from a full
// answer, so `cancel` is ignored when `counters` is null.
std::vector<Record> DeserializeRecordsInRange(
    BytesView data, Layout layout, const STRange& range,
    std::uint64_t* total_records = nullptr,
    LayoutFormat format = LayoutFormat::kBlocked, bool prune_blocks = true,
    ScanCounters* counters = nullptr, const CancelToken* cancel = nullptr);

}  // namespace blot

#endif  // BLOT_BLOT_LAYOUT_H_
