// Physical record layouts within a partition (Section II-C).
//
//   kRow    — fixed-width binary rows, the "binary format instead of text
//             format" baseline; fastest to scan.
//   kColumn — column-major with per-column transforms ("organize the data
//             in column fashion and then apply column-wise encoding
//             schemes (e.g., delta encoding and run-length encoding)"):
//             delta+varint integers, XOR-coded doubles, RLE flags.
//
// Both layouts are lossless; a general-purpose codec is applied on top by
// the encoding scheme. Serialized partitions begin with a varint record
// count so decoders are self-contained.
#ifndef BLOT_BLOT_LAYOUT_H_
#define BLOT_BLOT_LAYOUT_H_

#include <span>
#include <string_view>
#include <vector>

#include "blot/record.h"
#include "util/bytes.h"

namespace blot {

enum class Layout { kRow, kColumn };

std::string_view LayoutName(Layout layout);
Layout LayoutFromName(std::string_view name);

// Serializes records under the given layout.
Bytes SerializeRecords(std::span<const Record> records, Layout layout);

// Inverse of SerializeRecords; throws CorruptData on malformed input.
std::vector<Record> DeserializeRecords(BytesView data, Layout layout);

}  // namespace blot

#endif  // BLOT_BLOT_LAYOUT_H_
