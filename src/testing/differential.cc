#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "blot/batch.h"
#include "codec/simd/dispatch.h"
#include "core/cost_model.h"
#include "core/partition_cache.h"
#include "core/store.h"
#include "obs/event_log.h"
#include "simenv/environment.h"
#include "testing/oracle.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace blot::testing {
namespace {

// Scoped overrides of the process-wide scan knobs, exception-safe so a
// throwing check can't leak a forced engine into later iterations.
struct EngineGuard {
  simd::ScanEngine prev;
  explicit EngineGuard(simd::ScanEngine engine)
      : prev(simd::ActiveScanEngine()) {
    simd::SetScanEngine(engine);
  }
  ~EngineGuard() { simd::SetScanEngine(prev); }
};

struct ZonePruneGuard {
  bool prev;
  explicit ZonePruneGuard(bool enabled) : prev(simd::ZoneMapPruningEnabled()) {
    simd::SetZoneMapPruning(enabled);
  }
  ~ZonePruneGuard() { simd::SetZoneMapPruning(prev); }
};

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// The partitioning pool iterations draw from. Spans coarse to fine and
// includes the grid ablation; fine specs over tiny datasets produce the
// empty partitions the codec edge cases care about.
const std::vector<PartitioningSpec>& PartitioningPool() {
  static const std::vector<PartitioningSpec> pool = {
      {.spatial_partitions = 1, .temporal_partitions = 1},
      {.spatial_partitions = 2, .temporal_partitions = 2},
      {.spatial_partitions = 4, .temporal_partitions = 4},
      {.spatial_partitions = 8, .temporal_partitions = 2},
      {.spatial_partitions = 3, .temporal_partitions = 5},
      {.spatial_partitions = 16, .temporal_partitions = 4},
      {.spatial_partitions = 4,
       .temporal_partitions = 2,
       .method = SpatialMethod::kGrid},
  };
  return pool;
}

// Restores process-global state the harness touches, exception-safe.
struct GlobalStateGuard {
  ~GlobalStateGuard() {
    FaultInjector::Global().Disarm();
    PartitionCache::Global().Configure(0);
  }
};

std::string FormatFaultSpec(const FaultPlan& plan) {
  std::ostringstream os;
  os << "p=" << plan.probability;
  os << ";kinds=";
  for (std::size_t i = 0; i < plan.kinds.size(); ++i)
    os << (i ? "," : "") << FaultKindName(plan.kinds[i]);
  os << ";fires=" << plan.max_fires_per_target;
  switch (plan.latency_dist) {
    case FaultPlan::LatencyDist::kFixed:
      os << ";latency=" << plan.latency_ms;
      break;
    case FaultPlan::LatencyDist::kPareto:
      os << ";latency=pareto:" << plan.latency_min << ":" << plan.latency_max;
      break;
    case FaultPlan::LatencyDist::kSpike:
      os << ";latency=spike:" << plan.latency_min << ":"
         << plan.spike_probability;
      break;
  }
  if (!plan.replica.empty()) os << ";replica=" << plan.replica;
  if (plan.partition.has_value()) os << ";partition=" << *plan.partition;
  return os.str();
}

// One iteration's fixed machinery.
struct Iteration {
  const DifferentialOptions& options;
  std::uint64_t seed;
  std::size_t index;
  DifferentialReport& report;
  std::ostream* log;

  Rng rng;
  STRange universe;
  Dataset dataset;
  Oracle oracle;
  std::vector<ReplicaConfig> configs;
  // Lazily created: only the parallel cells of the scan matrix pay for
  // it. Parallel checks run in clean mode only — fault fire budgets are
  // consumed in execution order, so a pooled scan would make injected
  // faults land nondeterministically.
  std::unique_ptr<ThreadPool> scan_pool;

  ThreadPool& ScanPool() {
    if (scan_pool == nullptr)
      scan_pool = std::make_unique<ThreadPool>(2, "diff-scan");
    return *scan_pool;
  }

  Iteration(const DifferentialOptions& opts, std::size_t i,
            DifferentialReport& rep, std::ostream* out)
      : options(opts),
        seed(IterationSeed(opts.seed, i)),
        index(i),
        report(rep),
        log(out),
        rng(seed),
        universe(DefaultTestUniverse()),
        dataset(GenerateDataset(rng, universe, opts.profile)),
        oracle(dataset) {
    // Seed-chosen replica set: encodings rotate from an rng start so any
    // long run covers all 7; partitionings draw from the pool.
    const std::vector<EncodingScheme> encodings = AllEncodingSchemes();
    const std::size_t enc_start = rng.NextUint64(encodings.size());
    const std::size_t part_start = rng.NextUint64(PartitioningPool().size());
    for (std::size_t j = 0; j < options.replicas_per_iteration; ++j) {
      ReplicaConfig config{
          PartitioningPool()[(part_start + j) % PartitioningPool().size()],
          encodings[(enc_start + j) % encodings.size()]};
      if (rng.NextBool(0.15))
        config.policy = EncodingPolicy::kBestCodecPerPartition;
      // The store rejects duplicate configs; the rotation above cannot
      // collide within one iteration (distinct partitionings per j).
      configs.push_back(config);
      report.encodings_covered.push_back(config.encoding.Name());
      report.partitionings_covered.push_back(config.partitioning.Name());
    }
  }

  void Fail(const std::string& check, const STRange& query,
            const std::string& detail) {
    Mismatch m;
    m.iteration_seed = seed;
    m.iteration = index;
    m.check = check;
    m.query = query.ToString();
    m.detail = detail;
    m.repro = ReproCommand(options, seed);
    if (log != nullptr)
      *log << "MISMATCH check=" << m.check << " iter=" << m.iteration
           << " seed=" << m.iteration_seed << " query=" << m.query << "\n  "
           << m.detail << "\n  repro: " << m.repro << std::endl;
    // Mirror the mismatch into the structured event log (when a sink is
    // open, e.g. blotfuzz --event-log) so soak post-mortems line up with
    // quarantine/failover/repair events on one timeline.
    auto& elog = obs::EventLog::Global();
    if (elog.enabled())
      elog.Emit(obs::EventSeverity::kError, "soak.mismatch",
                "differential check diverged from the oracle",
                {obs::Field("check", m.check),
                 obs::Field("round", m.iteration),
                 obs::Field("seed", m.iteration_seed),
                 obs::Field("query", m.query),
                 obs::Field("detail", m.detail),
                 obs::Field("repro", m.repro)});
    report.mismatches.push_back(std::move(m));
  }

  // Runs one comparison against the oracle; exceptions become mismatches.
  void Check(const std::string& name, const STRange& query,
             const std::vector<Record>& expected,
             const std::function<std::vector<Record>()>& path) {
    ++report.checks_run;
    try {
      const RecordDiff diff = DiffRecords(path(), expected);
      if (!diff.empty()) Fail(name, query, DescribeDiff(diff));
    } catch (const Error& e) {
      Fail(name, query, std::string("threw: ") + e.what());
    }
  }

  // The fault-mode contract: with failover on, a routed path under
  // unbounded injected faults must either match the oracle or fail with
  // the structured QueryFailedError (every copy of a needed partition
  // really can be lost when the plan targets all replicas). Anything
  // else — wrong records, or a leaked PartitionFaultError the store
  // should have converted — is a mismatch. With failover disabled every
  // failure is recorded: that is the reproducible injected mismatch the
  // harness's own detection machinery is validated by.
  void CheckUnderFaults(const std::string& name, const STRange& query,
                        const std::vector<Record>& expected,
                        const std::function<std::vector<Record>()>& path) {
    ++report.checks_run;
    try {
      const RecordDiff diff = DiffRecords(path(), expected);
      if (!diff.empty()) Fail(name, query, DescribeDiff(diff));
    } catch (const QueryFailedError& e) {
      if (!options.failover_enabled)
        Fail(name, query, std::string("threw: ") + e.what());
    } catch (const Error& e) {
      Fail(name, query, std::string("threw: ") + e.what());
    }
  }

  void Run() {
    const std::vector<STRange> queries = GenerateQueries(
        rng, options.queries_per_iteration, universe, dataset);
    report.queries_checked += queries.size();

    BlotStore store(dataset, universe);
    FailoverPolicy policy;
    if (!options.failover_enabled) {
      policy.max_attempts = 1;
      policy.repair = RepairMode::kNone;
    }
    store.SetFailoverPolicy(policy);
    for (const ReplicaConfig& config : configs) store.AddReplica(config);
    const CostModel model{EnvironmentModel::LocalHadoop()};

    const bool faults = options.fault_plan.has_value();
    if (faults) {
      FaultPlan plan = *options.fault_plan;
      plan.seed = SplitMix64(seed ^ 0xFA171A5ull);
      FaultInjector::Global().Arm(plan);
    }

    for (const STRange& query : queries) {
      const std::vector<Record> expected = oracle.RangeQuery(query);
      if (faults) {
        // Store-level only: direct replica paths have no failover and
        // would (correctly) throw on every injected fault.
        CheckUnderFaults("store-routed", query, expected, [&] {
          return store.Execute(query, model).result.records;
        });
        // Same routed path with zone-map pruning off: pruning changes
        // which partition reads happen (a zone-skipped partition is
        // never read, so its fault never fires), and quarantine/failover
        // must stay correct in both worlds.
        CheckUnderFaults("store-routed-unpruned", query, expected, [&] {
          ZonePruneGuard prune_guard(false);
          return store.Execute(query, model).result.records;
        });
        // Hedged leg: a stalled primary races a backup attempt; whichever
        // wins, the answer must stay bit-identical to the oracle. The
        // race makes the budget-consumption order between the two
        // attempts scheduling-dependent, but the contract checked here —
        // oracle match or structured QueryFailedError — holds for every
        // interleaving.
        if (options.hedge_ms > 0.0 && configs.size() >= 2) {
          CheckUnderFaults("store-routed-hedged", query, expected, [&] {
            BlotStore::ExecOptions exec;
            exec.hedge_ms = options.hedge_ms;
            return store.Execute(query, model, exec).result.records;
          });
        }
        if (options.deadline_ms > 0.0)
          CheckDeadlinePartial(store, model, query, expected);
        continue;
      }
      CheckReplicaPaths(store, query, expected);
      Check("store-routed", query, expected, [&] {
        return store.Execute(query, model).result.records;
      });
      if (options.check_metamorphic) {
        CheckSplitUnion(store.replica(rng.NextUint64(configs.size())), query);
        CheckCostModel(store, model, query);
      }
    }

    CheckBatch(store, model, queries);
    if (!faults && options.check_failover && configs.size() >= 2)
      CheckFailover(store, model, queries);
    if (faults) FaultInjector::Global().Disarm();
  }

  // Deadline leg: execute with options.deadline_ms and allow_partial. A
  // full answer must match the oracle exactly; a partial answer must
  // match the oracle restricted to the served partitions. The restricted
  // expectation is computed by clean-decoding exactly those partitions of
  // the serving replica under FaultInjector::Suspend — a served partition
  // contributes all of its matching records or none (blot/replica.h), so
  // the expected multiset is exact, and suspension leaves the campaign's
  // fire budgets and read sequences untouched for later checks.
  void CheckDeadlinePartial(BlotStore& store, const CostModel& model,
                            const STRange& query,
                            const std::vector<Record>& expected) {
    ++report.checks_run;
    const std::string name = "store-routed-deadline";
    try {
      BlotStore::ExecOptions exec;
      exec.deadline_ms = options.deadline_ms;
      exec.allow_partial = true;
      const BlotStore::RoutedResult routed = store.Execute(query, model, exec);
      if (!routed.partial) {
        const RecordDiff diff = DiffRecords(routed.result.records, expected);
        if (!diff.empty()) Fail(name, query, DescribeDiff(diff));
        return;
      }
      // Coverage sanity before the record diff: a partial answer must
      // actually miss something, and no partition may be reported on both
      // sides of the split.
      if (routed.result.missed_partitions.empty()) {
        Fail(name, query, "partial result with an empty missed set");
        return;
      }
      const std::set<std::size_t> served(
          routed.result.served_partitions.begin(),
          routed.result.served_partitions.end());
      for (const std::size_t p : routed.result.missed_partitions) {
        if (served.count(p) != 0) {
          Fail(name, query, "partition " + std::to_string(p) +
                                " reported both served and missed");
          return;
        }
      }
      FaultInjector::Suspend suspend(FaultInjector::Global());
      const Replica& replica = store.replica(routed.replica_index);
      std::vector<Record> expected_served;
      for (const std::size_t p : served)
        for (const Record& rec : replica.DecodePartitionRecords(p))
          if (query.Contains(rec.Position())) expected_served.push_back(rec);
      const RecordDiff diff =
          DiffRecords(routed.result.records, expected_served);
      if (!diff.empty())
        Fail(name, query,
             "partial coverage (" + std::to_string(served.size()) + " of " +
                 std::to_string(served.size() +
                                routed.result.missed_partitions.size()) +
                 " partitions) diverges from the oracle on the served set: " +
                 DescribeDiff(diff));
    } catch (const DeadlineExceededError& e) {
      // allow_partial was set: expiry must degrade, never throw.
      Fail(name, query,
           std::string("threw despite allow_partial: ") + e.what());
    } catch (const QueryFailedError& e) {
      if (!options.failover_enabled)
        Fail(name, query, std::string("threw: ") + e.what());
    } catch (const Error& e) {
      Fail(name, query, std::string("threw: ") + e.what());
    }
  }

  void CheckReplicaPaths(const BlotStore& store, const STRange& query,
                         const std::vector<Record>& expected) {
    // per_replica[r] stays aligned with configs[r]; an entry whose
    // Execute threw remains unset and is skipped by the pair check.
    std::vector<std::optional<std::vector<Record>>> per_replica(
        configs.size());
    for (std::size_t r = 0; r < configs.size(); ++r) {
      const Replica& replica = store.replica(r);
      const std::string tag = "[" + configs[r].Name() + "]";

      // Fused decode-filter scan (the cache-off default inside Execute).
      Check("replica-execute" + tag, query, expected, [&] {
        std::vector<Record> records = replica.Execute(query).records;
        per_replica[r] = records;
        return records;
      });

      // Naive path: full decode of EVERY partition plus a filter — also
      // cross-checks the partition index (a partition the index failed to
      // report would still contribute here).
      Check("replica-naive-scan" + tag, query, expected, [&] {
        std::vector<Record> records;
        for (std::size_t p = 0; p < replica.NumPartitions(); ++p)
          for (const Record& rec : replica.DecodePartitionRecords(p))
            if (query.Contains(rec.Position())) records.push_back(rec);
        return records;
      });

      // Cache-cold then cache-warm execution through the decoded-
      // partition cache.
      if (options.cache_budget_bytes > 0) {
        PartitionCache::Global().Configure(options.cache_budget_bytes);
        Check("replica-cache-cold" + tag, query, expected,
              [&] { return replica.Execute(query).records; });
        Check("replica-cache-warm" + tag, query, expected,
              [&] { return replica.Execute(query).records; });
        PartitionCache::Global().Configure(0);
      }

      // Scan-engine matrix: {scalar, best engine} x {pruned, unpruned} x
      // {serial, parallel} must all return the oracle's records. The
      // best-engine/pruned/serial cell is replica-execute above; on a
      // scalar-only machine the engine axis collapses to one value.
      const simd::ScanEngine best = simd::ActiveScanEngine();
      std::vector<simd::ScanEngine> engines{simd::ScanEngine::kScalar};
      if (best != simd::ScanEngine::kScalar) engines.push_back(best);
      for (const simd::ScanEngine engine : engines) {
        for (const bool pruned : {true, false}) {
          for (const bool parallel : {false, true}) {
            if (engine == best && pruned && !parallel) continue;
            const std::string name =
                std::string("replica-scan[") +
                std::string(simd::ScanEngineName(engine)) +
                (pruned ? ";pruned" : ";unpruned") +
                (parallel ? ";parallel" : ";serial") + "]" + tag;
            Check(name, query, expected, [&] {
              EngineGuard engine_guard(engine);
              ScanOptions scan;
              scan.pool = parallel ? &ScanPool() : nullptr;
              // A tiny cap exercises the strided fan-out, not just the
              // one-task-per-partition path.
              scan.max_parallelism = parallel ? 2 : 0;
              scan.zone_map_pruning = pruned;
              return replica.Execute(query, scan).records;
            });
          }
        }
      }
    }
    // Metamorphic replica-pair equivalence. Redundant given the oracle
    // checks above, but it localizes a failure to "replicas disagree"
    // even when the oracle itself is the buggy party.
    ++report.checks_run;
    std::size_t base = per_replica.size();
    for (std::size_t r = 0; r < per_replica.size(); ++r) {
      if (!per_replica[r].has_value()) continue;  // its Execute threw
      if (base == per_replica.size()) {
        base = r;
        continue;
      }
      const RecordDiff diff = DiffRecords(*per_replica[r], *per_replica[base]);
      if (!diff.empty())
        Fail("replica-pair[" + configs[base].Name() + " vs " +
                 configs[r].Name() + "]",
             query, DescribeDiff(diff));
    }
  }

  // Metamorphic: result(whole) == result(left) ⊎ result(right) when the
  // query splits along an axis into disjoint closed halves.
  void CheckSplitUnion(const Replica& replica, const STRange& query) {
    if (query.empty()) return;
    double lo = 0, hi = 0;
    int axis = -1;
    if (query.Width() > 0) {
      axis = 0, lo = query.x_min(), hi = query.x_max();
    } else if (query.Height() > 0) {
      axis = 1, lo = query.y_min(), hi = query.y_max();
    } else if (query.Duration() > 0) {
      axis = 2, lo = query.t_min(), hi = query.t_max();
    }
    if (axis < 0) return;  // point query: nothing to split
    const double mid = rng.NextDouble(lo, hi);
    const double after = std::nextafter(mid, hi);
    const auto sub = [&](double a, double b) {
      switch (axis) {
        case 0:
          return STRange::FromBounds(a, b, query.y_min(), query.y_max(),
                                     query.t_min(), query.t_max());
        case 1:
          return STRange::FromBounds(query.x_min(), query.x_max(), a, b,
                                     query.t_min(), query.t_max());
        default:
          return STRange::FromBounds(query.x_min(), query.x_max(),
                                     query.y_min(), query.y_max(), a, b);
      }
    };
    ++report.checks_run;
    try {
      std::vector<Record> whole = replica.Execute(query).records;
      std::vector<Record> combined = replica.Execute(sub(lo, mid)).records;
      const std::vector<Record> right =
          replica.Execute(sub(after, hi)).records;
      combined.insert(combined.end(), right.begin(), right.end());
      const RecordDiff diff = DiffRecords(std::move(combined),
                                          std::move(whole));
      if (!diff.empty())
        Fail("metamorphic-split-union[" + replica.config().Name() + "]",
             query, DescribeDiff(diff));
    } catch (const Error& e) {
      Fail("metamorphic-split-union[" + replica.config().Name() + "]", query,
           std::string("threw: ") + e.what());
    }
  }

  void CheckCostModel(const BlotStore& store, const CostModel& model,
                      const STRange& query) {
    ++report.checks_run;
    try {
      for (std::size_t r = 0; r < configs.size(); ++r) {
        const ReplicaSketch sketch =
            ReplicaSketch::FromReplica(store.replica(r));
        const double cost = model.QueryCostMs(sketch, query);
        if (!(std::isfinite(cost) && cost >= 0.0)) {
          Fail("cost-nonnegative[" + configs[r].Name() + "]", query,
               "Cost(q, r) = " + std::to_string(cost));
          continue;
        }
        // Monotonicity: a superset query involves a superset of
        // partitions, so its Eq. 7 estimate cannot be smaller.
        const STRange grown = query.Expanded(rng.NextDouble(0.0, 4.0),
                                             rng.NextDouble(0.0, 4.0),
                                             rng.NextDouble(0.0, 64.0));
        const double grown_cost = model.QueryCostMs(sketch, grown);
        if (grown_cost + 1e-9 < cost)
          Fail("cost-monotone[" + configs[r].Name() + "]", query,
               "Cost grew " + std::to_string(cost) + " -> " +
                   std::to_string(grown_cost) + " when the query expanded");
        // Grouped form: non-negative and monotone in range volume.
        const GroupedQuery grouped{query.Size()};
        const GroupedQuery larger{{query.Size().w * 1.5 + 1e-6,
                                   query.Size().h * 1.5 + 1e-6,
                                   query.Size().t * 1.5 + 1e-6}};
        const double g = model.QueryCostMs(sketch, grouped);
        const double g_larger = model.QueryCostMs(sketch, larger);
        if (!(std::isfinite(g) && g >= 0.0) || g_larger + 1e-9 < g)
          Fail("cost-grouped-monotone[" + configs[r].Name() + "]", query,
               "grouped " + std::to_string(g) + " -> " +
                   std::to_string(g_larger));
      }
    } catch (const Error& e) {
      Fail("cost-model", query, std::string("threw: ") + e.what());
    }
  }

  void CheckBatch(BlotStore& store, const CostModel& model,
                  const std::vector<STRange>& queries) {
    if (options.fault_plan.has_value()) {
      // Store-level batch under faults: the shared scan's per-query
      // fallback must keep every answer correct when failover is on.
      ++report.checks_run;
      try {
        const BlotStore::RoutedBatchResult batch =
            store.ExecuteBatch(queries, model);
        for (std::size_t q = 0; q < queries.size(); ++q) {
          const RecordDiff diff = DiffRecords(
              batch.per_query[q], oracle.RangeQuery(queries[q]));
          if (!diff.empty())
            Fail("store-batch", queries[q], DescribeDiff(diff));
        }
      } catch (const QueryFailedError& e) {
        if (!options.failover_enabled)
          Fail("store-batch", queries.empty() ? STRange() : queries[0],
               std::string("threw: ") + e.what());
      } catch (const Error& e) {
        Fail("store-batch", queries.empty() ? STRange() : queries[0],
             std::string("threw: ") + e.what());
      }
      return;
    }
    // Single-replica shared scan vs one-at-a-time.
    for (std::size_t r = 0; r < configs.size(); ++r) {
      ++report.checks_run;
      try {
        const BatchResult batch = ExecuteBatch(store.replica(r), queries);
        for (std::size_t q = 0; q < queries.size(); ++q) {
          const RecordDiff diff = DiffRecords(
              batch.per_query[q], oracle.RangeQuery(queries[q]));
          if (!diff.empty())
            Fail("replica-batch[" + configs[r].Name() + "]", queries[q],
                 DescribeDiff(diff));
        }
      } catch (const Error& e) {
        Fail("replica-batch[" + configs[r].Name() + "]",
             queries.empty() ? STRange() : queries[0],
             std::string("threw: ") + e.what());
      }
    }
    ++report.checks_run;
    try {
      const BlotStore::RoutedBatchResult batch =
          store.ExecuteBatch(queries, model);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const RecordDiff diff =
            DiffRecords(batch.per_query[q], oracle.RangeQuery(queries[q]));
        if (!diff.empty()) Fail("store-batch", queries[q], DescribeDiff(diff));
      }
    } catch (const Error& e) {
      Fail("store-batch", queries.empty() ? STRange() : queries[0],
           std::string("threw: ") + e.what());
    }
  }

  // Corrupts every involved partition of the replica routing would pick,
  // then checks the degraded (failover) execution and, after sync repair,
  // the self-healed store against the oracle.
  void CheckFailover(BlotStore& store, const CostModel& model,
                     const std::vector<STRange>& queries) {
    // Prefer a query that actually involves data.
    STRange query = queries[rng.NextUint64(queries.size())];
    for (const STRange& q : queries)
      if (!q.empty() && oracle.Count(q) > 0) {
        query = q;
        break;
      }
    if (query.empty()) return;
    const std::vector<Record> expected = oracle.RangeQuery(query);
    try {
      const std::size_t victim = store.RouteQueryDetailed(query, model)
                                     .replica_index;
      bool corrupted_any = false;
      for (const std::size_t p :
           store.replica(victim).index().InvolvedPartitions(query)) {
        // Only corrupt partitions the scan will actually read: a
        // partition whose stored zone misses the query is zone-skipped
        // before its bytes are touched, so corrupting (and counting) it
        // would let the victim serve the query non-degraded.
        const StoredPartition& stored = store.replica(victim).partition(p);
        if (stored.has_zone && !query.Intersects(stored.zone)) continue;
        StoredPartition& unit =
            store.mutable_replica(victim).MutablePartition(p);
        if (unit.data.empty()) continue;
        unit.data[unit.data.size() / 2] ^= 0xFF;
        corrupted_any = true;
      }
      if (!corrupted_any) return;
      Check("store-failover-degraded", query, expected, [&] {
        const BlotStore::RoutedResult routed = store.Execute(query, model);
        if (!routed.degraded && routed.replica_index == victim)
          throw InternalError(
              "failover check: corrupted replica served the query");
        return routed.result.records;
      });
      // Default policy repairs synchronously; the healed store must agree
      // with the oracle again (and with its own pre-corruption answer).
      store.RepairQuarantined();
      Check("store-self-healed", query, expected,
            [&] { return store.Execute(query, model).result.records; });
    } catch (const Error& e) {
      Fail("store-failover-degraded", query,
           std::string("threw: ") + e.what());
    }
  }
};

}  // namespace

std::uint64_t IterationSeed(std::uint64_t seed, std::size_t iteration) {
  if (iteration == 0) return seed;
  return SplitMix64(seed + 0x9E3779B97F4A7C15ull * iteration);
}

std::string ReproCommand(const DifferentialOptions& options,
                         std::uint64_t iteration_seed) {
  std::ostringstream os;
  os << "blotfuzz --seed=" << iteration_seed << " --rounds=1"
     << " --queries=" << options.queries_per_iteration
     << " --replicas=" << options.replicas_per_iteration
     << " --cache-bytes=" << options.cache_budget_bytes
     << " --max-records=" << options.profile.max_records;
  if (options.fault_plan.has_value())
    os << " --inject-faults='" << FormatFaultSpec(*options.fault_plan) << "'";
  if (!options.failover_enabled) os << " --no-repair";
  if (options.hedge_ms > 0.0) os << " --hedge-ms=" << options.hedge_ms;
  if (options.deadline_ms > 0.0)
    os << " --deadline-ms=" << options.deadline_ms;
  return os.str();
}

DifferentialReport RunDifferential(const DifferentialOptions& options,
                                   std::ostream* log) {
  require(options.replicas_per_iteration >= 1,
          "RunDifferential: need at least one replica per iteration");
  require(options.replicas_per_iteration <= PartitioningPool().size(),
          "RunDifferential: replicas_per_iteration exceeds the "
          "partitioning pool");
  require(options.profile.min_records >= 1,
          "RunDifferential: BlotStore requires a non-empty dataset");
  GlobalStateGuard guard;
  // The harness owns the cache state for the duration of the run.
  PartitionCache::Global().Configure(0);
  PartitionCache::Global().Clear();

  DifferentialReport report;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    Iteration iteration(options, i, report, log);
    iteration.Run();
    ++report.iterations;
    if (log != nullptr && (i + 1) % 50 == 0)
      *log << "differential: " << (i + 1) << "/" << options.iterations
           << " iterations, " << report.checks_run << " checks, "
           << report.mismatches.size() << " mismatches" << std::endl;
  }
  const auto dedupe_sort = [](std::vector<std::string>& names) {
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
  };
  dedupe_sort(report.encodings_covered);
  dedupe_sort(report.partitionings_covered);
  return report;
}

}  // namespace blot::testing
