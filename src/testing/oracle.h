// The reference oracle: codec- and partition-free ground truth for every
// query path in the system.
//
// The paper's central claim is that all physical organizations of one
// logical dataset are interchangeable — a query must return the same
// records no matter which of the 150 replicas, cache states or failover
// paths serves it. The oracle is the independent arbiter of that claim:
// it answers range queries by brute force over a private copy of the
// records, sharing no code with the partitioning index, the layouts, the
// codecs or STRange's containment predicates, so a bug in any of those
// cannot hide in the oracle too.
//
// Alongside the query engine this header provides the canonical record
// order (a total order over every field, so equal multisets always
// compare equal) and multiset diffing with human-readable output — the
// vocabulary every differential check reports mismatches in.
#ifndef BLOT_TESTING_ORACLE_H_
#define BLOT_TESTING_ORACLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "blot/dataset.h"
#include "blot/record.h"
#include "util/range.h"

namespace blot::testing {

// The canonical total order over records: every field participates, so
// two equal multisets sort to identical sequences. This is the shared
// definition the ad-hoc Sorted() helpers in older tests duplicated.
bool RecordTotalLess(const Record& a, const Record& b);

// A copy of `records` in canonical order.
std::vector<Record> Canonical(std::vector<Record> records);

// Brute-force reference engine over the logical dataset. Intentionally
// primitive: one flat copy of the records, one pass per query, explicit
// closed-bound comparisons per dimension.
class Oracle {
 public:
  explicit Oracle(const Dataset& dataset) : records_(dataset.records()) {}
  explicit Oracle(std::vector<Record> records)
      : records_(std::move(records)) {}

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  // All records inside `query` (closed bounds on every dimension), in
  // dataset order. The empty range matches nothing.
  std::vector<Record> RangeQuery(const STRange& query) const;

  // |RangeQuery(query)| without materializing it.
  std::size_t Count(const STRange& query) const;

 private:
  std::vector<Record> records_;
};

// Multiset difference between a checked path's answer and the oracle's.
struct RecordDiff {
  std::vector<Record> missing;     // expected but absent from actual
  std::vector<Record> unexpected;  // present in actual but not expected

  bool empty() const { return missing.empty() && unexpected.empty(); }
};

// Multiset-compares `actual` against `expected` (order-insensitive).
RecordDiff DiffRecords(std::vector<Record> actual,
                       std::vector<Record> expected);

// One-line rendering of a record for mismatch reports.
std::string DescribeRecord(const Record& r);

// Compact human-readable summary of a diff: counts plus up to
// `max_examples` example records from each side. Empty string for an
// empty diff.
std::string DescribeDiff(const RecordDiff& diff, std::size_t max_examples = 3);

}  // namespace blot::testing

#endif  // BLOT_TESTING_ORACLE_H_
