// The metamorphic + differential correctness harness.
//
// One iteration is a pure function of one 64-bit seed: it generates an
// adversarial dataset and query batch (testing/generator.h), builds a
// seed-chosen set of diverse replicas over it, and checks every execution
// path the system offers against the brute-force oracle
// (testing/oracle.h) and against each other:
//
//   differential — per replica: fused-scan Execute, naive full-decode
//     scan over all partitions, cache-cold and cache-warm Execute;
//     store-routed Execute; single-replica and store-routed batch
//     execution; failover-degraded execution (involved partitions of the
//     routed replica corrupted) and the self-healed store afterwards —
//     all must return the oracle's record multiset exactly.
//
//   metamorphic — relations that must hold without knowing the answer:
//     splitting a query along an axis and unioning the halves equals the
//     whole; all replica pairs agree; cost-model estimates are finite,
//     non-negative, and monotone when a query grows.
//
// Every check failure is reported as a Mismatch carrying the iteration
// seed and a one-line repro command for the blotfuzz tool. Iterations are
// single-threaded by design: the fault injector's per-target fire budgets
// are consumed in execution order, so parallel scans would make injected
// faults land nondeterministically.
#ifndef BLOT_TESTING_DIFFERENTIAL_H_
#define BLOT_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_injection.h"
#include "testing/generator.h"

namespace blot::testing {

struct DifferentialOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 1;
  std::size_t queries_per_iteration = 8;
  // Replicas built per iteration; encodings and partitionings are drawn
  // seed-deterministically so a long run covers all 7 encodings and
  // several partitionings.
  std::size_t replicas_per_iteration = 3;
  // Budget for the cache-on differential check (0 skips it).
  std::uint64_t cache_budget_bytes = std::uint64_t{4} << 20;
  bool check_metamorphic = true;
  // Corrupt-the-routed-replica failover check (needs >= 2 replicas).
  bool check_failover = true;
  DatasetProfile profile;

  // When set, the global FaultInjector is armed for every iteration with
  // this plan, its seed re-derived from the iteration seed. Only
  // store-level routed checks run (direct replica paths would see the
  // injected faults without failover protection and drown the report).
  std::optional<FaultPlan> fault_plan;
  // With faults armed: false disables failover and repair
  // (max_attempts=1, RepairMode::kNone), so injected faults surface as
  // mismatches — the harness's own failure detection, reproducible from
  // the printed seed.
  bool failover_enabled = true;
  // Hedged chaos leg (> 0, needs faults armed and >= 2 replicas): each
  // query is additionally executed with ExecOptions::hedge_ms set, so a
  // stalled primary races a backup attempt. The winning answer must stay
  // bit-identical to the oracle whichever attempt produced it. The race
  // means *which* attempt consumes a target's fire budget is no longer a
  // pure function of the seed — the correctness contract (oracle match or
  // structured QueryFailedError) is what this leg pins down, not the
  // fault landing sites.
  double hedge_ms = 0.0;
  // Deadline chaos leg (> 0, needs faults armed): each query is
  // additionally executed with this deadline and allow_partial set. A
  // full result must match the oracle exactly; a partial result must
  // match the oracle restricted to the served partitions — verified by
  // clean-decoding exactly those partitions of the serving replica under
  // FaultInjector::Suspend, so the fault campaign's budgets are not
  // perturbed.
  double deadline_ms = 0.0;
};

// One check that diverged from the oracle (or threw).
struct Mismatch {
  std::uint64_t iteration_seed = 0;
  std::size_t iteration = 0;
  std::string check;   // e.g. "replica-execute[KD4xT4/ROW-GZIP]"
  std::string query;   // the query range, ToString()
  std::string detail;  // diff summary or exception text
  std::string repro;   // one-line blotfuzz command reproducing it
};

struct DifferentialReport {
  std::size_t iterations = 0;
  std::size_t queries_checked = 0;
  std::size_t checks_run = 0;
  std::vector<Mismatch> mismatches;
  // Distinct encoding-scheme and partitioning names exercised, sorted.
  std::vector<std::string> encodings_covered;
  std::vector<std::string> partitionings_covered;

  bool ok() const { return mismatches.empty(); }
};

// The seed of iteration `iteration` under base seed `seed`. Iteration 0
// uses the base seed itself, so `blotfuzz --seed=<iteration_seed>
// --rounds=1` replays exactly the failing iteration.
std::uint64_t IterationSeed(std::uint64_t seed, std::size_t iteration);

// The one-line repro command embedded in every Mismatch.
std::string ReproCommand(const DifferentialOptions& options,
                         std::uint64_t iteration_seed);

// Runs the harness. When `log` is non-null, prints one line per
// mismatch as it is found plus a progress line every 50 iterations.
// Restores global state (fault injector disarmed, cache disabled) on
// return, including on exception.
DifferentialReport RunDifferential(const DifferentialOptions& options,
                                   std::ostream* log = nullptr);

}  // namespace blot::testing

#endif  // BLOT_TESTING_DIFFERENTIAL_H_
