// Deterministic property-based generation of adversarial datasets and
// degenerate queries.
//
// The taxi-fleet generator (src/gen) produces *realistic* data; this one
// produces *hostile* data — the coordinate collisions, boundary-exact
// positions, extreme attribute values and degenerate query shapes where
// partitioning, layout and codec bugs actually live. Everything is a pure
// function of the Rng passed in, so a differential-harness failure is
// reproducible from the single 64-bit seed that built the Rng.
#ifndef BLOT_TESTING_GENERATOR_H_
#define BLOT_TESTING_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blot/dataset.h"
#include "util/range.h"
#include "util/rng.h"

namespace blot::testing {

// Shape of a generated dataset. Fractions need not sum to 1; the
// remainder is filled with clustered-but-ordinary records.
struct DatasetProfile {
  std::size_t min_records = 1;
  std::size_t max_records = 384;
  // Records that exactly duplicate an earlier record's position (and
  // sometimes the whole record): repeated coordinates stress delta
  // encodings and equal-count median splits.
  double duplicate_fraction = 0.2;
  // Records placed exactly on universe corners/edges and on simple
  // lattice coordinates that k-d median splits are likely to cut through.
  double boundary_fraction = 0.2;
  // Records with extreme attribute values (max widths, zero, denormal-
  // adjacent doubles) at ordinary positions.
  double extreme_fraction = 0.1;
};

// A compact universe whose bounds are exactly representable doubles, so
// boundary-exact records and queries compare bit-for-bit.
STRange DefaultTestUniverse();

// Draws a dataset of rng-chosen size within `universe` under `profile`.
// Every record lies inside `universe` (closed bounds).
Dataset GenerateDataset(Rng& rng, const STRange& universe,
                        const DatasetProfile& profile = {});

// One record with attribute values at the extreme of each field's width
// (position drawn inside `universe`).
Record ExtremeRecord(Rng& rng, const STRange& universe);

// The degenerate query shapes every iteration must exercise.
enum class QueryShape {
  kEmpty,       // the empty range: matches nothing by definition
  kPoint,       // zero-volume range at an existing record's position
  kFullExtent,  // the whole universe
  kBoundary,    // bounds snapped to record coordinates (closed-bound
                // straddling: the record sits exactly on the edge)
  kThinSlab,    // zero extent in one dimension, full in the others
  kRandom,      // uniform sub-range of the universe
};

std::string QueryShapeName(QueryShape shape);

// Draws one query of the given shape. Shapes that reference records
// (kPoint, kBoundary) fall back to kRandom on an empty dataset.
STRange GenerateQuery(Rng& rng, QueryShape shape, const STRange& universe,
                      const Dataset& dataset);

// A mixed batch: the first queries cycle through every shape (so each
// batch of >= 6 covers all of them), the rest are rng-chosen shapes.
std::vector<STRange> GenerateQueries(Rng& rng, std::size_t n,
                                     const STRange& universe,
                                     const Dataset& dataset);

}  // namespace blot::testing

#endif  // BLOT_TESTING_GENERATOR_H_
