#include "testing/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.h"

namespace blot::testing {
namespace {

// Snaps a coordinate to a small lattice so independent draws collide and
// k-d median splits land exactly on record coordinates.
double Snap(double lo, double hi, std::uint64_t steps, std::uint64_t step) {
  return lo + (hi - lo) * static_cast<double>(step % (steps + 1)) /
                  static_cast<double>(steps);
}

Record OrdinaryRecord(Rng& rng, const STRange& u) {
  Record r;
  r.oid = static_cast<std::uint32_t>(rng.NextUint64(32));
  r.time = rng.NextInt64(static_cast<std::int64_t>(u.t_min()),
                         static_cast<std::int64_t>(u.t_max()));
  r.x = rng.NextDouble(u.x_min(), u.x_max());
  r.y = rng.NextDouble(u.y_min(), u.y_max());
  r.speed = static_cast<float>(rng.NextDouble(0.0, 120.0));
  r.heading = static_cast<std::uint16_t>(rng.NextUint64(360));
  r.status = static_cast<std::uint8_t>(rng.NextUint64(2));
  r.passengers = static_cast<std::uint8_t>(rng.NextUint64(5));
  r.fare_cents = static_cast<std::uint32_t>(rng.NextUint64(100000));
  return r;
}

Record BoundaryRecord(Rng& rng, const STRange& u) {
  Record r = OrdinaryRecord(rng, u);
  // Each dimension independently snaps to an edge or a coarse lattice
  // point; with probability ~1/8 all three hit corners simultaneously.
  const std::uint64_t lattice = 4;
  r.x = rng.NextBool() ? (rng.NextBool() ? u.x_min() : u.x_max())
                       : Snap(u.x_min(), u.x_max(), lattice, rng());
  r.y = rng.NextBool() ? (rng.NextBool() ? u.y_min() : u.y_max())
                       : Snap(u.y_min(), u.y_max(), lattice, rng());
  r.time = rng.NextBool()
               ? static_cast<std::int64_t>(rng.NextBool() ? u.t_min()
                                                          : u.t_max())
               : static_cast<std::int64_t>(
                     Snap(u.t_min(), u.t_max(), lattice, rng()));
  return r;
}

}  // namespace

STRange DefaultTestUniverse() {
  // Powers of two everywhere: every lattice point and every midpoint used
  // by median splits is exactly representable.
  return STRange::FromBounds(0.0, 64.0, -32.0, 32.0, 0.0, 4096.0);
}

Record ExtremeRecord(Rng& rng, const STRange& u) {
  Record r = OrdinaryRecord(rng, u);
  switch (rng.NextUint64(4)) {
    case 0:  // every integer field at its maximum width
      r.oid = std::numeric_limits<std::uint32_t>::max();
      r.heading = std::numeric_limits<std::uint16_t>::max();
      r.status = std::numeric_limits<std::uint8_t>::max();
      r.passengers = std::numeric_limits<std::uint8_t>::max();
      r.fare_cents = std::numeric_limits<std::uint32_t>::max();
      r.speed = std::numeric_limits<float>::max();
      break;
    case 1:  // all-zero attributes
      r.oid = 0;
      r.heading = 0;
      r.status = 0;
      r.passengers = 0;
      r.fare_cents = 0;
      r.speed = 0.0f;
      break;
    case 2:  // coordinates one ulp inside the universe edges
      r.x = std::nextafter(u.x_max(), u.x_min());
      r.y = std::nextafter(u.y_min(), u.y_max());
      r.speed = std::numeric_limits<float>::denorm_min();
      break;
    case 3:  // negative-zero coordinates (must compare equal to +0.0)
      if (u.x_min() <= 0.0 && 0.0 <= u.x_max()) r.x = -0.0;
      if (u.y_min() <= 0.0 && 0.0 <= u.y_max()) r.y = -0.0;
      break;
  }
  return r;
}

Dataset GenerateDataset(Rng& rng, const STRange& universe,
                        const DatasetProfile& profile) {
  require(!universe.empty(), "GenerateDataset: empty universe");
  require(profile.min_records <= profile.max_records,
          "GenerateDataset: min_records > max_records");
  const std::size_t n =
      profile.min_records +
      static_cast<std::size_t>(rng.NextUint64(
          profile.max_records - profile.min_records + 1));
  Dataset dataset;
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.NextDouble();
    if (!dataset.empty() && roll < profile.duplicate_fraction) {
      const Record& prev =
          dataset.records()[rng.NextUint64(dataset.size())];
      if (rng.NextBool()) {
        // Exact duplicate record.
        dataset.Append(prev);
      } else {
        // Same position, fresh attributes: breaks any assumption that
        // position identifies a record.
        Record r = OrdinaryRecord(rng, universe);
        r.x = prev.x;
        r.y = prev.y;
        r.time = prev.time;
        dataset.Append(r);
      }
    } else if (roll < profile.duplicate_fraction + profile.boundary_fraction) {
      dataset.Append(BoundaryRecord(rng, universe));
    } else if (roll < profile.duplicate_fraction + profile.boundary_fraction +
                          profile.extreme_fraction) {
      dataset.Append(ExtremeRecord(rng, universe));
    } else {
      dataset.Append(OrdinaryRecord(rng, universe));
    }
  }
  return dataset;
}

std::string QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kEmpty: return "empty";
    case QueryShape::kPoint: return "point";
    case QueryShape::kFullExtent: return "full-extent";
    case QueryShape::kBoundary: return "boundary";
    case QueryShape::kThinSlab: return "thin-slab";
    case QueryShape::kRandom: return "random";
  }
  return "unknown";
}

STRange GenerateQuery(Rng& rng, QueryShape shape, const STRange& u,
                      const Dataset& dataset) {
  const auto random_query = [&] {
    double x0 = rng.NextDouble(u.x_min(), u.x_max());
    double x1 = rng.NextDouble(u.x_min(), u.x_max());
    double y0 = rng.NextDouble(u.y_min(), u.y_max());
    double y1 = rng.NextDouble(u.y_min(), u.y_max());
    double t0 = rng.NextDouble(u.t_min(), u.t_max());
    double t1 = rng.NextDouble(u.t_min(), u.t_max());
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    if (t0 > t1) std::swap(t0, t1);
    return STRange::FromBounds(x0, x1, y0, y1, t0, t1);
  };
  if (dataset.empty() &&
      (shape == QueryShape::kPoint || shape == QueryShape::kBoundary))
    shape = QueryShape::kRandom;
  switch (shape) {
    case QueryShape::kEmpty:
      return STRange();
    case QueryShape::kPoint: {
      const Record& r = dataset.records()[rng.NextUint64(dataset.size())];
      const double t = static_cast<double>(r.time);
      return STRange::FromBounds(r.x, r.x, r.y, r.y, t, t);
    }
    case QueryShape::kFullExtent:
      return u;
    case QueryShape::kBoundary: {
      // A random sub-range with each bound independently snapped to a
      // record coordinate, so records sit exactly on the closed edges.
      const STRange base = random_query();
      const auto pick = [&] {
        return dataset.records()[rng.NextUint64(dataset.size())];
      };
      double x0 = rng.NextBool() ? pick().x : base.x_min();
      double x1 = rng.NextBool() ? pick().x : base.x_max();
      double y0 = rng.NextBool() ? pick().y : base.y_min();
      double y1 = rng.NextBool() ? pick().y : base.y_max();
      double t0 = rng.NextBool() ? static_cast<double>(pick().time)
                                 : base.t_min();
      double t1 = rng.NextBool() ? static_cast<double>(pick().time)
                                 : base.t_max();
      if (x0 > x1) std::swap(x0, x1);
      if (y0 > y1) std::swap(y0, y1);
      if (t0 > t1) std::swap(t0, t1);
      return STRange::FromBounds(x0, x1, y0, y1, t0, t1);
    }
    case QueryShape::kThinSlab: {
      double x0 = u.x_min(), x1 = u.x_max();
      double y0 = u.y_min(), y1 = u.y_max();
      double t0 = u.t_min(), t1 = u.t_max();
      switch (rng.NextUint64(3)) {
        case 0: x0 = x1 = rng.NextDouble(u.x_min(), u.x_max()); break;
        case 1: y0 = y1 = rng.NextDouble(u.y_min(), u.y_max()); break;
        default: t0 = t1 = rng.NextDouble(u.t_min(), u.t_max()); break;
      }
      return STRange::FromBounds(x0, x1, y0, y1, t0, t1);
    }
    case QueryShape::kRandom:
      return random_query();
  }
  return random_query();
}

std::vector<STRange> GenerateQueries(Rng& rng, std::size_t n,
                                     const STRange& universe,
                                     const Dataset& dataset) {
  static constexpr QueryShape kAllShapes[] = {
      QueryShape::kEmpty,    QueryShape::kPoint,    QueryShape::kFullExtent,
      QueryShape::kBoundary, QueryShape::kThinSlab, QueryShape::kRandom,
  };
  constexpr std::size_t kNumShapes = std::size(kAllShapes);
  std::vector<STRange> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const QueryShape shape = i < kNumShapes
                                 ? kAllShapes[i]
                                 : kAllShapes[rng.NextUint64(kNumShapes)];
    queries.push_back(GenerateQuery(rng, shape, universe, dataset));
  }
  return queries;
}

}  // namespace blot::testing
