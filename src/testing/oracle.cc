#include "testing/oracle.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace blot::testing {
namespace {

auto FieldTuple(const Record& r) {
  return std::tie(r.oid, r.time, r.x, r.y, r.speed, r.heading, r.status,
                  r.passengers, r.fare_cents);
}

}  // namespace

bool RecordTotalLess(const Record& a, const Record& b) {
  return FieldTuple(a) < FieldTuple(b);
}

std::vector<Record> Canonical(std::vector<Record> records) {
  std::sort(records.begin(), records.end(), RecordTotalLess);
  return records;
}

std::vector<Record> Oracle::RangeQuery(const STRange& query) const {
  std::vector<Record> matches;
  if (query.empty()) return matches;
  // Deliberately not STRange::Contains: the oracle re-derives closed-bound
  // containment from the raw bounds so a predicate bug cannot cancel out.
  const double x_lo = query.x_min(), x_hi = query.x_max();
  const double y_lo = query.y_min(), y_hi = query.y_max();
  const double t_lo = query.t_min(), t_hi = query.t_max();
  for (const Record& r : records_) {
    const double t = static_cast<double>(r.time);
    if (r.x >= x_lo && r.x <= x_hi && r.y >= y_lo && r.y <= y_hi &&
        t >= t_lo && t <= t_hi) {
      matches.push_back(r);
    }
  }
  return matches;
}

std::size_t Oracle::Count(const STRange& query) const {
  if (query.empty()) return 0;
  std::size_t count = 0;
  const double x_lo = query.x_min(), x_hi = query.x_max();
  const double y_lo = query.y_min(), y_hi = query.y_max();
  const double t_lo = query.t_min(), t_hi = query.t_max();
  for (const Record& r : records_) {
    const double t = static_cast<double>(r.time);
    if (r.x >= x_lo && r.x <= x_hi && r.y >= y_lo && r.y <= y_hi &&
        t >= t_lo && t <= t_hi) {
      ++count;
    }
  }
  return count;
}

RecordDiff DiffRecords(std::vector<Record> actual,
                       std::vector<Record> expected) {
  actual = Canonical(std::move(actual));
  expected = Canonical(std::move(expected));
  RecordDiff diff;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(diff.missing),
                      RecordTotalLess);
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(diff.unexpected),
                      RecordTotalLess);
  return diff;
}

std::string DescribeRecord(const Record& r) {
  std::ostringstream os;
  os << "{oid=" << r.oid << " t=" << r.time << " x=" << r.x << " y=" << r.y
     << " speed=" << r.speed << " heading=" << r.heading
     << " status=" << static_cast<unsigned>(r.status)
     << " passengers=" << static_cast<unsigned>(r.passengers)
     << " fare=" << r.fare_cents << "}";
  return os.str();
}

std::string DescribeDiff(const RecordDiff& diff, std::size_t max_examples) {
  if (diff.empty()) return "";
  std::ostringstream os;
  os << diff.missing.size() << " missing, " << diff.unexpected.size()
     << " unexpected";
  const auto show = [&](const char* label, const std::vector<Record>& side) {
    for (std::size_t i = 0; i < side.size() && i < max_examples; ++i)
      os << "; " << label << " " << DescribeRecord(side[i]);
  };
  show("missing", diff.missing);
  show("unexpected", diff.unexpected);
  return os.str();
}

}  // namespace blot::testing
