#include "codec/codec.h"

#include "codec/gzip_like.h"
#include "codec/lzma_like.h"
#include "codec/snappy_like.h"
#include "util/error.h"

namespace blot {
namespace {

// Identity codec: frames the input with its size so that Decompress can
// still validate framing, but performs no transformation.
class IdentityCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kNone; }

  Bytes Compress(BytesView input) const override {
    ByteWriter out;
    out.PutVarint(input.size());
    out.PutBytes(input);
    return out.Take();
  }

  Bytes Decompress(BytesView input) const override {
    ByteReader in(input);
    const std::uint64_t size = in.GetVarint();
    BytesView payload = in.GetBytes(static_cast<std::size_t>(size));
    validate(in.AtEnd(), "Identity: trailing bytes");
    return Bytes(payload.begin(), payload.end());
  }
};

}  // namespace

std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "PLAIN";
    case CodecKind::kSnappyLike:
      return "SNAPPY";
    case CodecKind::kGzipLike:
      return "GZIP";
    case CodecKind::kLzmaLike:
      return "LZMA";
  }
  throw InvalidArgument("CodecKindName: unknown codec kind");
}

CodecKind CodecKindFromName(std::string_view name) {
  if (name == "PLAIN") return CodecKind::kNone;
  if (name == "SNAPPY") return CodecKind::kSnappyLike;
  if (name == "GZIP") return CodecKind::kGzipLike;
  if (name == "LZMA") return CodecKind::kLzmaLike;
  throw InvalidArgument("CodecKindFromName: unknown codec name: " +
                        std::string(name));
}

std::vector<CodecKind> AllCodecKinds() {
  return {CodecKind::kNone, CodecKind::kSnappyLike, CodecKind::kGzipLike,
          CodecKind::kLzmaLike};
}

const Codec& GetCodec(CodecKind kind) {
  static const IdentityCodec identity;
  static const SnappyLikeCodec snappy;
  static const GzipLikeCodec gzip;
  static const LzmaLikeCodec lzma;
  switch (kind) {
    case CodecKind::kNone:
      return identity;
    case CodecKind::kSnappyLike:
      return snappy;
    case CodecKind::kGzipLike:
      return gzip;
    case CodecKind::kLzmaLike:
      return lzma;
  }
  throw InvalidArgument("GetCodec: unknown codec kind");
}

}  // namespace blot
