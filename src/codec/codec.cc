#include "codec/codec.h"

#include "codec/gzip_like.h"
#include "codec/lzma_like.h"
#include "codec/snappy_like.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

// Identity codec: frames the input with its size so that Decompress can
// still validate framing, but performs no transformation.
class IdentityCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kNone; }

  Bytes Compress(BytesView input) const override {
    ByteWriter out;
    out.PutVarint(input.size());
    out.PutBytes(input);
    return out.Take();
  }

  Bytes Decompress(BytesView input) const override {
    ByteReader in(input);
    const std::uint64_t size = in.GetVarint();
    BytesView payload = in.GetBytes(static_cast<std::size_t>(size));
    validate(in.AtEnd(), "Identity: trailing bytes");
    return Bytes(payload.begin(), payload.end());
  }
};

// Wraps a codec so every Compress/Decompress through GetCodec records
// bytes in/out and wall time, labeled by codec name. Metric handles are
// resolved once at construction; when the registry is disabled the only
// cost is one relaxed atomic load per call.
class InstrumentedCodec final : public Codec {
 public:
  explicit InstrumentedCodec(const Codec& inner) : inner_(inner) {
    auto& registry = obs::MetricsRegistry::global();
    const obs::Labels labels{
        {"codec", std::string(CodecKindName(inner.kind()))}};
    encode_ms_ = &registry.GetHistogram("codec.encode_ms", labels);
    decode_ms_ = &registry.GetHistogram("codec.decode_ms", labels);
    encode_in_ =
        &registry.GetCounter("codec.encode_bytes_in_total", labels);
    encode_out_ =
        &registry.GetCounter("codec.encode_bytes_out_total", labels);
    decode_in_ =
        &registry.GetCounter("codec.decode_bytes_in_total", labels);
    decode_out_ =
        &registry.GetCounter("codec.decode_bytes_out_total", labels);
  }

  CodecKind kind() const override { return inner_.kind(); }

  Bytes Compress(BytesView input) const override {
    if (!obs::MetricsRegistry::global().enabled())
      return inner_.Compress(input);
    obs::ScopedTimerMs timer(encode_ms_);
    Bytes out = inner_.Compress(input);
    encode_in_->Increment(input.size());
    encode_out_->Increment(out.size());
    return out;
  }

  Bytes Decompress(BytesView input) const override {
    if (!obs::MetricsRegistry::global().enabled())
      return inner_.Decompress(input);
    obs::ScopedTimerMs timer(decode_ms_);
    Bytes out = inner_.Decompress(input);
    decode_in_->Increment(input.size());
    decode_out_->Increment(out.size());
    return out;
  }

 private:
  const Codec& inner_;
  obs::Histogram* encode_ms_;
  obs::Histogram* decode_ms_;
  obs::Counter* encode_in_;
  obs::Counter* encode_out_;
  obs::Counter* decode_in_;
  obs::Counter* decode_out_;
};

}  // namespace

std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "PLAIN";
    case CodecKind::kSnappyLike:
      return "SNAPPY";
    case CodecKind::kGzipLike:
      return "GZIP";
    case CodecKind::kLzmaLike:
      return "LZMA";
  }
  throw InvalidArgument("CodecKindName: unknown codec kind");
}

CodecKind CodecKindFromName(std::string_view name) {
  if (name == "PLAIN") return CodecKind::kNone;
  if (name == "SNAPPY") return CodecKind::kSnappyLike;
  if (name == "GZIP") return CodecKind::kGzipLike;
  if (name == "LZMA") return CodecKind::kLzmaLike;
  throw InvalidArgument("CodecKindFromName: unknown codec name: " +
                        std::string(name));
}

std::vector<CodecKind> AllCodecKinds() {
  return {CodecKind::kNone, CodecKind::kSnappyLike, CodecKind::kGzipLike,
          CodecKind::kLzmaLike};
}

const Codec& GetCodec(CodecKind kind) {
  static const IdentityCodec identity;
  static const SnappyLikeCodec snappy;
  static const GzipLikeCodec gzip;
  static const LzmaLikeCodec lzma;
  static const InstrumentedCodec instrumented_identity{identity};
  static const InstrumentedCodec instrumented_snappy{snappy};
  static const InstrumentedCodec instrumented_gzip{gzip};
  static const InstrumentedCodec instrumented_lzma{lzma};
  switch (kind) {
    case CodecKind::kNone:
      return instrumented_identity;
    case CodecKind::kSnappyLike:
      return instrumented_snappy;
    case CodecKind::kGzipLike:
      return instrumented_gzip;
    case CodecKind::kLzmaLike:
      return instrumented_lzma;
  }
  throw InvalidArgument("GetCodec: unknown codec kind");
}

}  // namespace blot
