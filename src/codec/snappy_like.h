// Fast byte-oriented LZ codec (Snappy design point).
//
// Greedy LZ77 over a 64 KiB window with byte-aligned output and no entropy
// coding stage: tag bytes distinguish literal runs from copies, exactly the
// trade-off Snappy makes — very fast scans, modest ratio.
//
// Frame layout: varint uncompressed size, then a sequence of elements:
//   literal: tag ll...ll00 (run length 1..60 in the tag, 61/62 select one
//            or two extension length bytes), followed by the bytes;
//   copy:    tag llllll10 (length 4..67), followed by a 2-byte LE distance.
#ifndef BLOT_CODEC_SNAPPY_LIKE_H_
#define BLOT_CODEC_SNAPPY_LIKE_H_

#include "codec/codec.h"

namespace blot {

class SnappyLikeCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kSnappyLike; }
  Bytes Compress(BytesView input) const override;
  Bytes Decompress(BytesView input) const override;
};

}  // namespace blot

#endif  // BLOT_CODEC_SNAPPY_LIKE_H_
