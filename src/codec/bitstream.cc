#include "codec/bitstream.h"

#include "util/error.h"

namespace blot {

void BitWriter::WriteBits(std::uint32_t bits, int count) {
  require(count >= 0 && count <= 32, "BitWriter: bit count out of range");
  for (int i = 0; i < count; ++i) {
    current_ |= static_cast<std::uint8_t>((bits >> i) & 1u) << bit_position_;
    if (++bit_position_ == 8) {
      buffer_.push_back(current_);
      current_ = 0;
      bit_position_ = 0;
    }
  }
}

Bytes BitWriter::Finish() {
  if (bit_position_ > 0) {
    buffer_.push_back(current_);
    current_ = 0;
    bit_position_ = 0;
  }
  return std::move(buffer_);
}

std::uint32_t BitReader::ReadBits(int count) {
  require(count >= 0 && count <= 32, "BitReader: bit count out of range");
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) v |= ReadBit() << i;
  return v;
}

std::uint32_t BitReader::ReadBit() {
  validate(bit_position_ < data_.size() * 8, "BitReader: truncated input");
  const std::uint32_t bit =
      (data_[bit_position_ >> 3] >> (bit_position_ & 7)) & 1u;
  ++bit_position_;
  return bit;
}

}  // namespace blot
