// Shared LZ77 match finding.
//
// Both dictionary codecs (Gzip-class and LZMA-class) locate back-references
// with a hash-chain matcher: a hash table over 4-byte prefixes whose
// buckets chain all previous occurrences within the window. The codecs
// differ in window size, chain depth (search effort), and in how tokens
// are entropy-coded.
#ifndef BLOT_CODEC_LZ_COMMON_H_
#define BLOT_CODEC_LZ_COMMON_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace blot {

// A back-reference of `length` bytes starting `distance` bytes before the
// current position. length == 0 means "no match found".
struct LzMatch {
  std::uint32_t length = 0;
  std::uint32_t distance = 0;
};

// Incremental hash-chain match finder over a fixed input buffer.
//
// Usage: walk positions left to right; at each position call FindMatch()
// and then Insert() for every consumed byte (including those covered by an
// emitted match) so later positions can reference them.
class HashChainMatcher {
 public:
  struct Options {
    std::uint32_t window_size = 32 * 1024;  // max match distance
    std::uint32_t min_match = 3;
    std::uint32_t max_match = 258;
    std::uint32_t max_chain = 32;  // probes per lookup (search effort)
  };

  HashChainMatcher(BytesView input, const Options& options);

  // Finds the longest match ending before `pos` within the window. Only
  // returns matches of at least options.min_match bytes.
  LzMatch FindMatch(std::size_t pos) const;

  // Registers `pos` in the hash chains. Must be called for positions in
  // non-decreasing order.
  void Insert(std::size_t pos);

  const Options& options() const { return options_; }

 private:
  std::uint32_t HashAt(std::size_t pos) const;

  BytesView input_;
  Options options_;
  std::vector<std::int64_t> head_;  // hash bucket -> most recent position
  std::vector<std::int64_t> prev_;  // position -> previous with same hash
};

}  // namespace blot

#endif  // BLOT_CODEC_LZ_COMMON_H_
