// DEFLATE-style codec (Gzip design point): LZSS tokens over a 32 KiB
// window, entropy-coded with two canonical Huffman alphabets.
//
// The token stream follows DEFLATE's alphabets — literal/length symbols
// 0..285 (256 terminates the block; 257..285 select a match length in
// 3..258 with extra bits) and distance symbols 0..29 (distances 1..32768
// with extra bits) — but frames a single dynamic block whose code lengths
// are stored uncompressed in the header. Inputs that do not shrink are
// stored raw.
#ifndef BLOT_CODEC_GZIP_LIKE_H_
#define BLOT_CODEC_GZIP_LIKE_H_

#include "codec/codec.h"

namespace blot {

class GzipLikeCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kGzipLike; }
  Bytes Compress(BytesView input) const override;
  Bytes Decompress(BytesView input) const override;
};

}  // namespace blot

#endif  // BLOT_CODEC_GZIP_LIKE_H_
