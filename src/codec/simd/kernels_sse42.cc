// SSE4.2 kernel flavors: the same fast paths as the AVX2 translation
// unit at half width. Compiled with -msse4.2 only when the compiler
// supports it; selected at runtime on CPUs with SSE4.2 but no AVX2.
#if defined(__SSE4_2__)

#include <nmmintrin.h>
#include <smmintrin.h>

#include "codec/simd/kernels.h"
#include "util/bytes.h"

namespace blot::simd::detail {

std::size_t DecodeZigZagDeltaI64Sse42(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::int64_t* out, std::size_t count) {
  const std::uint8_t* start = p;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  const __m128i one = _mm_set1_epi8(1);
  const __m128i low6 = _mm_set1_epi8(0x3F);
  while (i + 16 <= count && end - p >= 16) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(raw) != 0) {
      prev += static_cast<std::uint64_t>(ZigZagDecode(GetVarint(p, end)));
      out[i++] = static_cast<std::int64_t>(prev);
      continue;
    }
    const __m128i odd = _mm_cmpeq_epi8(_mm_and_si128(raw, one), one);
    const __m128i half = _mm_and_si128(_mm_srli_epi16(raw, 1), low6);
    const __m128i deltas = _mm_xor_si128(half, odd);
    const auto accumulate2 = [&](__m128i group) {
      __m128i d = _mm_cvtepi8_epi64(group);
      d = _mm_add_epi64(d, _mm_slli_si128(d, 8));
      d = _mm_add_epi64(d, _mm_set1_epi64x(static_cast<long long>(prev)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), d);
      prev = static_cast<std::uint64_t>(_mm_extract_epi64(d, 1));
      i += 2;
    };
    accumulate2(deltas);
    accumulate2(_mm_srli_si128(deltas, 2));
    accumulate2(_mm_srli_si128(deltas, 4));
    accumulate2(_mm_srli_si128(deltas, 6));
    accumulate2(_mm_srli_si128(deltas, 8));
    accumulate2(_mm_srli_si128(deltas, 10));
    accumulate2(_mm_srli_si128(deltas, 12));
    accumulate2(_mm_srli_si128(deltas, 14));
    p += 16;
  }
  for (; i < count; ++i) {
    prev += static_cast<std::uint64_t>(ZigZagDecode(GetVarint(p, end)));
    out[i] = static_cast<std::int64_t>(prev);
  }
  return static_cast<std::size_t>(p - start);
}

std::size_t FilterRangeBitmapSse42(const double* xs, const double* ys,
                                   const double* ts, std::size_t count,
                                   const double bounds[6],
                                   std::uint64_t* bitmap) {
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) bitmap[w] = 0;
  const __m128d x_lo = _mm_set1_pd(bounds[0]);
  const __m128d x_hi = _mm_set1_pd(bounds[1]);
  const __m128d y_lo = _mm_set1_pd(bounds[2]);
  const __m128d y_hi = _mm_set1_pd(bounds[3]);
  const __m128d t_lo = _mm_set1_pd(bounds[4]);
  const __m128d t_hi = _mm_set1_pd(bounds[5]);
  std::size_t matches = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128d x = _mm_loadu_pd(xs + i);
    const __m128d y = _mm_loadu_pd(ys + i);
    const __m128d t = _mm_loadu_pd(ts + i);
    __m128d hit = _mm_and_pd(_mm_cmpge_pd(x, x_lo), _mm_cmple_pd(x, x_hi));
    hit = _mm_and_pd(hit, _mm_cmpge_pd(y, y_lo));
    hit = _mm_and_pd(hit, _mm_cmple_pd(y, y_hi));
    hit = _mm_and_pd(hit, _mm_cmpge_pd(t, t_lo));
    hit = _mm_and_pd(hit, _mm_cmple_pd(t, t_hi));
    const unsigned mask = static_cast<unsigned>(_mm_movemask_pd(hit)) & 0x3;
    bitmap[i >> 6] |= static_cast<std::uint64_t>(mask) << (i & 63);
    matches += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) {
    const bool hit = xs[i] >= bounds[0] && xs[i] <= bounds[1] &&
                     ys[i] >= bounds[2] && ys[i] <= bounds[3] &&
                     ts[i] >= bounds[4] && ts[i] <= bounds[5];
    bitmap[i >> 6] |= static_cast<std::uint64_t>(hit) << (i & 63);
    matches += hit;
  }
  return matches;
}

}  // namespace blot::simd::detail

#endif  // defined(__SSE4_2__)
