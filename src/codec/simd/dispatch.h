// Runtime dispatch for the vectorized scan engine.
//
// The scan kernels (codec/simd/kernels.h) come in up to three engine
// flavors — scalar, SSE4.2 and AVX2 — that produce bit-identical output.
// Which flavors exist in a given binary depends on compiler support
// (CMake probes -msse4.2/-mavx2 and compiles the matching translation
// units); which one runs is picked once at startup from CPUID, so a
// binary built on a new machine still runs (scalar) on an old one.
//
// Overrides, in precedence order:
//   BLOT_FORCE_SCALAR=1   — environment: pin the scalar fallback (CI runs
//                           one leg this way so both paths stay tested).
//   SetScanEngine(e)      — process-wide programmatic override for tests
//                           and benchmarks; clamped to what the binary
//                           and the CPU actually support.
//
// Zone-map block pruning has its own process-wide switch here (it is a
// scan-engine concern: the blocked layout consults it before decode).
// BLOT_DISABLE_ZONE_MAPS=1 turns it off at startup; per-query overrides
// go through Replica::ScanOptions instead.
#ifndef BLOT_CODEC_SIMD_DISPATCH_H_
#define BLOT_CODEC_SIMD_DISPATCH_H_

#include <cstdint>
#include <string_view>

namespace blot::simd {

enum class ScanEngine : std::uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

// "scalar", "sse4.2", "avx2" — the label value of scan.engine metrics.
std::string_view ScanEngineName(ScanEngine engine);

// True when the engine's translation unit was compiled into this binary
// (always true for kScalar).
bool ScanEngineCompiledIn(ScanEngine engine);

// The best engine this binary + CPU + environment supports: CPUID probe
// clamped to compiled-in flavors, or kScalar under BLOT_FORCE_SCALAR=1.
ScanEngine DetectScanEngine();

// The process-wide engine the scan path uses; initialized lazily to
// DetectScanEngine().
ScanEngine ActiveScanEngine();

// Overrides the active engine (clamped to supported flavors; returns the
// engine actually installed). Tests use this to force the scalar path.
ScanEngine SetScanEngine(ScanEngine engine);

// Process-wide default for zone-map block pruning; per-query overrides
// are threaded through the scan options. Defaults to on unless
// BLOT_DISABLE_ZONE_MAPS=1 is set at startup.
bool ZoneMapPruningEnabled();
void SetZoneMapPruning(bool enabled);

}  // namespace blot::simd

#endif  // BLOT_CODEC_SIMD_DISPATCH_H_
