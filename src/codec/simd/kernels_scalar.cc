// Scalar reference kernels + the engine dispatchers. Always compiled:
// this flavor defines the semantics the vector flavors must match
// bit-for-bit, and is the fallback on CPUs (or builds) without SSE4.2 /
// AVX2 support.
#include <bit>
#include <cstring>

#include "codec/simd/kernels.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot::simd {

namespace detail {

std::uint64_t GetVarint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    validate(p < end, "simd: truncated varint");
    const std::uint8_t byte = *p++;
    validate(shift < 64, "simd: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::size_t DecodeZigZagDeltaI64Scalar(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       std::int64_t* out, std::size_t count) {
  const std::uint8_t* start = p;
  // Deltas wrap modulo 2^64 like codec/columnar.h: unsigned accumulate.
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev += static_cast<std::uint64_t>(ZigZagDecode(GetVarint(p, end)));
    out[i] = static_cast<std::int64_t>(prev);
  }
  return static_cast<std::size_t>(p - start);
}

std::size_t FilterRangeBitmapScalar(const double* xs, const double* ys,
                                    const double* ts, std::size_t count,
                                    const double bounds[6],
                                    std::uint64_t* bitmap) {
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) bitmap[w] = 0;
  std::size_t matches = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const bool hit = xs[i] >= bounds[0] && xs[i] <= bounds[1] &&
                     ys[i] >= bounds[2] && ys[i] <= bounds[3] &&
                     ts[i] >= bounds[4] && ts[i] <= bounds[5];
    bitmap[i >> 6] |= static_cast<std::uint64_t>(hit) << (i & 63);
    matches += hit;
  }
  return matches;
}

}  // namespace detail

std::size_t DecodeZigZagDeltaI64(ScanEngine engine, const std::uint8_t* p,
                                 const std::uint8_t* end, std::int64_t* out,
                                 std::size_t count) {
  switch (engine) {
    case ScanEngine::kAvx2:
#if BLOT_HAVE_AVX2
      return detail::DecodeZigZagDeltaI64Avx2(p, end, out, count);
#else
      break;
#endif
    case ScanEngine::kSse42:
#if BLOT_HAVE_SSE42
      return detail::DecodeZigZagDeltaI64Sse42(p, end, out, count);
#else
      break;
#endif
    case ScanEngine::kScalar:
      break;
  }
  return detail::DecodeZigZagDeltaI64Scalar(p, end, out, count);
}

std::size_t DecodeXorF64(ScanEngine /*engine*/, const std::uint8_t* p,
                         const std::uint8_t* end, double* out,
                         std::size_t count) {
  // XOR'd IEEE bit patterns are mostly multi-byte varints, so the dense
  // single-byte fast path never fires; one tuned flavor serves every
  // engine.
  const std::uint8_t* start = p;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev ^= detail::GetVarint(p, end);
    out[i] = std::bit_cast<double>(prev);
  }
  return static_cast<std::size_t>(p - start);
}

std::size_t DecodeRleU8(ScanEngine /*engine*/, const std::uint8_t* p,
                        const std::uint8_t* end, std::uint8_t* out,
                        std::size_t count) {
  // Run fills are memset-bound on every engine.
  const std::uint8_t* start = p;
  std::size_t filled = 0;
  while (filled < count) {
    validate(p < end, "simd: truncated RLE column");
    const std::uint8_t value = *p++;
    const std::uint64_t run = detail::GetVarint(p, end);
    validate(run > 0 && run <= count - filled,
             "DecodeRleColumn: run overflows column");
    std::memset(out + filled, value, static_cast<std::size_t>(run));
    filled += static_cast<std::size_t>(run);
  }
  return static_cast<std::size_t>(p - start);
}

std::size_t DecodeF32(ScanEngine /*engine*/, const std::uint8_t* p,
                      const std::uint8_t* end, float* out, std::size_t count) {
  validate(static_cast<std::size_t>(end - p) >= count * 4,
           "simd: truncated f32 column");
  for (std::size_t i = 0; i < count; ++i) {
    // Explicit little-endian assembly, matching ByteReader::GetF32.
    const std::uint32_t bits =
        static_cast<std::uint32_t>(p[4 * i]) |
        static_cast<std::uint32_t>(p[4 * i + 1]) << 8 |
        static_cast<std::uint32_t>(p[4 * i + 2]) << 16 |
        static_cast<std::uint32_t>(p[4 * i + 3]) << 24;
    out[i] = std::bit_cast<float>(bits);
  }
  return count * 4;
}

std::size_t FilterRangeBitmap(ScanEngine engine, const double* xs,
                              const double* ys, const double* ts,
                              std::size_t count, const double bounds[6],
                              std::uint64_t* bitmap) {
  switch (engine) {
    case ScanEngine::kAvx2:
#if BLOT_HAVE_AVX2
      return detail::FilterRangeBitmapAvx2(xs, ys, ts, count, bounds, bitmap);
#else
      break;
#endif
    case ScanEngine::kSse42:
#if BLOT_HAVE_SSE42
      return detail::FilterRangeBitmapSse42(xs, ys, ts, count, bounds,
                                            bitmap);
#else
      break;
#endif
    case ScanEngine::kScalar:
      break;
  }
  return detail::FilterRangeBitmapScalar(xs, ys, ts, count, bounds, bitmap);
}

}  // namespace blot::simd
