// AVX2 kernel flavors. Compiled with -mavx2 only when the compiler
// supports it (see src/codec/CMakeLists.txt); never executed unless
// CPUID reports AVX2 at runtime (codec/simd/dispatch.cc).
#if defined(__AVX2__)

#include <immintrin.h>

#include "codec/simd/kernels.h"
#include "util/bytes.h"

namespace blot::simd::detail {

std::size_t DecodeZigZagDeltaI64Avx2(const std::uint8_t* p,
                                     const std::uint8_t* end,
                                     std::int64_t* out, std::size_t count) {
  const std::uint8_t* start = p;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  const __m128i one = _mm_set1_epi8(1);
  const __m128i low6 = _mm_set1_epi8(0x3F);
  while (i + 16 <= count && end - p >= 16) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(raw) != 0) {
      // A continuation bit somewhere in the window: decode one varint the
      // scalar way and retry the fast path at the next offset.
      prev += static_cast<std::uint64_t>(ZigZagDecode(GetVarint(p, end)));
      out[i++] = static_cast<std::int64_t>(prev);
      continue;
    }
    // 16 single-byte varints: zig-zag decode in int8 lanes —
    // (u >> 1) ^ -(u & 1) with u <= 0x7F, so u >> 1 fits in 6 bits.
    const __m128i odd = _mm_cmpeq_epi8(_mm_and_si128(raw, one), one);
    const __m128i half = _mm_and_si128(_mm_srli_epi16(raw, 1), low6);
    const __m128i deltas = _mm_xor_si128(half, odd);
    // Widen 4 deltas at a time to i64 lanes and prefix-sum across them.
    const auto accumulate4 = [&](__m128i group) {
      __m256i d = _mm256_cvtepi8_epi64(group);
      d = _mm256_add_epi64(d, _mm256_slli_si256(d, 8));
      __m256i carry = _mm256_permute4x64_epi64(d, _MM_SHUFFLE(1, 1, 1, 1));
      carry = _mm256_blend_epi32(_mm256_setzero_si256(), carry, 0xF0);
      d = _mm256_add_epi64(d, carry);
      d = _mm256_add_epi64(
          d, _mm256_set1_epi64x(static_cast<long long>(prev)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d);
      prev = static_cast<std::uint64_t>(_mm256_extract_epi64(d, 3));
      i += 4;
    };
    accumulate4(deltas);
    accumulate4(_mm_srli_si128(deltas, 4));
    accumulate4(_mm_srli_si128(deltas, 8));
    accumulate4(_mm_srli_si128(deltas, 12));
    p += 16;
  }
  for (; i < count; ++i) {
    prev += static_cast<std::uint64_t>(ZigZagDecode(GetVarint(p, end)));
    out[i] = static_cast<std::int64_t>(prev);
  }
  return static_cast<std::size_t>(p - start);
}

std::size_t FilterRangeBitmapAvx2(const double* xs, const double* ys,
                                  const double* ts, std::size_t count,
                                  const double bounds[6],
                                  std::uint64_t* bitmap) {
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) bitmap[w] = 0;
  const __m256d x_lo = _mm256_set1_pd(bounds[0]);
  const __m256d x_hi = _mm256_set1_pd(bounds[1]);
  const __m256d y_lo = _mm256_set1_pd(bounds[2]);
  const __m256d y_hi = _mm256_set1_pd(bounds[3]);
  const __m256d t_lo = _mm256_set1_pd(bounds[4]);
  const __m256d t_hi = _mm256_set1_pd(bounds[5]);
  std::size_t matches = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d y = _mm256_loadu_pd(ys + i);
    const __m256d t = _mm256_loadu_pd(ts + i);
    // Ordered-quiet compares: NaN lanes fail, matching the scalar flavor.
    __m256d hit = _mm256_and_pd(_mm256_cmp_pd(x, x_lo, _CMP_GE_OQ),
                                _mm256_cmp_pd(x, x_hi, _CMP_LE_OQ));
    hit = _mm256_and_pd(hit, _mm256_cmp_pd(y, y_lo, _CMP_GE_OQ));
    hit = _mm256_and_pd(hit, _mm256_cmp_pd(y, y_hi, _CMP_LE_OQ));
    hit = _mm256_and_pd(hit, _mm256_cmp_pd(t, t_lo, _CMP_GE_OQ));
    hit = _mm256_and_pd(hit, _mm256_cmp_pd(t, t_hi, _CMP_LE_OQ));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(hit)) & 0xF;
    bitmap[i >> 6] |= static_cast<std::uint64_t>(mask) << (i & 63);
    matches += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) {
    const bool hit = xs[i] >= bounds[0] && xs[i] <= bounds[1] &&
                     ys[i] >= bounds[2] && ys[i] <= bounds[3] &&
                     ts[i] >= bounds[4] && ts[i] <= bounds[5];
    bitmap[i >> 6] |= static_cast<std::uint64_t>(hit) << (i & 63);
    matches += hit;
  }
  return matches;
}

}  // namespace blot::simd::detail

#endif  // defined(__AVX2__)
