// Batch scan kernels: the hot inner loops of the blocked column scan.
//
// Each kernel decodes (or filters) one column block in a single call
// over raw bytes, instead of value-at-a-time through ByteReader. All
// engines are bit-identical: the SSE4.2/AVX2 flavors fast-path the dense
// single-byte-varint case (the common shape for delta-coded oid/time
// columns) and fall back to the scalar step otherwise, so output and
// error behavior never depend on the engine. Decoders consume from
// [p, end), write exactly `count` values to `out`, and return the number
// of bytes consumed; malformed input (truncation, varint overflow,
// overlong RLE runs) throws CorruptData with the same semantics as the
// ByteReader-based decoders in codec/columnar.h.
#ifndef BLOT_CODEC_SIMD_KERNELS_H_
#define BLOT_CODEC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "codec/simd/dispatch.h"

namespace blot::simd {

// Zig-zag varint deltas, prefix-summed from 0 (codec/columnar.h's
// EncodeDeltaColumn inverse). Handles oid/time/heading/fare columns and
// the integer half of quantized doubles.
std::size_t DecodeZigZagDeltaI64(ScanEngine engine, const std::uint8_t* p,
                                 const std::uint8_t* end, std::int64_t* out,
                                 std::size_t count);

// XOR-of-previous varint doubles (EncodeXorColumn inverse).
std::size_t DecodeXorF64(ScanEngine engine, const std::uint8_t* p,
                         const std::uint8_t* end, double* out,
                         std::size_t count);

// (value, varint run) pairs (EncodeRleColumn inverse).
std::size_t DecodeRleU8(ScanEngine engine, const std::uint8_t* p,
                        const std::uint8_t* end, std::uint8_t* out,
                        std::size_t count);

// Raw little-endian 32-bit floats (EncodeF32Column inverse).
std::size_t DecodeF32(ScanEngine engine, const std::uint8_t* p,
                      const std::uint8_t* end, float* out, std::size_t count);

// Vectorized range filter: sets bit i of `bitmap` (little-endian 64-bit
// words, zeroed by the kernel up to ceil(count/64) words) iff
//   xs[i] in [bounds[0], bounds[1]] and ys[i] in [bounds[2], bounds[3]]
//   and ts[i] in [bounds[4], bounds[5]]
// with IEEE closed-interval compares (NaN coordinates never match), i.e.
// exactly STRange::Contains on a non-empty range. Returns the match
// count. Callers encode the empty range as inverted bounds (+inf, -inf).
std::size_t FilterRangeBitmap(ScanEngine engine, const double* xs,
                              const double* ys, const double* ts,
                              std::size_t count, const double bounds[6],
                              std::uint64_t* bitmap);

namespace detail {

// Per-engine flavors, linked only when CMake compiled the matching
// translation unit (kernels_{sse42,avx2}.cc with -msse4.2/-mavx2).
std::size_t DecodeZigZagDeltaI64Scalar(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       std::int64_t* out, std::size_t count);
std::size_t DecodeZigZagDeltaI64Sse42(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::int64_t* out, std::size_t count);
std::size_t DecodeZigZagDeltaI64Avx2(const std::uint8_t* p,
                                     const std::uint8_t* end,
                                     std::int64_t* out, std::size_t count);

std::size_t FilterRangeBitmapScalar(const double* xs, const double* ys,
                                    const double* ts, std::size_t count,
                                    const double bounds[6],
                                    std::uint64_t* bitmap);
std::size_t FilterRangeBitmapSse42(const double* xs, const double* ys,
                                   const double* ts, std::size_t count,
                                   const double bounds[6],
                                   std::uint64_t* bitmap);
std::size_t FilterRangeBitmapAvx2(const double* xs, const double* ys,
                                  const double* ts, std::size_t count,
                                  const double bounds[6],
                                  std::uint64_t* bitmap);

// Shared scalar helpers for the vector flavors' leftovers: decode one
// varint with ByteReader-equivalent error handling, advancing `p`.
std::uint64_t GetVarint(const std::uint8_t*& p, const std::uint8_t* end);

}  // namespace detail

}  // namespace blot::simd

#endif  // BLOT_CODEC_SIMD_KERNELS_H_
