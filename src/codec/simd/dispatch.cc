#include "codec/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/error.h"

namespace blot::simd {
namespace {

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "") != 0;
}

// CPUID support probe; compile-time-gated so non-x86 builds fall back to
// scalar cleanly.
bool CpuSupports(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kScalar:
      return true;
    case ScanEngine::kSse42:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case ScanEngine::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

ScanEngine ClampToSupported(ScanEngine engine) {
  // Degrade avx2 -> sse4.2 -> scalar until both the binary and the CPU
  // agree.
  if (engine == ScanEngine::kAvx2 &&
      (!ScanEngineCompiledIn(ScanEngine::kAvx2) ||
       !CpuSupports(ScanEngine::kAvx2)))
    engine = ScanEngine::kSse42;
  if (engine == ScanEngine::kSse42 &&
      (!ScanEngineCompiledIn(ScanEngine::kSse42) ||
       !CpuSupports(ScanEngine::kSse42)))
    engine = ScanEngine::kScalar;
  return engine;
}

std::atomic<std::uint8_t>& ActiveEngineSlot() {
  static std::atomic<std::uint8_t> slot{
      static_cast<std::uint8_t>(DetectScanEngine())};
  return slot;
}

std::atomic<bool>& ZoneMapSlot() {
  static std::atomic<bool> slot{!EnvFlagSet("BLOT_DISABLE_ZONE_MAPS")};
  return slot;
}

}  // namespace

std::string_view ScanEngineName(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kScalar:
      return "scalar";
    case ScanEngine::kSse42:
      return "sse4.2";
    case ScanEngine::kAvx2:
      return "avx2";
  }
  throw InvalidArgument("ScanEngineName: unknown engine");
}

bool ScanEngineCompiledIn(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kScalar:
      return true;
    case ScanEngine::kSse42:
#if BLOT_HAVE_SSE42
      return true;
#else
      return false;
#endif
    case ScanEngine::kAvx2:
#if BLOT_HAVE_AVX2
      return true;
#else
      return false;
#endif
  }
  return false;
}

ScanEngine DetectScanEngine() {
  if (EnvFlagSet("BLOT_FORCE_SCALAR")) return ScanEngine::kScalar;
  return ClampToSupported(ScanEngine::kAvx2);
}

ScanEngine ActiveScanEngine() {
  return static_cast<ScanEngine>(
      ActiveEngineSlot().load(std::memory_order_relaxed));
}

ScanEngine SetScanEngine(ScanEngine engine) {
  const ScanEngine installed = ClampToSupported(engine);
  ActiveEngineSlot().store(static_cast<std::uint8_t>(installed),
                           std::memory_order_relaxed);
  return installed;
}

bool ZoneMapPruningEnabled() {
  return ZoneMapSlot().load(std::memory_order_relaxed);
}

void SetZoneMapPruning(bool enabled) {
  ZoneMapSlot().store(enabled, std::memory_order_relaxed);
}

}  // namespace blot::simd
