// Column-wise encoding primitives: delta, run-length, and float packing.
//
// The column layout of Section II-C stores each attribute contiguously and
// applies per-column transforms before general compression: timestamps and
// object IDs delta-encode extremely well within a spatio-temporal
// partition, and low-cardinality attributes (status flags) run-length
// encode. All emitters append to a ByteWriter; all parsers consume from a
// ByteReader and throw CorruptData on malformed input.
#ifndef BLOT_CODEC_COLUMNAR_H_
#define BLOT_CODEC_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace blot {

// Delta + zig-zag + varint coding for integer columns. The first value is
// stored absolutely; each subsequent value as a signed delta.
void EncodeDeltaColumn(ByteWriter& out, std::span<const std::int64_t> values);
std::vector<std::int64_t> DecodeDeltaColumn(ByteReader& in,
                                            std::size_t count);

// Run-length coding for byte columns: (value, varint run) pairs.
void EncodeRleColumn(ByteWriter& out, std::span<const std::uint8_t> values);
std::vector<std::uint8_t> DecodeRleColumn(ByteReader& in, std::size_t count);

// Doubles encoded as zig-zag deltas of their fixed-point quantization.
// `scale` is the quantization step (e.g. 1e-6 degrees); values round-trip
// to within scale/2. GPS coordinates within a partition are near-constant,
// so the deltas are tiny.
void EncodeQuantizedColumn(ByteWriter& out, std::span<const double> values,
                           double scale);
std::vector<double> DecodeQuantizedColumn(ByteReader& in, std::size_t count,
                                          double scale);

// Lossless doubles: XOR of consecutive IEEE-754 bit patterns, varint-coded
// (Gorilla-style without bit packing).
void EncodeXorColumn(ByteWriter& out, std::span<const double> values);
std::vector<double> DecodeXorColumn(ByteReader& in, std::size_t count);

// Lossless adaptive doubles, tuned for GPS coordinates: when every value
// round-trips exactly through fixed-point quantization v ==
// double(llround(v * denominator)) / denominator, stores zig-zag varint
// deltas of the quantized integers (tiny for trajectory data); otherwise
// falls back to XOR coding. A mode byte selects the decoder path.
void EncodeAdaptiveDoubleColumn(ByteWriter& out,
                                std::span<const double> values,
                                double denominator = 1e6);
std::vector<double> DecodeAdaptiveDoubleColumn(ByteReader& in,
                                               std::size_t count);

// 32-bit floats stored as raw little-endian words.
void EncodeF32Column(ByteWriter& out, std::span<const float> values);
std::vector<float> DecodeF32Column(ByteReader& in, std::size_t count);

}  // namespace blot

#endif  // BLOT_CODEC_COLUMNAR_H_
