// General-purpose block compression codecs.
//
// The paper's encoding schemes optionally apply "a general compression
// algorithm such as Gzip" to each partition (Section II-C) and evaluate
// Snappy, Gzip, and LZMA2 (Table I). Since this reproduction must be fully
// self-contained, we implement three from-scratch codecs occupying the
// same design points on the ratio/speed frontier:
//
//   kSnappyLike — byte-oriented LZ77, greedy hashing, no entropy stage:
//                 fastest, lowest ratio (stands in for Snappy).
//   kGzipLike   — LZSS over a 32 KiB window + canonical Huffman coding:
//                 medium speed and ratio (stands in for Gzip/DEFLATE).
//   kLzmaLike   — LZ over a 1 MiB window + adaptive binary range coder:
//                 slowest, highest ratio (stands in for LZMA2).
//
// Every codec frames its output with the uncompressed size, and
// Decompress() validates framing, throwing CorruptData on malformed input.
#ifndef BLOT_CODEC_CODEC_H_
#define BLOT_CODEC_CODEC_H_

#include <memory>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace blot {

enum class CodecKind {
  kNone,        // identity (no compression)
  kSnappyLike,  // fast LZ, no entropy coding
  kGzipLike,    // LZSS + canonical Huffman
  kLzmaLike,    // LZ + adaptive range coder
};

// Short stable identifier ("PLAIN", "SNAPPY", "GZIP", "LZMA").
std::string_view CodecKindName(CodecKind kind);

// Parses the identifier produced by CodecKindName. Throws InvalidArgument
// on unknown names.
CodecKind CodecKindFromName(std::string_view name);

// All codec kinds, in increasing compression-effort order.
std::vector<CodecKind> AllCodecKinds();

// Abstract block codec. Implementations are stateless and thread-safe:
// one instance may compress/decompress concurrently from many threads.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecKind kind() const = 0;
  std::string_view name() const { return CodecKindName(kind()); }

  // Compresses `input` into a self-describing frame.
  virtual Bytes Compress(BytesView input) const = 0;

  // Inverse of Compress. Throws CorruptData if `input` is not a valid
  // frame produced by this codec.
  virtual Bytes Decompress(BytesView input) const = 0;
};

// Returns the process-wide instance for `kind`; never null.
const Codec& GetCodec(CodecKind kind);

}  // namespace blot

#endif  // BLOT_CODEC_CODEC_H_
