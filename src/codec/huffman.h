// Canonical Huffman coding (DEFLATE-style, MSB-first code bits).
//
// Used by the Gzip-class codec: code lengths are derived from symbol
// frequencies with a 15-bit length limit, transmitted in the frame header,
// and both sides reconstruct identical canonical codes from the lengths.
#ifndef BLOT_CODEC_HUFFMAN_H_
#define BLOT_CODEC_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "codec/bitstream.h"

namespace blot {

inline constexpr int kMaxHuffmanBits = 15;

// Computes canonical code lengths (<= kMaxHuffmanBits) for the given
// symbol frequencies. Symbols with zero frequency get length 0 (no code).
// If only one symbol occurs it is assigned length 1.
std::vector<std::uint8_t> BuildHuffmanCodeLengths(
    const std::vector<std::uint64_t>& frequencies);

// Encoder table: canonical code bits per symbol, derived from lengths.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  // Writes the code for `symbol` (which must have a non-zero length).
  void Write(BitWriter& out, std::size_t symbol) const;

 private:
  std::vector<std::uint16_t> codes_;
  std::vector<std::uint8_t> lengths_;
};

// Decoder table over the same canonical code.
class HuffmanDecoder {
 public:
  // Throws CorruptData if `lengths` does not describe a prefix code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  // Reads one symbol. Throws CorruptData on invalid codes or truncation.
  std::size_t Read(BitReader& in) const;

 private:
  std::vector<std::uint16_t> first_code_;   // per bit length
  std::vector<std::uint32_t> first_index_;  // per bit length
  std::vector<std::uint16_t> count_;        // per bit length
  std::vector<std::uint32_t> symbols_;      // sorted by (length, symbol)
};

}  // namespace blot

#endif  // BLOT_CODEC_HUFFMAN_H_
