#include "codec/range_coder.h"

#include "util/error.h"

namespace blot {

namespace {
constexpr std::uint32_t kTopValue = 1u << 24;
}  // namespace

void RangeEncoder::EncodeBit(BitProb& p, std::uint32_t bit) {
  const std::uint32_t bound = (range_ >> kProbBits) * p;
  if (bit == 0) {
    range_ = bound;
    p = static_cast<BitProb>(p + (((1u << kProbBits) - p) >> kProbMoveBits));
  } else {
    low_ += bound;
    range_ -= bound;
    p = static_cast<BitProb>(p - (p >> kProbMoveBits));
  }
  while (range_ < kTopValue) {
    ShiftLow();
    range_ <<= 8;
  }
}

void RangeEncoder::EncodeDirectBits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    range_ >>= 1;
    if ((value >> i) & 1u) low_ += range_;
    while (range_ < kTopValue) {
      ShiftLow();
      range_ <<= 8;
    }
  }
}

void RangeEncoder::EncodeBitTree(std::vector<BitProb>& probs, int bits,
                                 std::uint32_t value) {
  std::uint32_t node = 1;
  for (int i = bits - 1; i >= 0; --i) {
    const std::uint32_t bit = (value >> i) & 1u;
    EncodeBit(probs[node], bit);
    node = (node << 1) | bit;
  }
}

void RangeEncoder::ShiftLow() {
  if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    const std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
    std::uint8_t byte = cache_;
    do {
      out_.push_back(static_cast<std::uint8_t>(byte + carry));
      byte = 0xFF;
    } while (--cache_size_ != 0);
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xFFFFFFFFull;
}

Bytes RangeEncoder::Finish() {
  for (int i = 0; i < 5; ++i) ShiftLow();
  return std::move(out_);
}

RangeDecoder::RangeDecoder(BytesView data) : data_(data) {
  // The first preamble byte is always zero by construction of the encoder
  // cache; the following four initialize the code register.
  NextByte();
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | NextByte();
}

std::uint8_t RangeDecoder::NextByte() {
  // Reads past the end decode as zero; the caller validates the final
  // output size, which catches truncation.
  if (position_ >= data_.size()) return 0;
  return data_[position_++];
}

void RangeDecoder::Normalize() {
  while (range_ < kTopValue) {
    code_ = (code_ << 8) | NextByte();
    range_ <<= 8;
  }
}

std::uint32_t RangeDecoder::DecodeBit(BitProb& p) {
  const std::uint32_t bound = (range_ >> kProbBits) * p;
  std::uint32_t bit;
  if (code_ < bound) {
    range_ = bound;
    p = static_cast<BitProb>(p + (((1u << kProbBits) - p) >> kProbMoveBits));
    bit = 0;
  } else {
    code_ -= bound;
    range_ -= bound;
    p = static_cast<BitProb>(p - (p >> kProbMoveBits));
    bit = 1;
  }
  Normalize();
  return bit;
}

std::uint32_t RangeDecoder::DecodeDirectBits(int count) {
  std::uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    range_ >>= 1;
    std::uint32_t bit = 0;
    if (code_ >= range_) {
      code_ -= range_;
      bit = 1;
    }
    value = (value << 1) | bit;
    Normalize();
  }
  return value;
}

std::uint32_t RangeDecoder::DecodeBitTree(std::vector<BitProb>& probs,
                                          int bits) {
  std::uint32_t node = 1;
  for (int i = 0; i < bits; ++i) node = (node << 1) | DecodeBit(probs[node]);
  return node - (1u << bits);
}

}  // namespace blot
