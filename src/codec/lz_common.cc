#include "codec/lz_common.h"

#include <algorithm>

#include "util/error.h"

namespace blot {
namespace {

constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

}  // namespace

HashChainMatcher::HashChainMatcher(BytesView input, const Options& options)
    : input_(input),
      options_(options),
      head_(kHashSize, -1),
      prev_(input.size(), -1) {
  require(options_.min_match >= 3, "HashChainMatcher: min_match must be >= 3");
  require(options_.max_match >= options_.min_match,
          "HashChainMatcher: max_match < min_match");
  require(options_.window_size > 0, "HashChainMatcher: empty window");
}

std::uint32_t HashChainMatcher::HashAt(std::size_t pos) const {
  // Multiplicative hash of the next 4 bytes (padded reads are guarded by
  // callers: FindMatch/Insert skip positions within 4 bytes of the end).
  std::uint32_t v = static_cast<std::uint32_t>(input_[pos]) |
                    (static_cast<std::uint32_t>(input_[pos + 1]) << 8) |
                    (static_cast<std::uint32_t>(input_[pos + 2]) << 16) |
                    (static_cast<std::uint32_t>(input_[pos + 3]) << 24);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

LzMatch HashChainMatcher::FindMatch(std::size_t pos) const {
  LzMatch best;
  if (pos + 4 > input_.size()) return best;
  const std::size_t max_len = std::min<std::size_t>(
      options_.max_match, input_.size() - pos);
  if (max_len < options_.min_match) return best;

  std::int64_t candidate = head_[HashAt(pos)];
  const std::int64_t window_start =
      static_cast<std::int64_t>(pos) -
      static_cast<std::int64_t>(options_.window_size);
  std::uint32_t probes = options_.max_chain;
  while (candidate >= 0 && candidate >= window_start && probes-- > 0) {
    const std::size_t c = static_cast<std::size_t>(candidate);
    // Cheap reject: compare the byte just past the current best length.
    if (best.length == 0 ||
        (best.length < max_len &&
         input_[c + best.length] == input_[pos + best.length])) {
      std::size_t len = 0;
      while (len < max_len && input_[c + len] == input_[pos + len]) ++len;
      if (len >= options_.min_match && len > best.length) {
        best.length = static_cast<std::uint32_t>(len);
        best.distance = static_cast<std::uint32_t>(pos - c);
        if (len == max_len) break;
      }
    }
    candidate = prev_[c];
  }
  return best;
}

void HashChainMatcher::Insert(std::size_t pos) {
  if (pos + 4 > input_.size()) return;
  const std::uint32_t h = HashAt(pos);
  prev_[pos] = head_[h];
  head_[h] = static_cast<std::int64_t>(pos);
}

}  // namespace blot
