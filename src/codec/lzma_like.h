// High-ratio LZ codec (LZMA design point): deep LZ77 search over a 1 MiB
// window, with all tokens entropy-coded by an adaptive binary range coder.
//
// Model (a simplified LZMA):
//   - one adaptive is-match bit per token;
//   - literals coded through an order-1 context (previous byte) over a
//     256-leaf bit tree;
//   - match lengths 3..258 coded through a 256-leaf bit tree;
//   - distances coded as a 6-bit slot (bit tree) plus direct bits, the
//     LZMA distance-slot scheme.
//
// Frame layout: varint uncompressed size, then the range-coded stream.
#ifndef BLOT_CODEC_LZMA_LIKE_H_
#define BLOT_CODEC_LZMA_LIKE_H_

#include "codec/codec.h"

namespace blot {

class LzmaLikeCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kLzmaLike; }
  Bytes Compress(BytesView input) const override;
  Bytes Decompress(BytesView input) const override;
};

}  // namespace blot

#endif  // BLOT_CODEC_LZMA_LIKE_H_
