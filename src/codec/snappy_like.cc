#include "codec/snappy_like.h"

#include <algorithm>

#include "codec/lz_common.h"
#include "util/error.h"

namespace blot {
namespace {

constexpr std::uint32_t kMinMatch = 4;
constexpr std::uint32_t kMaxMatch = 67;
constexpr std::uint32_t kWindow = 65535;

void EmitLiteral(ByteWriter& out, BytesView input, std::size_t start,
                 std::size_t length) {
  while (length > 0) {
    const std::size_t chunk = std::min<std::size_t>(length, 65536);
    if (chunk <= 60) {
      out.PutU8(static_cast<std::uint8_t>((chunk - 1) << 2));
    } else if (chunk <= 256) {
      out.PutU8(61 << 2);
      out.PutU8(static_cast<std::uint8_t>(chunk - 1));
    } else {
      out.PutU8(62 << 2);
      out.PutU16(static_cast<std::uint16_t>(chunk - 1));
    }
    out.PutBytes(input.subspan(start, chunk));
    start += chunk;
    length -= chunk;
  }
}

void EmitCopy(ByteWriter& out, std::uint32_t length, std::uint32_t distance) {
  out.PutU8(static_cast<std::uint8_t>(((length - kMinMatch) << 2) | 2));
  out.PutU16(static_cast<std::uint16_t>(distance));
}

}  // namespace

Bytes SnappyLikeCodec::Compress(BytesView input) const {
  ByteWriter out;
  out.PutVarint(input.size());

  HashChainMatcher matcher(
      input, {.window_size = kWindow,
              .min_match = kMinMatch,
              .max_match = kMaxMatch,
              .max_chain = 4});
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos < input.size()) {
    const LzMatch match = matcher.FindMatch(pos);
    if (match.length >= kMinMatch) {
      if (pos > literal_start)
        EmitLiteral(out, input, literal_start, pos - literal_start);
      EmitCopy(out, match.length, match.distance);
      for (std::uint32_t i = 0; i < match.length; ++i) matcher.Insert(pos + i);
      pos += match.length;
      literal_start = pos;
    } else {
      matcher.Insert(pos);
      ++pos;
    }
  }
  if (pos > literal_start)
    EmitLiteral(out, input, literal_start, pos - literal_start);
  return out.Take();
}

Bytes SnappyLikeCodec::Decompress(BytesView input) const {
  ByteReader in(input);
  const std::uint64_t expected_size = in.GetVarint();
  // The declared size is untrusted: a copy element expands at most
  // 3 bytes -> kMaxMatch bytes and literals are 1:1, so any valid frame
  // obeys this bound.
  validate(expected_size <= input.size() * (kMaxMatch / 3 + 1),
           "SnappyLike: implausible declared size");
  Bytes out;
  out.reserve(expected_size);
  while (!in.AtEnd()) {
    validate(out.size() <= expected_size,
             "SnappyLike: output exceeds declared size");
    const std::uint8_t tag = in.GetU8();
    if ((tag & 3) == 0) {
      std::size_t len = (tag >> 2) + 1;
      if ((tag >> 2) == 61) {
        len = std::size_t{in.GetU8()} + 1;
      } else if ((tag >> 2) == 62) {
        len = std::size_t{in.GetU16()} + 1;
      } else {
        validate((tag >> 2) <= 60, "SnappyLike: bad literal tag");
      }
      BytesView literal = in.GetBytes(len);
      out.insert(out.end(), literal.begin(), literal.end());
    } else if ((tag & 3) == 2) {
      const std::size_t len = (tag >> 2) + kMinMatch;
      const std::size_t distance = in.GetU16();
      validate(distance >= 1 && distance <= out.size(),
               "SnappyLike: copy distance out of range");
      // Byte-by-byte copy: overlapping copies (distance < length) must
      // replicate already-produced output.
      std::size_t from = out.size() - distance;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    } else {
      throw CorruptData("SnappyLike: unknown tag");
    }
  }
  validate(out.size() == expected_size,
           "SnappyLike: size mismatch after decompression");
  return out;
}

}  // namespace blot
