// Bit-level I/O used by the Huffman stage of the Gzip-class codec.
//
// Bits are packed LSB-first within each byte (DEFLATE convention).
#ifndef BLOT_CODEC_BITSTREAM_H_
#define BLOT_CODEC_BITSTREAM_H_

#include <cstdint>

#include "util/bytes.h"

namespace blot {

class BitWriter {
 public:
  // Writes the low `count` bits of `bits` (0 <= count <= 32),
  // least-significant bit first.
  void WriteBits(std::uint32_t bits, int count);

  // Pads the current byte with zero bits and returns the buffer.
  Bytes Finish();

  std::size_t BitCount() const { return buffer_.size() * 8 + bit_position_; }

 private:
  Bytes buffer_;
  std::uint8_t current_ = 0;
  int bit_position_ = 0;
};

class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  // Reads `count` bits (0 <= count <= 32), least-significant bit first.
  // Throws CorruptData past end of input.
  std::uint32_t ReadBits(int count);

  // Reads a single bit.
  std::uint32_t ReadBit();

  // Number of whole bits still available.
  std::size_t RemainingBits() const {
    return data_.size() * 8 - bit_position_;
  }

 private:
  BytesView data_;
  std::size_t bit_position_ = 0;
};

}  // namespace blot

#endif  // BLOT_CODEC_BITSTREAM_H_
