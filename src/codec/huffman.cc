#include "codec/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace blot {
namespace {

// Plain heap-based Huffman tree construction returning per-symbol depths.
std::vector<std::uint8_t> TreeDepths(
    const std::vector<std::uint64_t>& frequencies) {
  struct Node {
    std::uint64_t freq;
    int left;   // node index or -1
    int right;  // node index or -1
    int symbol; // leaf symbol or -1
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t s = 0; s < frequencies.size(); ++s) {
    if (frequencies[s] == 0) continue;
    nodes.push_back({frequencies[s], -1, -1, static_cast<int>(s)});
    heap.emplace(frequencies[s], static_cast<int>(nodes.size()) - 1);
  }
  std::vector<std::uint8_t> depths(frequencies.size(), 0);
  if (nodes.empty()) return depths;
  if (nodes.size() == 1) {
    depths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, a, b, -1});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Iterative depth assignment from the root.
  std::vector<std::pair<int, std::uint8_t>> stack;
  stack.emplace_back(heap.top().second, 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      depths[static_cast<std::size_t>(node.symbol)] =
          std::max<std::uint8_t>(depth, 1);
    } else {
      stack.emplace_back(node.left, static_cast<std::uint8_t>(depth + 1));
      stack.emplace_back(node.right, static_cast<std::uint8_t>(depth + 1));
    }
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> BuildHuffmanCodeLengths(
    const std::vector<std::uint64_t>& frequencies) {
  // If the unconstrained tree exceeds the length limit, flatten the
  // frequency distribution and retry; this converges because repeated
  // halving drives all frequencies towards 1 (a balanced tree), whose
  // depth ceil(log2(n)) <= 15 for n <= 2^15 symbols.
  require(frequencies.size() <= (std::size_t{1} << kMaxHuffmanBits),
          "BuildHuffmanCodeLengths: alphabet too large for length limit");
  std::vector<std::uint64_t> adjusted = frequencies;
  for (;;) {
    std::vector<std::uint8_t> depths = TreeDepths(adjusted);
    const std::uint8_t max_depth =
        depths.empty() ? 0 : *std::max_element(depths.begin(), depths.end());
    if (max_depth <= kMaxHuffmanBits) return depths;
    for (auto& f : adjusted)
      if (f > 0) f = (f + 1) / 2;
  }
}

namespace {

// Canonical code values: symbols sorted by (length, symbol index) get
// consecutive codes, starting each length at (prev_first + prev_count)<<1.
std::vector<std::uint16_t> CanonicalCodes(
    const std::vector<std::uint8_t>& lengths) {
  std::vector<std::uint16_t> count(kMaxHuffmanBits + 1, 0);
  for (std::uint8_t len : lengths)
    if (len > 0) count[len]++;
  std::vector<std::uint16_t> next_code(kMaxHuffmanBits + 1, 0);
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + count[len - 1]) << 1;
    validate(code + count[len] <= (1u << len) + 0u ||
                 count[len] == 0,
             "CanonicalCodes: over-subscribed code lengths");
    next_code[len] = static_cast<std::uint16_t>(code);
  }
  std::vector<std::uint16_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

}  // namespace

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : codes_(CanonicalCodes(lengths)), lengths_(lengths) {}

void HuffmanEncoder::Write(BitWriter& out, std::size_t symbol) const {
  ensure(symbol < lengths_.size() && lengths_[symbol] > 0,
         "HuffmanEncoder: symbol has no code");
  const std::uint16_t code = codes_[symbol];
  const int len = lengths_[symbol];
  for (int i = len - 1; i >= 0; --i) out.WriteBits((code >> i) & 1u, 1);
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths)
    : first_code_(kMaxHuffmanBits + 1, 0),
      first_index_(kMaxHuffmanBits + 1, 0),
      count_(kMaxHuffmanBits + 1, 0) {
  for (std::uint8_t len : lengths) {
    validate(len <= kMaxHuffmanBits, "HuffmanDecoder: code length too long");
    if (len > 0) count_[len]++;
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code + count_[len - 1]) << 1;
    validate(code + count_[len] <= (1u << len),
             "HuffmanDecoder: over-subscribed code lengths");
    first_code_[len] = static_cast<std::uint16_t>(code);
    first_index_[len] = index;
    index += count_[len];
  }
  symbols_.resize(index);
  std::vector<std::uint32_t> next_index(first_index_);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    symbols_[next_index[lengths[s]]++] = static_cast<std::uint32_t>(s);
  }
}

std::size_t HuffmanDecoder::Read(BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code << 1) | in.ReadBit();
    const std::uint32_t offset = code - first_code_[len];
    if (code >= first_code_[len] && offset < count_[len])
      return symbols_[first_index_[len] + offset];
  }
  throw CorruptData("HuffmanDecoder: invalid code");
}

}  // namespace blot
