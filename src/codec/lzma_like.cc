#include "codec/lzma_like.h"

#include <algorithm>
#include <bit>

#include "codec/lz_common.h"
#include "codec/range_coder.h"
#include "util/error.h"

namespace blot {
namespace {

constexpr std::uint32_t kMinMatch = 3;
constexpr std::uint32_t kMaxMatch = 258;
constexpr std::uint32_t kWindow = 1u << 20;
constexpr int kNumSlotBits = 6;

// The probability model shared by encoder and decoder. All trees use the
// standard "node index" layout where probs[1] is the root.
struct Model {
  BitProb is_match = kProbInit;
  // Repeated-distance flag: reuse the previous match distance (LZMA's
  // rep0). Fixed-stride record data repeats distances constantly, so one
  // cheap bit replaces a whole distance encoding.
  BitProb is_rep = kProbInit;
  // 256 order-1 contexts x 256-leaf literal tree.
  std::vector<std::vector<BitProb>> literal;
  std::vector<BitProb> length;
  std::vector<BitProb> rep_length;
  std::vector<BitProb> dist_slot;
  // Adaptive probabilities for distance direct bits, one per bit index.
  std::vector<BitProb> dist_direct;

  Model()
      : literal(256, std::vector<BitProb>(256, kProbInit)),
        length(256, kProbInit),
        rep_length(256, kProbInit),
        dist_slot(1u << kNumSlotBits, kProbInit),
        dist_direct(32, kProbInit) {}
};

// Distance slot for value = distance - 1: slots 0..3 are the value itself;
// larger slots encode (top two bits, exponent) as in LZMA.
std::uint32_t DistSlot(std::uint32_t value) {
  if (value < 4) return value;
  int msb = 31 - std::countl_zero(value);
  return static_cast<std::uint32_t>(2 * msb) + ((value >> (msb - 1)) & 1u);
}

std::uint32_t SlotBase(std::uint32_t slot) {
  if (slot < 4) return slot;
  return (2u | (slot & 1u)) << (slot / 2 - 1);
}

int SlotDirectBits(std::uint32_t slot) {
  if (slot < 4) return 0;
  return static_cast<int>(slot / 2 - 1);
}

void EncodeDistance(RangeEncoder& rc, Model& model, std::uint32_t distance) {
  const std::uint32_t value = distance - 1;
  const std::uint32_t slot = DistSlot(value);
  rc.EncodeBitTree(model.dist_slot, kNumSlotBits, slot);
  const int direct = SlotDirectBits(slot);
  if (direct == 0) return;
  const std::uint32_t rest = value - SlotBase(slot);
  // Adaptive per-bit-position probabilities rather than raw direct bits:
  // distances in partition data are highly repetitive, so this pays off.
  for (int i = direct - 1; i >= 0; --i)
    rc.EncodeBit(model.dist_direct[static_cast<std::size_t>(i)],
                 (rest >> i) & 1u);
}

std::uint32_t DecodeDistance(RangeDecoder& rc, Model& model) {
  const std::uint32_t slot =
      rc.DecodeBitTree(model.dist_slot, kNumSlotBits);
  const int direct = SlotDirectBits(slot);
  std::uint32_t value = SlotBase(slot);
  for (int i = direct - 1; i >= 0; --i)
    value |= rc.DecodeBit(model.dist_direct[static_cast<std::size_t>(i)])
             << i;
  return value + 1;
}

}  // namespace

Bytes LzmaLikeCodec::Compress(BytesView input) const {
  ByteWriter out;
  out.PutVarint(input.size());

  Model model;
  RangeEncoder rc;
  HashChainMatcher matcher(
      input, {.window_size = kWindow,
              .min_match = kMinMatch,
              .max_match = kMaxMatch,
              .max_chain = 256});
  std::size_t pos = 0;
  std::uint8_t prev_byte = 0;
  std::uint32_t last_distance = 0;

  // Longest match at the previously used distance, the rep0 candidate.
  const auto rep_match_length = [&](std::size_t at) -> std::uint32_t {
    if (last_distance == 0 || at < last_distance) return 0;
    const std::size_t limit =
        std::min<std::size_t>(kMaxMatch, input.size() - at);
    std::uint32_t len = 0;
    while (len < limit && input[at + len] == input[at - last_distance + len])
      ++len;
    return len;
  };

  while (pos < input.size()) {
    LzMatch match = matcher.FindMatch(pos);
    // Prefer the repeated distance unless the fresh match is notably
    // longer: a rep match costs one flag bit instead of a full distance.
    const std::uint32_t rep_len = rep_match_length(pos);
    const bool use_rep =
        rep_len >= kMinMatch && rep_len + 1 >= match.length;
    if (use_rep) {
      match.length = rep_len;
      match.distance = last_distance;
    }
    if (match.length >= kMinMatch) {
      const LzMatch next =
          pos + 1 < input.size() ? matcher.FindMatch(pos + 1) : LzMatch{};
      if (!use_rep && next.length > match.length) match.length = 0;
    }
    if (match.length >= kMinMatch) {
      rc.EncodeBit(model.is_match, 1);
      if (use_rep) {
        rc.EncodeBit(model.is_rep, 1);
        rc.EncodeBitTree(model.rep_length, 8, match.length - kMinMatch);
      } else {
        rc.EncodeBit(model.is_rep, 0);
        rc.EncodeBitTree(model.length, 8, match.length - kMinMatch);
        EncodeDistance(rc, model, match.distance);
        last_distance = match.distance;
      }
      for (std::uint32_t i = 0; i < match.length; ++i) matcher.Insert(pos + i);
      pos += match.length;
      prev_byte = input[pos - 1];
    } else {
      rc.EncodeBit(model.is_match, 0);
      rc.EncodeBitTree(model.literal[prev_byte], 8, input[pos]);
      matcher.Insert(pos);
      prev_byte = input[pos];
      ++pos;
    }
  }
  out.PutBytes(rc.Finish());
  return out.Take();
}

Bytes LzmaLikeCodec::Decompress(BytesView input) const {
  ByteReader in(input);
  const std::uint64_t expected_size = in.GetVarint();
  // The declared size is untrusted. Even at fully saturated adaptive
  // probabilities a symbol costs well above 1/2048 bits, so legitimate
  // expansion is bounded by a (generous) constant per input byte; this
  // also bounds the decode loop on truncated streams, whose reader yields
  // zero bytes forever.
  validate(expected_size <= (input.size() + 16) * 300000,
           "LzmaLike: implausible declared size");
  Model model;
  RangeDecoder rc(in.GetBytes(in.remaining()));
  Bytes out;
  // The declared size is untrusted: cap the up-front reservation (the
  // decode loop is already bounded by expected_size, so memory only grows
  // with bytes actually produced).
  out.reserve(std::min<std::uint64_t>(expected_size, 1u << 22));
  std::uint8_t prev_byte = 0;
  std::uint32_t last_distance = 0;
  while (out.size() < expected_size) {
    if (rc.DecodeBit(model.is_match) == 0) {
      prev_byte = static_cast<std::uint8_t>(
          rc.DecodeBitTree(model.literal[prev_byte], 8));
      out.push_back(prev_byte);
      continue;
    }
    std::uint32_t length, distance;
    if (rc.DecodeBit(model.is_rep) == 1) {
      validate(last_distance != 0, "LzmaLike: rep match before any match");
      length = rc.DecodeBitTree(model.rep_length, 8) + kMinMatch;
      distance = last_distance;
    } else {
      length = rc.DecodeBitTree(model.length, 8) + kMinMatch;
      distance = DecodeDistance(rc, model);
      last_distance = distance;
    }
    validate(distance >= 1 && distance <= out.size(),
             "LzmaLike: copy distance out of range");
    validate(out.size() + length <= expected_size,
             "LzmaLike: match overruns declared size");
    std::size_t from = out.size() - distance;
    for (std::uint32_t i = 0; i < length; ++i) out.push_back(out[from + i]);
    prev_byte = out.back();
  }
  return out;
}

}  // namespace blot
