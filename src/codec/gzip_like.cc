#include "codec/gzip_like.h"

#include <algorithm>
#include <array>

#include "codec/bitstream.h"
#include "codec/huffman.h"
#include "codec/lz_common.h"
#include "util/error.h"

namespace blot {
namespace {

constexpr std::uint8_t kFrameStored = 0;
constexpr std::uint8_t kFrameHuffman = 1;

constexpr std::size_t kEndOfBlock = 256;
constexpr std::size_t kNumLitLenSymbols = 286;
constexpr std::size_t kNumDistSymbols = 30;

// DEFLATE length codes 257..285: base length and number of extra bits.
constexpr std::array<std::uint16_t, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance codes 0..29: base distance and number of extra bits.
constexpr std::array<std::uint32_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Maps a match length in [3, 258] to its length-code index in [0, 28].
std::size_t LengthCodeIndex(std::uint32_t length) {
  for (std::size_t i = kLengthBase.size(); i-- > 0;) {
    if (length >= kLengthBase[i]) return i;
  }
  throw InternalError("GzipLike: match length below minimum");
}

// Maps a distance in [1, 32768] to its distance-code index in [0, 29].
std::size_t DistCodeIndex(std::uint32_t distance) {
  for (std::size_t i = kDistBase.size(); i-- > 0;) {
    if (distance >= kDistBase[i]) return i;
  }
  throw InternalError("GzipLike: distance below minimum");
}

// Code-length tables are mostly runs (unused symbols are zero); RLE them
// as (length, varint run) pairs — DEFLATE compresses its tables for the
// same reason.
void PutCodeLengths(ByteWriter& out, const std::vector<std::uint8_t>& lengths) {
  std::size_t i = 0;
  while (i < lengths.size()) {
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == lengths[i]) ++run;
    out.PutU8(lengths[i]);
    out.PutVarint(run);
    i += run;
  }
}

std::vector<std::uint8_t> GetCodeLengths(ByteReader& in, std::size_t count) {
  std::vector<std::uint8_t> lengths;
  lengths.reserve(count);
  while (lengths.size() < count) {
    const std::uint8_t length = in.GetU8();
    const std::uint64_t run = in.GetVarint();
    validate(run > 0 && lengths.size() + run <= count,
             "GzipLike: code-length run overflows table");
    lengths.insert(lengths.end(), static_cast<std::size_t>(run), length);
  }
  return lengths;
}

struct Token {
  // literal if length == 0 (value holds the byte), match otherwise.
  std::uint32_t length = 0;
  std::uint32_t distance = 0;
  std::uint8_t literal = 0;
};

// LZSS tokenization with one-step lazy matching, as in zlib's deflate.
std::vector<Token> Tokenize(BytesView input) {
  std::vector<Token> tokens;
  HashChainMatcher matcher(
      input,
      {.window_size = 32768, .min_match = 3, .max_match = 258,
       .max_chain = 64});
  std::size_t pos = 0;
  while (pos < input.size()) {
    LzMatch match = matcher.FindMatch(pos);
    if (match.length >= 3) {
      // Lazy evaluation: prefer a strictly longer match starting one byte
      // later; emit the current byte as a literal in that case.
      const LzMatch next =
          pos + 1 < input.size() ? matcher.FindMatch(pos + 1) : LzMatch{};
      if (next.length > match.length) {
        tokens.push_back({.literal = input[pos]});
        matcher.Insert(pos);
        ++pos;
        continue;
      }
      tokens.push_back({.length = match.length, .distance = match.distance});
      for (std::uint32_t i = 0; i < match.length; ++i)
        matcher.Insert(pos + i);
      pos += match.length;
    } else {
      tokens.push_back({.literal = input[pos]});
      matcher.Insert(pos);
      ++pos;
    }
  }
  return tokens;
}

}  // namespace

Bytes GzipLikeCodec::Compress(BytesView input) const {
  const std::vector<Token> tokens = Tokenize(input);

  std::vector<std::uint64_t> litlen_freq(kNumLitLenSymbols, 0);
  std::vector<std::uint64_t> dist_freq(kNumDistSymbols, 0);
  litlen_freq[kEndOfBlock] = 1;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litlen_freq[t.literal]++;
    } else {
      litlen_freq[257 + LengthCodeIndex(t.length)]++;
      dist_freq[DistCodeIndex(t.distance)]++;
    }
  }
  const std::vector<std::uint8_t> litlen_lengths =
      BuildHuffmanCodeLengths(litlen_freq);
  const std::vector<std::uint8_t> dist_lengths =
      BuildHuffmanCodeLengths(dist_freq);
  const HuffmanEncoder litlen_encoder(litlen_lengths);
  const HuffmanEncoder dist_encoder(dist_lengths);

  BitWriter bits;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litlen_encoder.Write(bits, t.literal);
      continue;
    }
    const std::size_t lc = LengthCodeIndex(t.length);
    litlen_encoder.Write(bits, 257 + lc);
    bits.WriteBits(t.length - kLengthBase[lc], kLengthExtra[lc]);
    const std::size_t dc = DistCodeIndex(t.distance);
    dist_encoder.Write(bits, dc);
    bits.WriteBits(t.distance - kDistBase[dc], kDistExtra[dc]);
  }
  litlen_encoder.Write(bits, kEndOfBlock);
  const Bytes payload = bits.Finish();

  ByteWriter out;
  out.PutVarint(input.size());
  // Header: flag + RLE'd code-length tables + payload. Fall back to a
  // stored frame when Huffman coding does not pay off.
  ByteWriter tables;
  PutCodeLengths(tables, litlen_lengths);
  PutCodeLengths(tables, dist_lengths);
  if (1 + tables.size() + payload.size() >= input.size()) {
    out.PutU8(kFrameStored);
    out.PutBytes(input);
    return out.Take();
  }
  out.PutU8(kFrameHuffman);
  out.PutBytes(tables.buffer());
  out.PutBytes(payload);
  return out.Take();
}

Bytes GzipLikeCodec::Decompress(BytesView input) const {
  ByteReader in(input);
  const std::uint64_t expected_size = in.GetVarint();
  const std::uint8_t flag = in.GetU8();
  if (flag == kFrameStored) {
    BytesView stored = in.GetBytes(static_cast<std::size_t>(expected_size));
    validate(in.AtEnd(), "GzipLike: trailing bytes after stored frame");
    return Bytes(stored.begin(), stored.end());
  }
  validate(flag == kFrameHuffman, "GzipLike: unknown frame flag");

  const std::vector<std::uint8_t> litlen_lengths =
      GetCodeLengths(in, kNumLitLenSymbols);
  const std::vector<std::uint8_t> dist_lengths =
      GetCodeLengths(in, kNumDistSymbols);
  const HuffmanDecoder litlen_decoder(litlen_lengths);
  const HuffmanDecoder dist_decoder(dist_lengths);

  BitReader bits(in.GetBytes(in.remaining()));
  Bytes out;
  // The declared size is untrusted; cap the up-front reservation and
  // bound the decode loop by it (valid frames never overrun).
  out.reserve(std::min<std::uint64_t>(expected_size, 1u << 22));
  for (;;) {
    validate(out.size() <= expected_size,
             "GzipLike: output exceeds declared size");
    const std::size_t symbol = litlen_decoder.Read(bits);
    if (symbol == kEndOfBlock) break;
    if (symbol < 256) {
      out.push_back(static_cast<std::uint8_t>(symbol));
      continue;
    }
    const std::size_t lc = symbol - 257;
    validate(lc < kLengthBase.size(), "GzipLike: bad length symbol");
    const std::uint32_t length =
        kLengthBase[lc] + bits.ReadBits(kLengthExtra[lc]);
    const std::size_t dc = dist_decoder.Read(bits);
    validate(dc < kDistBase.size(), "GzipLike: bad distance symbol");
    const std::uint32_t distance =
        kDistBase[dc] + bits.ReadBits(kDistExtra[dc]);
    validate(distance >= 1 && distance <= out.size(),
             "GzipLike: copy distance out of range");
    std::size_t from = out.size() - distance;
    for (std::uint32_t i = 0; i < length; ++i) out.push_back(out[from + i]);
  }
  validate(out.size() == expected_size,
           "GzipLike: size mismatch after decompression");
  return out;
}

}  // namespace blot
