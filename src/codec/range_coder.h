// Adaptive binary range coder (LZMA design point).
//
// Probabilities are 11-bit adaptive counters updated with shift-5
// exponential decay, the exact scheme of the LZMA reference coder. The
// encoder carries the standard cache/cache-size mechanism to propagate
// carries into already-emitted bytes.
#ifndef BLOT_CODEC_RANGE_CODER_H_
#define BLOT_CODEC_RANGE_CODER_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace blot {

// One adaptive binary probability state.
using BitProb = std::uint16_t;

inline constexpr int kProbBits = 11;
inline constexpr BitProb kProbInit = (1u << kProbBits) / 2;
inline constexpr int kProbMoveBits = 5;

class RangeEncoder {
 public:
  // Encodes one bit under the adaptive probability `p` (updated in place).
  void EncodeBit(BitProb& p, std::uint32_t bit);

  // Encodes `count` bits of `value` (MSB first) with probability 1/2 each.
  void EncodeDirectBits(std::uint32_t value, int count);

  // Encodes `value` in [0, 2^bits) through a bit tree rooted at probs[1];
  // `probs` must hold at least 2^bits entries.
  void EncodeBitTree(std::vector<BitProb>& probs, int bits,
                     std::uint32_t value);

  // Flushes pending state and returns the encoded bytes.
  Bytes Finish();

 private:
  void ShiftLow();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  Bytes out_;
};

class RangeDecoder {
 public:
  // Begins decoding; consumes the 5-byte preamble.
  explicit RangeDecoder(BytesView data);

  std::uint32_t DecodeBit(BitProb& p);
  std::uint32_t DecodeDirectBits(int count);
  std::uint32_t DecodeBitTree(std::vector<BitProb>& probs, int bits);

 private:
  std::uint8_t NextByte();
  void Normalize();

  BytesView data_;
  std::size_t position_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

}  // namespace blot

#endif  // BLOT_CODEC_RANGE_CODER_H_
