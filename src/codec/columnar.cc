#include "codec/columnar.h"

#include <bit>
#include <cmath>

#include "util/error.h"

namespace blot {

void EncodeDeltaColumn(ByteWriter& out,
                       std::span<const std::int64_t> values) {
  // Deltas wrap modulo 2^64 (extreme values overflow int64); unsigned
  // arithmetic keeps the wraparound well-defined and the decoder's
  // matching addition undoes it exactly.
  std::uint64_t prev = 0;
  for (std::int64_t v : values) {
    const std::uint64_t u = static_cast<std::uint64_t>(v);
    out.PutSignedVarint(static_cast<std::int64_t>(u - prev));
    prev = u;
  }
}

std::vector<std::int64_t> DecodeDeltaColumn(ByteReader& in,
                                            std::size_t count) {
  std::vector<std::int64_t> values;
  values.reserve(count);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev += static_cast<std::uint64_t>(in.GetSignedVarint());
    values.push_back(static_cast<std::int64_t>(prev));
  }
  return values;
}

void EncodeRleColumn(ByteWriter& out, std::span<const std::uint8_t> values) {
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    out.PutU8(values[i]);
    out.PutVarint(run);
    i += run;
  }
}

std::vector<std::uint8_t> DecodeRleColumn(ByteReader& in, std::size_t count) {
  std::vector<std::uint8_t> values;
  values.reserve(count);
  while (values.size() < count) {
    const std::uint8_t v = in.GetU8();
    const std::uint64_t run = in.GetVarint();
    validate(run > 0 && values.size() + run <= count,
             "DecodeRleColumn: run overflows column");
    values.insert(values.end(), static_cast<std::size_t>(run), v);
  }
  return values;
}

void EncodeQuantizedColumn(ByteWriter& out, std::span<const double> values,
                           double scale) {
  require(scale > 0, "EncodeQuantizedColumn: scale must be positive");
  std::int64_t prev = 0;
  for (double v : values) {
    const std::int64_t q = static_cast<std::int64_t>(std::llround(v / scale));
    out.PutSignedVarint(q - prev);
    prev = q;
  }
}

std::vector<double> DecodeQuantizedColumn(ByteReader& in, std::size_t count,
                                          double scale) {
  require(scale > 0, "DecodeQuantizedColumn: scale must be positive");
  std::vector<double> values;
  values.reserve(count);
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev += in.GetSignedVarint();
    values.push_back(static_cast<double>(prev) * scale);
  }
  return values;
}

void EncodeXorColumn(ByteWriter& out, std::span<const double> values) {
  std::uint64_t prev = 0;
  for (double v : values) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    out.PutVarint(bits ^ prev);
    prev = bits;
  }
}

std::vector<double> DecodeXorColumn(ByteReader& in, std::size_t count) {
  std::vector<double> values;
  values.reserve(count);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev ^= in.GetVarint();
    values.push_back(std::bit_cast<double>(prev));
  }
  return values;
}

namespace {

constexpr std::uint8_t kDoubleModeXor = 0;
constexpr std::uint8_t kDoubleModeQuantized = 1;

}  // namespace

void EncodeAdaptiveDoubleColumn(ByteWriter& out,
                                std::span<const double> values,
                                double denominator) {
  require(denominator > 0,
          "EncodeAdaptiveDoubleColumn: denominator must be positive");
  bool exact = true;
  std::vector<std::int64_t> quantized;
  quantized.reserve(values.size());
  for (double v : values) {
    const double scaled = v * denominator;
    if (!(std::abs(scaled) < 9.0e15)) {  // llround domain, rejects NaN/inf
      exact = false;
      break;
    }
    const std::int64_t q = std::llround(scaled);
    if (static_cast<double>(q) / denominator != v) {
      exact = false;
      break;
    }
    quantized.push_back(q);
  }
  if (exact) {
    out.PutU8(kDoubleModeQuantized);
    out.PutF64(denominator);
    EncodeDeltaColumn(out, quantized);
  } else {
    out.PutU8(kDoubleModeXor);
    EncodeXorColumn(out, values);
  }
}

std::vector<double> DecodeAdaptiveDoubleColumn(ByteReader& in,
                                               std::size_t count) {
  const std::uint8_t mode = in.GetU8();
  if (mode == kDoubleModeXor) return DecodeXorColumn(in, count);
  validate(mode == kDoubleModeQuantized,
           "DecodeAdaptiveDoubleColumn: unknown mode");
  const double denominator = in.GetF64();
  validate(denominator > 0,
           "DecodeAdaptiveDoubleColumn: bad denominator");
  const std::vector<std::int64_t> quantized = DecodeDeltaColumn(in, count);
  std::vector<double> values;
  values.reserve(count);
  for (std::int64_t q : quantized)
    values.push_back(static_cast<double>(q) / denominator);
  return values;
}

void EncodeF32Column(ByteWriter& out, std::span<const float> values) {
  for (float v : values) out.PutF32(v);
}

std::vector<float> DecodeF32Column(ByteReader& in, std::size_t count) {
  std::vector<float> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) values.push_back(in.GetF32());
  return values;
}

}  // namespace blot
