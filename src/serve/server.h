// Concurrent serving layer: a query scheduler with admission control,
// backpressure and graceful drain over a BlotStore.
//
// The paper's cost model assumes queries are served *continuously*
// against the diverse replica set; QueryServer is the always-on front
// end that makes that true. It separates the two kinds of parallelism
// the engine offers:
//
//   - request parallelism: N whole queries in flight at once, each
//     running BlotStore::Execute on a worker of the request pool;
//   - scan parallelism: one query fanning its involved partitions
//     across a *separate* scan pool.
//
// The split is what makes the system deadlock-free: a request worker
// may block waiting for scan workers, but never for other request
// workers, and scan workers never block on anything
// (util/thread_pool.h's no-nested-blocking contract).
//
// Admission control bounds what the server accepts rather than letting
// the queue grow without limit: a query is admitted only while both the
// in-flight count and the in-flight byte budget (estimated from the
// query's coverage of the stored bytes) have room. Rejected queries get
// a structured OverloadedError carrying a retry-after hint derived from
// the current backlog and the recent service rate — the caller sheds
// load instead of timing out, and *admitted* queries keep their latency.
//
// Shutdown drains: Drain() (also run by the destructor) stops admitting
// and waits for every admitted query to finish, so no accepted work is
// ever dropped. docs/serving.md covers the policy knobs and the
// serve.* metrics/events this layer emits.
#ifndef BLOT_SERVE_SERVER_H_
#define BLOT_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>

#include "core/cost_model.h"
#include "core/store.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace blot::serve {

// The server refused a query to protect the queries it already
// admitted. Structured: callers read the backlog and the retry-after
// hint instead of parsing the message. Also raised (with
// shutting_down() true and no useful retry hint) for submissions after
// Drain() began.
class OverloadedError : public Error {
 public:
  OverloadedError(const std::string& what, double retry_after_ms,
                  std::size_t queue_depth, bool shutting_down = false)
      : Error(what),
        retry_after_ms_(retry_after_ms),
        queue_depth_(queue_depth),
        shutting_down_(shutting_down) {}

  // Suggested client backoff: roughly the time for the current backlog
  // to clear at the recently observed service rate. Never negative.
  double retry_after_ms() const { return retry_after_ms_; }
  // Queries in flight (admitted, not yet finished) at rejection time.
  std::size_t queue_depth() const { return queue_depth_; }
  // True when the rejection is due to shutdown, not load: retrying the
  // same server is pointless.
  bool shutting_down() const { return shutting_down_; }

 private:
  double retry_after_ms_ = 0.0;
  std::size_t queue_depth_ = 0;
  bool shutting_down_ = false;
};

struct ServerOptions {
  // Request pool size: queries executing (or queued) concurrently.
  std::size_t worker_threads = 4;
  // Scan pool size for intra-query partition parallelism; 0 disables
  // the second pool (each query scans single-threaded).
  std::size_t scan_threads = 0;
  // Cap on partitions one query scans concurrently on the scan pool
  // (BlotStore::SetMaxScanParallelism); 0 = no per-query cap. Keeps one
  // broad query from monopolizing the shared scan pool.
  std::size_t max_scan_parallelism = 0;
  // Admission ceiling on in-flight queries (admitted, not finished).
  // Must be >= 1.
  std::size_t max_inflight = 64;
  // Admission ceiling on the summed byte estimates of in-flight
  // queries; 0 disables the byte budget. A query's estimate is its
  // fractional coverage of the universe times the store's total encoded
  // bytes — crude, but monotone in the real decode work and free to
  // compute before routing.
  std::uint64_t max_inflight_bytes = 0;
  // Emulated storage round-trip per query, slept on the request worker
  // before execution. Models the remote-storage environments of the
  // paper (S3/HDFS) whose latency the local benches don't have; also
  // what makes closed-loop throughput scaling with worker_threads
  // machine-independent (docs/serving.md). 0 disables.
  double simulate_io_ms = 0.0;
  // Smoothing factor of the service-latency EWMA behind retry-after
  // hints, in (0, 1]; higher weighs recent queries more.
  double latency_ewma_alpha = 0.2;
  // Default per-query deadline in ms, measured from *admission* (queue
  // wait counts against the budget — a query that waited out its whole
  // deadline in the queue fails fast without executing). 0 = none. A
  // per-request deadline passed to Submit overrides it. Expiry surfaces
  // as DeadlineExceededError through the returned future, or as a
  // partial result when allow_partial is set (docs/serving.md).
  double default_deadline_ms = 0.0;
  // Hedged reads for every served query (BlotStore::ExecOptions::
  // hedge_ms): 0 = off.
  double hedge_ms = 0.0;
  // Opt all served queries into graceful degradation: deadline expiry or
  // unrecoverable partition loss yields a partial RoutedResult with a
  // coverage report instead of an error.
  bool allow_partial = false;
};

// Monotone counters + point-in-time levels, readable while serving.
struct ServerStatsSnapshot {
  std::uint64_t submitted = 0;  // Submit calls, admitted or not
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;       // rejected with OverloadedError
  std::uint64_t completed = 0;  // admitted and returned a result
  std::uint64_t failed = 0;     // admitted and threw (QueryFailedError...)
  // Admitted queries whose deadline expired (threw DeadlineExceededError;
  // a subset of `failed`). Partial results do not count here.
  std::uint64_t deadline_exceeded = 0;
  // Completed queries that returned a partial result (subset of
  // `completed`; only possible with ServerOptions::allow_partial).
  std::uint64_t partial = 0;
  std::size_t inflight = 0;
  std::uint64_t inflight_bytes = 0;
  double latency_ewma_ms = 0.0;
};

class QueryServer {
 public:
  // The server borrows `store`; it must outlive the server. Queries are
  // routed with `model`.
  QueryServer(BlotStore& store, CostModel model, ServerOptions options = {});

  // Drains: admitted queries finish, new submissions are refused.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  const ServerOptions& options() const { return options_; }

  // Admission-controlled asynchronous execution. On admission, returns
  // the future of the query's RoutedResult (which may itself hold a
  // QueryFailedError etc. — admission is about capacity, not
  // correctness). Throws OverloadedError synchronously when the
  // in-flight or byte budget is exhausted, or after Drain() began.
  //
  // `deadline_ms` overrides ServerOptions::default_deadline_ms for this
  // request (0 = use the default; the default itself may be 0 = none).
  // The deadline clock starts now — at admission — so queue wait counts;
  // a query still queued when its deadline passes is abandoned without
  // executing and its future carries DeadlineExceededError.
  std::future<BlotStore::RoutedResult> Submit(const STRange& query,
                                              double deadline_ms = 0.0);

  // Blocking convenience: Submit + get.
  BlotStore::RoutedResult Execute(const STRange& query,
                                  double deadline_ms = 0.0);

  ServerStatsSnapshot stats() const;

  // Stops admitting and blocks until every admitted query finished.
  // Idempotent; Submit after Drain throws OverloadedError with
  // shutting_down() set.
  void Drain();

 private:
  // Coverage-proportional decode-byte estimate used by the admission
  // byte budget.
  std::uint64_t EstimateBytes(const STRange& query) const;
  // Backlog / service-rate derived client backoff hint.
  double RetryAfterMs(std::size_t inflight) const;
  void FinishQuery(std::uint64_t bytes, double latency_ms, bool failed);

  BlotStore& store_;
  const CostModel model_;
  const ServerOptions options_;
  const std::uint64_t total_storage_bytes_;

  // Scan pool first: request workers reference it, so it must outlive
  // them during destruction.
  std::unique_ptr<ThreadPool> scan_pool_;
  std::unique_ptr<ThreadPool> request_pool_;

  mutable std::mutex admission_mutex_;
  std::condition_variable drained_cv_;
  std::size_t inflight_ = 0;             // guarded by admission_mutex_
  std::uint64_t inflight_bytes_ = 0;     // guarded by admission_mutex_
  bool draining_ = false;                // guarded by admission_mutex_

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> partial_{0};
  std::atomic<double> latency_ewma_ms_{0.0};
};

}  // namespace blot::serve

#endif  // BLOT_SERVE_SERVER_H_
