#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "obs/event_log.h"
#include "util/range.h"

namespace blot::serve {
namespace {

struct ServeMetrics {
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& deadline_exceeded;
  obs::Counter& partial;
  obs::Gauge& queue_depth;
  obs::Gauge& inflight_bytes;
  obs::Histogram& latency_ms;

  static ServeMetrics& Get() {
    auto& r = obs::MetricsRegistry::global();
    static ServeMetrics m{r.GetCounter("serve.admitted_total"),
                          r.GetCounter("serve.shed_total"),
                          r.GetCounter("serve.completed_total"),
                          r.GetCounter("serve.failed_total"),
                          r.GetCounter("serve.deadline_exceeded_total"),
                          r.GetCounter("serve.partial_total"),
                          r.GetGauge("serve.queue_depth"),
                          r.GetGauge("serve.inflight_bytes"),
                          r.GetHistogram("serve.latency_ms")};
    return m;
  }
};

}  // namespace

QueryServer::QueryServer(BlotStore& store, CostModel model,
                         ServerOptions options)
    : store_(store),
      model_(std::move(model)),
      options_(options),
      total_storage_bytes_(store.TotalStorageBytes()) {
  require(options_.worker_threads >= 1,
          "QueryServer: need at least one request worker");
  require(options_.max_inflight >= 1,
          "QueryServer: max_inflight must be at least 1");
  require(options_.latency_ewma_alpha > 0.0 &&
              options_.latency_ewma_alpha <= 1.0,
          "QueryServer: latency_ewma_alpha must be in (0, 1]");
  if (options_.scan_threads > 0)
    scan_pool_ = std::make_unique<ThreadPool>(options_.scan_threads, "scan");
  if (options_.max_scan_parallelism > 0)
    store_.SetMaxScanParallelism(options_.max_scan_parallelism);
  request_pool_ =
      std::make_unique<ThreadPool>(options_.worker_threads, "request");
}

QueryServer::~QueryServer() { Drain(); }

std::uint64_t QueryServer::EstimateBytes(const STRange& query) const {
  const STRange& universe = store_.universe();
  // Fractional coverage per dimension; a degenerate universe dimension
  // (or a query spanning it fully) contributes factor 1.
  auto fraction = [](double query_extent, double universe_extent) {
    if (universe_extent <= 0.0) return 1.0;
    return std::clamp(query_extent / universe_extent, 0.0, 1.0);
  };
  const double coverage = fraction(query.Width(), universe.Width()) *
                          fraction(query.Height(), universe.Height()) *
                          fraction(query.Duration(), universe.Duration());
  // Floor at 1: even an empty-range query occupies a worker.
  return std::max<std::uint64_t>(
      1, std::uint64_t(coverage * double(total_storage_bytes_)));
}

double QueryServer::RetryAfterMs(std::size_t inflight) const {
  // Time for the backlog (plus the rejected query itself) to clear at
  // the recently observed per-query service time across the workers.
  const double ewma = latency_ewma_ms_.load(std::memory_order_relaxed);
  const double per_query_ms =
      ewma > 0.0 ? ewma : std::max(options_.simulate_io_ms, 1.0);
  return per_query_ms * double(inflight + 1) /
         double(options_.worker_threads);
}

std::future<BlotStore::RoutedResult> QueryServer::Submit(
    const STRange& query, double deadline_ms) {
  require(deadline_ms >= 0.0, "QueryServer::Submit: negative deadline");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto& metrics = ServeMetrics::Get();
  const std::uint64_t bytes = EstimateBytes(query);
  {
    std::unique_lock lock(admission_mutex_);
    if (draining_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed.Increment();
      throw OverloadedError("QueryServer: draining, not admitting queries",
                            /*retry_after_ms=*/0.0, inflight_,
                            /*shutting_down=*/true);
    }
    const bool over_count = inflight_ >= options_.max_inflight;
    // The byte budget never blocks an otherwise-idle server: a query
    // larger than the whole budget must still be runnable alone.
    const bool over_bytes =
        options_.max_inflight_bytes > 0 && inflight_ > 0 &&
        inflight_bytes_ + bytes > options_.max_inflight_bytes;
    if (over_count || over_bytes) {
      const std::size_t depth = inflight_;
      const double retry_ms = RetryAfterMs(depth);
      shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed.Increment();
      lock.unlock();
      auto& log = obs::EventLog::Global();
      if (log.enabled()) {
        log.Warn("serve", "query shed",
                 {obs::Field("reason", over_count ? "inflight" : "bytes"),
                  obs::Field("queue_depth", depth),
                  obs::Field("retry_after_ms", retry_ms)});
      }
      std::ostringstream what;
      what << "QueryServer overloaded ("
           << (over_count ? "inflight limit" : "byte budget")
           << ", depth " << depth << "); retry after " << retry_ms << " ms";
      throw OverloadedError(what.str(), retry_ms, depth);
    }
    ++inflight_;
    inflight_bytes_ += bytes;
    metrics.queue_depth.Set(double(inflight_));
    metrics.inflight_bytes.Set(double(inflight_bytes_));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  metrics.admitted.Increment();

  // The deadline clock starts at admission: time spent queued behind
  // other requests is part of the caller's wait and counts against the
  // budget.
  const double effective_deadline =
      deadline_ms > 0.0 ? deadline_ms : options_.default_deadline_ms;
  const std::uint64_t admit_ns = obs::MonotonicNanos();
  return request_pool_->Submit([this, query, bytes, effective_deadline,
                                admit_ns] {
    const std::uint64_t start_ns = obs::MonotonicNanos();
    if (options_.simulate_io_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.simulate_io_ms));
    }
    auto& metrics = ServeMetrics::Get();
    try {
      BlotStore::ExecOptions exec;
      exec.pool = scan_pool_.get();
      exec.allow_partial = options_.allow_partial;
      exec.hedge_ms = options_.hedge_ms;
      if (effective_deadline > 0.0) {
        // Abandon work whose deadline already passed in the queue (or
        // during the emulated storage round-trip): executing it would
        // only delay queries that can still make theirs.
        const double waited_ms =
            double(obs::MonotonicNanos() - admit_ns) * 1e-6;
        const double remaining = effective_deadline - waited_ms;
        if (remaining <= 0.0) {
          // Accounting happens in the DeadlineExceededError catch below.
          throw DeadlineExceededError(
              "QueryServer: deadline of " +
                  std::to_string(effective_deadline) +
                  "ms expired in the admission queue (waited " +
                  std::to_string(waited_ms) + "ms); query abandoned",
              effective_deadline, 0, 0, 0);
        }
        exec.deadline_ms = remaining;
      }
      BlotStore::RoutedResult result = store_.Execute(query, model_, exec);
      if (result.partial) {
        partial_.fetch_add(1, std::memory_order_relaxed);
        metrics.partial.Increment();
      }
      FinishQuery(bytes, double(obs::MonotonicNanos() - start_ns) * 1e-6,
                  /*failed=*/false);
      return result;
    } catch (const DeadlineExceededError&) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      metrics.deadline_exceeded.Increment();
      FinishQuery(bytes, double(obs::MonotonicNanos() - start_ns) * 1e-6,
                  /*failed=*/true);
      throw;
    } catch (...) {
      FinishQuery(bytes, double(obs::MonotonicNanos() - start_ns) * 1e-6,
                  /*failed=*/true);
      throw;
    }
  });
}

BlotStore::RoutedResult QueryServer::Execute(const STRange& query,
                                             double deadline_ms) {
  return Submit(query, deadline_ms).get();
}

void QueryServer::FinishQuery(std::uint64_t bytes, double latency_ms,
                              bool failed) {
  auto& metrics = ServeMetrics::Get();
  if (failed) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    metrics.failed.Increment();
  } else {
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.completed.Increment();
  }
  metrics.latency_ms.Observe(latency_ms);
  bool notify = false;
  {
    std::lock_guard lock(admission_mutex_);
    --inflight_;
    inflight_bytes_ -= bytes;
    metrics.queue_depth.Set(double(inflight_));
    metrics.inflight_bytes.Set(double(inflight_bytes_));
    // Single-writer-under-mutex EWMA: relaxed atomics are only for the
    // lock-free readers in RetryAfterMs and stats().
    const double prev = latency_ewma_ms_.load(std::memory_order_relaxed);
    const double next =
        prev == 0.0 ? latency_ms
                    : prev + options_.latency_ewma_alpha * (latency_ms - prev);
    latency_ewma_ms_.store(next, std::memory_order_relaxed);
    notify = draining_ && inflight_ == 0;
  }
  if (notify) drained_cv_.notify_all();
}

ServerStatsSnapshot QueryServer::stats() const {
  ServerStatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.admitted = admitted_.load(std::memory_order_relaxed);
  snap.shed = shed_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  snap.partial = partial_.load(std::memory_order_relaxed);
  snap.latency_ewma_ms = latency_ewma_ms_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(admission_mutex_);
    snap.inflight = inflight_;
    snap.inflight_bytes = inflight_bytes_;
  }
  return snap;
}

void QueryServer::Drain() {
  std::unique_lock lock(admission_mutex_);
  const bool first = !draining_;
  draining_ = true;
  drained_cv_.wait(lock, [this] { return inflight_ == 0; });
  lock.unlock();
  if (first) {
    auto& log = obs::EventLog::Global();
    if (log.enabled()) {
      log.Info("serve", "drained",
               {obs::Field("completed",
                           completed_.load(std::memory_order_relaxed)),
                obs::Field("failed", failed_.load(std::memory_order_relaxed)),
                obs::Field("shed", shed_.load(std::memory_order_relaxed))});
    }
  }
}

}  // namespace blot::serve
