// Linear programming: problem model and a two-phase revised simplex solver.
//
// This backs the paper's exact replica-selection algorithm (Section III-B),
// which formulates selection as a 0-1 MIP and "hands it over to a MIP
// solver"; since this reproduction is self-contained, the solver is built
// here. The LP form is:
//
//   minimize    c^T x
//   subject to  a_i^T x  (<= | >= | ==)  b_i   for each constraint i
//               x >= 0
//
// Upper bounds (e.g. x <= 1 for relaxed binaries) are expressed as
// ordinary <= constraints by the callers.
//
// The solver is a revised simplex with an explicit dense basis inverse:
// constraint matrices in the replica-selection formulation have a few
// hundred rows but tens of thousands of (2-3 nonzero) columns, which is
// exactly the regime where revised simplex with sparse column pricing is
// practical.
#ifndef BLOT_MIP_LP_H_
#define BLOT_MIP_LP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace blot {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

// One linear constraint with a sparse coefficient vector.
struct LpConstraint {
  std::vector<std::pair<std::size_t, double>> terms;  // (variable, coeff)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

// A linear program over `num_variables` non-negative variables.
class LpProblem {
 public:
  explicit LpProblem(std::size_t num_variables)
      : objective_(num_variables, 0.0) {}

  std::size_t num_variables() const { return objective_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  // Sets the objective coefficient of one variable.
  void SetObjective(std::size_t variable, double coefficient);
  double objective(std::size_t variable) const {
    return objective_[variable];
  }

  // Adds a constraint; variable indices must be valid and distinct.
  void AddConstraint(LpConstraint constraint);
  const std::vector<LpConstraint>& constraints() const {
    return constraints_;
  }

 private:
  std::vector<double> objective_;
  std::vector<LpConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

std::string LpStatusName(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  // per variable, empty unless optimal
  std::size_t iterations = 0;
};

struct LpOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-9;
};

// Solves the LP with two-phase revised simplex.
LpSolution SolveLp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace blot

#endif  // BLOT_MIP_LP_H_
