#include "mip/mip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.h"

namespace blot {
namespace {

// Fixings applied along one branch of the tree: variable -> 0 or 1.
using Fixings = std::vector<std::pair<std::size_t, double>>;

struct Node {
  double bound;  // parent LP objective (lower bound for minimization)
  Fixings fixings;

  bool operator>(const Node& other) const { return bound > other.bound; }
};

LpProblem WithFixings(const LpProblem& base, const Fixings& fixings) {
  LpProblem lp = base;
  for (const auto& [variable, value] : fixings)
    lp.AddConstraint({.terms = {{variable, 1.0}},
                      .relation = Relation::kEqual,
                      .rhs = value});
  return lp;
}

// Index of the binary variable whose LP value is farthest from integral,
// or nullopt if all are integral within tolerance.
std::optional<std::size_t> MostFractional(
    const std::vector<double>& values,
    const std::vector<std::size_t>& binaries, double tolerance) {
  std::optional<std::size_t> best;
  double best_distance = tolerance;
  for (std::size_t variable : binaries) {
    const double v = values[variable];
    const double distance = std::abs(v - std::round(v));
    if (distance > best_distance) {
      best_distance = distance;
      best = variable;
    }
  }
  return best;
}

}  // namespace

MipSolution SolveMip(const MipProblem& problem, const MipOptions& options,
                     std::optional<double> incumbent_objective) {
  for (std::size_t variable : problem.binary_variables)
    require(variable < problem.lp.num_variables(),
            "SolveMip: binary variable out of range");

  MipSolution solution;
  double incumbent =
      incumbent_objective.value_or(std::numeric_limits<double>::infinity());

  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
  open.push({-std::numeric_limits<double>::infinity(), {}});

  bool proved_infeasible_root = false;
  while (!open.empty()) {
    if (solution.nodes_explored >= options.max_nodes) {
      solution.status = solution.values.empty() ? MipStatus::kNoSolution
                                                : MipStatus::kNodeLimit;
      return solution;
    }
    const Node node = open.top();
    open.pop();
    if (node.bound >= incumbent - options.absolute_gap) continue;
    ++solution.nodes_explored;

    const LpProblem lp = WithFixings(problem.lp, node.fixings);
    const LpSolution relaxed = SolveLp(lp, options.lp_options);
    solution.lp_iterations += relaxed.iterations;
    if (relaxed.status == LpStatus::kInfeasible) {
      if (node.fixings.empty()) proved_infeasible_root = true;
      continue;
    }
    ensure(relaxed.status == LpStatus::kOptimal,
           "SolveMip: relaxation neither optimal nor infeasible: " +
               LpStatusName(relaxed.status));
    if (relaxed.objective >= incumbent - options.absolute_gap) continue;

    const std::optional<std::size_t> branch_variable = MostFractional(
        relaxed.values, problem.binary_variables,
        options.integrality_tolerance);
    if (!branch_variable.has_value()) {
      // Integral solution: new incumbent.
      incumbent = relaxed.objective;
      solution.objective = relaxed.objective;
      solution.values = relaxed.values;
      for (std::size_t variable : problem.binary_variables)
        solution.values[variable] = std::round(solution.values[variable]);
      continue;
    }

    for (double value : {0.0, 1.0}) {
      Fixings child = node.fixings;
      child.emplace_back(*branch_variable, value);
      open.push({relaxed.objective, std::move(child)});
    }
  }

  if (!solution.values.empty()) {
    solution.status = MipStatus::kOptimal;
  } else if (incumbent_objective.has_value() &&
             std::isfinite(*incumbent_objective) && !proved_infeasible_root) {
    // Tree exhausted without beating the seed incumbent: the seed is
    // optimal but its assignment lives with the caller.
    solution.status = MipStatus::kOptimal;
    solution.objective = *incumbent_objective;
  } else {
    solution.status = MipStatus::kInfeasible;
  }
  return solution;
}

}  // namespace blot
