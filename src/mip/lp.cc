#include "mip/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace blot {

void LpProblem::SetObjective(std::size_t variable, double coefficient) {
  require(variable < num_variables(), "LpProblem::SetObjective: bad variable");
  objective_[variable] = coefficient;
}

void LpProblem::AddConstraint(LpConstraint constraint) {
  for (const auto& [variable, coeff] : constraint.terms) {
    require(variable < num_variables(),
            "LpProblem::AddConstraint: bad variable");
    (void)coeff;
  }
  constraints_.push_back(std::move(constraint));
}

std::string LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

// Internal tableau state for the two-phase revised simplex.
class SimplexSolver {
 public:
  SimplexSolver(const LpProblem& problem, const LpOptions& options);

  LpSolution Solve();

 private:
  enum class StepResult { kOptimal, kUnbounded, kContinue };

  StepResult Step(const std::vector<double>& costs);
  void Pivot(std::size_t row, std::size_t entering,
             const std::vector<double>& direction);
  double ReducedCost(std::size_t column, const std::vector<double>& y) const;
  std::vector<double> DualPrices(const std::vector<double>& costs) const;

  const LpOptions options_;
  std::size_t num_structural_;
  std::size_t num_rows_;
  std::size_t num_columns_;  // structural + slacks + artificials
  std::size_t first_artificial_;

  // Sparse columns of the standard-form matrix.
  std::vector<std::vector<std::pair<std::size_t, double>>> columns_;
  std::vector<double> rhs_;
  std::vector<double> phase2_costs_;

  std::vector<std::size_t> basis_;     // per row: basic column
  std::vector<bool> is_basic_;         // per column
  std::vector<double> basis_inverse_;  // dense num_rows x num_rows
  std::vector<double> basic_values_;   // x_B

  std::size_t iterations_ = 0;
  std::size_t degenerate_streak_ = 0;
  bool phase2_ = false;

  double& Binv(std::size_t i, std::size_t j) {
    return basis_inverse_[i * num_rows_ + j];
  }
  double Binv(std::size_t i, std::size_t j) const {
    return basis_inverse_[i * num_rows_ + j];
  }
};

SimplexSolver::SimplexSolver(const LpProblem& problem,
                             const LpOptions& options)
    : options_(options),
      num_structural_(problem.num_variables()),
      num_rows_(problem.num_constraints()) {
  // Build standard form: normalize rhs >= 0, then append one slack per
  // inequality and one artificial per >=/== row.
  columns_.resize(num_structural_);
  for (std::size_t j = 0; j < num_structural_; ++j) columns_[j].clear();
  rhs_.resize(num_rows_);

  struct RowInfo {
    Relation relation;
    double sign;  // +1 or -1 applied to the original row
  };
  std::vector<RowInfo> rows(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const LpConstraint& c = problem.constraints()[i];
    double sign = 1.0;
    Relation relation = c.relation;
    if (c.rhs < 0) {
      sign = -1.0;
      if (relation == Relation::kLessEqual)
        relation = Relation::kGreaterEqual;
      else if (relation == Relation::kGreaterEqual)
        relation = Relation::kLessEqual;
    }
    rows[i] = {relation, sign};
    rhs_[i] = sign * c.rhs;
    for (const auto& [variable, coeff] : c.terms)
      if (coeff != 0.0) columns_[variable].emplace_back(i, sign * coeff);
  }

  // Slacks (for <=) and surpluses (for >=).
  std::vector<std::int64_t> slack_of_row(num_rows_, -1);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (rows[i].relation == Relation::kEqual) continue;
    const double coeff =
        rows[i].relation == Relation::kLessEqual ? 1.0 : -1.0;
    slack_of_row[i] = static_cast<std::int64_t>(columns_.size());
    columns_.push_back({{i, coeff}});
  }
  first_artificial_ = columns_.size();
  // Artificials for >= and == rows start in the basis; <= rows use their
  // slack directly.
  std::vector<std::size_t> basic_of_row(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (rows[i].relation == Relation::kLessEqual) {
      basic_of_row[i] = static_cast<std::size_t>(slack_of_row[i]);
    } else {
      basic_of_row[i] = columns_.size();
      columns_.push_back({{i, 1.0}});
    }
  }
  num_columns_ = columns_.size();

  phase2_costs_.assign(num_columns_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j)
    phase2_costs_[j] = problem.objective(j);

  basis_ = std::move(basic_of_row);
  is_basic_.assign(num_columns_, false);
  for (std::size_t col : basis_) is_basic_[col] = true;

  basis_inverse_.assign(num_rows_ * num_rows_, 0.0);
  for (std::size_t i = 0; i < num_rows_; ++i) Binv(i, i) = 1.0;
  basic_values_ = rhs_;
}

std::vector<double> SimplexSolver::DualPrices(
    const std::vector<double>& costs) const {
  std::vector<double> y(num_rows_, 0.0);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < num_rows_; ++j) y[j] += cb * Binv(i, j);
  }
  return y;
}

double SimplexSolver::ReducedCost(std::size_t column,
                                  const std::vector<double>& y) const {
  double d = phase2_ ? phase2_costs_[column]
                     : (column >= first_artificial_ ? 1.0 : 0.0);
  for (const auto& [row, coeff] : columns_[column]) d -= y[row] * coeff;
  return d;
}

SimplexSolver::StepResult SimplexSolver::Step(
    const std::vector<double>& costs) {
  const std::vector<double> y = DualPrices(costs);

  // Entering column: Dantzig rule normally; Bland's rule (first eligible)
  // after a long degenerate streak, which guarantees termination.
  const bool use_bland = degenerate_streak_ > 2 * num_rows_ + 16;
  std::size_t entering = num_columns_;
  double best = -options_.tolerance;
  for (std::size_t j = 0; j < num_columns_; ++j) {
    if (is_basic_[j]) continue;
    // Artificials may never re-enter once phase 2 begins.
    if (phase2_ && j >= first_artificial_) continue;
    const double d = ReducedCost(j, y);
    if (d < best) {
      entering = j;
      if (use_bland) break;
      best = d;
    }
  }
  if (entering == num_columns_) return StepResult::kOptimal;

  // Direction u = B^-1 * A_entering.
  std::vector<double> direction(num_rows_, 0.0);
  for (const auto& [row, coeff] : columns_[entering])
    for (std::size_t i = 0; i < num_rows_; ++i)
      direction[i] += Binv(i, row) * coeff;

  // Ratio test; prefer kicking artificials out of the basis on ties.
  //
  // A basic artificial surviving into phase 2 sits at value zero; letting
  // it move in either direction would violate the original constraints, so
  // whenever the entering column touches such a row (either sign), that
  // artificial leaves immediately via a degenerate pivot.
  if (phase2_) {
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] >= first_artificial_ &&
          std::abs(direction[i]) > options_.tolerance) {
        degenerate_streak_ += 1;
        Pivot(i, entering, direction);
        return StepResult::kContinue;
      }
    }
  }
  std::size_t leaving_row = num_rows_;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (direction[i] <= options_.tolerance) continue;
    const double ratio = basic_values_[i] / direction[i];
    constexpr double kTieTolerance = 1e-12;
    if (ratio < best_ratio - kTieTolerance) {
      best_ratio = ratio;
      leaving_row = i;
    } else if (ratio < best_ratio + kTieTolerance &&
               leaving_row < num_rows_) {
      const bool current_artificial =
          basis_[leaving_row] >= first_artificial_;
      const bool candidate_artificial = basis_[i] >= first_artificial_;
      if ((candidate_artificial && !current_artificial) ||
          (candidate_artificial == current_artificial &&
           basis_[i] < basis_[leaving_row])) {
        leaving_row = i;
      }
    }
  }
  if (leaving_row == num_rows_) return StepResult::kUnbounded;

  degenerate_streak_ =
      best_ratio <= options_.tolerance ? degenerate_streak_ + 1 : 0;
  Pivot(leaving_row, entering, direction);
  return StepResult::kContinue;
}

void SimplexSolver::Pivot(std::size_t row, std::size_t entering,
                          const std::vector<double>& direction) {
  const double pivot = direction[row];
  ensure(std::abs(pivot) > 1e-14, "SimplexSolver: zero pivot");
  for (std::size_t j = 0; j < num_rows_; ++j) Binv(row, j) /= pivot;
  basic_values_[row] /= pivot;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (i == row) continue;
    const double factor = direction[i];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < num_rows_; ++j)
      Binv(i, j) -= factor * Binv(row, j);
    basic_values_[i] -= factor * basic_values_[row];
  }
  is_basic_[basis_[row]] = false;
  is_basic_[entering] = true;
  basis_[row] = entering;
}

LpSolution SimplexSolver::Solve() {
  LpSolution solution;

  // Phase 1: minimize the sum of artificials (cost vector selected inside
  // ReducedCost/DualPrices by phase flag).
  std::vector<double> phase1_costs(num_columns_, 0.0);
  for (std::size_t j = first_artificial_; j < num_columns_; ++j)
    phase1_costs[j] = 1.0;

  bool any_artificial_basic = false;
  for (std::size_t col : basis_)
    if (col >= first_artificial_) any_artificial_basic = true;

  if (any_artificial_basic) {
    for (;;) {
      if (++iterations_ > options_.max_iterations) {
        solution.status = LpStatus::kIterationLimit;
        solution.iterations = iterations_;
        return solution;
      }
      const StepResult result = Step(phase1_costs);
      if (result == StepResult::kOptimal) break;
      ensure(result != StepResult::kUnbounded,
             "SimplexSolver: phase-1 problem cannot be unbounded");
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < num_rows_; ++i)
      if (basis_[i] >= first_artificial_) infeasibility += basic_values_[i];
    if (infeasibility > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      solution.iterations = iterations_;
      return solution;
    }
  }

  phase2_ = true;
  degenerate_streak_ = 0;
  for (;;) {
    if (++iterations_ > options_.max_iterations) {
      solution.status = LpStatus::kIterationLimit;
      solution.iterations = iterations_;
      return solution;
    }
    const StepResult result = Step(phase2_costs_);
    if (result == StepResult::kOptimal) break;
    if (result == StepResult::kUnbounded) {
      solution.status = LpStatus::kUnbounded;
      solution.iterations = iterations_;
      return solution;
    }
  }

  solution.status = LpStatus::kOptimal;
  solution.iterations = iterations_;
  solution.values.assign(num_structural_, 0.0);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (basis_[i] < num_structural_)
      solution.values[basis_[i]] = std::max(0.0, basic_values_[i]);
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < num_structural_; ++j)
    solution.objective += phase2_costs_[j] * solution.values[j];
  return solution;
}

}  // namespace

LpSolution SolveLp(const LpProblem& problem, const LpOptions& options) {
  if (problem.num_constraints() == 0) {
    // With x >= 0 only, the optimum sets every variable with positive cost
    // to zero; any negative cost makes the problem unbounded.
    LpSolution solution;
    for (std::size_t j = 0; j < problem.num_variables(); ++j) {
      if (problem.objective(j) < 0) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
    }
    solution.status = LpStatus::kOptimal;
    solution.objective = 0.0;
    solution.values.assign(problem.num_variables(), 0.0);
    return solution;
  }
  SimplexSolver solver(problem, options);
  return solver.Solve();
}

}  // namespace blot
