// 0-1 mixed integer programming by LP-based branch and bound.
//
// The replica selection MIP (Eq. 1-5 of the paper) is a minimization over
// binary variables whose LP relaxation — the same relaxation used for the
// uncapacitated facility location problem — is tight in practice, so a
// best-first branch and bound with simplex bounds explores few nodes on
// typical instances while remaining exact.
#ifndef BLOT_MIP_MIP_H_
#define BLOT_MIP_MIP_H_

#include <optional>
#include <vector>

#include "mip/lp.h"

namespace blot {

// A 0-1 MIP: the LP plus the list of variables restricted to {0, 1}.
// Callers must already include the x <= 1 bound for each binary variable
// as an LP constraint (the relaxation needs it).
struct MipProblem {
  LpProblem lp;
  std::vector<std::size_t> binary_variables;
};

enum class MipStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,   // best incumbent returned, optimality not proven
  kNoSolution,  // node limit hit before any incumbent was found
};

struct MipSolution {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t nodes_explored = 0;
  std::size_t lp_iterations = 0;
};

struct MipOptions {
  std::size_t max_nodes = 100000;
  double integrality_tolerance = 1e-6;
  // Prune nodes whose bound is within this absolute gap of the incumbent.
  double absolute_gap = 1e-9;
  LpOptions lp_options;
};

// Solves the 0-1 MIP. `incumbent_objective`, when provided, seeds the
// upper bound (e.g. from a greedy heuristic) so provably-worse subtrees
// are pruned immediately; it must be achievable or +inf.
MipSolution SolveMip(const MipProblem& problem, const MipOptions& options = {},
                     std::optional<double> incumbent_objective = std::nullopt);

}  // namespace blot

#endif  // BLOT_MIP_MIP_H_
