#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/stats.h"

namespace blot {

std::string GroupedQuery::ToString() const {
  std::ostringstream os;
  os << "<W=" << size.w << ",H=" << size.h << ",T=" << size.t << ">";
  return os.str();
}

Workload::Workload(std::vector<WeightedQuery> queries)
    : queries_(std::move(queries)) {
  for (const WeightedQuery& wq : queries_)
    require(wq.weight >= 0, "Workload: negative weight");
}

void Workload::Add(const GroupedQuery& query, double weight) {
  require(weight >= 0, "Workload::Add: negative weight");
  queries_.push_back({query, weight});
}

double Workload::TotalWeight() const {
  double total = 0;
  for (const WeightedQuery& wq : queries_) total += wq.weight;
  return total;
}

Workload Workload::Normalized() const {
  const double total = TotalWeight();
  require(total > 0, "Workload::Normalized: total weight must be positive");
  Workload normalized;
  for (const WeightedQuery& wq : queries_)
    normalized.Add(wq.query, wq.weight / total);
  return normalized;
}

Workload ReduceWorkload(const Workload& workload, std::size_t k, Rng& rng) {
  require(k >= 1, "ReduceWorkload: k must be positive");
  if (workload.size() <= k) return workload;

  std::vector<std::vector<double>> points;
  points.reserve(workload.size());
  for (const WeightedQuery& wq : workload.queries()) {
    const RangeSize& s = wq.query.size;
    require(s.w > 0 && s.h > 0 && s.t > 0,
            "ReduceWorkload: query sizes must be positive for log clustering");
    points.push_back({std::log(s.w), std::log(s.h), std::log(s.t)});
  }
  const KMeansResult clusters = KMeans(points, k, rng);

  // Weighted log-space centroid per cluster.
  std::vector<std::vector<double>> sums(k, std::vector<double>(3, 0.0));
  std::vector<double> weights(k, 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = clusters.assignment[i];
    const double w = workload.queries()[i].weight;
    weights[c] += w;
    for (int d = 0; d < 3; ++d) sums[c][d] += w * points[i][d];
  }
  Workload reduced;
  for (std::size_t c = 0; c < k; ++c) {
    if (weights[c] <= 0) continue;  // empty or zero-weight cluster
    const RangeSize size = {std::exp(sums[c][0] / weights[c]),
                            std::exp(sums[c][1] / weights[c]),
                            std::exp(sums[c][2] / weights[c])};
    reduced.Add({size}, weights[c]);
  }
  ensure(!reduced.empty(), "ReduceWorkload: produced empty workload");
  return reduced;
}

STRange SampleQueryInstance(const GroupedQuery& query, const STRange& universe,
                            Rng& rng) {
  require(!universe.empty(), "SampleQueryInstance: empty universe");
  const RangeSize& s = query.size;
  const auto sample_axis = [&rng](double lo, double hi, double extent) {
    // Centroid uniform in [lo + extent/2, hi - extent/2]; if the query
    // covers the whole axis, center it.
    const double c_lo = lo + extent / 2;
    const double c_hi = hi - extent / 2;
    if (c_lo >= c_hi) return (lo + hi) / 2;
    return rng.NextDouble(c_lo, c_hi);
  };
  const STPoint centroid = {
      sample_axis(universe.x_min(), universe.x_max(), s.w),
      sample_axis(universe.y_min(), universe.y_max(), s.h),
      sample_axis(universe.t_min(), universe.t_max(), s.t)};
  return STRange::FromCentroid(s, centroid);
}

}  // namespace blot
