#include "core/cost_model.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace blot {
namespace {

// One dimension's contribution to Eq. 12: the fraction of the centroid
// interval for which the query overlaps [p_lo, p_hi].
double AxisFactor(double u_lo, double u_hi, double p_lo, double p_hi,
                  double query_extent) {
  const double u_extent = u_hi - u_lo;
  if (query_extent >= u_extent) return 1.0;  // query spans the whole axis
  // Centroid range: [u_lo + e/2, u_hi - e/2]; intersecting centroids:
  // [p_lo - e/2, p_hi + e/2]. Their overlap length over the centroid
  // range length is the probability.
  const double c_lo = u_lo + query_extent / 2;
  const double c_hi = u_hi - query_extent / 2;
  const double i_lo = std::max(c_lo, p_lo - query_extent / 2);
  const double i_hi = std::min(c_hi, p_hi + query_extent / 2);
  const double c_len = c_hi - c_lo;
  if (c_len <= 0) return 1.0;  // degenerate centroid range: always centered
  return std::clamp((i_hi - i_lo) / c_len, 0.0, 1.0);
}

}  // namespace

double IntersectionProbability(const STRange& partition,
                               const RangeSize& query_size,
                               const STRange& universe) {
  require(!universe.empty(), "IntersectionProbability: empty universe");
  require(!partition.empty(), "IntersectionProbability: empty partition");
  return AxisFactor(universe.x_min(), universe.x_max(), partition.x_min(),
                    partition.x_max(), query_size.w) *
         AxisFactor(universe.y_min(), universe.y_max(), partition.y_min(),
                    partition.y_max(), query_size.h) *
         AxisFactor(universe.t_min(), universe.t_max(), partition.t_min(),
                    partition.t_max(), query_size.t);
}

double ExpectedInvolvedPartitions(const PartitionIndex& index,
                                  const RangeSize& query_size,
                                  const STRange& universe) {
  double expected = 0.0;
  for (const STRange& range : index.ranges())
    expected += IntersectionProbability(range, query_size, universe);
  return expected;
}

CostModel::CostModel(const EnvironmentModel& environment) {
  for (const EncodingScheme& scheme : AllEncodingSchemes())
    if (environment.Supports(scheme))
      params_by_encoding_[scheme.Name()] = environment.Params(scheme);
}

CostModel::CostModel(std::map<std::string, ScanCostParams> params_by_encoding)
    : params_by_encoding_(std::move(params_by_encoding)) {}

const ScanCostParams& CostModel::Params(const EncodingScheme& scheme) const {
  const auto it = params_by_encoding_.find(scheme.Name());
  require(it != params_by_encoding_.end(),
          "CostModel: no parameters for encoding " + scheme.Name());
  return it->second;
}

double CostModel::PartitionCostMs(const EncodingScheme& scheme,
                                  double records) const {
  const ScanCostParams& p = Params(scheme);
  return records / 1000.0 * p.scan_ms_per_krecord + p.extra_ms;
}

double CostModel::QueryCostMs(const ReplicaSketch& replica,
                              const GroupedQuery& query) const {
  const ScanCostParams& p = Params(replica.config.encoding);
  double expected_partitions = 0.0;
  double expected_records = 0.0;
  for (std::size_t i = 0; i < replica.index.NumPartitions(); ++i) {
    const double prob = IntersectionProbability(
        replica.index.Range(i), query.size, replica.universe);
    expected_partitions += prob;
    expected_records += prob * static_cast<double>(replica.counts[i]);
  }
  return expected_records / 1000.0 * p.scan_ms_per_krecord +
         expected_partitions * p.extra_ms;
}

double CostModel::QueryCostMs(const ReplicaSketch& replica,
                              const STRange& query) const {
  const ScanCostParams& p = Params(replica.config.encoding);
  double cost = 0.0;
  for (const std::size_t i : replica.index.InvolvedPartitions(query))
    cost += static_cast<double>(replica.counts[i]) / 1000.0 *
                p.scan_ms_per_krecord +
            p.extra_ms;
  return cost;
}

double CostModel::WorkloadCostMs(const std::vector<ReplicaSketch>& replicas,
                                 const Workload& workload) const {
  if (replicas.empty())
    return workload.empty() ? 0.0
                            : std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const WeightedQuery& wq : workload.queries()) {
    double best = std::numeric_limits<double>::infinity();
    for (const ReplicaSketch& replica : replicas)
      best = std::min(best, QueryCostMs(replica, wq.query));
    total += wq.weight * best;
  }
  return total;
}

}  // namespace blot
