#include "core/candidates.h"

#include "util/error.h"

namespace blot {

std::vector<ReplicaConfig> EnumerateReplicaConfigs(
    const CandidateSpaceConfig& config) {
  require(!config.spatial_counts.empty() && !config.temporal_counts.empty() &&
              !config.encodings.empty(),
          "EnumerateReplicaConfigs: empty candidate space");
  std::vector<ReplicaConfig> configs;
  configs.reserve(config.spatial_counts.size() *
                  config.temporal_counts.size() * config.encodings.size());
  for (const std::size_t spatial : config.spatial_counts) {
    for (const std::size_t temporal : config.temporal_counts) {
      for (const EncodingScheme& encoding : config.encodings) {
        configs.push_back(
            {{.spatial_partitions = spatial,
              .temporal_partitions = temporal,
              .method = config.method},
             encoding});
      }
    }
  }
  return configs;
}

std::map<std::string, double> MeasureCompressionRatios(
    const Dataset& sample, const std::vector<EncodingScheme>& encodings,
    std::size_t max_sample_records, std::uint64_t seed) {
  require(!sample.empty(), "MeasureCompressionRatios: empty sample");
  Rng rng(seed);
  const Dataset measured = sample.Sample(max_sample_records, rng);
  std::map<std::string, double> ratios;
  for (const EncodingScheme& encoding : encodings)
    ratios[encoding.Name()] =
        MeasureCompressionRatio(measured.records(), encoding);
  return ratios;
}

std::vector<ReplicaSketch> BuildCandidateSketches(
    const Dataset& sample, const STRange& universe,
    const std::vector<ReplicaConfig>& configs, std::uint64_t total_records,
    const std::map<std::string, double>& ratios) {
  std::vector<ReplicaSketch> sketches;
  sketches.reserve(configs.size());
  // Partitionings repeat across encodings; cache by partitioning name.
  std::map<std::string, ReplicaSketch> by_partitioning;
  for (const ReplicaConfig& config : configs) {
    const auto ratio_it = ratios.find(config.encoding.Name());
    require(ratio_it != ratios.end(),
            "BuildCandidateSketches: missing ratio for " +
                config.encoding.Name());
    const std::string key = config.partitioning.Name();
    auto cached = by_partitioning.find(key);
    if (cached == by_partitioning.end()) {
      ReplicaSketch base = ReplicaSketch::FromSample(
          sample, config, universe, total_records, ratio_it->second);
      cached = by_partitioning.emplace(key, std::move(base)).first;
    }
    ReplicaSketch sketch = cached->second;
    sketch.config = config;
    sketch.storage_bytes = static_cast<std::uint64_t>(
        static_cast<double>(total_records) * kRecordRowBytes *
        ratio_it->second);
    sketches.push_back(std::move(sketch));
  }
  return sketches;
}

CandidateMatrixResult BuildSelectionInputGrouped(
    const Dataset& sample, const STRange& universe,
    const std::vector<PartitioningSpec>& partitionings,
    const std::vector<EncodingScheme>& encodings,
    const std::map<std::string, double>& ratios,
    std::uint64_t total_records, const Workload& workload,
    const CostModel& model, double budget_bytes) {
  require(!sample.empty(), "BuildSelectionInputGrouped: empty sample");
  require(!partitionings.empty() && !encodings.empty(),
          "BuildSelectionInputGrouped: empty candidate space");
  const std::size_t n = workload.size();
  const std::size_t num_encodings = encodings.size();
  const std::size_t m = partitionings.size() * num_encodings;
  const double scale = static_cast<double>(total_records) /
                       static_cast<double>(sample.size());

  CandidateMatrixResult result;
  result.input.budget_bytes = budget_bytes;
  result.input.weights.reserve(n);
  for (const WeightedQuery& wq : workload.queries())
    result.input.weights.push_back(wq.weight);
  result.input.cost.assign(n, std::vector<double>(m, 0.0));
  result.input.storage_bytes.resize(m);
  result.configs.reserve(m);

  for (std::size_t p = 0; p < partitionings.size(); ++p) {
    // Geometry pass: one partitioning, all queries.
    PartitionedData partitioned =
        PartitionDataset(sample, partitionings[p], universe);
    std::vector<double> expected_partitions(n, 0.0);
    std::vector<double> expected_records(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const RangeSize& size = workload.queries()[i].query.size;
      for (std::size_t part = 0; part < partitioned.NumPartitions();
           ++part) {
        const double prob = IntersectionProbability(
            partitioned.ranges[part], size, universe);
        expected_partitions[i] += prob;
        expected_records[i] +=
            prob * static_cast<double>(partitioned.members[part].size()) *
            scale;
      }
    }
    // Encoding pass: combine geometry with per-encoding parameters.
    for (std::size_t e = 0; e < num_encodings; ++e) {
      const std::size_t column = p * num_encodings + e;
      result.configs.push_back({partitionings[p], encodings[e]});
      const auto ratio_it = ratios.find(encodings[e].Name());
      require(ratio_it != ratios.end(),
              "BuildSelectionInputGrouped: missing ratio for " +
                  encodings[e].Name());
      result.input.storage_bytes[column] =
          static_cast<double>(total_records) * kRecordRowBytes *
          ratio_it->second;
      const ScanCostParams& params = model.Params(encodings[e]);
      for (std::size_t i = 0; i < n; ++i) {
        result.input.cost[i][column] =
            expected_records[i] / 1000.0 * params.scan_ms_per_krecord +
            expected_partitions[i] * params.extra_ms;
      }
    }
  }
  result.input.Check();
  return result;
}

}  // namespace blot
