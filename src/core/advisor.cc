#include "core/advisor.h"

#include "util/error.h"

namespace blot {

AdvisorReport AdviseReplicas(const Dataset& dataset, const STRange& universe,
                             std::uint64_t total_records,
                             const Workload& workload, const CostModel& model,
                             double budget_bytes,
                             const AdvisorOptions& options) {
  require(!dataset.empty(), "AdviseReplicas: empty dataset");
  require(!workload.empty(), "AdviseReplicas: empty workload");
  require(budget_bytes > 0, "AdviseReplicas: non-positive budget");

  Rng rng(options.seed);
  AdvisorReport report;

  // 1-2. Sample and measure compression ratios.
  const Dataset sample = dataset.Sample(options.sample_records, rng);
  report.compression_ratios = MeasureCompressionRatios(
      sample, options.candidate_space.encodings, options.sample_records,
      rng());

  // 3. Candidate sketches.
  const std::vector<ReplicaConfig> configs =
      EnumerateReplicaConfigs(options.candidate_space);
  std::vector<ReplicaSketch> sketches = BuildCandidateSketches(
      sample, universe, configs, total_records, report.compression_ratios);
  report.candidates_before_pruning = sketches.size();

  // 4. Workload reduction.
  Workload effective = workload;
  if (options.max_workload_size > 0 &&
      workload.size() > options.max_workload_size)
    effective = ReduceWorkload(workload, options.max_workload_size, rng);

  // 5. Cost matrix (and optional dominance pruning on it).
  SelectionInput input =
      BuildSelectionInput(sketches, effective, model, budget_bytes);
  std::vector<std::size_t> kept(sketches.size());
  for (std::size_t j = 0; j < sketches.size(); ++j) kept[j] = j;
  if (options.prune_dominated) {
    kept = PruneDominated(input);
    input = RestrictCandidates(input, kept);
  }
  report.candidates.reserve(kept.size());
  for (std::size_t j : kept) report.candidates.push_back(configs[j]);

  // 6. Selection.
  switch (options.algorithm) {
    case SelectionAlgorithm::kGreedy:
      report.selection = SelectGreedy(input);
      break;
    case SelectionAlgorithm::kMip:
      report.selection = SelectMip(input, options.mip_options);
      break;
    case SelectionAlgorithm::kBestSingle:
      report.selection = SelectBestSingle(input);
      break;
  }
  for (std::size_t j : report.selection.chosen)
    report.chosen.push_back(report.candidates[j]);

  report.best_single_cost_ms = SelectBestSingle(input).workload_cost;
  report.ideal_cost_ms = SelectIdeal(input).workload_cost;
  return report;
}

}  // namespace blot
