#include "core/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace blot {

WorkloadTracker::WorkloadTracker(double decay, std::size_t max_entries,
                                 std::uint64_t seed)
    : decay_(decay), max_entries_(max_entries), rng_(seed) {
  require(decay > 0 && decay <= 1, "WorkloadTracker: decay out of range");
  require(max_entries >= 8, "WorkloadTracker: max_entries too small");
}

void WorkloadTracker::Observe(const RangeSize& size) {
  require(size.w > 0 && size.h > 0 && size.t > 0,
          "WorkloadTracker::Observe: sizes must be positive");
  ++observations_;
  // Lazy decay: instead of multiplying every entry by `decay`, divide the
  // weight of new arrivals by the accumulated scale.
  scale_ *= decay_;
  const double weight = 1.0 / scale_;
  entries_.push_back({{size}, weight});
  if (scale_ < 1e-150) {
    // Renormalize before the scale underflows.
    for (WeightedQuery& e : entries_) e.weight *= scale_;
    scale_ = 1.0;
  }
  CompactIfNeeded();
}

void WorkloadTracker::CompactIfNeeded() {
  if (entries_.size() <= max_entries_) return;
  const Workload compacted =
      ReduceWorkload(Workload(entries_), max_entries_ / 2, rng_);
  entries_ = compacted.queries();
}

Workload WorkloadTracker::Snapshot(std::size_t max_groups) const {
  require(max_groups >= 1, "WorkloadTracker::Snapshot: max_groups >= 1");
  if (entries_.empty()) return Workload();
  Workload workload(entries_);
  if (workload.size() > max_groups)
    workload = ReduceWorkload(workload, max_groups, rng_);
  return workload.Normalized();
}

namespace {

double LogDistance(const RangeSize& a, const RangeSize& b) {
  return std::abs(std::log(a.w) - std::log(b.w)) +
         std::abs(std::log(a.h) - std::log(b.h)) +
         std::abs(std::log(a.t) - std::log(b.t));
}

// One-directional transport: each query's (normalized) mass travels to
// the nearest query of the other workload.
double DirectedDistance(const Workload& from, const Workload& to) {
  double total = 0;
  for (const WeightedQuery& wq : from.queries()) {
    double nearest = std::numeric_limits<double>::infinity();
    for (const WeightedQuery& other : to.queries())
      nearest = std::min(nearest, LogDistance(wq.query.size,
                                              other.query.size));
    total += wq.weight * nearest;
  }
  return total;
}

}  // namespace

double WorkloadDistance(const Workload& a, const Workload& b) {
  require(!a.empty() && !b.empty(), "WorkloadDistance: empty workload");
  for (const WeightedQuery& wq : a.queries())
    require(wq.query.size.w > 0 && wq.query.size.h > 0 && wq.query.size.t > 0,
            "WorkloadDistance: sizes must be positive");
  for (const WeightedQuery& wq : b.queries())
    require(wq.query.size.w > 0 && wq.query.size.h > 0 && wq.query.size.t > 0,
            "WorkloadDistance: sizes must be positive");
  const Workload na = a.Normalized();
  const Workload nb = b.Normalized();
  return (DirectedDistance(na, nb) + DirectedDistance(nb, na)) / 2;
}

DriftMonitor::DriftMonitor(Workload reference, double threshold)
    : reference_(std::move(reference)), threshold_(threshold) {
  require(!reference_.empty(), "DriftMonitor: empty reference workload");
  require(threshold > 0, "DriftMonitor: threshold must be positive");
}

double DriftMonitor::DistanceTo(const Workload& current) const {
  return WorkloadDistance(reference_, current);
}

bool DriftMonitor::HasDrifted(const Workload& current) const {
  return DistanceTo(current) > threshold_;
}

void DriftMonitor::Rebase(Workload reference) {
  require(!reference.empty(), "DriftMonitor::Rebase: empty workload");
  reference_ = std::move(reference);
}

}  // namespace blot
