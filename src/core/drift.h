// Workload tracking and drift detection.
//
// The paper motivates the greedy selector for deployments where "the
// workload is changing rapidly so that the replica set should be
// re-selected frequently" (Section III-D). This module supplies the
// missing operational pieces: a tracker that folds executed queries into
// an exponentially-decayed workload estimate (grouped by range size, as
// in Section III-C1), a size-distribution distance, and a monitor that
// signals when the live workload has drifted far enough from the one the
// current replica set was selected for.
#ifndef BLOT_CORE_DRIFT_H_
#define BLOT_CORE_DRIFT_H_

#include <cstddef>

#include "core/workload.h"

namespace blot {

// Maintains a decayed estimate of the query-size distribution.
class WorkloadTracker {
 public:
  // `decay` in (0, 1]: weight multiplier applied to history per observed
  // query (1 = never forget). `max_entries` bounds memory; when exceeded,
  // entries are compacted by k-means over range sizes.
  explicit WorkloadTracker(double decay = 0.995,
                           std::size_t max_entries = 256,
                           std::uint64_t seed = 11);

  // Records one executed query of the given range size.
  void Observe(const RangeSize& size);

  std::size_t observations() const { return observations_; }

  // The current workload estimate, reduced to at most `max_groups`
  // grouped queries and normalized to total weight 1.
  Workload Snapshot(std::size_t max_groups = 8) const;

 private:
  void CompactIfNeeded();

  double decay_;
  std::size_t max_entries_;
  mutable Rng rng_;
  double scale_ = 1.0;  // lazy global decay factor
  std::vector<WeightedQuery> entries_;
  std::size_t observations_ = 0;
};

// A symmetric distance in [0, ~inf) between two workloads' range-size
// distributions: weight-normalized earth-mover-style matching in
// log-size space (each side's mass travels to the other side's nearest
// query; L1 in log coordinates). 0 means identical supports; ~0.7 means
// sizes differ by about a factor e on one axis on average.
double WorkloadDistance(const Workload& a, const Workload& b);

// Signals drift when the live workload moves away from the reference the
// replica set was selected for.
class DriftMonitor {
 public:
  DriftMonitor(Workload reference, double threshold = 0.5);

  // True if `current` is farther than the threshold from the reference.
  bool HasDrifted(const Workload& current) const;
  double DistanceTo(const Workload& current) const;

  // Installs a new reference after reselection.
  void Rebase(Workload reference);

  const Workload& reference() const { return reference_; }

 private:
  Workload reference_;
  double threshold_;
};

}  // namespace blot

#endif  // BLOT_CORE_DRIFT_H_
