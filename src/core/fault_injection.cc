#include "core/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/error.h"

namespace blot {
namespace {

// SplitMix64: the mixing function behind all deterministic decisions
// here, chosen so a (seed, domain, partition) triple always lands on the
// same fault regardless of read order or thread interleaving.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashString(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kTornRead:
      return "torn";
    case FaultKind::kReadError:
      return "readerror";
    case FaultKind::kLatency:
      return "latency";
  }
  throw InvalidArgument("FaultKindName: unknown kind");
}

namespace {

FaultKind FaultKindFromName(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kBitFlip, FaultKind::kTruncate, FaultKind::kTornRead,
        FaultKind::kReadError, FaultKind::kLatency}) {
    if (name == FaultKindName(kind)) return kind;
  }
  throw InvalidArgument("ParseFaultSpec: unknown fault kind: " + name);
}

// std::stoull/stod throw std:: exceptions on malformed input; the spec
// grammar promises InvalidArgument for every parse failure.
std::uint64_t ParseU64(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed);
    require(consumed == value.size(),
            "ParseFaultSpec: trailing junk in " + key + ": " + value);
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("ParseFaultSpec: bad number for " + key + ": " +
                          value);
  }
}

double ParseF64(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    require(consumed == value.size(),
            "ParseFaultSpec: trailing junk in " + key + ": " + value);
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("ParseFaultSpec: bad number for " + key + ": " +
                          value);
  }
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    parts.push_back(s.substr(
        start, end == std::string::npos ? std::string::npos : end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return parts;
}

}  // namespace

FaultPlan ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& pair : SplitOn(spec, ';')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    require(eq != std::string::npos,
            "ParseFaultSpec: expected key=value, got: " + pair);
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    require(!value.empty(), "ParseFaultSpec: empty value for " + key);
    if (key == "seed") {
      plan.seed = ParseU64(key, value);
    } else if (key == "p") {
      plan.probability = ParseF64(key, value);
      require(plan.probability >= 0.0 && plan.probability <= 1.0,
              "ParseFaultSpec: p must be in [0, 1]");
    } else if (key == "kinds") {
      plan.kinds.clear();
      for (const std::string& name : SplitOn(value, ','))
        plan.kinds.push_back(FaultKindFromName(name));
      require(!plan.kinds.empty(), "ParseFaultSpec: empty kinds list");
    } else if (key == "replica") {
      plan.replica = value;
    } else if (key == "partition") {
      plan.partition = static_cast<std::size_t>(ParseU64(key, value));
    } else if (key == "fires") {
      plan.max_fires_per_target =
          static_cast<std::size_t>(ParseU64(key, value));
    } else if (key == "latency") {
      const std::vector<std::string> parts = SplitOn(value, ':');
      if (parts.size() == 1) {
        // Scalar grammar, unchanged: fixed delay in ms.
        plan.latency_dist = FaultPlan::LatencyDist::kFixed;
        plan.latency_ms = static_cast<std::uint32_t>(ParseU64(key, value));
      } else if (parts[0] == "pareto") {
        require(parts.size() == 3,
                "ParseFaultSpec: latency=pareto wants pareto:MIN:MAX, got: " +
                    value);
        plan.latency_dist = FaultPlan::LatencyDist::kPareto;
        plan.latency_min = ParseF64("latency min", parts[1]);
        plan.latency_max = ParseF64("latency max", parts[2]);
        require(plan.latency_min > 0.0 &&
                    plan.latency_min <= plan.latency_max,
                "ParseFaultSpec: latency=pareto wants 0 < MIN <= MAX");
      } else if (parts[0] == "spike") {
        require(parts.size() == 3,
                "ParseFaultSpec: latency=spike wants spike:MS:PROB, got: " +
                    value);
        plan.latency_dist = FaultPlan::LatencyDist::kSpike;
        plan.latency_min = ParseF64("latency ms", parts[1]);
        plan.spike_probability = ParseF64("spike probability", parts[2]);
        require(plan.latency_min > 0.0,
                "ParseFaultSpec: latency=spike wants MS > 0");
        require(plan.spike_probability >= 0.0 &&
                    plan.spike_probability <= 1.0,
                "ParseFaultSpec: spike probability must be in [0, 1]");
      } else {
        throw InvalidArgument(
            "ParseFaultSpec: unknown latency distribution: " + parts[0]);
      }
    } else {
      throw InvalidArgument("ParseFaultSpec: unknown key: " + key);
    }
  }
  return plan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

std::size_t FaultInjector::TargetKeyHash::operator()(
    const TargetKey& k) const {
  return static_cast<std::size_t>(Mix64(k.domain_hash ^ Mix64(k.partition)));
}

void FaultInjector::Arm(const FaultPlan& plan) {
  require(!plan.kinds.empty(), "FaultInjector::Arm: empty kinds list");
  std::lock_guard lock(mutex_);
  plan_ = plan;
  fires_.clear();
  reads_.clear();
  stats_ = Stats{};
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
}

FaultDecision FaultInjector::OnPartitionRead(std::string_view replica,
                                             std::size_t partition,
                                             std::size_t data_size) {
  FaultDecision decision;
  if (!enabled()) return decision;
  if (suspended_.load(std::memory_order_relaxed) > 0) return decision;
  std::lock_guard lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return decision;
  if (!plan_.replica.empty() && plan_.replica != replica) return decision;
  if (plan_.partition.has_value() && *plan_.partition != partition)
    return decision;

  const std::uint64_t domain_hash = HashString(replica);
  const std::uint64_t target =
      Mix64(plan_.seed ^ Mix64(domain_hash) ^ Mix64(partition));
  // Per-target arming draw: the same target is faulty (or not) for the
  // plan's whole lifetime.
  const double draw =
      static_cast<double>(target >> 11) * 0x1.0p-53;  // uniform [0, 1)
  if (draw >= plan_.probability) return decision;

  decision.kind = plan_.kinds[Mix64(target) % plan_.kinds.size()];
  const bool is_corruption = decision.kind == FaultKind::kBitFlip ||
                             decision.kind == FaultKind::kTruncate ||
                             decision.kind == FaultKind::kTornRead;
  // Nothing to corrupt in an empty storage unit.
  if (is_corruption && data_size == 0) return decision;

  const TargetKey key{domain_hash, partition};
  std::uint64_t latency_param = plan_.latency_ms;
  if (decision.kind == FaultKind::kLatency) {
    switch (plan_.latency_dist) {
      case FaultPlan::LatencyDist::kFixed:
        break;
      case FaultPlan::LatencyDist::kPareto: {
        // Deterministic per-target bounded Pareto draw (alpha 1.5):
        // most targets sit near latency_min, a reproducible few near
        // latency_max.
        constexpr double kAlpha = 1.5;
        const double u =
            static_cast<double>(Mix64(target ^ 0x70617265746Full) >> 11) *
            0x1.0p-53;
        double ms = plan_.latency_min / std::pow(1.0 - u, 1.0 / kAlpha);
        ms = std::min(ms, plan_.latency_max);
        latency_param = static_cast<std::uint64_t>(
            std::max(1.0, std::llround(ms) * 1.0));
        break;
      }
      case FaultPlan::LatencyDist::kSpike: {
        // Per-read draw, BEFORE the fires budget: a non-spiking read is
        // not a fault and must not consume the target's budget. The
        // sequence number makes the draw deterministic in read order.
        const std::uint64_t seq = reads_[key]++;
        const double read_draw =
            static_cast<double>(Mix64(target ^ Mix64(seq) ^
                                      0x7370696B65ull) >>
                                11) *
            0x1.0p-53;
        if (read_draw >= plan_.spike_probability) return decision;
        latency_param = static_cast<std::uint64_t>(
            std::max(1.0, std::llround(plan_.latency_min) * 1.0));
        break;
      }
    }
  }
  std::size_t& fired = fires_[key];
  if (plan_.max_fires_per_target != 0 &&
      fired >= plan_.max_fires_per_target)
    return decision;
  ++fired;

  decision.fire = true;
  decision.param = decision.kind == FaultKind::kLatency
                       ? latency_param
                       : Mix64(target ^ 0xA5A5A5A5A5A5A5A5ull);
  ++stats_.fired_total;
  if (fired == 1) ++stats_.targets_hit;
  switch (decision.kind) {
    case FaultKind::kBitFlip:
      ++stats_.bit_flips;
      break;
    case FaultKind::kTruncate:
      ++stats_.truncations;
      break;
    case FaultKind::kTornRead:
      ++stats_.torn_reads;
      break;
    case FaultKind::kReadError:
      ++stats_.read_errors;
      break;
    case FaultKind::kLatency:
      ++stats_.latency_spikes;
      break;
  }
  return decision;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void FaultInjector::FlipBit(Bytes& data, std::uint64_t bit) {
  if (data.empty()) return;
  const std::uint64_t index = bit % (data.size() * 8);
  data[index / 8] ^= static_cast<std::uint8_t>(1u << (index % 8));
}

void FaultInjector::Truncate(Bytes& data, std::uint64_t salt) {
  if (data.empty()) return;
  // Keep a salt-derived prefix, always dropping at least one byte.
  data.resize(salt % data.size());
}

void FaultInjector::ZeroTail(Bytes& data, std::uint64_t salt) {
  if (data.empty()) return;
  const std::size_t from = salt % data.size();
  std::fill(data.begin() + static_cast<std::ptrdiff_t>(from), data.end(),
            std::uint8_t{0});
}

void FaultInjector::ApplyMutation(Bytes& data, FaultKind kind,
                                  std::uint64_t salt) {
  switch (kind) {
    case FaultKind::kBitFlip:
      FlipBit(data, salt);
      return;
    case FaultKind::kTruncate:
      Truncate(data, salt);
      return;
    case FaultKind::kTornRead:
      ZeroTail(data, salt);
      return;
    case FaultKind::kReadError:
    case FaultKind::kLatency:
      break;
  }
  throw InvalidArgument("FaultInjector::ApplyMutation: not a corruption kind");
}

void FaultInjector::CorruptFile(const std::filesystem::path& path,
                                FaultKind kind, std::uint64_t salt) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw ReadError("CorruptFile: cannot open " + path.string());
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  in.close();
  ApplyMutation(data, kind, salt);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "CorruptFile: cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void RunFaultCampaign(
    FaultPlan plan, std::size_t rounds,
    const std::function<void(std::size_t round, std::uint64_t round_seed)>&
        body) {
  FaultInjector& injector = FaultInjector::Global();
  const std::uint64_t base_seed = plan.seed;
  try {
    for (std::size_t round = 0; round < rounds; ++round) {
      plan.seed = Mix64(base_seed + round);
      injector.Arm(plan);
      body(round, plan.seed);
    }
  } catch (...) {
    injector.Disarm();
    throw;
  }
  injector.Disarm();
}

}  // namespace blot
