#include "core/streaming.h"

#include "util/error.h"

namespace blot {

StreamingStore::StreamingStore(BlotStore store,
                               std::size_t compact_threshold,
                               ThreadPool* pool)
    : store_(std::move(store)),
      compact_threshold_(compact_threshold),
      pool_(pool) {
  require(store_.NumReplicas() > 0,
          "StreamingStore: store needs at least one replica");
}

bool StreamingStore::Ingest(const Record& record) {
  require(store_.universe().Contains(record.Position()),
          "StreamingStore::Ingest: record outside universe");
  delta_.Append(record);
  if (compact_threshold_ > 0 && delta_.size() >= compact_threshold_) {
    Compact();
    return true;
  }
  return false;
}

BlotStore::RoutedResult StreamingStore::Execute(
    const STRange& query, const CostModel& model) {
  BlotStore::RoutedResult routed = store_.Execute(query, model, pool_);
  // Fresh records live only in the delta; scan it linearly (bounded by
  // the compaction threshold).
  for (const Record& r : delta_.records()) {
    if (query.Contains(r.Position())) routed.result.records.push_back(r);
  }
  routed.result.stats.records_scanned += delta_.size();
  return routed;
}

BlotStore::RoutedBatchResult StreamingStore::ExecuteBatch(
    std::span<const STRange> queries, const CostModel& model) {
  BlotStore::RoutedBatchResult batch =
      store_.ExecuteBatch(queries, model, pool_);
  for (const Record& r : delta_.records()) {
    const STPoint position = r.Position();
    for (std::size_t q = 0; q < queries.size(); ++q)
      if (queries[q].Contains(position)) batch.per_query[q].push_back(r);
  }
  batch.stats.records_scanned += delta_.size();
  return batch;
}

void StreamingStore::Compact() {
  if (delta_.empty()) return;
  Dataset merged = store_.dataset();
  merged.Append(delta_);

  BlotStore rebuilt(std::move(merged), store_.universe());
  for (std::size_t i = 0; i < store_.NumReplicas(); ++i) {
    const Replica& replica = store_.replica(i);
    if (store_.IsFullReplica(i)) {
      rebuilt.AddReplica(replica.config(), pool_);
    } else {
      rebuilt.AddPartialReplica(replica.config(), replica.universe(),
                                pool_);
    }
  }
  store_ = std::move(rebuilt);
  delta_ = Dataset();
  ++compactions_;
}

}  // namespace blot
