#include "core/partial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace blot {
namespace {

// Per-axis containment factor: fraction of the centroid interval for
// which [c - e/2, c + e/2] lies inside [cov_lo, cov_hi].
double AxisContainment(double u_lo, double u_hi, double cov_lo,
                       double cov_hi, double extent) {
  if (extent > cov_hi - cov_lo) return 0.0;
  const double c_lo = u_lo + extent / 2;
  const double c_hi = u_hi - extent / 2;
  if (c_lo >= c_hi) {
    // Degenerate centroid range (query spans the axis): the single
    // admissible instance is centered; it is contained iff the coverage
    // spans the whole extent around the center.
    const double center = (u_lo + u_hi) / 2;
    return (center - extent / 2 >= cov_lo - 1e-12 &&
            center + extent / 2 <= cov_hi + 1e-12)
               ? 1.0
               : 0.0;
  }
  const double i_lo = std::max(c_lo, cov_lo + extent / 2);
  const double i_hi = std::min(c_hi, cov_hi - extent / 2);
  return std::clamp((i_hi - i_lo) / (c_hi - c_lo), 0.0, 1.0);
}

}  // namespace

double ContainmentProbability(const STRange& coverage,
                              const RangeSize& query_size,
                              const STRange& universe) {
  require(!coverage.empty() && !universe.empty(),
          "ContainmentProbability: empty range");
  return AxisContainment(universe.x_min(), universe.x_max(),
                         coverage.x_min(), coverage.x_max(), query_size.w) *
         AxisContainment(universe.y_min(), universe.y_max(),
                         coverage.y_min(), coverage.y_max(), query_size.h) *
         AxisContainment(universe.t_min(), universe.t_max(),
                         coverage.t_min(), coverage.t_max(), query_size.t);
}

STRange DensestSpatialBox(const Dataset& sample, const STRange& universe,
                          double record_fraction) {
  require(!sample.empty(), "DensestSpatialBox: empty sample");
  require(record_fraction > 0 && record_fraction <= 1,
          "DensestSpatialBox: fraction out of range");
  std::vector<double> xs, ys;
  xs.reserve(sample.size());
  ys.reserve(sample.size());
  for (const Record& r : sample.records()) {
    xs.push_back(r.x);
    ys.push_back(r.y);
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  const auto quantile = [](const std::vector<double>& sorted, double q) {
    const double rank = q * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank)];
  };
  const auto covered = [&](double alpha) {
    const double x_lo = quantile(xs, alpha), x_hi = quantile(xs, 1 - alpha);
    const double y_lo = quantile(ys, alpha), y_hi = quantile(ys, 1 - alpha);
    std::size_t inside = 0;
    for (const Record& r : sample.records())
      if (r.x >= x_lo && r.x <= x_hi && r.y >= y_lo && r.y <= y_hi)
        ++inside;
    return static_cast<double>(inside) /
           static_cast<double>(sample.size());
  };
  // Binary search the symmetric trim level whose central box covers the
  // requested record fraction.
  double lo = 0.0, hi = 0.49;
  for (int iter = 0; iter < 30; ++iter) {
    const double mid = (lo + hi) / 2;
    if (covered(mid) >= record_fraction) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double alpha = lo;
  return STRange::FromBounds(quantile(xs, alpha), quantile(xs, 1 - alpha),
                             quantile(ys, alpha), quantile(ys, 1 - alpha),
                             universe.t_min(), universe.t_max());
}

std::string PartialCandidate::Name() const {
  return config.Name() + "@partial";
}

ReplicaSketch SketchPartialReplica(const Dataset& sample,
                                   const PartialCandidate& candidate,
                                   const STRange& universe,
                                   std::uint64_t total_records,
                                   double compression_ratio) {
  require(universe.Contains(candidate.coverage),
          "SketchPartialReplica: coverage outside universe");
  const Dataset covered(sample.FilterByRange(candidate.coverage));
  require(!covered.empty(),
          "SketchPartialReplica: no sample records in coverage");
  const double covered_fraction = static_cast<double>(covered.size()) /
                                  static_cast<double>(sample.size());
  const std::uint64_t covered_records = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(total_records) * covered_fraction));
  ReplicaSketch sketch = ReplicaSketch::FromSample(
      covered, candidate.config, candidate.coverage, covered_records,
      compression_ratio);
  return sketch;
}

void MixedSelectionInput::Check() const {
  full.Check();
  require(contained_cost.size() == full.NumQueries() &&
              containment.size() == full.NumQueries(),
          "MixedSelectionInput: query-row mismatch");
  for (std::size_t i = 0; i < contained_cost.size(); ++i) {
    require(contained_cost[i].size() == partial_storage.size() &&
                containment[i].size() == partial_storage.size(),
            "MixedSelectionInput: partial-column mismatch");
    for (double p : containment[i])
      require(p >= 0 && p <= 1, "MixedSelectionInput: bad probability");
    for (double c : contained_cost[i])
      require(c >= 0, "MixedSelectionInput: negative cost");
  }
  for (double s : partial_storage)
    require(s > 0, "MixedSelectionInput: non-positive partial storage");
}

void AddPartialCandidates(MixedSelectionInput& input,
                          const std::vector<ReplicaSketch>& partial_sketches,
                          const Workload& workload, const CostModel& model,
                          const STRange& universe) {
  const std::size_t n = workload.size();
  input.contained_cost.resize(n);
  input.containment.resize(n);
  for (const ReplicaSketch& sketch : partial_sketches) {
    input.partial_storage.push_back(
        static_cast<double>(sketch.storage_bytes));
    for (std::size_t i = 0; i < n; ++i) {
      const GroupedQuery& q = workload.queries()[i].query;
      // Conditional on containment, the instance is approximately uniform
      // within the coverage, so the grouped cost against the coverage as
      // universe is the right conditional estimate.
      input.contained_cost[i].push_back(model.QueryCostMs(sketch, q));
      input.containment[i].push_back(
          ContainmentProbability(sketch.universe, q.size, universe));
    }
  }
}

namespace {

// Per-query cost given best-full cost and one partial replica.
double WithPartial(double best_full, double contained_cost,
                   double containment) {
  return std::min(best_full, containment * contained_cost +
                                 (1 - containment) * best_full);
}

}  // namespace

double MixedSubsetCost(const MixedSelectionInput& input,
                       std::span<const std::size_t> full_chosen,
                       std::span<const std::size_t> partial_chosen) {
  const std::size_t n = input.full.NumQueries();
  if (full_chosen.empty())
    return n == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best_full = std::numeric_limits<double>::infinity();
    for (std::size_t j : full_chosen)
      best_full = std::min(best_full, input.full.cost[i][j]);
    double best = best_full;
    for (std::size_t k : partial_chosen)
      best = std::min(best, WithPartial(best_full, input.contained_cost[i][k],
                                        input.containment[i][k]));
    total += input.full.weights[i] * best;
  }
  return total;
}

MixedSelectionResult SelectGreedyMixed(const MixedSelectionInput& input) {
  input.Check();
  MixedSelectionResult result;
  const std::size_t n = input.full.NumQueries();
  const std::size_t m_full = input.full.NumReplicas();
  const std::size_t m_partial = input.NumPartials();

  std::vector<bool> full_taken(m_full, false);
  std::vector<bool> partial_taken(m_partial, false);
  double storage_used = 0;

  const auto current_cost = [&]() {
    return MixedSubsetCost(input, result.full_chosen,
                           result.partial_chosen);
  };

  // Bootstrap penalty as in SelectGreedy: worst full cost per query.
  double bootstrap_cost = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double worst = 0;
    for (std::size_t j = 0; j < m_full; ++j)
      worst = std::max(worst, input.full.cost[i][j]);
    bootstrap_cost += input.full.weights[i] * worst;
  }

  bool first_pick = true;
  for (;;) {
    const double base_cost =
        result.full_chosen.empty() ? bootstrap_cost : current_cost();
    double best_score = 0;
    int best_kind = -1;  // 0 full, 1 partial
    std::size_t best_index = 0;
    for (std::size_t j = 0; j < m_full; ++j) {
      if (full_taken[j]) continue;
      if (storage_used + input.full.storage_bytes[j] >
          input.full.budget_bytes)
        continue;
      result.full_chosen.push_back(j);
      const double gain = base_cost - current_cost();
      result.full_chosen.pop_back();
      const double score = gain / input.full.storage_bytes[j];
      if (score > best_score || (first_pick && best_kind < 0)) {
        best_score = score;
        best_kind = 0;
        best_index = j;
      }
    }
    // Partial replicas only help once a full replica exists.
    if (!result.full_chosen.empty()) {
      for (std::size_t k = 0; k < m_partial; ++k) {
        if (partial_taken[k]) continue;
        if (storage_used + input.partial_storage[k] >
            input.full.budget_bytes)
          continue;
        result.partial_chosen.push_back(k);
        const double gain = base_cost - current_cost();
        result.partial_chosen.pop_back();
        const double score = gain / input.partial_storage[k];
        if (score > best_score) {
          best_score = score;
          best_kind = 1;
          best_index = k;
        }
      }
    }
    if (best_kind < 0) break;
    first_pick = false;
    if (best_kind == 0) {
      full_taken[best_index] = true;
      storage_used += input.full.storage_bytes[best_index];
      result.full_chosen.push_back(best_index);
    } else {
      partial_taken[best_index] = true;
      storage_used += input.partial_storage[best_index];
      result.partial_chosen.push_back(best_index);
    }
  }

  std::sort(result.full_chosen.begin(), result.full_chosen.end());
  std::sort(result.partial_chosen.begin(), result.partial_chosen.end());
  result.workload_cost = current_cost();
  result.storage_used = storage_used;
  return result;
}

}  // namespace blot
