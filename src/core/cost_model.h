// The query cost estimation model of Section IV.
//
// Cost of processing one involved partition (Eq. 6):
//     Cost(q, p) = |D(p)| / ScanRate + ExtraTime
// Cost of a query on a replica (Eq. 7):
//     Cost(q, r) = Np(q, r) * (|D| / |P(r)|) / ScanRate
//                + Np(q, r) * ExtraTime
//
// For a concrete query, Np is counted exactly from the partitioning
// index. For a grouped query Q_G = <W,H,T> with uniformly distributed
// centroid, the expected count is (Eq. 11-12):
//     Np(Q_G, r) = sum_p  Volume(CR(Q_G, p)) / Volume(CR(Q_G))
// where CR(Q_G, p) is the clamped cuboid of centroid positions whose
// query range intersects partition p. Dimensions in which the query is at
// least as large as the universe always intersect (factor 1), handling
// the paper's implicit W < W^U assumption.
//
// The model is parameterized per encoding scheme by ScanCostParams that
// come either from an EnvironmentModel's ground truth or from the
// measurement procedure of Section V-B.
#ifndef BLOT_CORE_COST_MODEL_H_
#define BLOT_CORE_COST_MODEL_H_

#include <map>
#include <string>

#include "core/workload.h"
#include "simenv/environment.h"
#include "simenv/replica_sketch.h"

namespace blot {

// Expected number of involved partitions for a grouped query (Eq. 11-12).
// `partition_ranges` must tile `universe`.
double ExpectedInvolvedPartitions(const PartitionIndex& index,
                                  const RangeSize& query_size,
                                  const STRange& universe);

// Probability that a random instance of `query_size` intersects
// `partition` (Eq. 12), with per-dimension clamping.
double IntersectionProbability(const STRange& partition,
                               const RangeSize& query_size,
                               const STRange& universe);

class CostModel {
 public:
  // Parameters from an environment's ground truth table.
  explicit CostModel(const EnvironmentModel& environment);

  // Parameters supplied explicitly (e.g. fitted by MeasureScanParams).
  explicit CostModel(
      std::map<std::string, ScanCostParams> params_by_encoding);

  const ScanCostParams& Params(const EncodingScheme& scheme) const;

  // Eq. 6 for one partition.
  double PartitionCostMs(const EncodingScheme& scheme,
                         double records) const;

  // Eq. 7 with the expected Np and expected records scanned for a grouped
  // query. Uses per-partition counts (exact under skew; reduces to
  // |D|/|P(r)| under the non-skew assumption).
  double QueryCostMs(const ReplicaSketch& replica,
                     const GroupedQuery& query) const;

  // Eq. 7 with exact involved-partition counting for a concrete query.
  double QueryCostMs(const ReplicaSketch& replica, const STRange& query) const;

  // Cost(W, R) = sum_i w_i * min_{r in R} Cost(q_i, r) over sketches.
  // Returns +infinity for an empty replica set.
  double WorkloadCostMs(const std::vector<ReplicaSketch>& replicas,
                        const Workload& workload) const;

 private:
  std::map<std::string, ScanCostParams> params_by_encoding_;
};

}  // namespace blot

#endif  // BLOT_CORE_COST_MODEL_H_
