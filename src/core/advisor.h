// ReplicaAdvisor: the end-to-end replica-selection pipeline.
//
// Ties the pieces together the way the paper's system would run them:
//   1. sample the dataset;
//   2. measure per-encoding compression ratios (storage estimates);
//   3. enumerate candidate replicas and sketch them from the sample;
//   4. optionally reduce the workload (k-means over range sizes) and
//      prune dominated candidates;
//   5. estimate the cost matrix with the cost model;
//   6. select a replica set under the storage budget (greedy or MIP).
#ifndef BLOT_CORE_ADVISOR_H_
#define BLOT_CORE_ADVISOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/mip_selection.h"
#include "core/selection.h"

namespace blot {

enum class SelectionAlgorithm { kGreedy, kMip, kBestSingle };

struct AdvisorOptions {
  CandidateSpaceConfig candidate_space;
  std::size_t sample_records = 50000;
  // Reduce the workload to at most this many grouped queries (0 = off).
  std::size_t max_workload_size = 0;
  bool prune_dominated = true;
  SelectionAlgorithm algorithm = SelectionAlgorithm::kGreedy;
  MipSelectionOptions mip_options;
  std::uint64_t seed = 97;
};

struct AdvisorReport {
  // Chosen configurations, in candidate order.
  std::vector<ReplicaConfig> chosen;
  SelectionResult selection;         // indices refer to `candidates`
  std::vector<ReplicaConfig> candidates;  // post-pruning candidate list
  std::size_t candidates_before_pruning = 0;
  double best_single_cost_ms = 0.0;  // baseline for speedup reporting
  double ideal_cost_ms = 0.0;        // unreachable lower bound
  std::map<std::string, double> compression_ratios;

  double SpeedupOverSingle() const {
    return selection.workload_cost > 0
               ? best_single_cost_ms / selection.workload_cost
               : 0.0;
  }
};

// Runs the pipeline for a dataset of `total_records` records distributed
// like `dataset` (pass the full dataset and its size for an exact run, or
// a sample plus the full count for a scaled run).
AdvisorReport AdviseReplicas(const Dataset& dataset, const STRange& universe,
                             std::uint64_t total_records,
                             const Workload& workload, const CostModel& model,
                             double budget_bytes,
                             const AdvisorOptions& options = {});

}  // namespace blot

#endif  // BLOT_CORE_ADVISOR_H_
