// Streaming ingestion on top of the (batch-built) replica set.
//
// BLOT systems are bulk-loaded — partition boundaries come from the data
// distribution — but location tracking data arrives continuously. The
// standard pattern (TrajStore's buffering, LSM-style stores) is a small
// unpartitioned in-memory delta alongside the partitioned replicas:
//
//   * Ingest() appends records to the delta (cheap, no re-partitioning);
//   * queries merge replica results with a delta scan (the delta is kept
//     small, so the extra scan is bounded);
//   * Compact() folds the delta into the logical dataset and rebuilds
//     every replica — the (amortized) heavy step, triggered by a size
//     threshold or explicitly.
//
// This module wraps BlotStore with exactly that lifecycle.
#ifndef BLOT_CORE_STREAMING_H_
#define BLOT_CORE_STREAMING_H_

#include <cstddef>

#include "core/store.h"

namespace blot {

class StreamingStore {
 public:
  // `compact_threshold`: delta size (records) at which Ingest triggers an
  // automatic compaction. 0 disables auto-compaction.
  explicit StreamingStore(BlotStore store,
                          std::size_t compact_threshold = 100000,
                          ThreadPool* pool = nullptr);

  const BlotStore& store() const { return store_; }
  std::size_t DeltaSize() const { return delta_.size(); }
  std::uint64_t TotalRecords() const {
    return store_.dataset().size() + delta_.size();
  }
  std::size_t compactions() const { return compactions_; }

  // Appends one record. The record must lie within the store's universe.
  // Returns true if the append triggered a compaction.
  bool Ingest(const Record& record);

  // Routed range query over replicas plus a delta scan; results cover
  // both compacted and freshly ingested records. Non-const because the
  // underlying store may quarantine and self-heal partitions.
  BlotStore::RoutedResult Execute(const STRange& query,
                                  const CostModel& model);

  // Shared-scan batch over the replicas plus one delta pass covering all
  // queries; per-query results include freshly ingested records.
  BlotStore::RoutedBatchResult ExecuteBatch(std::span<const STRange> queries,
                                            const CostModel& model);

  // Folds the delta into the dataset and rebuilds every replica with its
  // existing configuration (full and partial alike).
  void Compact();

 private:
  BlotStore store_;
  Dataset delta_;
  std::size_t compact_threshold_;
  std::size_t compactions_ = 0;
  ThreadPool* pool_;
};

}  // namespace blot

#endif  // BLOT_CORE_STREAMING_H_
