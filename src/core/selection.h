// The replica selection problem (Section III) and its solvers.
//
// Given a workload W, candidate replicas R_C with storage sizes, a cost
// matrix c_ij = Cost(q_i, r_j) and a storage budget b, find R* ⊆ R_C with
// Storage(R*) <= b minimizing Cost(W, R*) = Σ_i w_i min_{r in R*}
// Cost(q_i, r). The problem is at least NP-complete (Theorem 1, reduction
// from set cover — exercised in tests/core/setcover_reduction_test).
//
// Solvers:
//   SelectGreedy     — Algorithm 1: repeatedly add the replica maximizing
//                      cost gain per storage byte.
//   SelectMip        — the exact 0-1 MIP of Eq. 1-5 via branch and bound
//                      (see mip_selection.h).
//   SelectExhaustive — enumerate all subsets; ground truth for small m.
//   SelectBestSingle — the best single replica within budget: what a
//                      conventional BLOT system without diverse replicas
//                      achieves ("Single" in Figures 4 and 6).
//   SelectIdeal      — every query on its best candidate, budget ignored
//                      ("Ideal": the unreachable lower bound).
//
// Candidate pruning (Section III-C2): PruneDominated removes replicas
// dominated by another replica or by a small replica set, which never
// changes the optimal workload cost.
#ifndef BLOT_CORE_SELECTION_H_
#define BLOT_CORE_SELECTION_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/workload.h"
#include "simenv/replica_sketch.h"

namespace blot {

// The abstract selection instance: everything the solvers need, decoupled
// from how costs were obtained (cost model, simulation, or synthetic).
struct SelectionInput {
  // cost[i][j] = Cost(q_i, r_j), in ms. Rows: queries; columns: replicas.
  std::vector<std::vector<double>> cost;
  std::vector<double> weights;        // per query, non-negative
  std::vector<double> storage_bytes;  // per replica, positive
  double budget_bytes = 0;

  std::size_t NumQueries() const { return cost.size(); }
  std::size_t NumReplicas() const {
    return cost.empty() ? storage_bytes.size() : cost[0].size();
  }

  // Validates shape invariants; throws InvalidArgument on violation.
  void Check() const;
};

// Builds a SelectionInput from sketches via the cost model.
SelectionInput BuildSelectionInput(const std::vector<ReplicaSketch>& candidates,
                                   const Workload& workload,
                                   const CostModel& model,
                                   double budget_bytes);

struct SelectionResult {
  std::vector<std::size_t> chosen;  // candidate indices, ascending
  double workload_cost = 0.0;       // Cost(W, R) of the chosen set
  double storage_used = 0.0;
  // Solver diagnostics.
  std::size_t nodes_explored = 0;  // MIP only
  bool optimal = false;            // proven optimal (MIP / exhaustive)
  double solve_seconds = 0.0;
};

// Cost(W, R) for an explicit subset; +infinity if `chosen` is empty and
// the workload is not.
double SubsetWorkloadCost(const SelectionInput& input,
                          std::span<const std::size_t> chosen);

// Algorithm 1 (greedy by cost gain per storage byte).
SelectionResult SelectGreedy(const SelectionInput& input);

// Brute force over all 2^m subsets; requires m <= 24.
SelectionResult SelectExhaustive(const SelectionInput& input);

// Best single replica within budget.
SelectionResult SelectBestSingle(const SelectionInput& input);

// All candidates, budget ignored (lower bound on any feasible cost).
SelectionResult SelectIdeal(const SelectionInput& input);

// Indices of candidates that survive dominance pruning (Section III-C2):
// removes r if some other replica, or some pair of replicas, has no more
// storage and no worse cost on every query. Safe: never removes all
// copies of a best-choice column.
std::vector<std::size_t> PruneDominated(const SelectionInput& input,
                                        bool check_pairs = true);

// Restricts an instance to a candidate subset (e.g. PruneDominated's
// output). Chosen indices in results refer to the restricted instance.
SelectionInput RestrictCandidates(const SelectionInput& input,
                                  std::span<const std::size_t> keep);

}  // namespace blot

#endif  // BLOT_CORE_SELECTION_H_
