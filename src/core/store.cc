#include "core/store.h"

#include <fstream>
#include <limits>
#include <map>

#include "blot/batch.h"
#include "blot/segment_store.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot {

BlotStore::BlotStore(Dataset dataset, std::optional<STRange> universe)
    : dataset_(std::move(dataset)) {
  require(!dataset_.empty(), "BlotStore: empty dataset");
  universe_ = universe.value_or(dataset_.BoundingBox());
  for (const Record& r : dataset_.records())
    require(universe_.Contains(r.Position()),
            "BlotStore: record outside universe");
}

std::size_t BlotStore::AddReplica(const ReplicaConfig& config,
                                  ThreadPool* pool) {
  for (const Replica& existing : replicas_)
    require(!(existing.config() == config &&
              existing.universe() == universe_),
            "BlotStore::AddReplica: duplicate replica " + config.Name());
  replicas_.push_back(Replica::Build(dataset_, config, universe_, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  return replicas_.size() - 1;
}

std::size_t BlotStore::AddPartialReplica(const ReplicaConfig& config,
                                         const STRange& coverage,
                                         ThreadPool* pool) {
  require(universe_.Contains(coverage),
          "BlotStore::AddPartialReplica: coverage outside universe");
  require(!(coverage == universe_),
          "BlotStore::AddPartialReplica: coverage is the whole universe; "
          "use AddReplica");
  const Dataset covered(dataset_.FilterByRange(coverage));
  replicas_.push_back(Replica::Build(covered, config, coverage, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  return replicas_.size() - 1;
}

bool BlotStore::IsFullReplica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::IsFullReplica: bad index");
  return replicas_[i].universe() == universe_;
}

const Replica& BlotStore::replica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::replica: bad index");
  return replicas_[i];
}

std::uint64_t BlotStore::TotalStorageBytes() const {
  std::uint64_t total = 0;
  for (const Replica& r : replicas_) total += r.StorageBytes();
  return total;
}

std::size_t BlotStore::RouteQuery(const STRange& query,
                                  const CostModel& model) const {
  require(!replicas_.empty(), "BlotStore::RouteQuery: no replicas");
  std::size_t best = sketches_.size();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    // Full replicas can serve anything; partial replicas only queries
    // entirely inside their coverage.
    if (!IsFullReplica(i) && !replicas_[i].universe().Contains(query))
      continue;
    const double cost = model.QueryCostMs(sketches_[i], query);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  require(best < sketches_.size(),
          "BlotStore::RouteQuery: no replica can serve the query (add a "
          "full replica)");
  return best;
}

BlotStore::RoutedResult BlotStore::Execute(const STRange& query,
                                           const CostModel& model,
                                           ThreadPool* pool) const {
  RoutedResult routed;
  routed.replica_index = RouteQuery(query, model);
  routed.estimated_cost_ms =
      model.QueryCostMs(sketches_[routed.replica_index], query);
  routed.result = replicas_[routed.replica_index].Execute(query, pool);
  return routed;
}

BlotStore::RoutedBatchResult BlotStore::ExecuteBatch(
    std::span<const STRange> queries, const CostModel& model,
    ThreadPool* pool) const {
  RoutedBatchResult result;
  result.per_query.resize(queries.size());
  result.replica_of.resize(queries.size());

  // Group queries by routed replica, preserving original indices.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t replica = RouteQuery(queries[q], model);
    result.replica_of[q] = replica;
    groups[replica].push_back(q);
  }
  for (const auto& [replica, query_ids] : groups) {
    std::vector<STRange> group;
    group.reserve(query_ids.size());
    for (std::size_t q : query_ids) group.push_back(queries[q]);
    BatchResult batch = ::blot::ExecuteBatch(replicas_[replica], group, pool);
    for (std::size_t j = 0; j < query_ids.size(); ++j)
      result.per_query[query_ids[j]] = std::move(batch.per_query[j]);
    result.stats.partitions_scanned += batch.stats.partitions_scanned;
    result.stats.records_scanned += batch.stats.records_scanned;
    result.stats.bytes_read += batch.stats.bytes_read;
    result.naive_partition_scans += batch.naive_partition_scans;
  }
  return result;
}

namespace {

constexpr std::uint64_t kStoreMagic = 0x315252544F4C42ull;  // "BLOTRR1"
const char* kStoreManifest = "store.blot";
const char* kStoreDataset = "dataset.bin";

std::string ReplicaDirName(std::size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "replica_%03zu", i);
  return name;
}

}  // namespace

void BlotStore::Save(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);
  {
    std::ofstream out(directory / kStoreDataset,
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write dataset");
    dataset_.WriteBinary(out);
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    SegmentStore::Save(replicas_[i], directory / ReplicaDirName(i));

  ByteWriter manifest;
  manifest.PutU64(kStoreMagic);
  manifest.PutF64(universe_.x_min());
  manifest.PutF64(universe_.x_max());
  manifest.PutF64(universe_.y_min());
  manifest.PutF64(universe_.y_max());
  manifest.PutF64(universe_.t_min());
  manifest.PutF64(universe_.t_max());
  manifest.PutVarint(replicas_.size());
  const std::filesystem::path tmp =
      directory / (std::string(kStoreManifest) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write manifest");
    out.write(reinterpret_cast<const char*>(manifest.buffer().data()),
              static_cast<std::streamsize>(manifest.size()));
  }
  std::filesystem::rename(tmp, directory / kStoreManifest);
}

BlotStore BlotStore::Load(const std::filesystem::path& directory) {
  require(std::filesystem::exists(directory / kStoreManifest),
          "BlotStore::Load: no store manifest in " + directory.string());
  std::ifstream manifest_in(directory / kStoreManifest, std::ios::binary);
  const Bytes manifest_bytes((std::istreambuf_iterator<char>(manifest_in)),
                             std::istreambuf_iterator<char>());
  ByteReader manifest(manifest_bytes);
  validate(manifest.GetU64() == kStoreMagic,
           "BlotStore::Load: bad store magic");
  const double x_min = manifest.GetF64();
  const double x_max = manifest.GetF64();
  const double y_min = manifest.GetF64();
  const double y_max = manifest.GetF64();
  const double t_min = manifest.GetF64();
  const double t_max = manifest.GetF64();
  validate(x_min <= x_max && y_min <= y_max && t_min <= t_max,
           "BlotStore::Load: malformed universe");
  const std::uint64_t num_replicas = manifest.GetVarint();
  validate(manifest.AtEnd(), "BlotStore::Load: trailing manifest bytes");

  std::ifstream dataset_in(directory / kStoreDataset, std::ios::binary);
  require(dataset_in.good(), "BlotStore::Load: missing dataset file");
  BlotStore store(Dataset::ReadBinary(dataset_in),
                  STRange::FromBounds(x_min, x_max, y_min, y_max, t_min,
                                      t_max));
  for (std::uint64_t i = 0; i < num_replicas; ++i) {
    Replica replica = SegmentStore::Load(directory / ReplicaDirName(i));
    validate(store.universe_.Contains(replica.universe()),
             "BlotStore::Load: replica outside store universe");
    store.replicas_.push_back(std::move(replica));
    store.sketches_.push_back(
        ReplicaSketch::FromReplica(store.replicas_.back()));
  }
  return store;
}

std::uint64_t BlotStore::RecoverReplicaFrom(std::size_t i, std::size_t source,
                                            ThreadPool* pool) {
  require(i < replicas_.size() && source < replicas_.size(),
          "BlotStore::RecoverReplicaFrom: bad index");
  require(i != source, "BlotStore::RecoverReplicaFrom: source == target");
  // The source must cover everything the lost replica stored: any full
  // replica recovers anything; a partial replica can only recover
  // replicas whose universe lies within its coverage.
  const STRange target_universe = replicas_[i].universe();
  require(replicas_[source].universe().Contains(target_universe),
          "BlotStore::RecoverReplicaFrom: source does not cover target");
  const ReplicaConfig config = replicas_[i].config();
  const Dataset logical = replicas_[source].Reconstruct();
  const Dataset covered(logical.FilterByRange(target_universe));
  replicas_[i] = Replica::Build(covered, config, target_universe, pool);
  sketches_[i] = ReplicaSketch::FromReplica(replicas_[i]);
  return replicas_[i].NumRecords();
}

}  // namespace blot
