#include "core/store.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "blot/batch.h"
#include "blot/partitioner.h"
#include "blot/segment_store.h"
#include "core/partition_cache.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot {
namespace {

// Estimate-vs-actual cost error is unbounded above (the estimate models a
// cluster environment, the measurement is this process), so the error
// histogram gets wide percentage buckets instead of latency buckets.
obs::Histogram& CostErrorHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().GetHistogram(
          "query.cost_error_pct", {},
          {1, 2, 5, 10, 25, 50, 75, 90, 100, 250, 500, 1000, 10000,
           100000, 1000000});
  return histogram;
}

// Records one routed execution into the query.* metrics.
void RecordRoutedQuery(const std::string& replica_name,
                       const BlotStore::RoutedResult& routed) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& routed_total =
      registry.GetCounter("query.routed_total");
  static obs::Histogram& estimated_ms =
      registry.GetHistogram("query.estimated_cost_ms");
  static obs::Histogram& measured_ms =
      registry.GetHistogram("query.measured_ms");
  static obs::Counter& np_predicted =
      registry.GetCounter("query.partitions_predicted_total");
  static obs::Counter& partitions_scanned =
      registry.GetCounter("query.partitions_scanned_total");
  static obs::Counter& records_scanned =
      registry.GetCounter("query.records_scanned_total");
  static obs::Counter& records_returned =
      registry.GetCounter("query.records_returned_total");
  static obs::Counter& bytes_read =
      registry.GetCounter("query.bytes_read_total");

  routed_total.Increment();
  registry.GetCounter("query.routed_total", {{"replica", replica_name}})
      .Increment();
  estimated_ms.Observe(routed.estimated_cost_ms);
  measured_ms.Observe(routed.measured_cost_ms);
  if (routed.estimated_cost_ms > 0)
    CostErrorHistogram().Observe(
        std::abs(routed.measured_cost_ms - routed.estimated_cost_ms) /
        routed.estimated_cost_ms * 100.0);
  np_predicted.Increment(routed.predicted_partitions);
  partitions_scanned.Increment(routed.result.stats.partitions_scanned);
  records_scanned.Increment(routed.result.stats.records_scanned);
  records_returned.Increment(routed.result.records.size());
  bytes_read.Increment(routed.result.stats.bytes_read);
}

// Renders a partition list as "3,17,42" for event fields. A mass
// quarantine can name hundreds of partitions; the field keeps the first
// few for orientation and summarizes the rest, so one incident never
// bloats the log.
std::string PartitionList(const std::vector<std::size_t>& partitions) {
  constexpr std::size_t kMaxListed = 16;
  std::string out;
  for (std::size_t i = 0; i < partitions.size() && i < kMaxListed; ++i) {
    if (!out.empty()) out += ",";
    out += std::to_string(partitions[i]);
  }
  if (partitions.size() > kMaxListed)
    out += ",+" + std::to_string(partitions.size() - kMaxListed) + " more";
  return out;
}

// Records health-state transitions into the quarantine.* metrics and
// emits a typed `quarantine` event naming the affected partitions.
void RecordQuarantine(std::string_view replica_name,
                      const std::vector<std::size_t>& partitions,
                      std::size_t newly_quarantined,
                      std::size_t newly_suspect, std::size_t active) {
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    static obs::Counter& partitions_total =
        registry.GetCounter("quarantine.partitions_total");
    static obs::Counter& suspects_total =
        registry.GetCounter("quarantine.suspects_total");
    static obs::Gauge& active_gauge = registry.GetGauge("quarantine.active");
    partitions_total.Increment(newly_quarantined);
    suspects_total.Increment(newly_suspect);
    active_gauge.Set(static_cast<double>(active));
  }
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled() && (newly_quarantined > 0 || newly_suspect > 0)) {
    log.Warn("quarantine",
             newly_quarantined > 0 ? "partitions quarantined"
                                   : "partitions marked suspect",
             {obs::Field("replica", std::string(replica_name)),
              obs::Field("partitions", PartitionList(partitions)),
              obs::Field("newly_quarantined", newly_quarantined),
              obs::Field("newly_suspect", newly_suspect),
              obs::Field("active_quarantined", active)});
  }
}

// Total order over records so multiset containment can be checked by a
// sorted two-pointer sweep.
bool RecordLess(const Record& a, const Record& b) {
  return std::tie(a.time, a.x, a.y, a.oid, a.speed, a.heading, a.status,
                  a.passengers, a.fare_cents) <
         std::tie(b.time, b.x, b.y, b.oid, b.speed, b.heading, b.status,
                  b.passengers, b.fare_cents);
}

// True iff every record of `expected` occurs in `fetched` (multiset
// semantics: duplicates must be present at least as many times).
bool MultisetContains(std::vector<Record> fetched,
                      std::vector<Record> expected) {
  std::sort(fetched.begin(), fetched.end(), RecordLess);
  std::sort(expected.begin(), expected.end(), RecordLess);
  return std::includes(fetched.begin(), fetched.end(), expected.begin(),
                       expected.end(), RecordLess);
}

}  // namespace

BlotStore::BlotStore(Dataset dataset, std::optional<STRange> universe)
    : dataset_(std::move(dataset)) {
  require(!dataset_.empty(), "BlotStore: empty dataset");
  universe_ = universe.value_or(dataset_.BoundingBox());
  for (const Record& r : dataset_.records())
    require(universe_.Contains(r.Position()),
            "BlotStore: record outside universe");
}

BlotStore::~BlotStore() {
  if (sync_ != nullptr) WaitForRepairs();
}

BlotStore::BlotStore(BlotStore&& other) noexcept {
  // Drain background repairs first: their tasks captured `&other`, and
  // moving the boxed state out from under a running task would leave it
  // dereferencing null unique_ptrs.
  if (other.sync_ != nullptr) other.WaitForRepairs();
  dataset_ = std::move(other.dataset_);
  universe_ = other.universe_;
  replicas_ = std::move(other.replicas_);
  sketches_ = std::move(other.sketches_);
  policy_ = other.policy_;
  health_ = std::move(other.health_);
  latency_ = std::move(other.latency_);
  sync_ = std::move(other.sync_);
  telemetry_ = std::move(other.telemetry_);
}

BlotStore& BlotStore::operator=(BlotStore&& other) noexcept {
  if (this == &other) return *this;
  // Both sides drain: `other`'s tasks hold its address (about to be
  // gutted), and this store's tasks hold ours (whose state is about to
  // be replaced).
  if (sync_ != nullptr) WaitForRepairs();
  if (other.sync_ != nullptr) other.WaitForRepairs();
  dataset_ = std::move(other.dataset_);
  universe_ = other.universe_;
  replicas_ = std::move(other.replicas_);
  sketches_ = std::move(other.sketches_);
  policy_ = other.policy_;
  health_ = std::move(other.health_);
  latency_ = std::move(other.latency_);
  sync_ = std::move(other.sync_);
  telemetry_ = std::move(other.telemetry_);
  return *this;
}

FailoverPolicy BlotStore::failover_policy() const {
  std::shared_lock lock(sync_->state_mutex);
  return policy_;
}

void BlotStore::SetFailoverPolicy(const FailoverPolicy& policy) {
  std::unique_lock lock(sync_->state_mutex);
  policy_ = policy;
}

std::size_t BlotStore::max_scan_parallelism() const {
  std::shared_lock lock(sync_->state_mutex);
  return max_scan_parallelism_;
}

void BlotStore::SetMaxScanParallelism(std::size_t cap) {
  std::unique_lock lock(sync_->state_mutex);
  max_scan_parallelism_ = cap;
}

void BlotStore::WaitForRepairs() {
  std::vector<std::future<void>> pending;
  {
    std::lock_guard lock(sync_->futures_mutex);
    pending.swap(sync_->repair_futures);
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      // Repair failures are already counted in repair.failed_total; a
      // background task must never take the store down.
    }
  }
}

std::size_t BlotStore::AddReplica(const ReplicaConfig& config,
                                  ThreadPool* pool) {
  std::unique_lock lock(sync_->state_mutex);
  for (const Replica& existing : replicas_)
    require(!(existing.config() == config &&
              existing.universe() == universe_),
            "BlotStore::AddReplica: duplicate replica " + config.Name());
  replicas_.push_back(Replica::Build(dataset_, config, universe_, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  health_->AddReplica(replicas_.back().NumPartitions());
  latency_->AddReplica();
  return replicas_.size() - 1;
}

std::size_t BlotStore::AddPartialReplica(const ReplicaConfig& config,
                                         const STRange& coverage,
                                         ThreadPool* pool) {
  std::unique_lock lock(sync_->state_mutex);
  require(universe_.Contains(coverage),
          "BlotStore::AddPartialReplica: coverage outside universe");
  require(!(coverage == universe_),
          "BlotStore::AddPartialReplica: coverage is the whole universe; "
          "use AddReplica");
  const Dataset covered(dataset_.FilterByRange(coverage));
  replicas_.push_back(Replica::Build(covered, config, coverage, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  health_->AddReplica(replicas_.back().NumPartitions());
  latency_->AddReplica();
  return replicas_.size() - 1;
}

bool BlotStore::IsFullReplica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::IsFullReplica: bad index");
  return replicas_[i].universe() == universe_;
}

const Replica& BlotStore::replica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::replica: bad index");
  return replicas_[i];
}

Replica& BlotStore::mutable_replica(std::size_t i) {
  require(i < replicas_.size(), "BlotStore::mutable_replica: bad index");
  return replicas_[i];
}

std::uint64_t BlotStore::TotalStorageBytes() const {
  std::uint64_t total = 0;
  for (const Replica& r : replicas_) total += r.StorageBytes();
  return total;
}

BlotStore::Ranking BlotStore::RankCandidates(
    const STRange& query, const CostModel& model,
    const FailoverPolicy& policy) const {
  Ranking out;
  // (adjusted cost, decision with the raw estimate): suspect penalties
  // steer the ordering but must not distort the reported estimate.
  std::vector<std::pair<double, RoutingDecision>> scored;
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    // Full replicas can serve anything; partial replicas only queries
    // entirely inside their coverage.
    if (!IsFullReplica(i) && !replicas_[i].universe().Contains(query))
      continue;
    ++out.covering;
    const double cost = model.QueryCostMs(sketches_[i], query);
    double adjusted = cost;
    if (!health_->AllOk(i)) {
      const std::vector<std::size_t> involved =
          sketches_[i].index.InvolvedPartitions(query);
      if (health_->AnyQuarantined(i, involved)) continue;
      if (health_->AnySuspect(i, involved))
        adjusted *= policy.suspect_cost_penalty;
    }
    // Brownout: a replica whose observed reads run far slower than its
    // peers' is deprioritized (not quarantined — slow is not corrupt).
    adjusted *= latency_->BrownoutPenalty(i);
    scored.push_back(
        {adjusted, {i, cost, sketches_[i].index.CountInvolved(query)}});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.replica_index < b.second.replica_index;
            });
  out.ranked.reserve(scored.size());
  for (auto& [adjusted, decision] : scored) out.ranked.push_back(decision);
  return out;
}

QueryFailedError BlotStore::UnservableError(const STRange& query) const {
  std::vector<QueryFailedError::Lost> lost;
  std::string what =
      "BlotStore: query unservable — every covering replica's copy of a "
      "needed partition is quarantined:";
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!IsFullReplica(i) && !replicas_[i].universe().Contains(query))
      continue;
    for (std::size_t p : sketches_[i].index.InvolvedPartitions(query)) {
      if (health_->Get(i, p) != PartitionHealth::kQuarantined) continue;
      lost.push_back({i, p});
      what += " [" + replicas_[i].config().Name() + " partition " +
              std::to_string(p) + "]";
    }
  }
  if (lost.empty())
    what = "BlotStore: query unservable — all covering replicas failed";
  return QueryFailedError(what, std::move(lost));
}

BlotStore::RoutingDecision BlotStore::RouteQueryDetailed(
    const STRange& query, const CostModel& model) const {
  require(!replicas_.empty(), "BlotStore::RouteQuery: no replicas");
  std::shared_lock lock(sync_->state_mutex);
  const Ranking ranking = RankCandidates(query, model, policy_);
  require(ranking.covering > 0,
          "BlotStore::RouteQuery: no replica can serve the query (add a "
          "full replica)");
  if (ranking.ranked.empty()) throw UnservableError(query);
  return ranking.ranked.front();
}

std::size_t BlotStore::RouteQuery(const STRange& query,
                                  const CostModel& model) const {
  return RouteQueryDetailed(query, model).replica_index;
}

BlotStore::RoutedResult BlotStore::ExecuteWithFailover(
    const STRange& query, const CostModel& model,
    const FailoverPolicy& policy, ThreadPool* pool, QueryContext& ctx) {
  RoutedResult routed;
  const bool profiling = ctx.profiling;
  obs::QueryProfile& profile = ctx.profile;
  obs::TraceSpan* trace = ctx.trace;
  obs::TraceSpan* route_span =
      trace != nullptr ? &trace->AddChild("route") : nullptr;
  Ranking ranking;
  const std::uint64_t route_start = profiling ? obs::MonotonicNanos() : 0;
  {
    obs::SpanTimer route_timer(route_span);
    ranking = RankCandidates(query, model, policy);
  }
  if (profiling)
    profile.AddStage(obs::Stage::kRoute,
                     double(obs::MonotonicNanos() - route_start) * 1e-6);
  require(ranking.covering > 0,
          "BlotStore::RouteQuery: no replica can serve the query (add a "
          "full replica)");
  if (ranking.ranked.empty()) throw UnservableError(query);
  if (route_span != nullptr) {
    route_span->AddAttribute("candidates", std::uint64_t{replicas_.size()});
    route_span->AddAttribute("healthy_candidates",
                             std::uint64_t{ranking.ranked.size()});
    route_span->AddAttribute(
        "replica",
        replicas_[ranking.ranked.front().replica_index].config().Name());
    route_span->AddAttribute("estimated_cost_ms",
                             ranking.ranked.front().estimated_cost_ms);
    route_span->AddAttribute(
        "predicted_partitions",
        std::uint64_t{ranking.ranked.front().predicted_partitions});
  }

  auto& registry = obs::MetricsRegistry::global();
  const std::size_t max_attempts =
      std::max<std::size_t>(std::size_t{1}, policy.max_attempts);
  std::size_t attempts = 0;
  bool success = false;
  for (const RoutingDecision& decision : ranking.ranked) {
    if (attempts >= max_attempts) break;
    // Deadline expiry (or an external cancel) ends the failover loop:
    // starting another full attempt cannot beat an already-blown budget.
    if (ctx.cancel.ShouldStop()) break;
    const std::size_t idx = decision.replica_index;
    // An earlier attempt's fault may have quarantined this candidate's
    // copy of a needed partition since the ranking was computed.
    if (!health_->AllOk(idx) &&
        health_->AnyQuarantined(idx,
                                sketches_[idx].index.InvolvedPartitions(
                                    query)))
      continue;
    ++attempts;
    const Replica& rep = replicas_[idx];
    const std::string replica_name = rep.config().Name();
    obs::TraceSpan* execute_span =
        trace != nullptr ? &trace->AddChild("execute") : nullptr;
    if (execute_span != nullptr) {
      execute_span->AddAttribute("attempt", std::uint64_t{attempts});
      execute_span->AddAttribute("replica", replica_name);
    }
    const std::uint64_t start_ns = obs::MonotonicNanos();
    try {
      obs::SpanTimer execute_timer(execute_span);
      ScanOptions scan_options;
      scan_options.pool = pool;
      scan_options.profile = profiling ? &profile : nullptr;
      scan_options.max_parallelism = ctx.max_scan_parallelism;
      scan_options.cancel = ctx.cancel.valid() ? &ctx.cancel : nullptr;
      routed.result = rep.Execute(query, scan_options);
      routed.measured_cost_ms =
          double(obs::MonotonicNanos() - start_ns) * 1e-6;
      routed.replica_index = idx;
      routed.estimated_cost_ms = decision.estimated_cost_ms;
      routed.predicted_partitions = decision.predicted_partitions;
      routed.served_by = replica_name;
      routed.partial = routed.result.truncated;
      ctx.attempts.push_back(
          {idx, replica_name, routed.measured_cost_ms, true, {}});
      // Only complete attempts teach the latency map: a cancelled scan's
      // wall time reflects the budget, not the replica's speed.
      if (!routed.result.truncated)
        latency_->Observe(idx, routed.result.stats.partitions_scanned,
                          routed.measured_cost_ms);
      success = true;
    } catch (const PartitionFaultError& e) {
      // Attributed read faults: quarantine exactly the failing storage
      // units (and drop any stale cached decodes), then fail over.
      std::size_t newly_quarantined = 0;
      for (const std::size_t p : e.partitions()) {
        if (health_->Quarantine(idx, p)) ++newly_quarantined;
        PartitionCache::Global().Invalidate(rep.cache_id(), p);
      }
      RecordQuarantine(replica_name, e.partitions(), newly_quarantined, 0,
                       health_->QuarantinedCount());
      // The failed attempt's wall time is failover overhead, not
      // execution of the serving replica.
      const double attempt_ms =
          double(obs::MonotonicNanos() - start_ns) * 1e-6;
      ctx.attempts.push_back(
          {idx, replica_name, attempt_ms, false, std::string(e.what())});
      if (profiling) profile.AddStage(obs::Stage::kFailover, attempt_ms);
      obs::EventLog& log = obs::EventLog::Global();
      if (log.enabled()) {
        log.Warn("failover",
                 "read fault; failing over to next-cheapest replica",
                 {obs::Field("replica", replica_name),
                  obs::Field("attempt", attempts),
                  obs::Field("faulty_partitions",
                             PartitionList(e.partitions()))});
      }
      if (execute_span != nullptr)
        execute_span->AddAttribute("fault", std::string(e.what()));
      continue;
    }
    if (profiling)
      profile.AddStage(obs::Stage::kExecute, routed.measured_cost_ms);
    if (execute_span != nullptr) {
      execute_span->AddAttribute(
          "partitions_scanned",
          std::uint64_t{routed.result.stats.partitions_scanned});
      execute_span->AddAttribute("records_scanned",
                                 routed.result.stats.records_scanned);
      execute_span->AddAttribute(
          "records_returned", std::uint64_t{routed.result.records.size()});
      execute_span->AddAttribute("bytes_read",
                                 routed.result.stats.bytes_read);
      if (PartitionCache::Global().enabled()) {
        execute_span->AddAttribute(
            "cache_hits", std::uint64_t{routed.result.stats.cache_hits});
        execute_span->AddAttribute(
            "cache_misses",
            std::uint64_t{routed.result.stats.cache_misses});
      }
    }
    break;
  }

  if (registry.enabled()) {
    static obs::Counter& attempts_total =
        registry.GetCounter("failover.attempts_total");
    attempts_total.Increment(attempts);
  }
  const bool deadline_hit = ctx.cancel.DeadlineExpired();
  if (success && routed.partial) {
    // The serving scan was interrupted mid-flight (deadline). Callers
    // that opted in get the prefix plus the exact coverage split; the
    // rest get the structured deadline error reporting how far we got.
    if (registry.enabled()) {
      static obs::Counter& deadline_total =
          registry.GetCounter("query.deadline_exceeded_total");
      deadline_total.Increment();
    }
    if (!ctx.allow_partial) {
      throw DeadlineExceededError(
          "BlotStore: deadline of " + std::to_string(ctx.deadline_ms) +
              "ms exceeded after " + std::to_string(attempts) +
              " attempt(s); scanned " +
              std::to_string(routed.result.served_partitions.size()) +
              " of " +
              std::to_string(routed.result.served_partitions.size() +
                             routed.result.missed_partitions.size()) +
              " involved partitions",
          ctx.deadline_ms, attempts, routed.result.served_partitions.size(),
          routed.result.missed_partitions.size());
    }
    if (registry.enabled()) {
      static obs::Counter& partial_total =
          registry.GetCounter("query.partial_total");
      partial_total.Increment();
    }
  }
  if (!success && deadline_hit) {
    if (registry.enabled()) {
      static obs::Counter& deadline_total =
          registry.GetCounter("query.deadline_exceeded_total");
      deadline_total.Increment();
    }
    // The deadline expired before any attempt completed (or between
    // attempts). No records were assembled; every involved partition of
    // the best candidate is missed.
    const RoutingDecision& best = ranking.ranked.front();
    std::vector<std::size_t> missed =
        sketches_[best.replica_index].index.InvolvedPartitions(query);
    std::sort(missed.begin(), missed.end());
    if (!ctx.allow_partial) {
      throw DeadlineExceededError(
          "BlotStore: deadline of " + std::to_string(ctx.deadline_ms) +
              "ms exceeded after " + std::to_string(attempts) +
              " attempt(s); no attempt completed (0 of " +
              std::to_string(missed.size()) + " involved partitions)",
          ctx.deadline_ms, attempts, 0, missed.size());
    }
    if (registry.enabled()) {
      static obs::Counter& partial_total =
          registry.GetCounter("query.partial_total");
      partial_total.Increment();
    }
    routed.result = QueryResult{};
    routed.result.truncated = true;
    routed.result.missed_partitions = std::move(missed);
    routed.replica_index = best.replica_index;
    routed.estimated_cost_ms = best.estimated_cost_ms;
    routed.predicted_partitions = best.predicted_partitions;
    routed.served_by = replicas_[best.replica_index].config().Name();
    routed.partial = true;
    success = true;
  }
  if (!success) {
    if (registry.enabled()) {
      static obs::Counter& exhausted_total =
          registry.GetCounter("failover.exhausted_total");
      exhausted_total.Increment();
    }
    obs::EventLog& log = obs::EventLog::Global();
    if (log.enabled()) {
      log.Emit(obs::EventSeverity::kError, "failover.exhausted",
               "no healthy replica could serve the query",
               {obs::Field("attempts", attempts),
                obs::Field("covering_replicas", ranking.covering)});
    }
    if (ctx.allow_partial) {
      // Graceful degradation: serve what survives by scanning around the
      // quarantined partitions of the best covering replica.
      return TryPartialFallback(query, model, policy, pool, ctx);
    }
    throw UnservableError(query);
  }

  routed.attempts = attempts;
  routed.degraded = attempts > 1;
  if (profiling) {
    profile.replica_index = routed.replica_index;
    profile.attempts = static_cast<std::uint32_t>(attempts);
    profile.degraded = routed.degraded;
    profile.estimated_cost_ms = routed.estimated_cost_ms;
    profile.measured_cost_ms = routed.measured_cost_ms;
  }
  if (registry.enabled() && routed.degraded) {
    static obs::Counter& rerouted_total =
        registry.GetCounter("failover.queries_rerouted_total");
    rerouted_total.Increment();
  }
  // A clean read clears suspicion: suspect involved partitions of the
  // serving replica return to ok. A partial read proves nothing about
  // the partitions it never reached, so it clears nothing.
  if (!routed.partial && !health_->AllOk(routed.replica_index)) {
    for (const std::size_t p :
         sketches_[routed.replica_index].index.InvolvedPartitions(query)) {
      if (health_->Get(routed.replica_index, p) == PartitionHealth::kSuspect)
        health_->MarkOk(routed.replica_index, p);
    }
  }

  if (trace != nullptr) {
    trace->AddAttribute("replica", routed.served_by);
    trace->AddAttribute("estimated_cost_ms", routed.estimated_cost_ms);
    trace->AddAttribute("measured_cost_ms", routed.measured_cost_ms);
    trace->AddAttribute(
        "partitions_scanned",
        std::uint64_t{routed.result.stats.partitions_scanned});
    if (routed.degraded) {
      trace->AddAttribute("attempts", std::uint64_t{routed.attempts});
      trace->AddAttribute("degraded", std::string("true"));
    }
    if (routed.partial) {
      trace->AddAttribute(
          "partial_served",
          std::uint64_t{routed.result.served_partitions.size()});
      trace->AddAttribute(
          "partial_missed",
          std::uint64_t{routed.result.missed_partitions.size()});
    }
  }
  if (registry.enabled()) RecordRoutedQuery(routed.served_by, routed);
  return routed;
}

BlotStore::RoutedResult BlotStore::Execute(const STRange& query,
                                           const CostModel& model,
                                           ThreadPool* pool,
                                           obs::TraceSpan* trace) {
  ExecOptions options;
  options.pool = pool;
  options.trace = trace;
  return Execute(query, model, options);
}

BlotStore::RoutedResult BlotStore::Execute(const STRange& query,
                                           const CostModel& model,
                                           const ExecOptions& options) {
  require(!replicas_.empty(), "BlotStore::RouteQuery: no replicas");
  require(options.deadline_ms >= 0.0 && options.hedge_ms >= 0.0,
          "BlotStore::Execute: negative deadline/hedge threshold");
  // All per-query state lives in the context; this function is
  // re-entrant under N concurrent callers (the serving layer's request
  // workers), who share only the internally synchronized structures.
  QueryContext ctx = QueryContext::ForQuery(options.trace);
  ctx.deadline_ms = options.deadline_ms;
  ctx.allow_partial = options.allow_partial;
  ctx.hedge_ms = options.hedge_ms;
  if (options.deadline_ms > 0.0)
    ctx.cancel = CancelToken::WithDeadline(options.deadline_ms);
  else if (options.hedge_ms > 0.0)
    ctx.cancel = CancelToken::Create();  // hedge losers need a live token
  ThreadPool* pool = options.pool;
  RoutedResult routed;
  FailoverPolicy policy;
  const std::uint64_t start_ns = ctx.profiling ? obs::MonotonicNanos() : 0;
  bool hedging = false;
  {
    std::shared_lock lock(sync_->state_mutex);
    policy = policy_;  // per-query snapshot; retunes never tear a query
    ctx.max_scan_parallelism = max_scan_parallelism_;
    // Hedging needs a second replica to race; the coordinator manages
    // its own locking (each attempt takes its own shared lock).
    hedging = ctx.hedge_ms > 0.0 && replicas_.size() > 1;
    if (!hedging)
      routed = ExecuteWithFailover(query, model, policy, pool, ctx);
  }
  if (hedging) routed = ExecuteHedged(query, model, policy, pool, ctx);
  const std::uint64_t repair_start =
      ctx.profiling ? obs::MonotonicNanos() : 0;
  MaybeScheduleRepairs(pool, policy);
  if (ctx.profiling) {
    // Synchronous repair runs on this thread between the shared-lock
    // release and here; background repair contributes only the submit.
    ctx.profile.AddStage(
        obs::Stage::kRepair,
        double(obs::MonotonicNanos() - repair_start) * 1e-6);
    ctx.profile.total_ms =
        double(obs::MonotonicNanos() - start_ns) * 1e-6;
    ObserveQueryTelemetry(query, ctx.profile);
    if (options.trace != nullptr) ctx.profile.ExportToSpan(*options.trace);
  }
  routed.query_id = ctx.query_id();
  routed.attempt_log = std::move(ctx.attempts);
  routed.profile = std::move(ctx.profile);
  return routed;
}

BlotStore::RoutedResult BlotStore::TryPartialFallback(
    const STRange& query, const CostModel& model,
    const FailoverPolicy& policy, ThreadPool* pool, QueryContext& ctx) {
  (void)policy;
  auto& registry = obs::MetricsRegistry::global();
  // Pick the covering replica losing the fewest involved partitions to
  // quarantine; ties go to the cheaper estimate. Even an all-quarantined
  // candidate stays eligible — for an opted-in caller an empty answer
  // with an honest coverage report beats an error.
  std::size_t best = replicas_.size();
  std::size_t best_lost = std::numeric_limits<std::size_t>::max();
  double best_cost = 0.0;
  std::vector<std::size_t> best_excluded;
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    if (!IsFullReplica(i) && !replicas_[i].universe().Contains(query))
      continue;
    std::vector<std::size_t> quarantined;
    for (const std::size_t p :
         sketches_[i].index.InvolvedPartitions(query)) {
      if (health_->Get(i, p) == PartitionHealth::kQuarantined)
        quarantined.push_back(p);
    }
    const double cost = model.QueryCostMs(sketches_[i], query);
    if (quarantined.size() < best_lost ||
        (quarantined.size() == best_lost && cost < best_cost)) {
      best = i;
      best_lost = quarantined.size();
      best_cost = cost;
      best_excluded = std::move(quarantined);
    }
  }
  if (best == replicas_.size()) throw UnservableError(query);
  std::sort(best_excluded.begin(), best_excluded.end());

  const Replica& rep = replicas_[best];
  const std::string replica_name = rep.config().Name();
  RoutedResult routed;
  const std::uint64_t start_ns = obs::MonotonicNanos();
  try {
    ScanOptions scan_options;
    scan_options.pool = pool;
    scan_options.profile = ctx.profiling ? &ctx.profile : nullptr;
    scan_options.max_parallelism = ctx.max_scan_parallelism;
    scan_options.cancel = ctx.cancel.valid() ? &ctx.cancel : nullptr;
    scan_options.exclude_partitions =
        best_excluded.empty() ? nullptr : &best_excluded;
    routed.result = rep.Execute(query, scan_options);
  } catch (const PartitionFaultError& e) {
    // Even the degraded scan faulted: quarantine what it named and give
    // up — there is nothing left to serve from.
    std::size_t newly_quarantined = 0;
    for (const std::size_t p : e.partitions()) {
      if (health_->Quarantine(best, p)) ++newly_quarantined;
      PartitionCache::Global().Invalidate(rep.cache_id(), p);
    }
    RecordQuarantine(replica_name, e.partitions(), newly_quarantined, 0,
                     health_->QuarantinedCount());
    ctx.attempts.push_back({best, replica_name,
                            double(obs::MonotonicNanos() - start_ns) * 1e-6,
                            false, std::string(e.what())});
    throw UnservableError(query);
  }
  routed.measured_cost_ms = double(obs::MonotonicNanos() - start_ns) * 1e-6;
  routed.replica_index = best;
  routed.estimated_cost_ms = best_cost;
  routed.predicted_partitions = sketches_[best].index.CountInvolved(query);
  routed.served_by = replica_name;
  routed.partial = routed.result.truncated;
  routed.degraded = true;
  ctx.attempts.push_back(
      {best, replica_name, routed.measured_cost_ms, true, {}});
  routed.attempts = ctx.attempts.size();
  if (ctx.profiling) {
    ctx.profile.AddStage(obs::Stage::kExecute, routed.measured_cost_ms);
    ctx.profile.replica_index = best;
    ctx.profile.attempts = static_cast<std::uint32_t>(routed.attempts);
    ctx.profile.degraded = true;
    ctx.profile.estimated_cost_ms = routed.estimated_cost_ms;
    ctx.profile.measured_cost_ms = routed.measured_cost_ms;
  }
  if (registry.enabled()) {
    static obs::Counter& partial_total =
        registry.GetCounter("query.partial_total");
    partial_total.Increment();
    RecordRoutedQuery(routed.served_by, routed);
  }
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled() && routed.partial) {
    log.Warn("query.partial", "serving partial result around lost partitions",
             {obs::Field("replica", replica_name),
              obs::Field("served",
                         routed.result.served_partitions.size()),
              obs::Field("missed",
                         PartitionList(routed.result.missed_partitions))});
  }
  return routed;
}

BlotStore::RoutedResult BlotStore::ExecuteHedged(const STRange& query,
                                                 const CostModel& model,
                                                 const FailoverPolicy& policy,
                                                 ThreadPool* pool,
                                                 QueryContext& ctx) {
  using Clock = std::chrono::steady_clock;
  const bool profiling = ctx.profiling;
  auto& registry = obs::MetricsRegistry::global();

  Ranking ranking;
  std::array<std::string, 2> names;
  const std::uint64_t route_start = profiling ? obs::MonotonicNanos() : 0;
  {
    std::shared_lock lock(sync_->state_mutex);
    ranking = RankCandidates(query, model, policy);
    require(ranking.covering > 0,
            "BlotStore::RouteQuery: no replica can serve the query (add a "
            "full replica)");
    if (ranking.ranked.empty()) throw UnservableError(query);
    if (ranking.ranked.size() < 2) {
      // One healthy candidate: nothing to race — plain failover, under
      // the shared lock the failover loop expects.
      return ExecuteWithFailover(query, model, policy, pool, ctx);
    }
    names[0] = replicas_[ranking.ranked[0].replica_index].config().Name();
    names[1] = replicas_[ranking.ranked[1].replica_index].config().Name();
  }
  if (profiling)
    ctx.profile.AddStage(obs::Stage::kRoute,
                         double(obs::MonotonicNanos() - route_start) * 1e-6);

  struct HedgeAttempt {
    bool done = false;
    bool ok = false;
    bool fault = false;
    QueryResult result;
    double ms = 0.0;
    std::string error;
    obs::QueryProfile profile;
  };
  struct HedgeRace {
    std::mutex mutex;
    std::condition_variable cv;
    std::array<HedgeAttempt, 2> attempts;
    std::array<CancelToken, 2> tokens;
  };
  auto race = std::make_shared<HedgeRace>();
  // Child tokens observe the query deadline but cancel independently, so
  // cancelling the loser never touches the winner.
  race->tokens = {ctx.cancel.Child(), ctx.cancel.Child()};

  // `query` is captured by value: the losing attempt may be parked
  // un-joined in repair_futures and must not reference coordinator
  // stack frames after Execute returns.
  const std::size_t max_par = ctx.max_scan_parallelism;
  auto run_attempt = [this, race, query, pool, profiling, max_par](
                         std::size_t replica_idx, std::size_t slot) {
    HedgeAttempt out;
    const std::uint64_t start_ns = obs::MonotonicNanos();
    // Each attempt holds its own shared lock: the coordinator holds none,
    // so a queued writer can never wedge it between its attempts.
    std::shared_lock lock(sync_->state_mutex);
    try {
      const Replica& rep = replicas_[replica_idx];
      // The other attempt's fault may have quarantined this candidate
      // since the ranking was computed.
      if (!health_->AllOk(replica_idx) &&
          health_->AnyQuarantined(
              replica_idx,
              sketches_[replica_idx].index.InvolvedPartitions(query))) {
        out.error = "replica quarantined since ranking";
      } else {
        ScanOptions scan_options;
        scan_options.pool = pool;
        scan_options.profile = profiling ? &out.profile : nullptr;
        scan_options.max_parallelism = max_par;
        scan_options.cancel = &race->tokens[slot];
        out.result = rep.Execute(query, scan_options);
        // A truncated result means this attempt was cancelled (lost the
        // race or hit the deadline); it is not a win, but its partial
        // coverage stays available for the deadline path.
        out.ok = !out.result.truncated;
        if (!out.ok) out.error = "cancelled mid-scan";
      }
    } catch (const PartitionFaultError& e) {
      std::size_t newly_quarantined = 0;
      for (const std::size_t p : e.partitions()) {
        if (health_->Quarantine(replica_idx, p)) ++newly_quarantined;
        PartitionCache::Global().Invalidate(replicas_[replica_idx].cache_id(),
                                            p);
      }
      RecordQuarantine(replicas_[replica_idx].config().Name(),
                       e.partitions(), newly_quarantined, 0,
                       health_->QuarantinedCount());
      out.error = e.what();
      out.fault = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    out.ms = double(obs::MonotonicNanos() - start_ns) * 1e-6;
    {
      std::lock_guard<std::mutex> done_lock(race->mutex);
      out.done = true;
      race->attempts[slot] = std::move(out);
    }
    race->cv.notify_all();
  };

  const std::size_t primary = ranking.ranked[0].replica_index;
  const std::size_t backup = ranking.ranked[1].replica_index;
  // Hedge when the primary runs past the caller's floor or 2x its own
  // learned expectation, whichever is larger (a cold LatencyMap
  // contributes nothing).
  double threshold_ms = ctx.hedge_ms;
  const double expected = latency_->ExpectedMs(
      primary, ranking.ranked[0].predicted_partitions);
  if (expected > 0.0) threshold_ms = std::max(threshold_ms, 2.0 * expected);

  auto primary_future =
      std::async(std::launch::async, run_attempt, primary, std::size_t{0});
  std::future<void> backup_future;
  bool hedged = false;
  {
    std::unique_lock<std::mutex> wait_lock(race->mutex);
    const auto hedge_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               threshold_ms));
    race->cv.wait_until(wait_lock, hedge_at,
                        [&] { return race->attempts[0].done; });
    if (!race->attempts[0].done) {
      hedged = true;
      wait_lock.unlock();
      backup_future = std::async(std::launch::async, run_attempt, backup,
                                 std::size_t{1});
      wait_lock.lock();
    }
    // Resolved: someone won, or every launched attempt is done (all
    // failed / all cancelled by the deadline).
    race->cv.wait(wait_lock, [&] {
      const HedgeAttempt& a0 = race->attempts[0];
      const HedgeAttempt& a1 = race->attempts[1];
      if (a0.done && a0.ok) return true;
      if (hedged && a1.done && a1.ok) return true;
      return hedged ? (a0.done && a1.done) : a0.done;
    });
  }

  int winner = -1;
  HedgeAttempt win;
  std::array<bool, 2> done_snapshot = {false, false};
  std::array<double, 2> ms_snapshot = {0.0, 0.0};
  std::array<std::string, 2> error_snapshot;
  {
    std::lock_guard<std::mutex> snap_lock(race->mutex);
    if (race->attempts[0].done && race->attempts[0].ok)
      winner = 0;
    else if (hedged && race->attempts[1].done && race->attempts[1].ok)
      winner = 1;
    for (std::size_t s = 0; s < 2; ++s) {
      done_snapshot[s] = race->attempts[s].done;
      ms_snapshot[s] = race->attempts[s].ms;
      error_snapshot[s] = race->attempts[s].error;
    }
    if (winner >= 0) win = std::move(race->attempts[winner]);
  }
  // First complete answer wins; tell the loser to stop (it halts within
  // one block and its cache/quarantine effects remain valid).
  if (winner == 0 && hedged)
    race->tokens[1].Cancel(CancelReason::kHedgeLost);
  if (winner == 1) race->tokens[0].Cancel(CancelReason::kHedgeLost);

  // Done attempts join immediately; a still-running loser is parked with
  // the background repairs (std::async futures block on destruction) and
  // drained by WaitForRepairs / the destructor.
  auto settle = [this](std::future<void>&& f) {
    if (!f.valid()) return;
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      f.get();
      return;
    }
    std::lock_guard<std::mutex> futures_lock(sync_->futures_mutex);
    sync_->repair_futures.push_back(std::move(f));
  };
  settle(std::move(primary_future));
  settle(std::move(backup_future));

  if (registry.enabled() && hedged) {
    static obs::Counter& fired_total =
        registry.GetCounter("hedge.fired_total");
    fired_total.Increment();
  }

  // Attempt log: primary first, then the backup if it launched.
  const std::size_t launched = hedged ? 2 : 1;
  for (std::size_t s = 0; s < launched; ++s) {
    const std::size_t idx = s == 0 ? primary : backup;
    const bool attempt_ok = winner == static_cast<int>(s);
    ctx.attempts.push_back({idx, names[s],
                            done_snapshot[s] ? ms_snapshot[s] : 0.0,
                            attempt_ok,
                            attempt_ok ? std::string()
                            : done_snapshot[s]
                                ? error_snapshot[s]
                                : std::string("hedge lost (cancelled)")});
  }

  if (winner < 0) {
    // Nobody produced a complete answer. With partial coverage banked by
    // a deadline-cancelled attempt, report (or serve) that; otherwise
    // fall back to the failover loop, which re-ranks around whatever the
    // attempts quarantined and handles deadline/partial uniformly.
    int best_partial = -1;
    {
      std::lock_guard<std::mutex> snap_lock(race->mutex);
      std::size_t best_served = 0;
      for (std::size_t s = 0; s < launched; ++s) {
        const HedgeAttempt& a = race->attempts[s];
        if (!a.done || !a.result.truncated) continue;
        if (best_partial < 0 ||
            a.result.served_partitions.size() > best_served) {
          best_partial = static_cast<int>(s);
          best_served = a.result.served_partitions.size();
        }
      }
      if (best_partial >= 0) win = std::move(race->attempts[best_partial]);
    }
    if (ctx.cancel.DeadlineExpired() && best_partial >= 0) {
      if (registry.enabled()) {
        static obs::Counter& deadline_total =
            registry.GetCounter("query.deadline_exceeded_total");
        deadline_total.Increment();
      }
      const std::size_t served = win.result.served_partitions.size();
      const std::size_t missed = win.result.missed_partitions.size();
      if (!ctx.allow_partial) {
        throw DeadlineExceededError(
            "BlotStore: deadline of " + std::to_string(ctx.deadline_ms) +
                "ms exceeded after " + std::to_string(launched) +
                " attempt(s); scanned " + std::to_string(served) + " of " +
                std::to_string(served + missed) + " involved partitions",
            ctx.deadline_ms, launched, served, missed);
      }
      if (registry.enabled()) {
        static obs::Counter& partial_total =
            registry.GetCounter("query.partial_total");
        partial_total.Increment();
      }
      const std::size_t widx = best_partial == 0 ? primary : backup;
      const RoutingDecision& decision = ranking.ranked[best_partial];
      RoutedResult routed;
      routed.result = std::move(win.result);
      routed.replica_index = widx;
      routed.estimated_cost_ms = decision.estimated_cost_ms;
      routed.predicted_partitions = decision.predicted_partitions;
      routed.measured_cost_ms = win.ms;
      routed.served_by = names[best_partial];
      routed.attempts = launched;
      routed.degraded = best_partial != 0;
      routed.hedged = hedged;
      routed.hedge_backup_won = best_partial == 1;
      routed.partial = true;
      if (profiling) {
        ctx.profile.MergeScanFrom(win.profile);
        ctx.profile.AddStage(obs::Stage::kExecute, win.ms);
        ctx.profile.replica_index = widx;
        ctx.profile.attempts = static_cast<std::uint32_t>(launched);
        ctx.profile.degraded = routed.degraded;
        ctx.profile.estimated_cost_ms = routed.estimated_cost_ms;
        ctx.profile.measured_cost_ms = routed.measured_cost_ms;
      }
      if (registry.enabled()) RecordRoutedQuery(routed.served_by, routed);
      return routed;
    }
    std::shared_lock lock(sync_->state_mutex);
    return ExecuteWithFailover(query, model, policy, pool, ctx);
  }

  const RoutingDecision& decision = ranking.ranked[winner];
  const std::size_t widx = winner == 0 ? primary : backup;
  RoutedResult routed;
  routed.result = std::move(win.result);
  routed.replica_index = widx;
  routed.estimated_cost_ms = decision.estimated_cost_ms;
  routed.predicted_partitions = decision.predicted_partitions;
  routed.measured_cost_ms = win.ms;
  routed.served_by = names[winner];
  routed.attempts = launched;
  // A hedge win is not a failover: routing's first choice still served
  // unless the backup beat it.
  routed.degraded = winner != 0;
  routed.hedged = hedged;
  routed.hedge_backup_won = winner == 1;

  // Complete attempts (winner, and a loser that finished before the
  // cancel landed) teach the latency map — including the slowness that
  // triggered the hedge, which is exactly the brownout signal.
  for (std::size_t s = 0; s < launched; ++s) {
    bool complete = false;
    std::size_t scanned = 0;
    if (static_cast<int>(s) == winner) {
      complete = true;
      scanned = routed.result.stats.partitions_scanned;
    } else {
      std::lock_guard<std::mutex> snap_lock(race->mutex);
      const HedgeAttempt& a = race->attempts[s];
      if (a.done && a.ok) {
        complete = true;
        scanned = a.result.stats.partitions_scanned;
      }
    }
    if (complete)
      latency_->Observe(s == 0 ? primary : backup, scanned, ms_snapshot[s]);
  }

  if (profiling) {
    ctx.profile.MergeScanFrom(win.profile);
    ctx.profile.AddStage(obs::Stage::kExecute, win.ms);
    if (hedged && winner == 0 && done_snapshot[1])
      ctx.profile.AddStage(obs::Stage::kHedge, ms_snapshot[1]);
    if (winner == 1 && done_snapshot[0])
      ctx.profile.AddStage(obs::Stage::kHedge, ms_snapshot[0]);
    ctx.profile.replica_index = widx;
    ctx.profile.attempts = static_cast<std::uint32_t>(launched);
    ctx.profile.degraded = routed.degraded;
    ctx.profile.estimated_cost_ms = routed.estimated_cost_ms;
    ctx.profile.measured_cost_ms = routed.measured_cost_ms;
  }
  if (registry.enabled()) {
    static obs::Counter& attempts_total =
        registry.GetCounter("failover.attempts_total");
    attempts_total.Increment(launched);
    if (routed.hedge_backup_won) {
      static obs::Counter& backup_wins =
          registry.GetCounter("hedge.backup_wins_total");
      backup_wins.Increment();
    }
  }
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled() && hedged) {
    log.Info("hedge", routed.hedge_backup_won
                          ? "backup attempt won the hedged race"
                          : "primary finished; backup cancelled",
             {obs::Field("primary", names[0]),
              obs::Field("backup", names[1]),
              obs::Field("winner_ms", routed.measured_cost_ms)});
  }
  // A clean full read clears suspicion on the winner's involved
  // partitions (same contract as the failover loop).
  if (!health_->AllOk(widx)) {
    std::shared_lock lock(sync_->state_mutex);
    for (const std::size_t p :
         sketches_[widx].index.InvolvedPartitions(query)) {
      if (health_->Get(widx, p) == PartitionHealth::kSuspect)
        health_->MarkOk(widx, p);
    }
  }
  if (ctx.trace != nullptr) {
    ctx.trace->AddAttribute("replica", routed.served_by);
    ctx.trace->AddAttribute("hedged", std::string(hedged ? "true" : "false"));
    if (hedged)
      ctx.trace->AddAttribute(
          "hedge_backup_won",
          std::string(routed.hedge_backup_won ? "true" : "false"));
    ctx.trace->AddAttribute("measured_cost_ms", routed.measured_cost_ms);
  }
  if (registry.enabled()) RecordRoutedQuery(routed.served_by, routed);
  return routed;
}

void BlotStore::ObserveQueryTelemetry(const STRange& query,
                                      const obs::QueryProfile& profile) {
  obs::RecordProfile(profile);  // per-stage histograms (registry-gated)
  Telemetry& t = *telemetry_;
  t.cost_drift.Observe(profile);

  std::lock_guard lock(t.workload_mutex);
  t.workload.Observe(query.Size());
  const std::size_t n = t.workload.observations();
  if (!t.workload_drift.has_value()) {
    if (n >= Telemetry::kWorkloadWarmup)
      t.workload_drift.emplace(t.workload.Snapshot());
    return;
  }
  if (n % Telemetry::kWorkloadCheckInterval != 0) return;
  const Workload current = t.workload.Snapshot();
  const double distance = t.workload_drift->DistanceTo(current);
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled())
    registry.GetGauge("drift.workload_distance").Set(distance);
  const bool drifted = t.workload_drift->HasDrifted(current);
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled()) {
    if (drifted && !t.workload_alerting) {
      log.Warn("workload_drift.alert",
               "live workload drifted from the selection reference",
               {obs::Field("distance", distance),
                obs::Field("observations", n)});
    } else if (!drifted && t.workload_alerting) {
      log.Info("workload_drift.clear",
               "live workload back near the selection reference",
               {obs::Field("distance", distance),
                obs::Field("observations", n)});
    }
  }
  t.workload_alerting = drifted;
}

double BlotStore::WorkloadDriftDistance() const {
  Telemetry& t = *telemetry_;
  std::lock_guard lock(t.workload_mutex);
  if (!t.workload_drift.has_value() || t.workload.observations() == 0)
    return 0.0;
  return t.workload_drift->DistanceTo(t.workload.Snapshot());
}

void BlotStore::RebaseWorkloadReference() {
  Telemetry& t = *telemetry_;
  std::lock_guard lock(t.workload_mutex);
  t.workload_alerting = false;
  if (t.workload.observations() == 0) {
    t.workload_drift.reset();
    return;
  }
  t.workload_drift.emplace(t.workload.Snapshot());
}

void BlotStore::MaybeScheduleRepairs(ThreadPool* pool,
                                     const FailoverPolicy& policy) {
  if (policy.repair == RepairMode::kNone) return;
  if (health_->QuarantinedCount() == 0) return;
  if (policy.repair == RepairMode::kSync || pool == nullptr) {
    RepairQuarantined(pool, policy.repair_budget);
    return;
  }
  std::lock_guard lock(sync_->futures_mutex);
  const std::size_t budget = policy.repair_budget;
  sync_->repair_futures.push_back(pool->Submit([this, budget] {
    // try_to_lock: a repair task blocking on a query that is itself
    // waiting for pool workers would deadlock the pool; if the store is
    // busy the partitions stay quarantined and the next query
    // reschedules the repair.
    std::unique_lock lock(sync_->state_mutex, std::try_to_lock);
    if (!lock.owns_lock()) return;
    RepairQuarantinedLocked(nullptr, budget);
  }));
}

std::size_t BlotStore::RepairQuarantined(ThreadPool* pool,
                                         std::size_t budget) {
  std::unique_lock lock(sync_->state_mutex);
  return RepairQuarantinedLocked(pool, budget);
}

std::size_t BlotStore::RepairQuarantinedLocked(ThreadPool* pool,
                                               std::size_t budget) {
  auto& registry = obs::MetricsRegistry::global();
  const std::vector<HealthMap::Target> targets = health_->Quarantined();
  std::size_t attempted = 0;
  std::size_t repaired = 0;
  for (const HealthMap::Target& target : targets) {
    if (budget != 0 && attempted >= budget) break;
    // A full rebuild triggered by an earlier target may have already
    // healed this one.
    if (health_->Get(target.replica, target.partition) !=
        PartitionHealth::kQuarantined)
      continue;
    ++attempted;
    try {
      RecoverPartitionLocked(target.replica, target.partition, std::nullopt,
                             pool);
      ++repaired;
    } catch (const Error& e) {
      // No healthy source: the partition stays quarantined; queries keep
      // routing around it and a later repair pass retries.
      if (registry.enabled()) {
        static obs::Counter& failed_total =
            registry.GetCounter("repair.failed_total");
        failed_total.Increment();
      }
      if (obs::EventLog::Global().enabled()) {
        obs::EventLog::Global().Warn(
            "repair.failed", "partition repair failed; stays quarantined",
            {obs::Field("replica",
                        replicas_[target.replica].config().Name()),
             obs::Field("partition", target.partition),
             obs::Field("error", std::string(e.what()))});
      }
    }
  }
  if (registry.enabled()) {
    static obs::Gauge& active_gauge =
        registry.GetGauge("quarantine.active");
    active_gauge.Set(static_cast<double>(health_->QuarantinedCount()));
  }
  return repaired;
}

std::uint64_t BlotStore::RecoverPartition(std::size_t target,
                                          std::size_t partition,
                                          std::optional<std::size_t> source,
                                          ThreadPool* pool) {
  std::unique_lock lock(sync_->state_mutex);
  return RecoverPartitionLocked(target, partition, source, pool);
}

std::uint64_t BlotStore::RecoverPartitionLocked(
    std::size_t target, std::size_t partition,
    std::optional<std::size_t> source, ThreadPool* pool) {
  require(target < replicas_.size(),
          "BlotStore::RecoverPartition: bad replica index");
  require(!source.has_value() ||
              (*source < replicas_.size() && *source != target),
          "BlotStore::RecoverPartition: bad source index");
  Replica& rep = replicas_[target];
  require(partition < rep.NumPartitions(),
          "BlotStore::RecoverPartition: bad partition");
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t start_ns = obs::MonotonicNanos();

  // Membership oracle: which records belong in this partition is decided
  // by the partitioner (equal-count median splits with order-dependent
  // boundary ties), not by geometry alone — so re-run the deterministic
  // partitioning over the same logical input the replica was built from
  // and check it reproduces the replica's layout.
  const bool partial = !(rep.universe() == universe_);
  Dataset covered;
  const Dataset* logical = &dataset_;
  if (partial) {
    covered = Dataset(dataset_.FilterByRange(rep.universe()));
    logical = &covered;
  }
  const PartitionedData oracle =
      PartitionDataset(*logical, rep.config().partitioning, rep.universe());
  bool canonical = oracle.NumPartitions() == rep.NumPartitions() &&
                   logical->size() == rep.NumRecords();
  for (std::size_t p = 0; canonical && p < oracle.NumPartitions(); ++p)
    canonical = oracle.ranges[p] == rep.index().Range(p) &&
                oracle.members[p].size() == rep.partition(p).num_records;

  if (!canonical) {
    // The replica's layout is not re-derivable (e.g. it was previously
    // rebuilt from another replica's record order): rebuild it whole.
    if (registry.enabled()) {
      static obs::Counter& full_rebuilds =
          registry.GetCounter("repair.full_rebuilds_total");
      full_rebuilds.Increment();
    }
    if (obs::EventLog::Global().enabled()) {
      obs::EventLog::Global().Warn(
          "repair.full_rebuild",
          "partition layout not re-derivable; rebuilding whole replica",
          {obs::Field("replica", rep.config().Name()),
           obs::Field("partition", partition)});
    }
    std::vector<std::size_t> sources;
    if (source.has_value()) {
      sources.push_back(*source);
    } else {
      for (std::size_t r = 0; r < replicas_.size(); ++r)
        if (r != target &&
            replicas_[r].universe().Contains(rep.universe()))
          sources.push_back(r);
    }
    require(!sources.empty(),
            "BlotStore::RecoverPartition: no replica covers the target");
    for (std::size_t r : sources) {
      try {
        return RecoverReplicaFromLocked(target, r, pool);
      } catch (const Error&) {
        continue;  // source itself unreadable; try the next one
      }
    }
    throw CorruptData(
        "BlotStore::RecoverPartition: full rebuild of replica " +
        rep.config().Name() + " failed from every source");
  }

  // Expected payload from the logical view; the bytes must still be
  // fetched (and verified) from a healthy replica — diverse replicas
  // recover each other (Section II-E).
  std::vector<Record> expected;
  expected.reserve(oracle.members[partition].size());
  for (const std::uint32_t idx : oracle.members[partition])
    expected.push_back(logical->records()[idx]);
  const STRange needed = rep.index().Range(partition);

  std::vector<std::size_t> sources;
  if (source.has_value()) {
    sources.push_back(*source);
  } else {
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      if (r != target && replicas_[r].universe().Contains(needed))
        sources.push_back(r);
  }
  require(!sources.empty(),
          "BlotStore::RecoverPartition: no replica covers partition " +
              std::to_string(partition));

  for (const std::size_t r : sources) {
    try {
      const QueryResult fetched = replicas_[r].Execute(needed, pool);
      // The source must hold every record of the lost partition (ranges
      // overlap on closed bounds, so it may return extra neighbors).
      if (!MultisetContains(fetched.records, expected)) continue;
    } catch (const PartitionFaultError& e) {
      // The source's own copies are bad: contain the damage and move on.
      std::size_t newly_quarantined = 0;
      for (const std::size_t p : e.partitions()) {
        if (health_->Quarantine(r, p)) ++newly_quarantined;
        PartitionCache::Global().Invalidate(replicas_[r].cache_id(), p);
      }
      RecordQuarantine(replicas_[r].config().Name(), e.partitions(),
                       newly_quarantined, 0, health_->QuarantinedCount());
      continue;
    }
    rep.RestorePartition(partition, expected);
    sketches_[target] = ReplicaSketch::FromReplica(rep);
    health_->MarkOk(target, partition);
    const double repair_ms_elapsed =
        double(obs::MonotonicNanos() - start_ns) * 1e-6;
    if (registry.enabled()) {
      static obs::Counter& partitions_total =
          registry.GetCounter("repair.partitions_total");
      static obs::Counter& records_total =
          registry.GetCounter("repair.records_total");
      static obs::Histogram& repair_ms =
          registry.GetHistogram("repair.ms");
      partitions_total.Increment();
      records_total.Increment(expected.size());
      repair_ms.Observe(repair_ms_elapsed);
    }
    if (obs::EventLog::Global().enabled()) {
      obs::EventLog::Global().Info(
          "repair", "partition repaired from healthy replica",
          {obs::Field("replica", rep.config().Name()),
           obs::Field("partition", partition),
           obs::Field("source", replicas_[r].config().Name()),
           obs::Field("records", expected.size()),
           obs::Field("ms", repair_ms_elapsed)});
    }
    return expected.size();
  }
  throw CorruptData(
      "BlotStore::RecoverPartition: no healthy source could supply "
      "partition " +
      std::to_string(partition) + " of " + rep.config().Name());
}

BlotStore::RoutedBatchResult BlotStore::ExecuteBatch(
    std::span<const STRange> queries, const CostModel& model,
    ThreadPool* pool) {
  const std::uint64_t start_ns = obs::MonotonicNanos();
  const bool profiling = obs::MetricsRegistry::global().enabled();
  RoutedBatchResult result;
  result.per_query.resize(queries.size());
  result.replica_of.resize(queries.size());

  // Queries whose group's shared scan failed; retried one-by-one through
  // the failover path after the shared lock is released.
  std::vector<std::size_t> fallback;
  std::uint64_t route_done_ns = start_ns;
  std::uint64_t scans_done_ns = start_ns;
  {
    std::shared_lock lock(sync_->state_mutex);
    // Group queries by routed replica, preserving original indices. The
    // replica count is small, so a flat vector indexed by replica id
    // replaces the ordered map (allocator churn on large batches).
    std::vector<std::vector<std::size_t>> groups(replicas_.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const Ranking ranking = RankCandidates(queries[q], model, policy_);
      require(ranking.covering > 0,
              "BlotStore::RouteQuery: no replica can serve the query (add "
              "a full replica)");
      if (ranking.ranked.empty()) throw UnservableError(queries[q]);
      const std::size_t replica = ranking.ranked.front().replica_index;
      result.replica_of[q] = replica;
      groups[replica].push_back(q);
    }
    if (profiling) route_done_ns = obs::MonotonicNanos();
    for (std::size_t replica = 0; replica < groups.size(); ++replica) {
      const std::vector<std::size_t>& query_ids = groups[replica];
      if (query_ids.empty()) continue;
      std::vector<STRange> group;
      group.reserve(query_ids.size());
      for (std::size_t q : query_ids) group.push_back(queries[q]);
      try {
        BatchResult batch =
            ::blot::ExecuteBatch(replicas_[replica], group, pool);
        for (std::size_t j = 0; j < query_ids.size(); ++j)
          result.per_query[query_ids[j]] = std::move(batch.per_query[j]);
        result.stats.partitions_scanned += batch.stats.partitions_scanned;
        result.stats.records_scanned += batch.stats.records_scanned;
        result.stats.bytes_read += batch.stats.bytes_read;
        result.stats.cache_hits += batch.stats.cache_hits;
        result.stats.cache_misses += batch.stats.cache_misses;
        result.naive_partition_scans += batch.naive_partition_scans;
      } catch (const CorruptData&) {
        // The shared scan cannot attribute the fault to one partition:
        // mark the group's involved partitions suspect (two strikes
        // quarantine) and retry each query with per-query failover.
        std::size_t newly_suspect = 0;
        std::size_t newly_quarantined = 0;
        std::vector<std::size_t> affected;
        for (const std::size_t q : query_ids) {
          for (const std::size_t p :
               sketches_[replica].index.InvolvedPartitions(queries[q])) {
            const PartitionHealth before = health_->Get(replica, p);
            const PartitionHealth after = health_->MarkSuspect(replica, p);
            if (after == PartitionHealth::kSuspect &&
                before == PartitionHealth::kOk) {
              ++newly_suspect;
              affected.push_back(p);
            }
            if (after == PartitionHealth::kQuarantined &&
                before != PartitionHealth::kQuarantined) {
              ++newly_quarantined;
              affected.push_back(p);
            }
          }
        }
        RecordQuarantine(replicas_[replica].config().Name(), affected,
                         newly_quarantined, newly_suspect,
                         health_->QuarantinedCount());
        fallback.insert(fallback.end(), query_ids.begin(), query_ids.end());
      } catch (const ReadError&) {
        fallback.insert(fallback.end(), query_ids.begin(), query_ids.end());
      }
    }
    if (profiling) scans_done_ns = obs::MonotonicNanos();
  }

  for (const std::size_t q : fallback) {
    RoutedResult routed = Execute(queries[q], model, pool);
    result.per_query[q] = std::move(routed.result.records);
    result.replica_of[q] = routed.replica_index;
    result.stats.partitions_scanned += routed.result.stats.partitions_scanned;
    result.stats.records_scanned += routed.result.stats.records_scanned;
    result.stats.bytes_read += routed.result.stats.bytes_read;
    result.stats.cache_hits += routed.result.stats.cache_hits;
    result.stats.cache_misses += routed.result.stats.cache_misses;
    result.naive_partition_scans += routed.result.stats.partitions_scanned;
  }
  const std::uint64_t end_ns = obs::MonotonicNanos();
  result.measured_ms = double(end_ns - start_ns) * 1e-6;

  if (profiling) {
    // Batch-level stage breakdown: route = ranking every query, execute =
    // the shared per-replica scans, failover = the one-by-one retries
    // (those queries also produced their own full profiles via Execute).
    obs::QueryProfile& profile = result.profile;
    profile.AddStage(obs::Stage::kRoute,
                     double(route_done_ns - start_ns) * 1e-6);
    profile.AddStage(obs::Stage::kExecute,
                     double(scans_done_ns - route_done_ns) * 1e-6,
                     result.stats.bytes_read);
    if (!fallback.empty())
      profile.AddStage(obs::Stage::kFailover,
                       double(end_ns - scans_done_ns) * 1e-6);
    profile.partitions_touched = result.stats.partitions_scanned;
    profile.records_scanned = result.stats.records_scanned;
    profile.cache_hits = result.stats.cache_hits;
    profile.cache_misses = result.stats.cache_misses;
    profile.cache_miss_bytes = result.stats.bytes_read;
    profile.parallel_scan = pool != nullptr;
    profile.measured_cost_ms = result.measured_ms;
    profile.total_ms = result.measured_ms;
  }

  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    // Fallback queries were recorded by Execute() already; count only the
    // shared-scan queries here.
    std::vector<bool> via_fallback(queries.size(), false);
    for (const std::size_t q : fallback) via_fallback[q] = true;
    const std::size_t shared_scan_queries = queries.size() - fallback.size();
    static obs::Counter& batches_total =
        registry.GetCounter("query.batches_total");
    static obs::Counter& batch_queries =
        registry.GetCounter("query.batch_queries_total");
    static obs::Counter& partitions_scanned =
        registry.GetCounter("query.batch_partitions_scanned_total");
    static obs::Counter& scans_saved =
        registry.GetCounter("query.batch_shared_scans_saved_total");
    static obs::Histogram& batch_ms =
        registry.GetHistogram("query.batch_measured_ms");
    static obs::Counter& routed_total =
        registry.GetCounter("query.routed_total");
    batches_total.Increment();
    batch_queries.Increment(queries.size());
    routed_total.Increment(shared_scan_queries);
    partitions_scanned.Increment(result.stats.partitions_scanned);
    scans_saved.Increment(result.naive_partition_scans -
                          result.stats.partitions_scanned);
    batch_ms.Observe(result.measured_ms);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (via_fallback[q]) continue;
      registry
          .GetCounter("query.routed_total",
                      {{"replica",
                        replicas_[result.replica_of[q]].config().Name()}})
          .Increment();
    }
  }
  return result;
}

namespace {

constexpr std::uint64_t kStoreMagic = 0x325252544F4C42ull;  // "BLOTRR2"
const char* kStoreManifest = "store.blot";
const char* kStoreDataset = "dataset.bin";

std::string ReplicaDirName(std::size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "replica_%03zu", i);
  return name;
}

}  // namespace

void BlotStore::Save(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);
  std::ostringstream dataset_buf;
  dataset_.WriteBinary(dataset_buf);
  const std::string dataset_bytes = dataset_buf.str();
  const std::uint64_t dataset_checksum = Fnv1a64(BytesView(
      reinterpret_cast<const std::uint8_t*>(dataset_bytes.data()),
      dataset_bytes.size()));
  {
    std::ofstream out(directory / kStoreDataset,
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write dataset");
    out.write(dataset_bytes.data(),
              static_cast<std::streamsize>(dataset_bytes.size()));
    require(out.good(), "BlotStore::Save: short write to dataset");
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    SegmentStore::Save(replicas_[i], directory / ReplicaDirName(i));

  ByteWriter manifest;
  manifest.PutU64(kStoreMagic);
  manifest.PutF64(universe_.x_min());
  manifest.PutF64(universe_.x_max());
  manifest.PutF64(universe_.y_min());
  manifest.PutF64(universe_.y_max());
  manifest.PutF64(universe_.t_min());
  manifest.PutF64(universe_.t_max());
  manifest.PutVarint(replicas_.size());
  manifest.PutU64(dataset_checksum);
  // Whole-manifest checksum excluding this trailing field, mirroring the
  // SegmentStore manifest format.
  manifest.PutU64(Fnv1a64(manifest.buffer()));
  const std::filesystem::path tmp =
      directory / (std::string(kStoreManifest) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write manifest");
    out.write(reinterpret_cast<const char*>(manifest.buffer().data()),
              static_cast<std::streamsize>(manifest.size()));
  }
  std::filesystem::rename(tmp, directory / kStoreManifest);
}

BlotStore BlotStore::Load(const std::filesystem::path& directory) {
  require(std::filesystem::exists(directory / kStoreManifest),
          "BlotStore::Load: no store manifest in " + directory.string());
  std::ifstream manifest_in(directory / kStoreManifest, std::ios::binary);
  if (!manifest_in.good())
    throw ReadError("BlotStore::Load: cannot open store manifest in " +
                    directory.string());
  const Bytes manifest_bytes((std::istreambuf_iterator<char>(manifest_in)),
                             std::istreambuf_iterator<char>());
  validate(manifest_bytes.size() > 8,
           "BlotStore::Load: store manifest too small");
  const BytesView body(manifest_bytes.data(), manifest_bytes.size() - 8);
  ByteReader trailer(BytesView(manifest_bytes.data() + body.size(), 8));
  validate(trailer.GetU64() == Fnv1a64(body),
           "BlotStore::Load: store manifest checksum mismatch");

  ByteReader manifest(body);
  validate(manifest.GetU64() == kStoreMagic,
           "BlotStore::Load: bad store magic");
  const double x_min = manifest.GetF64();
  const double x_max = manifest.GetF64();
  const double y_min = manifest.GetF64();
  const double y_max = manifest.GetF64();
  const double t_min = manifest.GetF64();
  const double t_max = manifest.GetF64();
  validate(x_min <= x_max && y_min <= y_max && t_min <= t_max,
           "BlotStore::Load: malformed universe");
  const std::uint64_t num_replicas = manifest.GetVarint();
  const std::uint64_t dataset_checksum = manifest.GetU64();
  validate(manifest.AtEnd(), "BlotStore::Load: trailing manifest bytes");

  std::ifstream dataset_in(directory / kStoreDataset, std::ios::binary);
  require(dataset_in.good(), "BlotStore::Load: missing dataset file");
  const Bytes dataset_bytes((std::istreambuf_iterator<char>(dataset_in)),
                            std::istreambuf_iterator<char>());
  validate(Fnv1a64(dataset_bytes) == dataset_checksum,
           "BlotStore::Load: dataset checksum mismatch");
  std::istringstream dataset_stream(std::string(
      reinterpret_cast<const char*>(dataset_bytes.data()),
      dataset_bytes.size()));
  BlotStore store(Dataset::ReadBinary(dataset_stream),
                  STRange::FromBounds(x_min, x_max, y_min, y_max, t_min,
                                      t_max));
  for (std::uint64_t i = 0; i < num_replicas; ++i) {
    Replica replica = SegmentStore::Load(directory / ReplicaDirName(i));
    validate(store.universe_.Contains(replica.universe()),
             "BlotStore::Load: replica outside store universe");
    store.replicas_.push_back(std::move(replica));
    store.sketches_.push_back(
        ReplicaSketch::FromReplica(store.replicas_.back()));
    store.health_->AddReplica(store.replicas_.back().NumPartitions());
  }
  return store;
}

std::uint64_t BlotStore::RecoverReplicaFrom(std::size_t i, std::size_t source,
                                            ThreadPool* pool) {
  std::unique_lock lock(sync_->state_mutex);
  return RecoverReplicaFromLocked(i, source, pool);
}

std::uint64_t BlotStore::RecoverReplicaFromLocked(std::size_t i,
                                                  std::size_t source,
                                                  ThreadPool* pool) {
  require(i < replicas_.size() && source < replicas_.size(),
          "BlotStore::RecoverReplicaFrom: bad index");
  require(i != source, "BlotStore::RecoverReplicaFrom: source == target");
  // The source must cover everything the lost replica stored: any full
  // replica recovers anything; a partial replica can only recover
  // replicas whose universe lies within its coverage.
  const STRange target_universe = replicas_[i].universe();
  require(replicas_[source].universe().Contains(target_universe),
          "BlotStore::RecoverReplicaFrom: source does not cover target");
  const ReplicaConfig config = replicas_[i].config();
  const Dataset logical = replicas_[source].Reconstruct();
  const Dataset covered(logical.FilterByRange(target_universe));
  // The lost replica's storage is discarded; drop its cached decodes
  // eagerly rather than letting them age out of the LRU.
  const std::uint64_t old_cache_id = replicas_[i].cache_id();
  PartitionCache::Global().InvalidateReplica(old_cache_id,
                                             replicas_[i].NumPartitions());
  replicas_[i] = Replica::Build(covered, config, target_universe, pool);
  // A decode cached before recovery must never satisfy a query after it:
  // the rebuilt replica's cache identity is process-unique and fresh.
  ensure(replicas_[i].cache_id() != old_cache_id,
         "BlotStore::RecoverReplicaFrom: rebuilt replica kept its old "
         "cache identity");
  sketches_[i] = ReplicaSketch::FromReplica(replicas_[i]);
  health_->ResetReplica(i, replicas_[i].NumPartitions());
  if (obs::EventLog::Global().enabled()) {
    obs::EventLog::Global().Info(
        "repair.replica_rebuilt", "replica rebuilt from healthy source",
        {obs::Field("replica", config.Name()),
         obs::Field("source", replicas_[source].config().Name()),
         obs::Field("records", replicas_[i].NumRecords())});
  }
  return replicas_[i].NumRecords();
}

}  // namespace blot
