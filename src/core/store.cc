#include "core/store.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "blot/batch.h"
#include "blot/segment_store.h"
#include "core/partition_cache.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot {
namespace {

// Estimate-vs-actual cost error is unbounded above (the estimate models a
// cluster environment, the measurement is this process), so the error
// histogram gets wide percentage buckets instead of latency buckets.
obs::Histogram& CostErrorHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().GetHistogram(
          "query.cost_error_pct", {},
          {1, 2, 5, 10, 25, 50, 75, 90, 100, 250, 500, 1000, 10000,
           100000, 1000000});
  return histogram;
}

// Records one routed execution into the query.* metrics.
void RecordRoutedQuery(const std::string& replica_name,
                       const BlotStore::RoutedResult& routed) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& routed_total =
      registry.GetCounter("query.routed_total");
  static obs::Histogram& estimated_ms =
      registry.GetHistogram("query.estimated_cost_ms");
  static obs::Histogram& measured_ms =
      registry.GetHistogram("query.measured_ms");
  static obs::Counter& np_predicted =
      registry.GetCounter("query.partitions_predicted_total");
  static obs::Counter& partitions_scanned =
      registry.GetCounter("query.partitions_scanned_total");
  static obs::Counter& records_scanned =
      registry.GetCounter("query.records_scanned_total");
  static obs::Counter& records_returned =
      registry.GetCounter("query.records_returned_total");
  static obs::Counter& bytes_read =
      registry.GetCounter("query.bytes_read_total");

  routed_total.Increment();
  registry.GetCounter("query.routed_total", {{"replica", replica_name}})
      .Increment();
  estimated_ms.Observe(routed.estimated_cost_ms);
  measured_ms.Observe(routed.measured_cost_ms);
  if (routed.estimated_cost_ms > 0)
    CostErrorHistogram().Observe(
        std::abs(routed.measured_cost_ms - routed.estimated_cost_ms) /
        routed.estimated_cost_ms * 100.0);
  np_predicted.Increment(routed.predicted_partitions);
  partitions_scanned.Increment(routed.result.stats.partitions_scanned);
  records_scanned.Increment(routed.result.stats.records_scanned);
  records_returned.Increment(routed.result.records.size());
  bytes_read.Increment(routed.result.stats.bytes_read);
}

}  // namespace

BlotStore::BlotStore(Dataset dataset, std::optional<STRange> universe)
    : dataset_(std::move(dataset)) {
  require(!dataset_.empty(), "BlotStore: empty dataset");
  universe_ = universe.value_or(dataset_.BoundingBox());
  for (const Record& r : dataset_.records())
    require(universe_.Contains(r.Position()),
            "BlotStore: record outside universe");
}

std::size_t BlotStore::AddReplica(const ReplicaConfig& config,
                                  ThreadPool* pool) {
  for (const Replica& existing : replicas_)
    require(!(existing.config() == config &&
              existing.universe() == universe_),
            "BlotStore::AddReplica: duplicate replica " + config.Name());
  replicas_.push_back(Replica::Build(dataset_, config, universe_, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  return replicas_.size() - 1;
}

std::size_t BlotStore::AddPartialReplica(const ReplicaConfig& config,
                                         const STRange& coverage,
                                         ThreadPool* pool) {
  require(universe_.Contains(coverage),
          "BlotStore::AddPartialReplica: coverage outside universe");
  require(!(coverage == universe_),
          "BlotStore::AddPartialReplica: coverage is the whole universe; "
          "use AddReplica");
  const Dataset covered(dataset_.FilterByRange(coverage));
  replicas_.push_back(Replica::Build(covered, config, coverage, pool));
  sketches_.push_back(ReplicaSketch::FromReplica(replicas_.back()));
  return replicas_.size() - 1;
}

bool BlotStore::IsFullReplica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::IsFullReplica: bad index");
  return replicas_[i].universe() == universe_;
}

const Replica& BlotStore::replica(std::size_t i) const {
  require(i < replicas_.size(), "BlotStore::replica: bad index");
  return replicas_[i];
}

std::uint64_t BlotStore::TotalStorageBytes() const {
  std::uint64_t total = 0;
  for (const Replica& r : replicas_) total += r.StorageBytes();
  return total;
}

BlotStore::RoutingDecision BlotStore::RouteQueryDetailed(
    const STRange& query, const CostModel& model) const {
  require(!replicas_.empty(), "BlotStore::RouteQuery: no replicas");
  std::size_t best = sketches_.size();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    // Full replicas can serve anything; partial replicas only queries
    // entirely inside their coverage.
    if (!IsFullReplica(i) && !replicas_[i].universe().Contains(query))
      continue;
    const double cost = model.QueryCostMs(sketches_[i], query);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  require(best < sketches_.size(),
          "BlotStore::RouteQuery: no replica can serve the query (add a "
          "full replica)");
  return {best, best_cost, sketches_[best].index.CountInvolved(query)};
}

std::size_t BlotStore::RouteQuery(const STRange& query,
                                  const CostModel& model) const {
  return RouteQueryDetailed(query, model).replica_index;
}

BlotStore::RoutedResult BlotStore::Execute(const STRange& query,
                                           const CostModel& model,
                                           ThreadPool* pool,
                                           obs::TraceSpan* trace) const {
  RoutedResult routed;
  obs::TraceSpan* route_span =
      trace != nullptr ? &trace->AddChild("route") : nullptr;
  {
    obs::SpanTimer route_timer(route_span);
    const RoutingDecision decision = RouteQueryDetailed(query, model);
    routed.replica_index = decision.replica_index;
    routed.estimated_cost_ms = decision.estimated_cost_ms;
    routed.predicted_partitions = decision.predicted_partitions;
  }
  const std::string replica_name =
      replicas_[routed.replica_index].config().Name();
  if (route_span != nullptr) {
    route_span->AddAttribute("candidates",
                             std::uint64_t{replicas_.size()});
    route_span->AddAttribute("replica", replica_name);
    route_span->AddAttribute("estimated_cost_ms",
                             routed.estimated_cost_ms);
    route_span->AddAttribute(
        "predicted_partitions",
        std::uint64_t{routed.predicted_partitions});
  }

  obs::TraceSpan* execute_span =
      trace != nullptr ? &trace->AddChild("execute") : nullptr;
  {
    const std::uint64_t start_ns = obs::MonotonicNanos();
    obs::SpanTimer execute_timer(execute_span);
    routed.result = replicas_[routed.replica_index].Execute(query, pool);
    routed.measured_cost_ms =
        double(obs::MonotonicNanos() - start_ns) * 1e-6;
  }
  if (execute_span != nullptr) {
    execute_span->AddAttribute(
        "partitions_scanned",
        std::uint64_t{routed.result.stats.partitions_scanned});
    execute_span->AddAttribute("records_scanned",
                               routed.result.stats.records_scanned);
    execute_span->AddAttribute("records_returned",
                               std::uint64_t{routed.result.records.size()});
    execute_span->AddAttribute("bytes_read",
                               routed.result.stats.bytes_read);
    if (PartitionCache::Global().enabled()) {
      execute_span->AddAttribute(
          "cache_hits", std::uint64_t{routed.result.stats.cache_hits});
      execute_span->AddAttribute(
          "cache_misses",
          std::uint64_t{routed.result.stats.cache_misses});
    }
  }
  if (trace != nullptr) {
    trace->AddAttribute("replica", replica_name);
    trace->AddAttribute("estimated_cost_ms", routed.estimated_cost_ms);
    trace->AddAttribute("measured_cost_ms", routed.measured_cost_ms);
    trace->AddAttribute(
        "partitions_scanned",
        std::uint64_t{routed.result.stats.partitions_scanned});
  }
  if (obs::MetricsRegistry::global().enabled())
    RecordRoutedQuery(replica_name, routed);
  return routed;
}

BlotStore::RoutedBatchResult BlotStore::ExecuteBatch(
    std::span<const STRange> queries, const CostModel& model,
    ThreadPool* pool) const {
  const std::uint64_t start_ns = obs::MonotonicNanos();
  RoutedBatchResult result;
  result.per_query.resize(queries.size());
  result.replica_of.resize(queries.size());

  // Group queries by routed replica, preserving original indices. The
  // replica count is small, so a flat vector indexed by replica id
  // replaces the ordered map (allocator churn on large batches).
  std::vector<std::vector<std::size_t>> groups(replicas_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t replica = RouteQuery(queries[q], model);
    result.replica_of[q] = replica;
    groups[replica].push_back(q);
  }
  for (std::size_t replica = 0; replica < groups.size(); ++replica) {
    const std::vector<std::size_t>& query_ids = groups[replica];
    if (query_ids.empty()) continue;
    std::vector<STRange> group;
    group.reserve(query_ids.size());
    for (std::size_t q : query_ids) group.push_back(queries[q]);
    BatchResult batch = ::blot::ExecuteBatch(replicas_[replica], group, pool);
    for (std::size_t j = 0; j < query_ids.size(); ++j)
      result.per_query[query_ids[j]] = std::move(batch.per_query[j]);
    result.stats.partitions_scanned += batch.stats.partitions_scanned;
    result.stats.records_scanned += batch.stats.records_scanned;
    result.stats.bytes_read += batch.stats.bytes_read;
    result.stats.cache_hits += batch.stats.cache_hits;
    result.stats.cache_misses += batch.stats.cache_misses;
    result.naive_partition_scans += batch.naive_partition_scans;
  }
  result.measured_ms = double(obs::MonotonicNanos() - start_ns) * 1e-6;

  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    static obs::Counter& batches_total =
        registry.GetCounter("query.batches_total");
    static obs::Counter& batch_queries =
        registry.GetCounter("query.batch_queries_total");
    static obs::Counter& partitions_scanned =
        registry.GetCounter("query.batch_partitions_scanned_total");
    static obs::Counter& scans_saved =
        registry.GetCounter("query.batch_shared_scans_saved_total");
    static obs::Histogram& batch_ms =
        registry.GetHistogram("query.batch_measured_ms");
    static obs::Counter& routed_total =
        registry.GetCounter("query.routed_total");
    batches_total.Increment();
    batch_queries.Increment(queries.size());
    routed_total.Increment(queries.size());
    partitions_scanned.Increment(result.stats.partitions_scanned);
    scans_saved.Increment(result.naive_partition_scans -
                          result.stats.partitions_scanned);
    batch_ms.Observe(result.measured_ms);
    for (std::size_t q = 0; q < queries.size(); ++q)
      registry
          .GetCounter("query.routed_total",
                      {{"replica",
                        replicas_[result.replica_of[q]].config().Name()}})
          .Increment();
  }
  return result;
}

namespace {

constexpr std::uint64_t kStoreMagic = 0x315252544F4C42ull;  // "BLOTRR1"
const char* kStoreManifest = "store.blot";
const char* kStoreDataset = "dataset.bin";

std::string ReplicaDirName(std::size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "replica_%03zu", i);
  return name;
}

}  // namespace

void BlotStore::Save(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);
  {
    std::ofstream out(directory / kStoreDataset,
                      std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write dataset");
    dataset_.WriteBinary(out);
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    SegmentStore::Save(replicas_[i], directory / ReplicaDirName(i));

  ByteWriter manifest;
  manifest.PutU64(kStoreMagic);
  manifest.PutF64(universe_.x_min());
  manifest.PutF64(universe_.x_max());
  manifest.PutF64(universe_.y_min());
  manifest.PutF64(universe_.y_max());
  manifest.PutF64(universe_.t_min());
  manifest.PutF64(universe_.t_max());
  manifest.PutVarint(replicas_.size());
  const std::filesystem::path tmp =
      directory / (std::string(kStoreManifest) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "BlotStore::Save: cannot write manifest");
    out.write(reinterpret_cast<const char*>(manifest.buffer().data()),
              static_cast<std::streamsize>(manifest.size()));
  }
  std::filesystem::rename(tmp, directory / kStoreManifest);
}

BlotStore BlotStore::Load(const std::filesystem::path& directory) {
  require(std::filesystem::exists(directory / kStoreManifest),
          "BlotStore::Load: no store manifest in " + directory.string());
  std::ifstream manifest_in(directory / kStoreManifest, std::ios::binary);
  const Bytes manifest_bytes((std::istreambuf_iterator<char>(manifest_in)),
                             std::istreambuf_iterator<char>());
  ByteReader manifest(manifest_bytes);
  validate(manifest.GetU64() == kStoreMagic,
           "BlotStore::Load: bad store magic");
  const double x_min = manifest.GetF64();
  const double x_max = manifest.GetF64();
  const double y_min = manifest.GetF64();
  const double y_max = manifest.GetF64();
  const double t_min = manifest.GetF64();
  const double t_max = manifest.GetF64();
  validate(x_min <= x_max && y_min <= y_max && t_min <= t_max,
           "BlotStore::Load: malformed universe");
  const std::uint64_t num_replicas = manifest.GetVarint();
  validate(manifest.AtEnd(), "BlotStore::Load: trailing manifest bytes");

  std::ifstream dataset_in(directory / kStoreDataset, std::ios::binary);
  require(dataset_in.good(), "BlotStore::Load: missing dataset file");
  BlotStore store(Dataset::ReadBinary(dataset_in),
                  STRange::FromBounds(x_min, x_max, y_min, y_max, t_min,
                                      t_max));
  for (std::uint64_t i = 0; i < num_replicas; ++i) {
    Replica replica = SegmentStore::Load(directory / ReplicaDirName(i));
    validate(store.universe_.Contains(replica.universe()),
             "BlotStore::Load: replica outside store universe");
    store.replicas_.push_back(std::move(replica));
    store.sketches_.push_back(
        ReplicaSketch::FromReplica(store.replicas_.back()));
  }
  return store;
}

std::uint64_t BlotStore::RecoverReplicaFrom(std::size_t i, std::size_t source,
                                            ThreadPool* pool) {
  require(i < replicas_.size() && source < replicas_.size(),
          "BlotStore::RecoverReplicaFrom: bad index");
  require(i != source, "BlotStore::RecoverReplicaFrom: source == target");
  // The source must cover everything the lost replica stored: any full
  // replica recovers anything; a partial replica can only recover
  // replicas whose universe lies within its coverage.
  const STRange target_universe = replicas_[i].universe();
  require(replicas_[source].universe().Contains(target_universe),
          "BlotStore::RecoverReplicaFrom: source does not cover target");
  const ReplicaConfig config = replicas_[i].config();
  const Dataset logical = replicas_[source].Reconstruct();
  const Dataset covered(logical.FilterByRange(target_universe));
  // The lost replica's storage is discarded; drop its cached decodes
  // eagerly rather than letting them age out of the LRU.
  PartitionCache::Global().InvalidateReplica(replicas_[i].cache_id(),
                                             replicas_[i].NumPartitions());
  replicas_[i] = Replica::Build(covered, config, target_universe, pool);
  sketches_[i] = ReplicaSketch::FromReplica(replicas_[i]);
  return replicas_[i].NumRecords();
}

}  // namespace blot
