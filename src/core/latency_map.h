// Per-replica latency tracking: the routing signal for hedged reads and
// brownout deprioritization.
//
// HealthMap answers "is this copy *correct*"; LatencyMap answers "is
// this copy *fast*". Every execution attempt feeds its wall time and
// partition count back as an EWMA of milliseconds-per-partition-read,
// and two consumers read it:
//
//   * the hedging coordinator derives the per-query hedge threshold
//     from ExpectedMs(replica, predicted_partitions) — an attempt
//     running well past its own replica's recent norm is a straggler
//     worth racing;
//   * candidate ranking multiplies a replica's cost by
//     BrownoutPenalty() — a replica whose per-partition reads run far
//     slower than the fastest replica's is deprioritized (still
//     eligible, so it keeps serving when it is the only healthy copy)
//     without tripping the health machinery: slowness is not
//     corruption, and quarantining a slow-but-alive replica would
//     *reduce* the diversity the paper's recovery argument relies on.
//
// The penalty is deliberately conservative: it needs a minimum number
// of observations per replica and only kicks in past a generous
// slowness ratio, so honest speed differences between encodings (a few
// x between e.g. ROW-SNAPPY and COL-LZMA) never override the cost
// model — only genuine brownouts (injected or real latency faults, an
// order of magnitude and up) do.
//
// Internally synchronized; attempts observe concurrently from the
// serving layer's request workers.
#ifndef BLOT_CORE_LATENCY_MAP_H_
#define BLOT_CORE_LATENCY_MAP_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace blot {

class LatencyMap {
 public:
  struct Snapshot {
    double ewma_ms_per_partition = 0.0;
    std::uint64_t observations = 0;
  };

  // Registers the next replica (index = current replica count), keeping
  // the map index-aligned with the store's replica vector.
  void AddReplica();

  std::size_t NumReplicas() const;

  // Feeds one execution attempt: `partitions` actually scanned in
  // `attempt_ms` of wall time. Attempts that scanned nothing still count
  // as one partition so a zone-pruned-everything query cannot divide by
  // zero or record an infinite rate.
  void Observe(std::size_t replica, std::size_t partitions,
               double attempt_ms);

  // The EWMA-predicted wall time for `replica` to read `partitions`
  // partitions; 0 while the replica has fewer than kMinObservations
  // (callers fall back to their static threshold).
  double ExpectedMs(std::size_t replica, std::size_t partitions) const;

  // Routing multiplier >= 1: the ratio of this replica's per-partition
  // EWMA to the fastest warmed-up replica's, clamped to
  // [1, kMaxPenalty], and 1.0 until the ratio exceeds kBrownoutRatio —
  // honest encoding-speed differences stay invisible to routing.
  double BrownoutPenalty(std::size_t replica) const;

  Snapshot Get(std::size_t replica) const;

  // Observations needed before a replica's EWMA drives decisions.
  static constexpr std::uint64_t kMinObservations = 4;
  // Slowness ratio (vs the fastest replica) below which no penalty
  // applies.
  static constexpr double kBrownoutRatio = 4.0;
  // Penalty clamp: a browned-out replica is heavily deprioritized but
  // never priced out of serving as the last healthy copy.
  static constexpr double kMaxPenalty = 8.0;
  // EWMA smoothing factor (weight of the newest observation).
  static constexpr double kAlpha = 0.2;

 private:
  struct Cell {
    double ewma_ms_per_partition = 0.0;
    std::uint64_t observations = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Cell> cells_;
};

}  // namespace blot

#endif  // BLOT_CORE_LATENCY_MAP_H_
