// The exact replica-selection solver: the 0-1 MIP of Section III-B.
//
// Variables: x_j (replica r_j present) and y_ij (query q_i processed on
// replica r_j). Constraints (paper's equation numbers):
//   (1)  Σ_j Storage(r_j) x_j <= b
//   (2)  Σ_j y_ij = 1                       for all i
//   (4)  Σ_i y_ij <= n x_j                  for all j
// using the m aggregated constraints of Eq. 4 rather than the n*m
// constraints of Eq. 3 — "slightly relaxed but do not change the optimal
// solution" (verified in tests). Objective (5): Σ_ij w_i c_ij y_ij.
//
// Only the x_j are branched on: once x is integral the LP assigns each
// query wholly to its cheapest open replica, so y integrality is free.
#ifndef BLOT_CORE_MIP_SELECTION_H_
#define BLOT_CORE_MIP_SELECTION_H_

#include "core/selection.h"
#include "mip/mip.h"

namespace blot {

struct MipSelectionOptions {
  MipOptions mip;
  // Seed the branch-and-bound incumbent with the greedy solution.
  bool warm_start_with_greedy = true;
  // Use the n*m disaggregated linking constraints of Eq. 3 instead of the
  // m aggregated constraints of Eq. 4 (for the equivalence tests and the
  // constraint-count ablation; the paper argues for Eq. 4).
  bool use_disaggregated_constraints = false;
};

// Builds the MIP of Eq. 1-5 for `input`. Exposed separately for tests and
// the Figure 3 scaling bench.
MipProblem BuildSelectionMip(const SelectionInput& input,
                             bool use_disaggregated_constraints = false);

// Solves replica selection exactly. `result.optimal` reflects whether
// optimality was proven within the node budget.
SelectionResult SelectMip(const SelectionInput& input,
                          const MipSelectionOptions& options = {});

}  // namespace blot

#endif  // BLOT_CORE_MIP_SELECTION_H_
