// Deterministic, seed-driven fault injection for the storage read path.
//
// The paper's fault-tolerance argument (Section II-E) is that diverse
// replicas subsume replication: any surviving replica can answer any
// query, so corruption in one physical organization must never lose a
// query. This module supplies the faults that claim is tested against.
// A process-wide FaultInjector is consulted at the partition read
// boundary (Replica::DecodePartitionRecords / ScanPartitionInRange); when
// armed it deterministically decides, per (replica, partition), whether
// that read suffers a bit flip, a truncation, a torn read, an outright
// read error, or a latency spike. Corruptions are applied to a copy of
// the encoded bytes and then run through the ordinary checksum
// verification, so injected faults exercise exactly the detection
// machinery real media errors would.
//
// Determinism: the decision for a read is a pure function of
// (plan seed, replica name, partition index), so a failing campaign seed
// reproduces exactly. Each matched target fires a bounded number of times
// (FaultPlan::max_fires_per_target, default 1), modeling a bad storage
// unit that is replaced by repair rather than an endlessly haunted one.
//
// Entry points: tests and benches Arm() the global injector directly (or
// run RunFaultCampaign over derived seeds); blotctl exposes the same
// plans through `--inject-faults=<spec>` (grammar in ParseFaultSpec and
// docs/robustness.md). Disarmed, the hot-path check is one relaxed
// atomic load.
#ifndef BLOT_CORE_FAULT_INJECTION_H_
#define BLOT_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"

namespace blot {

enum class FaultKind : std::uint8_t {
  kBitFlip,    // one bit of the encoded partition flips
  kTruncate,   // the tail of the encoded partition is cut off
  kTornRead,   // the tail reads back as zeros (interrupted write)
  kReadError,  // the read itself fails (ReadError is thrown)
  kLatency,    // the read succeeds after a delay
};

std::string_view FaultKindName(FaultKind kind);

// What the injector may do and to whom. Defaults target every partition
// of every replica with all three corruption kinds, once per target.
struct FaultPlan {
  std::uint64_t seed = 1;
  // Probability that a matched (replica, partition) target is faulty at
  // all; the draw is deterministic per target, not per read.
  double probability = 1.0;
  std::vector<FaultKind> kinds = {FaultKind::kBitFlip, FaultKind::kTruncate,
                                  FaultKind::kTornRead};
  // Empty matches every replica; otherwise the replica config name
  // (e.g. "KD4xT4/ROW-SNAPPY") must match exactly.
  std::string replica;
  // Unset matches every partition.
  std::optional<std::size_t> partition;
  // How many reads of one target fire before it goes quiet; 0 means
  // every read (a fault that survives until the unit is rebuilt).
  std::size_t max_fires_per_target = 1;
  std::uint32_t latency_ms = 5;  // delay for kLatency faults (kFixed)

  // Shape of kLatency delays. The scalar `latency=MS` grammar keeps its
  // original fixed-delay meaning; the two distributions model real
  // brownouts better than a constant:
  //   kFixed  — every fire stalls latency_ms.
  //   kPareto — per-target heavy-tailed delay in [latency_min,
  //             latency_max] ms (alpha 1.5): most targets are mildly
  //             slow, a deterministic few are terrible — the long-tail
  //             shape hedged reads exist for.
  //   kSpike  — each *read* independently stalls latency_min ms with
  //             spike_probability (an intermittently wedged device);
  //             non-spiking reads do not consume the target's fire
  //             budget.
  enum class LatencyDist : std::uint8_t { kFixed, kPareto, kSpike };
  LatencyDist latency_dist = LatencyDist::kFixed;
  double latency_min = 0.0;        // pareto scale / spike stall ms
  double latency_max = 0.0;        // pareto clamp
  double spike_probability = 0.0;  // spike: per-read stall probability
};

// Parses the `--inject-faults` spec grammar: semicolon-separated
// key=value pairs, e.g.
//   "seed=42;p=0.5;kinds=bitflip,readerror;replica=KD4xT4/ROW-SNAPPY;
//    partition=3;fires=1;latency=5"
// Keys: seed, p (probability), kinds (comma list of bitflip, truncate,
// torn, readerror, latency), replica, partition, fires, latency.
// The latency value is either a scalar delay in ms (`latency=5`,
// unchanged) or a distribution spec: `latency=pareto:MIN:MAX` (heavy-
// tailed per-target delay in [MIN, MAX] ms) or `latency=spike:MS:PROB`
// (each read stalls MS ms with probability PROB). Unknown keys or
// malformed values throw InvalidArgument.
FaultPlan ParseFaultSpec(const std::string& spec);

// The outcome of consulting the injector for one read.
struct FaultDecision {
  bool fire = false;
  FaultKind kind = FaultKind::kBitFlip;
  // Kind-specific parameter: corruption position salt for the mutation
  // helpers, or the delay in ms for kLatency.
  std::uint64_t param = 0;
};

class FaultInjector {
 public:
  struct Stats {
    std::uint64_t fired_total = 0;
    std::uint64_t bit_flips = 0;
    std::uint64_t truncations = 0;
    std::uint64_t torn_reads = 0;
    std::uint64_t read_errors = 0;
    std::uint64_t latency_spikes = 0;
    // Distinct (replica, partition) targets that fired at least once.
    std::uint64_t targets_hit = 0;
  };

  // The process-wide injector consulted by the Replica read path.
  // Disarmed at startup.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs `plan` and resets per-target fire counts and stats.
  void Arm(const FaultPlan& plan);
  // Stops injecting; stats survive until the next Arm().
  void Disarm();
  bool enabled() const { return armed_.load(std::memory_order_relaxed); }

  // Scoped suspension: reads made while at least one Suspend is alive are
  // clean, and — unlike Disarm + re-Arm, which resets them — the plan,
  // per-target fire budgets and read sequence numbers are untouched.
  // Suspended reads are invisible to the spike distribution's per-read
  // draws, so a verifier can re-read data mid-campaign without perturbing
  // which later reads fault. Nestable; not a fairness point for
  // concurrent readers (they simply observe clean reads while any
  // suspension is alive).
  class Suspend {
   public:
    explicit Suspend(FaultInjector& injector) : injector_(injector) {
      injector_.suspended_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Suspend() {
      injector_.suspended_.fetch_sub(1, std::memory_order_relaxed);
    }
    Suspend(const Suspend&) = delete;
    Suspend& operator=(const Suspend&) = delete;

   private:
    FaultInjector& injector_;
  };

  // Decides this read's fate. `data_size` bounds the mutation (empty
  // partitions cannot be corrupted, only read-errored or delayed).
  // Deterministic per (plan seed, replica, partition); counts fires
  // against the target's budget.
  FaultDecision OnPartitionRead(std::string_view replica,
                                std::size_t partition,
                                std::size_t data_size);

  Stats stats() const;

  // --- Deterministic mutation helpers (also used by corruption-fuzz
  // tests directly, without arming the injector). -----------------------

  // Flips bit `bit % (data.size() * 8)`; no-op on empty data.
  static void FlipBit(Bytes& data, std::uint64_t bit);
  // Cuts `data` to `data.size() % ...`-derived shorter length; always
  // removes at least one byte from non-empty data.
  static void Truncate(Bytes& data, std::uint64_t salt);
  // Zeroes the tail starting at a salt-derived offset (torn write).
  static void ZeroTail(Bytes& data, std::uint64_t salt);
  // Applies `kind` (a corruption kind) to `data` at a salt-derived
  // position. kReadError/kLatency are not mutations and are rejected.
  static void ApplyMutation(Bytes& data, FaultKind kind, std::uint64_t salt);
  // Loads `path`, applies the mutation, writes it back. For fuzzing
  // persisted stores (BlotStore::Load robustness tests).
  static void CorruptFile(const std::filesystem::path& path, FaultKind kind,
                          std::uint64_t salt);

 private:
  struct TargetKey {
    std::uint64_t domain_hash = 0;
    std::uint64_t partition = 0;
    friend bool operator==(const TargetKey&, const TargetKey&) = default;
  };
  struct TargetKeyHash {
    std::size_t operator()(const TargetKey& k) const;
  };

  std::atomic<bool> armed_{false};
  std::atomic<int> suspended_{0};
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::unordered_map<TargetKey, std::size_t, TargetKeyHash> fires_;
  // Per-target read sequence numbers: the spike distribution draws per
  // read, and determinism requires the draw to depend on the read's
  // position in the target's read history, not wall time.
  std::unordered_map<TargetKey, std::uint64_t, TargetKeyHash> reads_;
  Stats stats_;
};

// Campaign mode: runs `body(round, round_seed)` for `rounds` rounds, the
// global injector armed each round with `plan` reseeded by a SplitMix64
// derivation of (plan.seed, round). Disarms when done (also on
// exception). Every failing round is reproducible by arming the plan
// with the round_seed passed to `body`.
void RunFaultCampaign(
    FaultPlan plan, std::size_t rounds,
    const std::function<void(std::size_t round, std::uint64_t round_seed)>&
        body);

}  // namespace blot

#endif  // BLOT_CORE_FAULT_INJECTION_H_
