// Candidate replica enumeration (Section V-A).
//
// The paper's candidate set is the cross product of partitioning schemes
// (k-d tree spatial counts 4^2..4^6 x temporal counts 2^4..2^8) and the 7
// encoding schemes: 25 x 7 = 150 candidates. Every candidate is described
// by a ReplicaSketch built from a sample, with storage estimated from the
// measured per-encoding compression ratio — "we only need a small portion
// of the data to build the cost model and select diverse replicas for the
// whole dataset."
#ifndef BLOT_CORE_CANDIDATES_H_
#define BLOT_CORE_CANDIDATES_H_

#include <map>
#include <string>
#include <vector>

#include "core/selection.h"
#include "simenv/replica_sketch.h"
#include "util/rng.h"

namespace blot {

struct CandidateSpaceConfig {
  // Spatial partition counts (the paper: 16, 64, 256, 1024, 4096).
  std::vector<std::size_t> spatial_counts = {16, 64, 256, 1024, 4096};
  // Temporal partition counts (the paper: 16, 32, 64, 128, 256).
  std::vector<std::size_t> temporal_counts = {16, 32, 64, 128, 256};
  SpatialMethod method = SpatialMethod::kKdTree;
  // Encoding schemes to cross with; defaults to the paper's 7.
  std::vector<EncodingScheme> encodings = AllEncodingSchemes();
};

// All candidate replica configurations of the config's cross product.
std::vector<ReplicaConfig> EnumerateReplicaConfigs(
    const CandidateSpaceConfig& config);

// Measures each encoding's compression ratio on (a sample of) the
// dataset, keyed by encoding name (Table I's procedure).
std::map<std::string, double> MeasureCompressionRatios(
    const Dataset& sample, const std::vector<EncodingScheme>& encodings,
    std::size_t max_sample_records = 100000, std::uint64_t seed = 1);

// Builds one sketch per candidate configuration from `sample`, scaled to
// `total_records`, with storage from `ratios`.
std::vector<ReplicaSketch> BuildCandidateSketches(
    const Dataset& sample, const STRange& universe,
    const std::vector<ReplicaConfig>& configs, std::uint64_t total_records,
    const std::map<std::string, double>& ratios);

// Builds a full selection instance (cost matrix + storage + budget) for
// the cross product of `partitionings` x `encodings`, column-ordered
// partitioning-major (config index = p * encodings.size() + e).
//
// Exploits that Eq. 7 factors into geometry x encoding: the expected
// involved-partition count and expected records scanned depend only on
// (query, partitioning), so they are computed once per partitioning and
// reused for every encoding — essential when sweeping the paper's full
// 25-partitioning x 7-encoding candidate space with fine partitionings
// (up to 4096 x 256 = 1M partitions each).
struct CandidateMatrixResult {
  SelectionInput input;
  std::vector<ReplicaConfig> configs;  // column order of the cost matrix
};
CandidateMatrixResult BuildSelectionInputGrouped(
    const Dataset& sample, const STRange& universe,
    const std::vector<PartitioningSpec>& partitionings,
    const std::vector<EncodingScheme>& encodings,
    const std::map<std::string, double>& ratios,
    std::uint64_t total_records, const Workload& workload,
    const CostModel& model, double budget_bytes);

}  // namespace blot

#endif  // BLOT_CORE_CANDIDATES_H_
