#include "core/latency_map.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace blot {

void LatencyMap::AddReplica() {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_.emplace_back();
}

std::size_t LatencyMap::NumReplicas() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

void LatencyMap::Observe(std::size_t replica, std::size_t partitions,
                         double attempt_ms) {
  if (attempt_ms < 0.0) return;
  const double per_partition =
      attempt_ms / static_cast<double>(std::max<std::size_t>(partitions, 1));
  std::lock_guard<std::mutex> lock(mutex_);
  if (replica >= cells_.size()) return;
  Cell& cell = cells_[replica];
  if (cell.observations == 0) {
    cell.ewma_ms_per_partition = per_partition;
  } else {
    cell.ewma_ms_per_partition = kAlpha * per_partition +
                                 (1.0 - kAlpha) * cell.ewma_ms_per_partition;
  }
  ++cell.observations;
}

double LatencyMap::ExpectedMs(std::size_t replica,
                              std::size_t partitions) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (replica >= cells_.size()) return 0.0;
  const Cell& cell = cells_[replica];
  if (cell.observations < kMinObservations) return 0.0;
  return cell.ewma_ms_per_partition *
         static_cast<double>(std::max<std::size_t>(partitions, 1));
}

double LatencyMap::BrownoutPenalty(std::size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (replica >= cells_.size()) return 1.0;
  const Cell& cell = cells_[replica];
  if (cell.observations < kMinObservations) return 1.0;
  // Baseline: the fastest replica that has also warmed up. Comparing
  // against cold replicas would let the very first replica to serve
  // traffic brown itself out against an unmeasured peer.
  double fastest = std::numeric_limits<double>::infinity();
  for (const Cell& other : cells_) {
    if (other.observations < kMinObservations) continue;
    fastest = std::min(fastest, other.ewma_ms_per_partition);
  }
  if (fastest <= 0.0 || !std::isfinite(fastest)) return 1.0;
  const double ratio = cell.ewma_ms_per_partition / fastest;
  if (ratio <= kBrownoutRatio) return 1.0;
  return std::min(ratio, kMaxPenalty);
}

LatencyMap::Snapshot LatencyMap::Get(std::size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  if (replica < cells_.size()) {
    snap.ewma_ms_per_partition = cells_[replica].ewma_ms_per_partition;
    snap.observations = cells_[replica].observations;
  }
  return snap;
}

}  // namespace blot
