// Access-aware per-partition encoding.
//
// The paper notes its analysis "can be easily generalized for BLOT
// systems that allow a separate encoding scheme for each partition"; the
// kBestCodecPerPartition policy minimizes *size* per partition. This
// module goes further and minimizes expected *scan cost* under a storage
// budget: partitions a workload touches often get a fast codec, cold
// partitions get the smallest one. The access frequency of a partition
// falls straight out of the cost model — it is the workload-weighted
// involvement probability of Eq. 12.
//
// The plan is a multiple-choice knapsack (one codec per partition,
// total bytes <= budget) solved greedily: start from the smallest codec
// everywhere, then repeatedly apply the upgrade with the best
// cost-reduction per extra byte. Dominating upgrades (faster AND not
// larger) are applied unconditionally.
#ifndef BLOT_CORE_ACCESS_AWARE_H_
#define BLOT_CORE_ACCESS_AWARE_H_

#include <vector>

#include "core/cost_model.h"
#include "core/workload.h"

namespace blot {

// Expected scans of each partition per unit workload weight:
// access[p] = sum_i w_i * P(q_i involves p)  (Eq. 12 per query).
std::vector<double> PartitionAccessFrequencies(const PartitionIndex& index,
                                               const STRange& universe,
                                               const Workload& workload);

struct AccessAwarePlan {
  std::vector<CodecKind> codecs;  // chosen codec per partition
  double expected_cost_ms = 0.0;  // workload-weighted expected scan cost
  std::uint64_t total_bytes = 0;
};

// Inputs for planning: per-codec encoded sizes per partition, per-codec
// scan parameters, and the per-partition access frequencies and record
// counts.
struct AccessAwareInputs {
  std::vector<CodecKind> codec_choices;
  // sizes[c][p]: encoded bytes of partition p under codec_choices[c].
  std::vector<std::vector<std::uint64_t>> sizes;
  // params[c]: scan cost parameters of codec_choices[c] (for the
  // replica's layout) in the target environment.
  std::vector<ScanCostParams> params;
  std::vector<double> access;        // per partition
  std::vector<std::uint64_t> counts; // records per partition
};

// Chooses one codec per partition minimizing expected cost subject to
// total_bytes <= budget. Throws InvalidArgument if even the all-smallest
// assignment exceeds the budget.
AccessAwarePlan PlanAccessAwareEncoding(const AccessAwareInputs& inputs,
                                        std::uint64_t budget_bytes);

// End-to-end: partitions `dataset`, trials every codec per partition,
// plans against `workload` in `model`'s environment, and materializes the
// replica with the chosen per-partition codecs. The returned replica
// reports the planning policy in its config name.
struct AccessAwareBuildResult {
  Replica replica;
  AccessAwarePlan plan;
};
AccessAwareBuildResult BuildAccessAwareReplica(
    const Dataset& dataset, const PartitioningSpec& partitioning,
    Layout layout, const STRange& universe, const Workload& workload,
    const CostModel& model, std::uint64_t budget_bytes,
    ThreadPool* pool = nullptr);

}  // namespace blot

#endif  // BLOT_CORE_ACCESS_AWARE_H_
