// Process-wide decoded-partition cache for the query hot path.
//
// Every range query pays the same dominant cost per involved partition:
// checksum + decompress + deserialize (Cost(q, p) = |D(p)|/ScanRate +
// ExtraTime, Eq. 6). Skewed workloads — the hotspot pattern of
// examples/hotspot_replication.cpp, or any zipfian query mix — hit the
// same partitions over and over, so caching the *decoded* record vectors
// converts repeat scans into in-memory filters.
//
// Design:
//   - Keyed by (replica cache id, partition index). Replica ids are
//     process-unique and never reused, so a stale entry can never be
//     served to a different replica.
//   - Entries are shared_ptr<const vector<Record>>: an in-flight scan
//     that obtained an entry keeps it alive (pinned) even if the cache
//     evicts it concurrently — eviction only drops the cache's
//     reference.
//   - Sharded: keys hash to one of `num_shards` independent
//     mutex-protected LRU maps, so concurrent scans from a ThreadPool
//     rarely contend on the same lock.
//   - Byte-budgeted: the configured budget is split evenly across
//     shards; inserting past a shard's share evicts that shard's
//     least-recently-used entries. An entry larger than a whole shard's
//     share is not cached at all.
//   - Disabled by default (budget 0): the hot path performs exactly the
//     uncached scan, and lookup/insert are never called.
//
// Observability: hits/misses/insertions/evictions/invalidations mirror
// into the global metrics registry as cache.* counters, and cache.bytes /
// cache.entries gauges track occupancy (docs/observability.md). When the
// event log is enabled, a structured `cache.pressure` warning fires each
// time cumulative evicted bytes churn through a full cache capacity —
// the signal that the working set no longer fits.
//
// This header lives in src/core next to the routing/store layer that
// configures it, but the code is compiled into blot_storage because the
// scan hot path (Replica::Execute, blot::ExecuteBatch) consumes it.
#ifndef BLOT_CORE_PARTITION_CACHE_H_
#define BLOT_CORE_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "blot/record.h"

namespace blot {

class PartitionCache {
 public:
  using RecordsPtr = std::shared_ptr<const std::vector<Record>>;

  // Point-in-time view of the cache's counters.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t bytes = 0;    // decoded bytes currently resident
    std::uint64_t entries = 0;  // partitions currently resident

    double HitRatio() const {
      const std::uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  // A budget of 0 constructs a disabled cache.
  explicit PartitionCache(std::uint64_t max_bytes,
                          std::size_t num_shards = kDefaultShards);

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  // The process-wide cache consulted by Replica::Execute and
  // blot::ExecuteBatch. Disabled (budget 0) at startup; blotctl's
  // --cache-mb and the examples configure it.
  static PartitionCache& Global();

  // Allocates a fresh, never-reused replica identity. Called by
  // Replica::Build / Replica::FromParts.
  static std::uint64_t NextReplicaId();

  // Changes the byte budget, evicting (or clearing, for 0) as needed.
  void Configure(std::uint64_t max_bytes);

  bool enabled() const {
    return max_bytes_.load(std::memory_order_relaxed) > 0;
  }
  std::uint64_t max_bytes() const {
    return max_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t num_shards() const { return shards_.size(); }

  // Returns the pinned entry and refreshes its recency, or nullptr on
  // miss (or when disabled).
  RecordsPtr Lookup(std::uint64_t replica_id, std::size_t partition);

  // Caches `records` and returns the pinned entry. When the key is
  // already resident (two threads decoded the same partition
  // concurrently), the existing entry wins and is returned instead.
  // When disabled — or the entry alone overflows a shard's share of the
  // budget — the records are still returned (wrapped), just not
  // retained.
  RecordsPtr Insert(std::uint64_t replica_id, std::size_t partition,
                    std::vector<Record> records);

  // Drops one partition's entry (no-op when absent). Called when a
  // partition's bytes are handed out for mutation (Replica::
  // MutablePartition) so a later decode cannot serve stale records.
  void Invalidate(std::uint64_t replica_id, std::size_t partition);

  // Drops every entry of one replica with partition index below
  // `num_partitions` (recovery: the replica's storage is rebuilt).
  void InvalidateReplica(std::uint64_t replica_id,
                         std::size_t num_partitions);

  // Drops everything; counters other than bytes/entries are preserved.
  void Clear();

  // Zeroes all counters (occupancy gauges are recomputed, not reset).
  void ResetStats();

  Stats stats() const;

  // Budget accounting for one decoded partition: vector payload plus a
  // fixed per-entry overhead estimate for the map/list nodes.
  static std::uint64_t EntryBytes(const std::vector<Record>& records) {
    return records.size() * sizeof(Record) + kPerEntryOverheadBytes;
  }

  static constexpr std::size_t kDefaultShards = 16;
  static constexpr std::uint64_t kPerEntryOverheadBytes = 128;

 private:
  struct Key {
    std::uint64_t replica_id = 0;
    std::uint64_t partition = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix64-style mix of the two words.
      std::uint64_t h = k.replica_id * 0x9E3779B97F4A7C15ull ^ k.partition;
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 27;
      h *= 0x94D049BB133111EBull;
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    RecordsPtr records;
    std::uint64_t bytes = 0;
    std::list<Key>::iterator lru_it;  // position in Shard::lru
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> lru;  // front = most recently used
    std::uint64_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }
  std::uint64_t ShardBudget() const {
    return max_bytes_.load(std::memory_order_relaxed) / shards_.size();
  }
  // Evicts `shard` (which must be locked) down to `budget` bytes.
  void EvictLocked(Shard& shard, std::uint64_t budget);
  void RemoveLocked(Shard& shard,
                    std::unordered_map<Key, Entry, KeyHash>::iterator it);
  void PublishOccupancy() const;

  std::atomic<std::uint64_t> max_bytes_;
  std::vector<Shard> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> insertions_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};
  mutable std::atomic<std::uint64_t> entries_{0};
  // Eviction-pressure tracking: cumulative decoded bytes evicted, and
  // the number of full-capacity turnovers already reported as a
  // cache.pressure event (one event per turnover, not per eviction).
  mutable std::atomic<std::uint64_t> evicted_bytes_{0};
  mutable std::atomic<std::uint64_t> pressure_epoch_{0};
};

}  // namespace blot

#endif  // BLOT_CORE_PARTITION_CACHE_H_
