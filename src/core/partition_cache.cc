#include "core/partition_cache.h"

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

// Cached handles into the global registry; looked up once, then
// incremented with a single relaxed atomic add per event.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Counter& invalidations;
  obs::Gauge& bytes;
  obs::Gauge& entries;

  static CacheMetrics& Get() {
    static CacheMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::global();
      return CacheMetrics{registry.GetCounter("cache.hits_total"),
                          registry.GetCounter("cache.misses_total"),
                          registry.GetCounter("cache.insertions_total"),
                          registry.GetCounter("cache.evictions_total"),
                          registry.GetCounter("cache.invalidations_total"),
                          registry.GetGauge("cache.bytes"),
                          registry.GetGauge("cache.entries")};
    }();
    return metrics;
  }
};

bool MetricsOn() { return obs::MetricsRegistry::global().enabled(); }

}  // namespace

PartitionCache::PartitionCache(std::uint64_t max_bytes,
                               std::size_t num_shards)
    : max_bytes_(max_bytes),
      shards_(num_shards == 0 ? std::size_t{1} : num_shards) {}

PartitionCache& PartitionCache::Global() {
  static PartitionCache* cache = new PartitionCache(0);
  return *cache;
}

std::uint64_t PartitionCache::NextReplicaId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void PartitionCache::Configure(std::uint64_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  const std::uint64_t shard_budget = max_bytes / shards_.size();
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    EvictLocked(shard, shard_budget);
  }
  PublishOccupancy();
}

PartitionCache::RecordsPtr PartitionCache::Lookup(std::uint64_t replica_id,
                                                  std::size_t partition) {
  if (!enabled()) return nullptr;
  const Key key{replica_id, partition};
  Shard& shard = ShardFor(key);
  RecordsPtr found;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      found = it->second.records;
    }
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsOn()) CacheMetrics::Get().hits.Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsOn()) CacheMetrics::Get().misses.Increment();
  }
  return found;
}

PartitionCache::RecordsPtr PartitionCache::Insert(
    std::uint64_t replica_id, std::size_t partition,
    std::vector<Record> records) {
  const std::uint64_t bytes = EntryBytes(records);
  auto pinned = std::make_shared<const std::vector<Record>>(
      std::move(records));
  const std::uint64_t shard_budget = ShardBudget();
  if (!enabled() || bytes > shard_budget) return pinned;

  const Key key{replica_id, partition};
  Shard& shard = ShardFor(key);
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Lost a decode race; the resident entry is authoritative.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return it->second.records;
    }
    EvictLocked(shard, shard_budget - bytes);
    shard.lru.push_front(key);
    shard.entries.emplace(key, Entry{pinned, bytes, shard.lru.begin()});
    shard.bytes += bytes;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsOn()) {
    CacheMetrics::Get().insertions.Increment();
    PublishOccupancy();
  }
  return pinned;
}

void PartitionCache::Invalidate(std::uint64_t replica_id,
                                std::size_t partition) {
  const Key key{replica_id, partition};
  Shard& shard = ShardFor(key);
  bool removed = false;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      RemoveLocked(shard, it);
      removed = true;
    }
  }
  if (removed) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsOn()) {
      CacheMetrics::Get().invalidations.Increment();
      PublishOccupancy();
    }
  }
}

void PartitionCache::InvalidateReplica(std::uint64_t replica_id,
                                       std::size_t num_partitions) {
  for (std::size_t p = 0; p < num_partitions; ++p)
    Invalidate(replica_id, p);
}

void PartitionCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      const auto victim = it++;
      RemoveLocked(shard, victim);
    }
  }
  PublishOccupancy();
}

void PartitionCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

PartitionCache::Stats PartitionCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void PartitionCache::EvictLocked(Shard& shard, std::uint64_t budget) {
  std::uint64_t evicted_bytes = 0;
  while (shard.bytes > budget && !shard.lru.empty()) {
    const auto it = shard.entries.find(shard.lru.back());
    require(it != shard.entries.end(),
            "PartitionCache: LRU list out of sync with entry map");
    evicted_bytes += it->second.bytes;
    RemoveLocked(shard, it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsOn()) CacheMetrics::Get().evictions.Increment();
  }
  if (evicted_bytes == 0) return;
  const std::uint64_t cumulative =
      evicted_bytes_.fetch_add(evicted_bytes, std::memory_order_relaxed) +
      evicted_bytes;
  auto& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  const std::uint64_t capacity = max_bytes_.load(std::memory_order_relaxed);
  if (capacity == 0) return;
  // One pressure event per full-capacity turnover of evicted bytes; the
  // CAS keeps concurrent shards from double-reporting the same epoch.
  const std::uint64_t epoch = cumulative / capacity;
  std::uint64_t prev = pressure_epoch_.load(std::memory_order_relaxed);
  while (epoch > prev) {
    if (pressure_epoch_.compare_exchange_weak(prev, epoch,
                                              std::memory_order_relaxed)) {
      log.Warn("cache.pressure",
               "evictions churned a full cache capacity of decoded bytes",
               {obs::Field("turnovers", epoch),
                obs::Field("capacity_bytes", capacity),
                obs::Field("evicted_bytes_total", cumulative),
                obs::Field("resident_bytes",
                           bytes_.load(std::memory_order_relaxed))});
      break;
    }
  }
}

void PartitionCache::RemoveLocked(
    Shard& shard, std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  shard.bytes -= it->second.bytes;
  bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_it);
  shard.entries.erase(it);
}

void PartitionCache::PublishOccupancy() const {
  if (!MetricsOn()) return;
  CacheMetrics::Get().bytes.Set(
      static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  CacheMetrics::Get().entries.Set(
      static_cast<double>(entries_.load(std::memory_order_relaxed)));
}

}  // namespace blot
