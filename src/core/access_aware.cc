#include "core/access_aware.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.h"

namespace blot {

std::vector<double> PartitionAccessFrequencies(const PartitionIndex& index,
                                               const STRange& universe,
                                               const Workload& workload) {
  std::vector<double> access(index.NumPartitions(), 0.0);
  for (const WeightedQuery& wq : workload.queries()) {
    for (std::size_t p = 0; p < index.NumPartitions(); ++p)
      access[p] += wq.weight * IntersectionProbability(
                                   index.Range(p), wq.query.size, universe);
  }
  return access;
}

namespace {

// Expected scan cost of one partition under one codec.
double PartitionCost(const AccessAwareInputs& inputs, std::size_t codec,
                     std::size_t partition) {
  const ScanCostParams& p = inputs.params[codec];
  return inputs.access[partition] *
         (static_cast<double>(inputs.counts[partition]) / 1000.0 *
              p.scan_ms_per_krecord +
          p.extra_ms);
}

}  // namespace

AccessAwarePlan PlanAccessAwareEncoding(const AccessAwareInputs& inputs,
                                        std::uint64_t budget_bytes) {
  const std::size_t num_codecs = inputs.codec_choices.size();
  require(num_codecs >= 1, "PlanAccessAwareEncoding: no codecs");
  require(inputs.sizes.size() == num_codecs &&
              inputs.params.size() == num_codecs,
          "PlanAccessAwareEncoding: per-codec input mismatch");
  const std::size_t num_partitions = inputs.access.size();
  require(inputs.counts.size() == num_partitions,
          "PlanAccessAwareEncoding: counts/access mismatch");
  for (const auto& sizes : inputs.sizes)
    require(sizes.size() == num_partitions,
            "PlanAccessAwareEncoding: sizes row mismatch");

  AccessAwarePlan plan;
  std::vector<std::size_t> chosen(num_partitions);

  // Start from the cheapest-in-cost codec among those with minimal size
  // (dominating choices are free), tracking the byte floor.
  for (std::size_t p = 0; p < num_partitions; ++p) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_codecs; ++c) {
      const bool smaller = inputs.sizes[c][p] < inputs.sizes[best][p];
      const bool same_size = inputs.sizes[c][p] == inputs.sizes[best][p];
      if (smaller || (same_size && PartitionCost(inputs, c, p) <
                                       PartitionCost(inputs, best, p)))
        best = c;
    }
    chosen[p] = best;
    plan.total_bytes += inputs.sizes[best][p];
  }
  require(plan.total_bytes <= budget_bytes,
          "PlanAccessAwareEncoding: budget below the smallest encoding");

  // Candidate upgrades: (gain per byte, partition, target codec). Lazy
  // re-evaluation: entries are validated against the current assignment
  // when popped.
  struct Upgrade {
    double efficiency;
    std::size_t partition;
    std::size_t codec;
    std::size_t from;  // assignment when the entry was pushed
  };
  const auto cmp = [](const Upgrade& a, const Upgrade& b) {
    return a.efficiency < b.efficiency;
  };
  std::priority_queue<Upgrade, std::vector<Upgrade>, decltype(cmp)> heap(cmp);

  const auto push_upgrades = [&](std::size_t p) {
    const std::size_t from = chosen[p];
    const double base_cost = PartitionCost(inputs, from, p);
    for (std::size_t c = 0; c < num_codecs; ++c) {
      if (c == from) continue;
      const double gain = base_cost - PartitionCost(inputs, c, p);
      if (gain <= 0) continue;
      const std::int64_t extra =
          static_cast<std::int64_t>(inputs.sizes[c][p]) -
          static_cast<std::int64_t>(inputs.sizes[from][p]);
      // Dominating upgrades were handled in initialization; remaining
      // useful upgrades cost bytes.
      if (extra <= 0) {
        heap.push({std::numeric_limits<double>::infinity(), p, c, from});
      } else {
        heap.push({gain / static_cast<double>(extra), p, c, from});
      }
    }
  };
  for (std::size_t p = 0; p < num_partitions; ++p) push_upgrades(p);

  while (!heap.empty()) {
    const Upgrade upgrade = heap.top();
    heap.pop();
    if (chosen[upgrade.partition] != upgrade.from) continue;  // stale
    const std::int64_t extra =
        static_cast<std::int64_t>(
            inputs.sizes[upgrade.codec][upgrade.partition]) -
        static_cast<std::int64_t>(
            inputs.sizes[upgrade.from][upgrade.partition]);
    if (extra > 0 &&
        plan.total_bytes + static_cast<std::uint64_t>(extra) > budget_bytes)
      continue;  // does not fit; cheaper upgrades may still fit
    chosen[upgrade.partition] = upgrade.codec;
    plan.total_bytes = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(plan.total_bytes) + extra);
    push_upgrades(upgrade.partition);
  }

  plan.codecs.resize(num_partitions);
  plan.expected_cost_ms = 0;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    plan.codecs[p] = inputs.codec_choices[chosen[p]];
    plan.expected_cost_ms += PartitionCost(inputs, chosen[p], p);
  }
  return plan;
}

AccessAwareBuildResult BuildAccessAwareReplica(
    const Dataset& dataset, const PartitioningSpec& partitioning,
    Layout layout, const STRange& universe, const Workload& workload,
    const CostModel& model, std::uint64_t budget_bytes, ThreadPool* pool) {
  PartitionedData partitioned =
      PartitionDataset(dataset, partitioning, universe);
  const std::size_t num_partitions = partitioned.NumPartitions();

  AccessAwareInputs inputs;
  // Candidate codecs: those the cost model has parameters for under this
  // layout (COL-PLAIN is excluded by the paper's candidate set).
  std::vector<Bytes> serialized(num_partitions);
  inputs.counts.resize(num_partitions);
  for (const CodecKind kind : AllCodecKinds()) {
    const EncodingScheme scheme{layout, kind};
    try {
      inputs.params.push_back(model.Params(scheme));
    } catch (const InvalidArgument&) {
      continue;  // unsupported combination in this environment
    }
    inputs.codec_choices.push_back(kind);
  }
  require(!inputs.codec_choices.empty(),
          "BuildAccessAwareReplica: no supported codecs for layout");
  inputs.sizes.assign(inputs.codec_choices.size(),
                      std::vector<std::uint64_t>(num_partitions, 0));

  // Serialize each partition once and trial every codec.
  std::vector<std::vector<Bytes>> encoded(
      inputs.codec_choices.size(), std::vector<Bytes>(num_partitions));
  const auto encode_one = [&](std::size_t p) {
    std::vector<Record> records;
    records.reserve(partitioned.members[p].size());
    for (std::uint32_t index : partitioned.members[p])
      records.push_back(dataset.records()[index]);
    inputs.counts[p] = records.size();
    serialized[p] = SerializeRecords(records, layout);
    for (std::size_t c = 0; c < inputs.codec_choices.size(); ++c) {
      encoded[c][p] =
          GetCodec(inputs.codec_choices[c]).Compress(serialized[p]);
      inputs.sizes[c][p] = encoded[c][p].size();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_partitions, encode_one);
  } else {
    for (std::size_t p = 0; p < num_partitions; ++p) encode_one(p);
  }

  const PartitionIndex index(partitioned.ranges);
  inputs.access = PartitionAccessFrequencies(index, universe, workload);

  AccessAwarePlan plan = PlanAccessAwareEncoding(inputs, budget_bytes);

  std::vector<StoredPartition> partitions(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    std::size_t c = 0;
    while (inputs.codec_choices[c] != plan.codecs[p]) ++c;
    partitions[p].num_records = inputs.counts[p];
    partitions[p].data = std::move(encoded[c][p]);
    partitions[p].codec = plan.codecs[p];
    partitions[p].checksum = Fnv1a64(partitions[p].data);
  }
  const ReplicaConfig config{partitioning,
                             {layout, CodecKind::kNone},
                             EncodingPolicy::kBestCodecPerPartition};
  Replica replica = Replica::FromParts(config, universe,
                                       std::move(partitioned.ranges),
                                       std::move(partitions));
  return {std::move(replica), std::move(plan)};
}

}  // namespace blot
