#include "core/health.h"

#include <algorithm>

#include "util/error.h"

namespace blot {

void HealthMap::AddReplica(std::size_t num_partitions) {
  std::lock_guard lock(mutex_);
  states_.emplace_back(num_partitions, PartitionHealth::kOk);
  unhealthy_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
}

void HealthMap::ResetReplica(std::size_t replica,
                             std::size_t num_partitions) {
  std::lock_guard lock(mutex_);
  require(replica < states_.size(), "HealthMap::ResetReplica: bad replica");
  states_[replica].assign(num_partitions, PartitionHealth::kOk);
  unhealthy_[replica]->store(0, std::memory_order_relaxed);
}

std::size_t HealthMap::NumReplicas() const {
  std::lock_guard lock(mutex_);
  return states_.size();
}

PartitionHealth HealthMap::Get(std::size_t replica,
                               std::size_t partition) const {
  std::lock_guard lock(mutex_);
  require(replica < states_.size() && partition < states_[replica].size(),
          "HealthMap::Get: bad target");
  return states_[replica][partition];
}

bool HealthMap::Quarantine(std::size_t replica, std::size_t partition) {
  std::lock_guard lock(mutex_);
  require(replica < states_.size() && partition < states_[replica].size(),
          "HealthMap::Quarantine: bad target");
  PartitionHealth& state = states_[replica][partition];
  if (state == PartitionHealth::kQuarantined) return false;
  if (state == PartitionHealth::kOk)
    unhealthy_[replica]->fetch_add(1, std::memory_order_relaxed);
  state = PartitionHealth::kQuarantined;
  return true;
}

PartitionHealth HealthMap::MarkSuspect(std::size_t replica,
                                       std::size_t partition) {
  std::lock_guard lock(mutex_);
  require(replica < states_.size() && partition < states_[replica].size(),
          "HealthMap::MarkSuspect: bad target");
  PartitionHealth& state = states_[replica][partition];
  switch (state) {
    case PartitionHealth::kOk:
      state = PartitionHealth::kSuspect;
      unhealthy_[replica]->fetch_add(1, std::memory_order_relaxed);
      break;
    case PartitionHealth::kSuspect:
      state = PartitionHealth::kQuarantined;  // second strike
      break;
    case PartitionHealth::kQuarantined:
      break;
  }
  return state;
}

void HealthMap::MarkOk(std::size_t replica, std::size_t partition) {
  std::lock_guard lock(mutex_);
  require(replica < states_.size() && partition < states_[replica].size(),
          "HealthMap::MarkOk: bad target");
  PartitionHealth& state = states_[replica][partition];
  if (state != PartitionHealth::kOk)
    unhealthy_[replica]->fetch_sub(1, std::memory_order_relaxed);
  state = PartitionHealth::kOk;
}

bool HealthMap::AllOk(std::size_t replica) const {
  return unhealthy_[replica]->load(std::memory_order_relaxed) == 0;
}

bool HealthMap::AnyQuarantined(
    std::size_t replica, const std::vector<std::size_t>& partitions) const {
  std::lock_guard lock(mutex_);
  require(replica < states_.size(), "HealthMap::AnyQuarantined: bad replica");
  const std::vector<PartitionHealth>& states = states_[replica];
  return std::any_of(partitions.begin(), partitions.end(),
                     [&states](std::size_t p) {
                       return states[p] == PartitionHealth::kQuarantined;
                     });
}

bool HealthMap::AnySuspect(
    std::size_t replica, const std::vector<std::size_t>& partitions) const {
  std::lock_guard lock(mutex_);
  require(replica < states_.size(), "HealthMap::AnySuspect: bad replica");
  const std::vector<PartitionHealth>& states = states_[replica];
  return std::any_of(partitions.begin(), partitions.end(),
                     [&states](std::size_t p) {
                       return states[p] == PartitionHealth::kSuspect;
                     });
}

std::vector<HealthMap::Target> HealthMap::Quarantined() const {
  std::lock_guard lock(mutex_);
  std::vector<Target> out;
  for (std::size_t r = 0; r < states_.size(); ++r)
    for (std::size_t p = 0; p < states_[r].size(); ++p)
      if (states_[r][p] == PartitionHealth::kQuarantined)
        out.push_back({r, p});
  return out;
}

std::size_t HealthMap::QuarantinedCount() const {
  std::lock_guard lock(mutex_);
  std::size_t count = 0;
  for (const auto& replica : states_)
    count += static_cast<std::size_t>(
        std::count(replica.begin(), replica.end(),
                   PartitionHealth::kQuarantined));
  return count;
}

HealthMap::Counts HealthMap::CountsFor(std::size_t replica) const {
  std::lock_guard lock(mutex_);
  require(replica < states_.size(), "HealthMap::CountsFor: bad replica");
  Counts counts;
  for (const PartitionHealth state : states_[replica]) {
    switch (state) {
      case PartitionHealth::kOk:
        ++counts.ok;
        break;
      case PartitionHealth::kSuspect:
        ++counts.suspect;
        break;
      case PartitionHealth::kQuarantined:
        ++counts.quarantined;
        break;
    }
  }
  return counts;
}

}  // namespace blot
