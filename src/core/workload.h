// Queries and workloads (Definition 6) and workload-size reduction
// (Section III-C1).
//
// A grouped query Q_G = <W, H, T> stands for all range queries of that
// size; per the paper's observation that "queries with the same size of
// range often occur many times", the workload is a weighted set of
// grouped queries. When the number of distinct range sizes is large,
// ReduceWorkload clusters them with k-means and represents each cluster
// by its centroid, giving "full control of the value of m by manipulating
// the number of clusters."
#ifndef BLOT_CORE_WORKLOAD_H_
#define BLOT_CORE_WORKLOAD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/range.h"
#include "util/rng.h"

namespace blot {

// A grouped query: only the range size is specified; the position is
// assumed uniformly distributed (Section IV-B).
struct GroupedQuery {
  RangeSize size;

  std::string ToString() const;

  friend bool operator==(const GroupedQuery&, const GroupedQuery&) = default;
};

struct WeightedQuery {
  GroupedQuery query;
  double weight = 1.0;
};

// W = {(q1, w1), ..., (qn, wn)}.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<WeightedQuery> queries);

  void Add(const GroupedQuery& query, double weight = 1.0);

  const std::vector<WeightedQuery>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  double TotalWeight() const;

  // Scales weights so they sum to 1 (the paper's normalized form).
  // Requires positive total weight.
  Workload Normalized() const;

 private:
  std::vector<WeightedQuery> queries_;
};

// Reduces a workload to at most `k` grouped queries by k-means clustering
// of the (W, H, T) range sizes in log space (sizes span orders of
// magnitude); each cluster contributes its weighted-centroid size with
// the cluster's total weight.
Workload ReduceWorkload(const Workload& workload, std::size_t k, Rng& rng);

// Draws one concrete query instance of `query`: a cuboid of the grouped
// size whose centroid is uniform in the centroid range CR(Q_G) (the
// position model of Section IV-B). Dimensions where the query size
// exceeds the universe are centered on the universe.
STRange SampleQueryInstance(const GroupedQuery& query, const STRange& universe,
                            Rng& rng);

}  // namespace blot

#endif  // BLOT_CORE_WORKLOAD_H_
