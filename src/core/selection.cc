#include "core/selection.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double SubsetStorage(const SelectionInput& input,
                     std::span<const std::size_t> chosen) {
  double storage = 0;
  for (std::size_t j : chosen) storage += input.storage_bytes[j];
  return storage;
}

// Greedy picks range from fractions of a millisecond to minutes of gain
// per megabyte depending on workload scale, hence decade buckets.
obs::Histogram& GainPerMbHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().GetHistogram(
          "select.greedy.gain_ms_per_mb", {},
          {1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
           1e9});
  return histogram;
}

}  // namespace

void SelectionInput::Check() const {
  require(weights.size() == cost.size(),
          "SelectionInput: weights/cost row mismatch");
  for (const auto& row : cost)
    require(row.size() == storage_bytes.size(),
            "SelectionInput: cost row width != replica count");
  for (double w : weights)
    require(w >= 0, "SelectionInput: negative weight");
  for (double s : storage_bytes)
    require(s > 0, "SelectionInput: non-positive storage size");
  require(budget_bytes >= 0, "SelectionInput: negative budget");
  for (const auto& row : cost)
    for (double c : row)
      require(c >= 0, "SelectionInput: negative cost");
}

SelectionInput BuildSelectionInput(const std::vector<ReplicaSketch>& candidates,
                                   const Workload& workload,
                                   const CostModel& model,
                                   double budget_bytes) {
  SelectionInput input;
  input.budget_bytes = budget_bytes;
  for (const ReplicaSketch& sketch : candidates)
    input.storage_bytes.push_back(static_cast<double>(sketch.storage_bytes));
  for (const WeightedQuery& wq : workload.queries()) {
    input.weights.push_back(wq.weight);
    std::vector<double> row;
    row.reserve(candidates.size());
    for (const ReplicaSketch& sketch : candidates)
      row.push_back(model.QueryCostMs(sketch, wq.query));
    input.cost.push_back(std::move(row));
  }
  input.Check();
  return input;
}

double SubsetWorkloadCost(const SelectionInput& input,
                          std::span<const std::size_t> chosen) {
  if (chosen.empty())
    return input.NumQueries() == 0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  double total = 0;
  for (std::size_t i = 0; i < input.NumQueries(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j : chosen) best = std::min(best, input.cost[i][j]);
    total += input.weights[i] * best;
  }
  return total;
}

SelectionResult SelectGreedy(const SelectionInput& input) {
  input.Check();
  const auto start = Clock::now();
  SelectionResult result;
  const std::size_t m = input.NumReplicas();
  const std::size_t n = input.NumQueries();

  // best_cost[i]: current min_{r in R} Cost(q_i, r). The paper leaves
  // Cost(W, ∅) undefined; we initialize each query at its worst candidate
  // cost so the first pick is ranked by covered cost per byte and all
  // gains stay finite.
  std::vector<double> best_cost(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      best_cost[i] = std::max(best_cost[i], input.cost[i][j]);

  std::vector<bool> taken(m, false);
  double storage_used = 0;
  bool first_pick = true;

  for (;;) {
    std::size_t best_replica = m;
    double best_score = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (taken[j]) continue;
      if (storage_used + input.storage_bytes[j] > input.budget_bytes)
        continue;
      double gain = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double improvement = best_cost[i] - input.cost[i][j];
        if (improvement > 0) gain += input.weights[i] * improvement;
      }
      const double score = gain / input.storage_bytes[j];
      // `score > 0` implements Algorithm 1's stop condition "the overall
      // workload cost cannot be further decreased"; the first pick is
      // exempt so a workload-neutral but budget-feasible replica still
      // yields a usable replica set.
      if (score > best_score || (first_pick && best_replica == m)) {
        best_score = score;
        best_replica = j;
      }
    }
    if (best_replica == m) break;
    first_pick = false;
    taken[best_replica] = true;
    storage_used += input.storage_bytes[best_replica];
    for (std::size_t i = 0; i < n; ++i)
      best_cost[i] = std::min(best_cost[i], input.cost[i][best_replica]);
    result.chosen.push_back(best_replica);
    // The gain-per-byte trajectory: one observation per round, in
    // descending order by construction — the histogram shows how fast
    // marginal utility decays.
    if (obs::MetricsRegistry::global().enabled())
      GainPerMbHistogram().Observe(best_score * double(1 << 20));
  }

  std::sort(result.chosen.begin(), result.chosen.end());
  result.workload_cost = SubsetWorkloadCost(input, result.chosen);
  result.storage_used = storage_used;
  result.solve_seconds = Seconds(start);
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    registry.GetCounter("select.greedy.runs_total").Increment();
    registry.GetCounter("select.greedy.rounds_total")
        .Increment(result.chosen.size());
    registry.GetHistogram("select.greedy.solve_ms")
        .Observe(result.solve_seconds * 1000.0);
  }
  return result;
}

SelectionResult SelectExhaustive(const SelectionInput& input) {
  input.Check();
  const auto start = Clock::now();
  const std::size_t m = input.NumReplicas();
  require(m <= 24, "SelectExhaustive: too many candidates");

  SelectionResult result;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_subset;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<std::size_t> subset;
    double storage = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (mask & (std::uint64_t{1} << j)) {
        subset.push_back(j);
        storage += input.storage_bytes[j];
      }
    }
    if (storage > input.budget_bytes) continue;
    const double cost = SubsetWorkloadCost(input, subset);
    if (cost < best_cost) {
      best_cost = cost;
      best_subset = std::move(subset);
    }
  }
  result.chosen = std::move(best_subset);
  result.workload_cost = best_cost;
  result.storage_used = SubsetStorage(input, result.chosen);
  result.optimal = true;
  result.solve_seconds = Seconds(start);
  return result;
}

SelectionResult SelectBestSingle(const SelectionInput& input) {
  input.Check();
  const auto start = Clock::now();
  SelectionResult result;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < input.NumReplicas(); ++j) {
    if (input.storage_bytes[j] > input.budget_bytes) continue;
    const std::size_t subset[] = {j};
    const double cost = SubsetWorkloadCost(input, subset);
    if (cost < best_cost) {
      best_cost = cost;
      result.chosen = {j};
    }
  }
  result.workload_cost = best_cost;
  result.storage_used = SubsetStorage(input, result.chosen);
  result.solve_seconds = Seconds(start);
  return result;
}

SelectionResult SelectIdeal(const SelectionInput& input) {
  input.Check();
  SelectionResult result;
  for (std::size_t j = 0; j < input.NumReplicas(); ++j)
    result.chosen.push_back(j);
  result.workload_cost = SubsetWorkloadCost(input, result.chosen);
  result.storage_used = SubsetStorage(input, result.chosen);
  return result;
}

std::vector<std::size_t> PruneDominated(const SelectionInput& input,
                                        bool check_pairs) {
  input.Check();
  const std::size_t m = input.NumReplicas();
  const std::size_t n = input.NumQueries();
  std::vector<bool> removed(m, false);

  // r is dominated by replica set R (r not in R) when Storage(R) <=
  // Storage(r) and min over R of cost <= cost on r for every query.
  const auto dominates = [&](std::span<const std::size_t> set,
                             std::size_t r) {
    double set_storage = 0;
    for (std::size_t j : set) set_storage += input.storage_bytes[j];
    if (set_storage > input.storage_bytes[r]) return false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j : set) best = std::min(best, input.cost[i][j]);
      if (best > input.cost[i][r]) return false;
    }
    return true;
  };

  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t a = 0; a < m && !removed[r]; ++a) {
      if (a == r || removed[a]) continue;
      const std::size_t single[] = {a};
      if (dominates(single, r)) {
        // Tie-break identical replicas by index so exactly one survives.
        if (input.storage_bytes[a] < input.storage_bytes[r] || a < r)
          removed[r] = true;
      }
    }
    if (removed[r] || !check_pairs) continue;
    for (std::size_t a = 0; a < m && !removed[r]; ++a) {
      if (a == r || removed[a]) continue;
      for (std::size_t b = a + 1; b < m && !removed[r]; ++b) {
        if (b == r || removed[b]) continue;
        const std::size_t pair[] = {a, b};
        if (dominates(pair, r)) removed[r] = true;
      }
    }
  }

  std::vector<std::size_t> kept;
  for (std::size_t j = 0; j < m; ++j)
    if (!removed[j]) kept.push_back(j);
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    registry.GetCounter("select.prune_runs_total").Increment();
    registry.GetCounter("select.candidates_pruned_total")
        .Increment(m - kept.size());
    registry.GetCounter("select.candidates_kept_total")
        .Increment(kept.size());
  }
  return kept;
}

SelectionInput RestrictCandidates(const SelectionInput& input,
                                  std::span<const std::size_t> keep) {
  SelectionInput restricted;
  restricted.budget_bytes = input.budget_bytes;
  restricted.weights = input.weights;
  for (std::size_t j : keep) {
    require(j < input.NumReplicas(), "RestrictCandidates: bad index");
    restricted.storage_bytes.push_back(input.storage_bytes[j]);
  }
  for (const auto& row : input.cost) {
    std::vector<double> new_row;
    new_row.reserve(keep.size());
    for (std::size_t j : keep) new_row.push_back(row[j]);
    restricted.cost.push_back(std::move(new_row));
  }
  return restricted;
}

}  // namespace blot
