#include "core/mip_selection.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

// Variable layout: x_j at j (j < m); y_ij at m + i*m + j.
std::size_t YVar(std::size_t m, std::size_t i, std::size_t j) {
  return m + i * m + j;
}

}  // namespace

MipProblem BuildSelectionMip(const SelectionInput& input,
                             bool use_disaggregated_constraints) {
  input.Check();
  const std::size_t n = input.NumQueries();
  const std::size_t m = input.NumReplicas();
  require(n > 0 && m > 0, "BuildSelectionMip: empty instance");

  MipProblem mip{LpProblem(m + n * m), {}};
  for (std::size_t j = 0; j < m; ++j) mip.binary_variables.push_back(j);

  // Objective (5): sum of weighted assignment costs.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      mip.lp.SetObjective(YVar(m, i, j), input.weights[i] * input.cost[i][j]);

  // (1) storage budget.
  LpConstraint storage{{}, Relation::kLessEqual, input.budget_bytes};
  for (std::size_t j = 0; j < m; ++j)
    storage.terms.emplace_back(j, input.storage_bytes[j]);
  mip.lp.AddConstraint(storage);

  // (2) each query processed on exactly one replica.
  for (std::size_t i = 0; i < n; ++i) {
    LpConstraint assign{{}, Relation::kEqual, 1.0};
    for (std::size_t j = 0; j < m; ++j)
      assign.terms.emplace_back(YVar(m, i, j), 1.0);
    mip.lp.AddConstraint(assign);
  }

  if (use_disaggregated_constraints) {
    // (3) y_ij <= x_j, n*m constraints.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j)
        mip.lp.AddConstraint({{{YVar(m, i, j), 1.0}, {j, -1.0}},
                              Relation::kLessEqual,
                              0.0});
  } else {
    // (4) Σ_i y_ij <= n x_j, m constraints.
    for (std::size_t j = 0; j < m; ++j) {
      LpConstraint link{{}, Relation::kLessEqual, 0.0};
      for (std::size_t i = 0; i < n; ++i)
        link.terms.emplace_back(YVar(m, i, j), 1.0);
      link.terms.emplace_back(j, -static_cast<double>(n));
      mip.lp.AddConstraint(link);
    }
  }

  // Binary bounds x_j <= 1 (y_ij <= 1 is implied by (2)).
  for (std::size_t j = 0; j < m; ++j)
    mip.lp.AddConstraint({{{j, 1.0}}, Relation::kLessEqual, 1.0});

  return mip;
}

SelectionResult SelectMip(const SelectionInput& input,
                          const MipSelectionOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t m = input.NumReplicas();
  const MipProblem mip =
      BuildSelectionMip(input, options.use_disaggregated_constraints);

  SelectionResult greedy;
  std::optional<double> incumbent;
  if (options.warm_start_with_greedy) {
    greedy = SelectGreedy(input);
    if (std::isfinite(greedy.workload_cost))
      incumbent = greedy.workload_cost;
  }

  const MipSolution solution = SolveMip(mip, options.mip, incumbent);

  SelectionResult result;
  result.nodes_explored = solution.nodes_explored;
  result.optimal = solution.status == MipStatus::kOptimal;
  if (!solution.values.empty()) {
    for (std::size_t j = 0; j < m; ++j)
      if (solution.values[j] > 0.5) result.chosen.push_back(j);
    result.workload_cost = SubsetWorkloadCost(input, result.chosen);
  } else if (solution.status == MipStatus::kOptimal && incumbent) {
    // The branch and bound proved the greedy incumbent optimal without
    // re-deriving an assignment; reuse the greedy set.
    result.chosen = greedy.chosen;
    result.workload_cost = greedy.workload_cost;
  } else if (incumbent) {
    // Node limit without an incumbent of its own: fall back to greedy,
    // honestly marked non-optimal.
    result.chosen = greedy.chosen;
    result.workload_cost = greedy.workload_cost;
    result.optimal = false;
  } else {
    require(solution.status != MipStatus::kInfeasible,
            "SelectMip: instance infeasible (budget below every replica?)");
    result.optimal = false;
    result.workload_cost = std::numeric_limits<double>::infinity();
  }
  for (std::size_t j : result.chosen)
    result.storage_used += input.storage_bytes[j];
  result.solve_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    registry.GetCounter("select.mip.runs_total").Increment();
    registry.GetCounter("select.mip.nodes_explored_total")
        .Increment(result.nodes_explored);
    if (result.optimal)
      registry.GetCounter("select.mip.optimal_total").Increment();
    registry.GetHistogram("select.mip.solve_ms")
        .Observe(result.solve_seconds * 1000.0);
  }
  return result;
}

}  // namespace blot
