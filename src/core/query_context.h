// Per-query execution state, threaded through the whole execution path.
//
// Before the serving layer existed, BlotStore::Execute interleaved
// routing, scanning, failover and telemetry with ad-hoc locals; under N
// concurrent callers every piece of per-query state must be owned by
// exactly one query. QueryContext is that owner: the profile the scan
// kernels fill, the optional trace span, the attempt log the failover
// loop appends to, and a deterministic per-query RNG — everything that
// belongs to one query and nothing that is shared. The shared structures
// (HealthMap, PartitionCache, metrics registry, drift monitors) are
// internally synchronized; a context is not, because it never crosses
// queries.
//
// Contexts are cheap to construct on the query path: the profile is a
// flat struct and the RNG seeds from the query id, so no global RNG is
// contended. RouteQueryDetailed -> ExecuteWithFailover -> Replica::Execute
// all write into the same context, and BlotStore::Execute moves its
// pieces into the RoutedResult when the query finishes.
#ifndef BLOT_CORE_QUERY_CONTEXT_H_
#define BLOT_CORE_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace blot {

// One execution attempt of the failover loop: which replica was tried,
// what happened, and how long it took. RoutedResult carries the full
// log so a caller (or the serving layer's slow-query diagnostics) can
// reconstruct the query's path without re-reading the event log.
struct QueryAttempt {
  std::size_t replica_index = 0;
  std::string replica;      // config name of the attempted replica
  double ms = 0.0;          // wall time of this attempt
  bool success = false;
  std::string fault;        // error text when the attempt failed
};

// Everything owned by exactly one in-flight query.
class QueryContext {
 public:
  // Builds a context for a fresh query: assigns a process-unique query
  // id, derives the per-query RNG from it (deterministic across runs for
  // the same arrival order), and latches whether profiling is on so the
  // execution path checks one bool instead of re-probing the registry.
  static QueryContext ForQuery(obs::TraceSpan* trace) {
    static std::atomic<std::uint64_t> next_id{1};
    QueryContext ctx(next_id.fetch_add(1, std::memory_order_relaxed));
    ctx.trace = trace;
    ctx.profiling =
        obs::MetricsRegistry::global().enabled() || trace != nullptr;
    return ctx;
  }

  std::uint64_t query_id() const { return query_id_; }

  // Per-stage timings and counters, filled by routing, the scan kernels
  // and the failover loop (obs/profile.h).
  obs::QueryProfile profile;
  // Caller-owned trace span; null when tracing is off.
  obs::TraceSpan* trace = nullptr;
  // One entry per failover-loop attempt, in order.
  std::vector<QueryAttempt> attempts;
  // Deterministic per-query randomness (event sampling, jitter). Seeded
  // from the query id, so two runs issuing the same queries in the same
  // order draw the same values.
  Rng rng{0};
  // MetricsRegistry::global().enabled() || trace != nullptr, latched at
  // construction.
  bool profiling = false;
  // Cap on partitions scanned concurrently for this query
  // (ScanOptions::max_parallelism); 0 = no cap beyond the pool's width.
  // Snapshotted from the store's setting when the query starts.
  std::size_t max_scan_parallelism = 0;
  // Cooperative cancellation for this query: carries the deadline (when
  // one is set) and is polled at failover-attempt, partition, and block
  // boundaries. Invalid (inert) when the caller set no deadline and
  // hedging is off, so undeadlined queries pay nothing.
  CancelToken cancel;
  // The caller's deadline in milliseconds (0 = none); the enforcing
  // clock lives inside `cancel`, this is kept for error reporting.
  double deadline_ms = 0.0;
  // When true, deadline expiry or unrecoverable partition loss yields a
  // partial RoutedResult with a coverage report instead of an error.
  bool allow_partial = false;
  // Hedged-read threshold in milliseconds (0 = hedging off): if the
  // primary attempt runs past max(hedge_ms, 2x the replica's expected
  // time), a backup attempt races it on the next-cheapest replica.
  double hedge_ms = 0.0;

 private:
  explicit QueryContext(std::uint64_t id) : rng(id), query_id_(id) {}

  std::uint64_t query_id_ = 0;
};

}  // namespace blot

#endif  // BLOT_CORE_QUERY_CONTEXT_H_
