// BlotStore: a BLOT storage system with diverse replicas (Figure 2).
//
// Holds the dataset's materialized replicas, routes each range query to
// the replica with the least estimated cost ("query cost estimation helps
// the system to determine which one of the existing replicas is supposed
// to have the least processing time for the issued query"), executes it
// for real, and recovers lost replicas from any healthy one.
#ifndef BLOT_CORE_STORE_H_
#define BLOT_CORE_STORE_H_

#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cost_model.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace blot {

class BlotStore {
 public:
  // `universe` defaults to the dataset's bounding box.
  explicit BlotStore(Dataset dataset,
                     std::optional<STRange> universe = std::nullopt);

  const Dataset& dataset() const { return dataset_; }
  const STRange& universe() const { return universe_; }

  // Builds and adds a replica; returns its index. Rejects duplicates.
  std::size_t AddReplica(const ReplicaConfig& config,
                         ThreadPool* pool = nullptr);

  // Builds and adds a partial replica materializing only the records
  // inside `coverage` (Section VII's partial replication). Partial
  // replicas only serve queries fully contained in their coverage; at
  // least one full replica must exist before partials can be routed to.
  std::size_t AddPartialReplica(const ReplicaConfig& config,
                                const STRange& coverage,
                                ThreadPool* pool = nullptr);

  // True if replica `i` covers the whole universe.
  bool IsFullReplica(std::size_t i) const;

  std::size_t NumReplicas() const { return replicas_.size(); }
  const Replica& replica(std::size_t i) const;
  std::uint64_t TotalStorageBytes() const;

  struct RoutedResult {
    QueryResult result;
    std::size_t replica_index = 0;
    double estimated_cost_ms = 0.0;   // the cost model's prediction (Eq. 7)
    double measured_cost_ms = 0.0;    // wall clock of the real execution
    std::size_t predicted_partitions = 0;  // Np from the routing sketch
  };

  // Routes `query` to the cheapest replica under `model` and executes it.
  // Requires at least one replica. When `trace` is non-null, `route` and
  // `execute` child spans are attached with the chosen replica, estimated
  // vs measured cost, and partitions scanned; when the global metrics
  // registry is enabled the same quantities feed the query.* metrics
  // (docs/observability.md).
  RoutedResult Execute(const STRange& query, const CostModel& model,
                       ThreadPool* pool = nullptr,
                       obs::TraceSpan* trace = nullptr) const;

  struct RoutedBatchResult {
    // per_query[i]: records matching queries[i].
    std::vector<std::vector<Record>> per_query;
    // replica_of[i]: replica each query was routed to.
    std::vector<std::size_t> replica_of;
    QueryStats stats;                   // shared-scan accounting
    std::size_t naive_partition_scans = 0;
    double measured_ms = 0.0;           // wall clock of the whole batch
  };

  // Routes every query to its cheapest replica, then executes each
  // replica's group as one shared scan (each involved partition decoded
  // once per replica, blot/batch.h).
  RoutedBatchResult ExecuteBatch(std::span<const STRange> queries,
                                 const CostModel& model,
                                 ThreadPool* pool = nullptr) const;

  // Everything routing decides about a query, computed in one pass so
  // execution doesn't re-derive the winner's cost or involved-partition
  // count.
  struct RoutingDecision {
    std::size_t replica_index = 0;
    double estimated_cost_ms = 0.0;        // the winner's Eq. 7 estimate
    std::size_t predicted_partitions = 0;  // Np from the routing sketch
  };

  // The replica `model` estimates cheapest for `query`, with the
  // estimate and predicted involvement that drove the choice.
  RoutingDecision RouteQueryDetailed(const STRange& query,
                                     const CostModel& model) const;

  // Index of the replica `model` estimates cheapest for `query`.
  std::size_t RouteQuery(const STRange& query, const CostModel& model) const;

  // Simulates losing replica `i` and rebuilding it from replica `source`
  // (diverse-replica recovery, Section II-E). Returns the number of
  // records restored.
  std::uint64_t RecoverReplicaFrom(std::size_t i, std::size_t source,
                                   ThreadPool* pool = nullptr);

  // Persists the whole store: the logical dataset plus every replica
  // (each in its own SegmentStore subdirectory) under `directory`.
  void Save(const std::filesystem::path& directory) const;

  // Loads a store persisted by Save. Throws CorruptData on malformed
  // contents and InvalidArgument when `directory` holds no store.
  static BlotStore Load(const std::filesystem::path& directory);

 private:
  Dataset dataset_;
  STRange universe_;
  std::vector<Replica> replicas_;
  std::vector<ReplicaSketch> sketches_;
};

}  // namespace blot

#endif  // BLOT_CORE_STORE_H_
