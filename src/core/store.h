// BlotStore: a BLOT storage system with diverse replicas (Figure 2).
//
// Holds the dataset's materialized replicas, routes each range query to
// the replica with the least estimated cost ("query cost estimation helps
// the system to determine which one of the existing replicas is supposed
// to have the least processing time for the issued query"), executes it
// for real, and recovers lost replicas from any healthy one.
//
// Fault tolerance (Section II-E, docs/robustness.md): the store tracks
// per-replica, per-partition health. A read fault during execution
// quarantines exactly the failing partitions and the query fails over to
// the next-cheapest covering replica; quarantined partitions are repaired
// from a healthy replica (partition-granular when possible, full rebuild
// otherwise) per the configured FailoverPolicy. A query only fails — with
// a structured QueryFailedError naming the lost partitions — when every
// replica's copy of a needed partition is gone.
#ifndef BLOT_CORE_STORE_H_
#define BLOT_CORE_STORE_H_

#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/drift.h"
#include "core/health.h"
#include "core/latency_map.h"
#include "core/query_context.h"
#include "obs/drift_monitor.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace blot {

// Every covering replica's copy of some partition the query needs is
// quarantined: the query cannot be answered until repair succeeds. Not a
// CorruptData — the store detected and contained the corruption; this is
// an availability failure, and it names exactly what is unavailable.
class QueryFailedError : public Error {
 public:
  struct Lost {
    std::size_t replica = 0;
    std::size_t partition = 0;
  };

  QueryFailedError(const std::string& what, std::vector<Lost> lost)
      : Error(what), lost_(std::move(lost)) {}

  // The quarantined (replica, partition) pairs that blocked the query.
  const std::vector<Lost>& lost() const { return lost_; }

 private:
  std::vector<Lost> lost_;
};

// The query's deadline expired before a complete answer was assembled
// and the caller did not opt into partial results. Reports how far the
// query got: attempts spent and the served/missed partition split of the
// furthest attempt, so callers can distinguish "barely missed" (one
// partition short) from "never started" (admission queue ate the whole
// budget).
class DeadlineExceededError : public Error {
 public:
  DeadlineExceededError(const std::string& what, double deadline_ms,
                        std::size_t attempts, std::size_t partitions_served,
                        std::size_t partitions_missed)
      : Error(what),
        deadline_ms_(deadline_ms),
        attempts_(attempts),
        partitions_served_(partitions_served),
        partitions_missed_(partitions_missed) {}

  double deadline_ms() const { return deadline_ms_; }
  std::size_t attempts() const { return attempts_; }
  // Partition coverage of the furthest attempt when the deadline hit.
  std::size_t partitions_served() const { return partitions_served_; }
  std::size_t partitions_missed() const { return partitions_missed_; }

 private:
  double deadline_ms_ = 0.0;
  std::size_t attempts_ = 0;
  std::size_t partitions_served_ = 0;
  std::size_t partitions_missed_ = 0;
};

// What the store does about quarantined partitions after a query.
enum class RepairMode {
  kNone,        // leave them quarantined; caller runs RepairQuarantined
  kSync,        // repair inline before Execute returns
  kBackground,  // enqueue repair on the query's ThreadPool
};

struct FailoverPolicy {
  // Maximum replicas tried per query (including the first).
  std::size_t max_attempts = 4;
  RepairMode repair = RepairMode::kSync;
  // Partitions repaired per sweep; 0 means every quarantined partition.
  std::size_t repair_budget = 0;
  // Routing-cost multiplier for replicas with suspect involved
  // partitions: still eligible, but only chosen when clearly cheapest.
  double suspect_cost_penalty = 4.0;
};

class BlotStore {
 public:
  // `universe` defaults to the dataset's bounding box.
  explicit BlotStore(Dataset dataset,
                     std::optional<STRange> universe = std::nullopt);

  // Waits for outstanding background repairs.
  ~BlotStore();

  // Moves wait for the source's (and, on assignment, the target's)
  // outstanding background repairs first: repair tasks capture the
  // store's address, so transferring the state out from under a running
  // task would leave it dereferencing a gutted object. (The previously
  // defaulted moves did exactly that — see the regression test.) Moving
  // while queries are concurrently executing remains undefined, as for
  // any standard container.
  BlotStore(BlotStore&& other) noexcept;
  BlotStore& operator=(BlotStore&& other) noexcept;

  const Dataset& dataset() const { return dataset_; }
  const STRange& universe() const { return universe_; }

  // Builds and adds a replica; returns its index. Rejects duplicates.
  std::size_t AddReplica(const ReplicaConfig& config,
                         ThreadPool* pool = nullptr);

  // Builds and adds a partial replica materializing only the records
  // inside `coverage` (Section VII's partial replication). Partial
  // replicas only serve queries fully contained in their coverage; at
  // least one full replica must exist before partials can be routed to.
  std::size_t AddPartialReplica(const ReplicaConfig& config,
                                const STRange& coverage,
                                ThreadPool* pool = nullptr);

  // True if replica `i` covers the whole universe.
  bool IsFullReplica(std::size_t i) const;

  std::size_t NumReplicas() const { return replicas_.size(); }
  const Replica& replica(std::size_t i) const;
  // Mutable replica access for failure injection and recovery tooling
  // (see Replica::MutablePartition); production query paths never use it.
  Replica& mutable_replica(std::size_t i);
  std::uint64_t TotalStorageBytes() const;

  // Policy reads/writes synchronize on the store's state mutex, so the
  // policy may be retuned while queries are in flight (each query sees
  // a consistent snapshot taken when it starts).
  FailoverPolicy failover_policy() const;
  void SetFailoverPolicy(const FailoverPolicy& policy);

  // Cap on partitions one query scans concurrently (Replica::ScanOptions
  // ::max_parallelism); 0 = no cap beyond the pool's width. Lets a
  // deployment bound per-query fan-out so one broad query cannot occupy
  // the whole scan pool. Synchronizes like the failover policy.
  std::size_t max_scan_parallelism() const;
  void SetMaxScanParallelism(std::size_t cap);

  // The per-replica, per-partition health map driving routing and repair.
  const HealthMap& health() const { return *health_; }

  // Per-replica latency EWMAs feeding hedged-read thresholds and brownout
  // deprioritization in routing (core/latency_map.h).
  const LatencyMap& latency() const { return *latency_; }

  // Continuous telemetry fed by every routed query: per-replica cost-
  // model error windows (cost_drift.alert events on threshold breach)
  // and a decayed live-workload estimate checked against the reference
  // workload (drift.workload_distance gauge, workload_drift.* events).
  const obs::CostDriftMonitor& cost_drift_monitor() const {
    return telemetry_->cost_drift;
  }
  // The live workload's distance from the reference (0 until enough
  // queries have been observed to form both).
  double WorkloadDriftDistance() const;
  // Installs the current live workload as the drift reference (e.g.
  // after replica reselection).
  void RebaseWorkloadReference();

  struct RoutedResult {
    QueryResult result;
    std::size_t replica_index = 0;
    double estimated_cost_ms = 0.0;   // the cost model's prediction (Eq. 7)
    double measured_cost_ms = 0.0;    // wall clock of the real execution
    std::size_t predicted_partitions = 0;  // Np from the routing sketch
    // Execution attempts spent (1 = first-choice replica succeeded).
    std::size_t attempts = 1;
    // True when the first-choice replica failed and the result came from
    // a failover replica (correct, but routing was not optimal).
    bool degraded = false;
    std::string served_by;  // config name of the serving replica
    // Process-unique id of this execution (QueryContext::query_id).
    std::uint64_t query_id = 0;
    // One entry per failover-loop attempt, in order (the last entry is
    // the serving replica when the query succeeded).
    std::vector<QueryAttempt> attempt_log;
    // Per-stage breakdown of this query (docs/observability.md).
    // Populated when the global metrics registry is enabled or a trace
    // span was passed; all-zero otherwise.
    obs::QueryProfile profile;
    // True when this is a *partial* answer (ExecOptions::allow_partial):
    // `result.records` holds everything found in the served partitions and
    // `result.served_partitions` / `result.missed_partitions` carry the
    // exact coverage split. Never set without allow_partial.
    bool partial = false;
    // True when a backup attempt was raced against a slow primary
    // (ExecOptions::hedge_ms); hedge_backup_won says which attempt's
    // records were returned.
    bool hedged = false;
    bool hedge_backup_won = false;
  };

  // Per-call execution knobs beyond the query itself. The 4-argument
  // Execute overload is the everything-default spelling.
  struct ExecOptions {
    ThreadPool* pool = nullptr;
    obs::TraceSpan* trace = nullptr;
    // Wall-clock budget for the whole call, measured from entry
    // (0 = none). Expiry cancels in-flight scans cooperatively at
    // partition and block boundaries, then either throws
    // DeadlineExceededError or — with allow_partial — returns what was
    // found plus the coverage report.
    double deadline_ms = 0.0;
    // Opt into graceful degradation: deadline expiry or unrecoverable
    // partition loss yields a partial RoutedResult instead of throwing.
    bool allow_partial = false;
    // Hedged reads (0 = off): when the primary attempt exceeds
    // max(hedge_ms, 2x the primary replica's LatencyMap expectation), a
    // backup attempt races it on the next-cheapest covering replica; the
    // first complete answer wins and the loser is cancelled.
    double hedge_ms = 0.0;
  };

  // Routes `query` to the cheapest healthy replica under `model` and
  // executes it. Requires at least one replica. Read faults quarantine
  // the failing partitions and fail over to the next-cheapest covering
  // replica (up to FailoverPolicy::max_attempts); quarantined partitions
  // are then repaired per the policy. Throws QueryFailedError when no
  // healthy copy of a needed partition remains.
  //
  // When `trace` is non-null, a `route` child span plus one `execute`
  // child span per attempt are attached; when the global metrics registry
  // is enabled the same quantities feed the query.*, failover.* and
  // quarantine.* metrics (docs/observability.md, docs/robustness.md).
  RoutedResult Execute(const STRange& query, const CostModel& model,
                       ThreadPool* pool = nullptr,
                       obs::TraceSpan* trace = nullptr);

  // As above with the full knob set: deadline, partial-result opt-in and
  // hedged reads (see ExecOptions). Throws DeadlineExceededError when the
  // deadline expires without allow_partial.
  RoutedResult Execute(const STRange& query, const CostModel& model,
                       const ExecOptions& options);

  struct RoutedBatchResult {
    // per_query[i]: records matching queries[i].
    std::vector<std::vector<Record>> per_query;
    // replica_of[i]: replica each query was routed to.
    std::vector<std::size_t> replica_of;
    QueryStats stats;                   // shared-scan accounting
    std::size_t naive_partition_scans = 0;
    double measured_ms = 0.0;           // wall clock of the whole batch
    // Batch-level stage breakdown (route = routing all queries, execute
    // = the shared scans; fallback queries profile through Execute).
    // Populated when the global metrics registry is enabled.
    obs::QueryProfile profile;
  };

  // Routes every query to its cheapest healthy replica, then executes
  // each replica's group as one shared scan (each involved partition
  // decoded once per replica, blot/batch.h). A group whose shared scan
  // hits a read fault falls back to per-query failover-aware Execute for
  // its queries, so one bad storage unit degrades only that group.
  RoutedBatchResult ExecuteBatch(std::span<const STRange> queries,
                                 const CostModel& model,
                                 ThreadPool* pool = nullptr);

  // Everything routing decides about a query, computed in one pass so
  // execution doesn't re-derive the winner's cost or involved-partition
  // count.
  struct RoutingDecision {
    std::size_t replica_index = 0;
    double estimated_cost_ms = 0.0;        // the winner's Eq. 7 estimate
    std::size_t predicted_partitions = 0;  // Np from the routing sketch
  };

  // The replica `model` estimates cheapest for `query` among healthy
  // candidates (quarantined involvement excludes a replica; suspect
  // involvement penalizes its cost), with the estimate and predicted
  // involvement that drove the choice. Throws QueryFailedError when
  // covering replicas exist but all are quarantined for this query.
  RoutingDecision RouteQueryDetailed(const STRange& query,
                                     const CostModel& model) const;

  // Index of the replica `model` estimates cheapest for `query`.
  std::size_t RouteQuery(const STRange& query, const CostModel& model) const;

  // Simulates losing replica `i` and rebuilding it from replica `source`
  // (diverse-replica recovery, Section II-E). Returns the number of
  // records restored. The rebuilt replica always carries a fresh
  // process-unique cache identity, so decodes cached before recovery can
  // never satisfy queries after it; its health map resets to all-ok.
  std::uint64_t RecoverReplicaFrom(std::size_t i, std::size_t source,
                                   ThreadPool* pool = nullptr);

  // Partition-granular self-healing: re-encodes partition `partition` of
  // replica `target` from records fetched (and verified) from a healthy
  // replica — `source` when given, otherwise every other covering replica
  // is tried cheapest-storage-first. Falls back to a full
  // RecoverReplicaFrom rebuild when the replica's partition membership is
  // not canonically re-derivable. Returns the number of records restored;
  // the repaired partition returns to ok health. Throws when no healthy
  // source can supply the partition's records.
  std::uint64_t RecoverPartition(std::size_t target, std::size_t partition,
                                 std::optional<std::size_t> source = std::nullopt,
                                 ThreadPool* pool = nullptr);

  // Repairs up to `budget` quarantined partitions (0 = all), feeding the
  // repair.* metrics. Returns the number of partitions repaired (a full
  // rebuild counts all partitions of the rebuilt replica as repaired).
  // Partitions whose repair fails stay quarantined.
  std::size_t RepairQuarantined(ThreadPool* pool = nullptr,
                                std::size_t budget = 0);

  // Blocks until background repairs scheduled by Execute complete.
  void WaitForRepairs();

  // Persists the whole store: the logical dataset plus every replica
  // (each in its own SegmentStore subdirectory) under `directory`. The
  // manifest and dataset carry FNV-1a checksums.
  void Save(const std::filesystem::path& directory) const;

  // Loads a store persisted by Save. Throws CorruptData on malformed or
  // checksum-failing contents and InvalidArgument when `directory` holds
  // no store.
  static BlotStore Load(const std::filesystem::path& directory);

 private:
  // Background repairs and replica mutation synchronize on `state_mutex`:
  // queries hold it shared, repair holds it unique. Boxed so BlotStore
  // stays movable.
  struct SyncState {
    std::shared_mutex state_mutex;
    std::mutex futures_mutex;
    std::vector<std::future<void>> repair_futures;
  };

  struct Ranking {
    std::vector<RoutingDecision> ranked;  // best first
    std::size_t covering = 0;             // replicas able to serve at all
  };

  // Health-aware candidate ranking; no locking (callers hold state_mutex).
  Ranking RankCandidates(const STRange& query, const CostModel& model,
                         const FailoverPolicy& policy) const;
  // Builds the QueryFailedError for `query` from the current health map.
  QueryFailedError UnservableError(const STRange& query) const;

  // The failover loop; caller holds state_mutex shared. All per-query
  // state (profile, trace, attempt log) lives in `ctx`; shared state is
  // only touched through the internally synchronized HealthMap, cache
  // and metrics.
  RoutedResult ExecuteWithFailover(const STRange& query,
                                   const CostModel& model,
                                   const FailoverPolicy& policy,
                                   ThreadPool* pool, QueryContext& ctx);
  // Hedged-read coordinator (ctx.hedge_ms > 0 and >= 2 covering
  // replicas): runs the primary attempt on its own thread, races a
  // backup on the next-cheapest replica if the primary exceeds the hedge
  // threshold, returns the first complete answer and cancels the loser.
  // Unlike ExecuteWithFailover the caller holds NO lock; each attempt
  // takes its own shared lock so a queued writer cannot deadlock the
  // coordinator against its attempts.
  RoutedResult ExecuteHedged(const STRange& query, const CostModel& model,
                             const FailoverPolicy& policy, ThreadPool* pool,
                             QueryContext& ctx);
  // Graceful degradation after failover exhausted every healthy replica:
  // serves what remains by scanning the best covering replica around its
  // quarantined partitions, reporting them as missed. Caller holds
  // state_mutex shared. Throws UnservableError when even that fails.
  RoutedResult TryPartialFallback(const STRange& query,
                                  const CostModel& model,
                                  const FailoverPolicy& policy,
                                  ThreadPool* pool, QueryContext& ctx);
  // Per-policy repair scheduling after a query released the shared lock.
  void MaybeScheduleRepairs(ThreadPool* pool, const FailoverPolicy& policy);

  // Feeds one finished query's profile into the continuous-telemetry
  // consumers (per-stage histograms, cost-drift windows, workload
  // tracker).
  void ObserveQueryTelemetry(const STRange& query,
                             const obs::QueryProfile& profile);

  // Implementations that assume state_mutex is held unique.
  std::uint64_t RecoverReplicaFromLocked(std::size_t i, std::size_t source,
                                         ThreadPool* pool);
  std::uint64_t RecoverPartitionLocked(std::size_t target,
                                       std::size_t partition,
                                       std::optional<std::size_t> source,
                                       ThreadPool* pool);
  std::size_t RepairQuarantinedLocked(ThreadPool* pool, std::size_t budget);

  // Continuous-telemetry state, boxed so BlotStore stays movable.
  struct Telemetry {
    obs::CostDriftMonitor cost_drift;
    std::mutex workload_mutex;  // guards the three fields below
    WorkloadTracker workload;
    std::optional<DriftMonitor> workload_drift;  // set after warmup
    bool workload_alerting = false;
    // The live workload needs a few queries before a snapshot is
    // meaningful; the first snapshot becomes the drift reference.
    static constexpr std::size_t kWorkloadWarmup = 64;
    // Distance is recomputed every this many observations (snapshotting
    // the tracker is not free).
    static constexpr std::size_t kWorkloadCheckInterval = 32;
  };

  Dataset dataset_;
  STRange universe_;
  std::vector<Replica> replicas_;
  std::vector<ReplicaSketch> sketches_;
  FailoverPolicy policy_;  // guarded by sync_->state_mutex
  std::size_t max_scan_parallelism_ = 0;  // guarded by sync_->state_mutex
  std::unique_ptr<HealthMap> health_ = std::make_unique<HealthMap>();
  std::unique_ptr<LatencyMap> latency_ = std::make_unique<LatencyMap>();
  std::unique_ptr<SyncState> sync_ = std::make_unique<SyncState>();
  std::unique_ptr<Telemetry> telemetry_ = std::make_unique<Telemetry>();
};

}  // namespace blot

#endif  // BLOT_CORE_STORE_H_
