// Per-replica, per-partition health tracking for fault-tolerant routing.
//
// The store never trusts a storage unit that failed a read: a partition
// whose checksum mismatched (or whose read errored) is quarantined and
// withheld from routing until self-healing repair re-encodes it from a
// healthy replica (docs/robustness.md). The state machine per partition:
//
//   ok ──(unattributed execution failure)──> suspect
//   ok / suspect ──(attributed read fault)──> quarantined
//   suspect ──(second strike)──> quarantined
//   suspect ──(clean read)──> ok
//   quarantined ──(successful repair)──> ok
//
// Suspect partitions still serve queries (their replica's routing cost is
// penalized); quarantined partitions never do. All methods are
// thread-safe; the per-replica unhealthy count lets the routing hot path
// skip the partition-level check entirely for fully healthy replicas
// with one relaxed atomic load.
#ifndef BLOT_CORE_HEALTH_H_
#define BLOT_CORE_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace blot {

enum class PartitionHealth : std::uint8_t { kOk, kSuspect, kQuarantined };

class HealthMap {
 public:
  struct Target {
    std::size_t replica = 0;
    std::size_t partition = 0;
  };
  struct Counts {
    std::size_t ok = 0;
    std::size_t suspect = 0;
    std::size_t quarantined = 0;
  };

  HealthMap() = default;
  HealthMap(const HealthMap&) = delete;
  HealthMap& operator=(const HealthMap&) = delete;

  // Registers a new replica with `num_partitions` all-ok partitions.
  void AddReplica(std::size_t num_partitions);
  // Re-registers replica `replica` after a full rebuild: all partitions
  // return to ok (the rebuild may change the partition count).
  void ResetReplica(std::size_t replica, std::size_t num_partitions);

  std::size_t NumReplicas() const;
  PartitionHealth Get(std::size_t replica, std::size_t partition) const;

  // Attributed read fault: the partition goes straight to quarantined.
  // Returns true if the state changed (false if already quarantined).
  bool Quarantine(std::size_t replica, std::size_t partition);
  // Unattributed failure: ok -> suspect, suspect -> quarantined
  // (two-strike escalation). Returns the new state.
  PartitionHealth MarkSuspect(std::size_t replica, std::size_t partition);
  // Clean read or successful repair: back to ok.
  void MarkOk(std::size_t replica, std::size_t partition);

  // True when every partition of `replica` is ok — one relaxed atomic
  // load, no lock; the routing fast path.
  bool AllOk(std::size_t replica) const;

  bool AnyQuarantined(std::size_t replica,
                      const std::vector<std::size_t>& partitions) const;
  bool AnySuspect(std::size_t replica,
                  const std::vector<std::size_t>& partitions) const;

  // Snapshot of every quarantined (replica, partition) pair — the repair
  // queue's view.
  std::vector<Target> Quarantined() const;
  std::size_t QuarantinedCount() const;
  Counts CountsFor(std::size_t replica) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<PartitionHealth>> states_;
  // unhealthy_[r]: suspect + quarantined partitions of replica r.
  // shared_ptr-free stable storage: grown only under the mutex, read
  // lock-free by AllOk.
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> unhealthy_;
};

}  // namespace blot

#endif  // BLOT_CORE_HEALTH_H_
