// Partial replication — the paper's future-work extension (Section VII):
// "The use of partial replication, where only frequently accessed data
// ranges are replicated, is one of our future work."
//
// A partial replica materializes only a sub-range (the hot region) of the
// universe, under its own partitioning/encoding configuration. A query
// can be served by a partial replica only when its range lies entirely
// inside the replica's coverage; otherwise it falls back to a full
// replica. For grouped queries the cost model extends naturally: with the
// uniform-centroid position model, the probability that a query instance
// is contained in the coverage is a per-axis interval ratio (the same
// construction as Eq. 12), and the expected cost of a mixed replica set is
//
//   Cost(q, R) = min( best_full,
//                     min_p  pc(q,p) * Cost(q,p) + (1-pc(q,p)) * best_full )
//
// where best_full is the best full-replica cost and pc the containment
// probability. Selection over mixed candidate sets keeps the greedy
// cost-gain-per-byte structure of Algorithm 1; the MIP formulation does
// not carry over directly (the min() is no longer linear in the y's), so
// partial selection ships greedy-only — mirroring the paper's position
// that greedy is the scalable path.
#ifndef BLOT_CORE_PARTIAL_H_
#define BLOT_CORE_PARTIAL_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/selection.h"

namespace blot {

// Probability that a random instance of `query_size` (centroid uniform in
// the universe's centroid range) lies entirely within `coverage`.
// Dimensions where the query exceeds the coverage contribute zero; where
// the query spans the whole universe, containment requires coverage to
// span it too.
double ContainmentProbability(const STRange& coverage,
                              const RangeSize& query_size,
                              const STRange& universe);

// The smallest axis-aligned spatial box (full time extent) centered on
// the data's spatial median that contains at least `record_fraction` of
// `sample`'s records. This is the "frequently accessed range" heuristic:
// hotspot-clustered data concentrates most records in a small box.
STRange DensestSpatialBox(const Dataset& sample, const STRange& universe,
                          double record_fraction);

// One partial candidate: a configuration restricted to `coverage`.
struct PartialCandidate {
  ReplicaConfig config;
  STRange coverage;

  std::string Name() const;
};

// Sketch of a partial candidate built from `sample`: the sub-range is
// partitioned on the records inside it, counts scale with the covered
// fraction, and storage is proportional to covered records.
ReplicaSketch SketchPartialReplica(const Dataset& sample,
                                   const PartialCandidate& candidate,
                                   const STRange& universe,
                                   std::uint64_t total_records,
                                   double compression_ratio);

// A mixed selection instance: full candidates (as in SelectionInput) plus
// partial candidates with per-query containment probabilities.
struct MixedSelectionInput {
  SelectionInput full;                    // full-replica instance
  std::vector<double> partial_storage;    // per partial candidate
  // contained_cost[i][k]: Cost(q_i, partial_k) given containment.
  std::vector<std::vector<double>> contained_cost;
  // containment[i][k]: pc(q_i, partial_k).
  std::vector<std::vector<double>> containment;

  std::size_t NumPartials() const { return partial_storage.size(); }
  void Check() const;
};

// Builds the partial side of a mixed instance.
void AddPartialCandidates(MixedSelectionInput& input,
                          const std::vector<ReplicaSketch>& partial_sketches,
                          const Workload& workload, const CostModel& model,
                          const STRange& universe);

struct MixedSelectionResult {
  std::vector<std::size_t> full_chosen;
  std::vector<std::size_t> partial_chosen;
  double workload_cost = 0.0;
  double storage_used = 0.0;
};

// Expected workload cost of an explicit mixed set (infinite if no full
// replica is chosen and the workload is non-empty).
double MixedSubsetCost(const MixedSelectionInput& input,
                       std::span<const std::size_t> full_chosen,
                       std::span<const std::size_t> partial_chosen);

// Greedy selection over full + partial candidates (Algorithm 1 extended
// with the containment-weighted cost). Always keeps at least one full
// replica when the budget allows, since partial replicas alone cannot
// answer every query.
MixedSelectionResult SelectGreedyMixed(const MixedSelectionInput& input);

}  // namespace blot

#endif  // BLOT_CORE_PARTIAL_H_
