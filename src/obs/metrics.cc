#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace blot::obs {
namespace {

// Shortest round-trippable representation: integers print bare, other
// values with enough digits to survive JSON parse-back.
std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  return out + "}";
}

// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
// (notably '.' and '-') to '_'.
std::string PromName(std::string_view name) {
  std::string out(name);
  for (char& c : out)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      c = '_';
  return out;
}

std::string PromLabels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += PromName(k) + "=\"" + v + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  return out + "}";
}

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& counts,
                           std::uint64_t total, double p) {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * double(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (double(cumulative + in_bucket) >= target) {
      // Interpolate within [lower, upper); the overflow bucket reports
      // its lower edge (we know nothing about its spread).
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lower;
      const double upper = bounds[i];
      const double into =
          std::clamp((target - double(cumulative)) / double(in_bucket),
                     0.0, 1.0);
      return lower + (upper - lower) * into;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string FormatJsonNumber(double v) { return FormatDouble(v); }

std::string JsonEscapeString(std::string_view s) { return JsonEscape(s); }

std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  require(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    require(bounds_[i - 1] < bounds_[i],
            "Histogram: bounds must be strictly increasing");
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::Mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / double(n);
}

double Histogram::Percentile(double p) const {
  return HistogramPercentile(bounds_, counts(), count(), p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double> bounds = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25,  0.5,
      1,     2.5,    5,     10,   25,    50,   100,  250,   500,
      1000,  2500,   5000,  10000, 30000, 60000};
  return bounds;
}

double HistogramSnapshot::Percentile(double p) const {
  return HistogramPercentile(bounds, counts, count, p);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Labels labels) {
  const Key key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard lock(mutex_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Labels labels) {
  const Key key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         Labels labels,
                                         std::vector<double> bounds) {
  if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsMs();
  const Key key{std::string(name), Canonical(std::move(labels))};
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    require(slot->bounds() == bounds,
            "MetricsRegistry: histogram re-registered with different "
            "bounds: " + key.first);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard lock(mutex_);
  for (const auto& [key, counter] : counters_)
    snapshot.counters.push_back({key.first, key.second, counter->value()});
  for (const auto& [key, gauge] : gauges_)
    snapshot.gauges.push_back({key.first, key.second, gauge->value()});
  for (const auto& [key, histogram] : histograms_)
    snapshot.histograms.push_back({key.first, key.second,
                                   histogram->bounds(), histogram->counts(),
                                   histogram->count(), histogram->sum()});
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mutex_);
  for (auto& [key, counter] : counters_) counter->Reset();
  for (auto& [key, gauge] : gauges_) gauge->Reset();
  for (auto& [key, histogram] : histograms_) histogram->Reset();
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name, const Labels& labels) const {
  const Labels canonical = Canonical(labels);
  for (const CounterSnapshot& c : counters)
    if (c.name == name && c.labels == canonical) return &c;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name, const Labels& labels) const {
  const Labels canonical = Canonical(labels);
  for (const HistogramSnapshot& h : histograms)
    if (h.name == name && h.labels == canonical) return &h;
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": [";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const CounterSnapshot& c = counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\":\"" + JsonEscape(c.name) + "\",\"labels\":" +
           JsonLabels(c.labels) + ",\"value\":" + std::to_string(c.value) +
           "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const GaugeSnapshot& g = gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\":\"" + JsonEscape(g.name) + "\",\"labels\":" +
           JsonLabels(g.labels) + ",\"value\":" + FormatDouble(g.value) +
           "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\":\"" + JsonEscape(h.name) + "\",\"labels\":" +
           JsonLabels(h.labels) + ",\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + FormatDouble(h.sum) +
           ",\"mean\":" + FormatDouble(h.Mean()) +
           ",\"p50\":" + FormatDouble(h.Percentile(50)) +
           ",\"p90\":" + FormatDouble(h.Percentile(90)) +
           ",\"p95\":" + FormatDouble(h.Percentile(95)) +
           ",\"p99\":" + FormatDouble(h.Percentile(99)) + ",\"buckets\":[";
    // Only occupied finite buckets are listed (snapshots stay small);
    // observations above the last bound appear as "overflow".
    bool first = true;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (h.counts[b] == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"le\":" + FormatDouble(h.bounds[b]) + ",\"count\":" +
             std::to_string(h.counts[b]) + "}";
    }
    out += "],\"overflow\":" + std::to_string(h.counts.back()) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  // Snapshots arrive sorted by (name, labels), so label variants of the
  // same metric are adjacent and TYPE is emitted once per family.
  std::string out;
  std::string last_type_name;
  const auto type_line = [&](const std::string& name,
                             const char* kind) {
    if (name == last_type_name) return;
    last_type_name = name;
    out += "# TYPE " + name + " " + kind + "\n";
  };
  for (const CounterSnapshot& c : counters) {
    const std::string name = PromName(c.name);
    type_line(name, "counter");
    out += name + PromLabels(c.labels) + " " + std::to_string(c.value) +
           "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string name = PromName(g.name);
    type_line(name, "gauge");
    out += name + PromLabels(g.labels) + " " + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string name = PromName(h.name);
    type_line(name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.counts[b];
      out += name + "_bucket" +
             PromLabels(h.labels,
                        "le=\"" + FormatDouble(h.bounds[b]) + "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket" + PromLabels(h.labels, "le=\"+Inf\"") + " " +
           std::to_string(h.count) + "\n";
    out += name + "_sum" + PromLabels(h.labels) + " " +
           FormatDouble(h.sum) + "\n";
    out += name + "_count" + PromLabels(h.labels) + " " +
           std::to_string(h.count) + "\n";
    // Summary-style quantile lines so dashboards get latency quantiles
    // without a PromQL histogram_quantile() step. Estimates use the same
    // interpolation as the JSON exporter and blotmon.
    // The label is the conventional short spelling ("0.95", not the
    // 17-digit round-trip form FormatDouble would produce).
    for (const char* q : {"0.5", "0.95", "0.99"}) {
      out += name + PromLabels(h.labels,
                               std::string("quantile=\"") + q + "\"") +
             " " + FormatDouble(h.Percentile(std::atof(q) * 100.0)) + "\n";
    }
  }
  return out;
}

ScopedTimerMs::ScopedTimerMs(Histogram* histogram) : histogram_(histogram) {
  if (histogram_ != nullptr) start_ns_ = MonotonicNanos();
}

double ScopedTimerMs::ElapsedMs() const {
  if (histogram_ == nullptr) return 0.0;
  return double(MonotonicNanos() - start_ns_) * 1e-6;
}

ScopedTimerMs::~ScopedTimerMs() {
  if (histogram_ != nullptr) histogram_->Observe(ElapsedMs());
}

}  // namespace blot::obs
