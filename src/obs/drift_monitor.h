// Cost-model drift detection from per-query profiles.
//
// Routing is only as good as the cost model (Eq. 6-12), and the model's
// calibration decays as workloads drift away from what it was fitted
// on. The CostDriftMonitor consumes QueryProfiles and maintains a
// sliding window of estimated-vs-measured cost error per replica; when
// a replica's mean absolute error exceeds the alert threshold it emits
// a `cost_drift.alert` event and flips the cost_drift.alerting gauge —
// the trigger signal the future replica-tuning advisor will consume
// (ROADMAP: online workload-adaptive replica tuning; the workload-shape
// side of drift lives in src/core/drift.h and is wired up by the store).
//
// Alerts fire on *transition* (ok -> alerting), not per query, and a
// matching `cost_drift.clear` fires on the way back, so the event log
// reads as an incident timeline rather than a firehose.
#ifndef BLOT_OBS_DRIFT_MONITOR_H_
#define BLOT_OBS_DRIFT_MONITOR_H_

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/profile.h"

namespace blot::obs {

struct CostDriftOptions {
  std::size_t window = 64;        // sliding window per replica (queries)
  std::size_t min_samples = 16;   // no alerting below this fill level
  double alert_error_pct = 25.0;  // mean |error| threshold, percent
};

class CostDriftMonitor {
 public:
  explicit CostDriftMonitor(CostDriftOptions options = {});
  CostDriftMonitor(const CostDriftMonitor&) = delete;
  CostDriftMonitor& operator=(const CostDriftMonitor&) = delete;

  // Feeds one query's profile into its replica's window. Queries with
  // no measured cost (failed before execution) are ignored. Updates the
  // cost_drift.* gauges and emits alert/clear events on threshold
  // transitions.
  void Observe(const QueryProfile& profile);

  struct ReplicaStats {
    std::size_t samples = 0;           // window fill
    double mean_abs_error_pct = 0.0;   // mean |measured-est|/measured
    double mean_signed_error_pct = 0.0;  // >0: model underestimates
    double max_abs_error_pct = 0.0;
    bool alerting = false;
  };

  ReplicaStats StatsFor(std::size_t replica_index) const;
  // (replica_index, stats) for every replica seen, sorted by index.
  std::vector<std::pair<std::size_t, ReplicaStats>> AllStats() const;
  // True if any replica is currently alerting.
  bool AnyAlerting() const;

  const CostDriftOptions& options() const { return options_; }

 private:
  struct Window {
    std::deque<double> signed_errors;  // percent, newest at the back
    bool alerting = false;
  };

  static ReplicaStats ComputeStats(const Window& window);

  const CostDriftOptions options_;
  mutable std::mutex mutex_;
  std::map<std::size_t, Window> windows_;
};

}  // namespace blot::obs

#endif  // BLOT_OBS_DRIFT_MONITOR_H_
