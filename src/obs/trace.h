// Per-query trace spans: a tree of named, timed operations with
// key=value attributes, rendered as an ASCII tree.
//
// A span is created by the code that owns an operation (the CLI creates
// the root; BlotStore::Execute fills in `route` and `execute` children)
// and carries what the metrics layer aggregates away: which replica THIS
// query chose, what the model estimated, what execution measured. All
// public methods are thread-safe so parallel partition scans can annotate
// spans concurrently; child spans have stable addresses for the lifetime
// of their parent.
#ifndef BLOT_OBS_TRACE_H_
#define BLOT_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace blot::obs {

class TraceSpan {
 public:
  explicit TraceSpan(std::string name) : name_(std::move(name)) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& name() const { return name_; }

  // Appends a child span; the reference stays valid until this span is
  // destroyed.
  TraceSpan& AddChild(std::string name);

  void AddAttribute(std::string key, std::string value);
  void AddAttribute(std::string key, double value);
  void AddAttribute(std::string key, std::uint64_t value);

  void set_duration_ms(double ms) { duration_ms_ = ms; }
  double duration_ms() const { return duration_ms_; }

  // Value of `key`, or "" if absent (for tests and tooling).
  std::string attribute(std::string_view key) const;
  // First direct child named `name`, or nullptr.
  const TraceSpan* FindChild(std::string_view name) const;

  //   store-query (3.42 ms) replica=KD4xT4/ROW-SNAPPY estimated_cost_ms=...
  //   ├─ route (0.01 ms) candidates=2
  //   └─ execute (3.38 ms) partitions_scanned=4
  std::string Render() const;

 private:
  void RenderInto(std::string& out, const std::string& prefix,
                  bool last, bool root) const;

  mutable std::mutex mutex_;
  std::string name_;
  double duration_ms_ = 0.0;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

// RAII timer: stamps `span->set_duration_ms()` with the elapsed wall
// clock on destruction. Null-safe: a null span disables the clock reads.
class SpanTimer {
 public:
  explicit SpanTimer(TraceSpan* span);
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  double ElapsedMs() const;

 private:
  TraceSpan* span_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace blot::obs

#endif  // BLOT_OBS_TRACE_H_
