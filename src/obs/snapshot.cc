#include "obs/snapshot.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/event_log.h"
#include "util/error.h"

namespace blot::obs {
namespace {

std::uint64_t WallMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscapeString(labels[i].first) + "\":\"" +
           JsonEscapeString(labels[i].second) + "\"";
  }
  return out + "}";
}

using MetricKey = std::pair<std::string, Labels>;

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(SnapshotterOptions options,
                                       MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  require(options_.capacity > 0, "MetricsSnapshotter: capacity must be > 0");
  require(options_.interval.count() > 0,
          "MetricsSnapshotter: interval must be positive");
}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

void MetricsSnapshotter::Start() {
  std::lock_guard lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSnapshotter::Stop() {
  std::thread to_join;
  {
    std::lock_guard lock(thread_mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    to_join = std::move(thread_);
  }
  stop_cv_.notify_all();
  to_join.join();
  // Final flush: capture whatever changed since the last periodic tick
  // (and guarantee a briefly-run snapshotter still records something).
  SampleNow();
}

bool MetricsSnapshotter::running() const {
  std::lock_guard lock(thread_mutex_);
  return thread_.joinable();
}

void MetricsSnapshotter::Loop() {
  std::unique_lock lock(thread_mutex_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, options_.interval,
                          [this] { return stop_; }))
      break;
    // Sample outside thread_mutex_ so Stop() never waits on the
    // registry lock.
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void MetricsSnapshotter::SampleNow() {
  TimedSnapshot sample;
  sample.wall_ms = WallMillis();
  sample.mono_ns = MonotonicNanos();
  sample.metrics = registry_->Snapshot();
  std::lock_guard lock(mutex_);
  sample.seq = next_seq_++;
  ++samples_taken_;
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<TimedSnapshot> MetricsSnapshotter::Samples() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t MetricsSnapshotter::sample_count() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t MetricsSnapshotter::samples_taken() const {
  std::lock_guard lock(mutex_);
  return samples_taken_;
}

std::string MetricsSnapshotter::ToJsonl() const {
  const std::vector<TimedSnapshot> samples = Samples();
  std::string out;
  // Previous sample's values, for delta encoding. A metric's first
  // appearance deltas against zero, so reconstruction is uniform
  // cumulative summation.
  std::map<MetricKey, std::uint64_t> prev_counters;
  std::map<MetricKey, std::pair<std::vector<std::uint64_t>, double>>
      prev_histograms;  // counts (incl. overflow), sum

  for (std::size_t s = 0; s < samples.size(); ++s) {
    const TimedSnapshot& sample = samples[s];
    const bool base = s == 0;
    std::string line = "{\"schema\":\"blot.snapshot.v1\",\"seq\":" +
                       std::to_string(sample.seq) +
                       ",\"wall_ms\":" + std::to_string(sample.wall_ms) +
                       ",\"mono_ns\":" + std::to_string(sample.mono_ns) +
                       ",\"base\":" + (base ? "true" : "false");

    line += ",\"counters\":[";
    bool first = true;
    for (const CounterSnapshot& c : sample.metrics.counters) {
      const MetricKey key{c.name, c.labels};
      const auto it = prev_counters.find(key);
      const std::uint64_t prev = it == prev_counters.end() ? 0 : it->second;
      const std::uint64_t delta = c.value - prev;
      prev_counters[key] = c.value;
      // Zero deltas are omitted on non-base lines (the whole point of
      // delta encoding); the base line lists everything.
      if (!base && delta == 0) continue;
      if (!first) line += ",";
      first = false;
      line += "{\"name\":\"" + JsonEscapeString(c.name) +
              "\",\"labels\":" + JsonLabels(c.labels) +
              ",\"delta\":" + std::to_string(delta) + "}";
    }

    line += "],\"gauges\":[";
    first = true;
    for (const GaugeSnapshot& g : sample.metrics.gauges) {
      if (!first) line += ",";
      first = false;
      line += "{\"name\":\"" + JsonEscapeString(g.name) +
              "\",\"labels\":" + JsonLabels(g.labels) +
              ",\"value\":" + FormatJsonNumber(g.value) + "}";
    }

    line += "],\"histograms\":[";
    first = true;
    for (const HistogramSnapshot& h : sample.metrics.histograms) {
      const MetricKey key{h.name, h.labels};
      const auto it = prev_histograms.find(key);
      const bool is_new = it == prev_histograms.end();
      std::vector<std::uint64_t> dcounts = h.counts;
      double dsum = h.sum;
      std::uint64_t dcount = h.count;
      if (!is_new) {
        for (std::size_t i = 0; i < dcounts.size(); ++i)
          dcounts[i] -= it->second.first[i];
        dsum -= it->second.second;
        std::uint64_t prev_count = 0;
        for (const std::uint64_t c : it->second.first) prev_count += c;
        dcount = h.count - prev_count;
      }
      prev_histograms[key] = {h.counts, h.sum};
      if (!base && !is_new && dcount == 0) continue;
      if (!first) line += ",";
      first = false;
      line += "{\"name\":\"" + JsonEscapeString(h.name) +
              "\",\"labels\":" + JsonLabels(h.labels);
      if (is_new) {
        // Bounds travel once, on first appearance.
        line += ",\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) line += ",";
          line += FormatJsonNumber(h.bounds[i]);
        }
        line += "]";
      }
      line += ",\"dcounts\":[";
      for (std::size_t i = 0; i < dcounts.size(); ++i) {
        if (i > 0) line += ",";
        line += std::to_string(dcounts[i]);
      }
      line += "],\"dcount\":" + std::to_string(dcount) +
              ",\"dsum\":" + FormatJsonNumber(dsum) + "}";
    }
    line += "]}";
    out += line;
    out += '\n';
  }
  return out;
}

void MetricsSnapshotter::WriteJsonlFile(const std::string& path) const {
  const std::string jsonl = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw ReadError("MetricsSnapshotter: cannot write " + path);
  const std::size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  if (written != jsonl.size())
    throw ReadError("MetricsSnapshotter: short write to " + path);
  EventLog::Global().Info(
      "snapshot.flush", "metrics snapshot ring flushed",
      {Field("path", path), Field("samples", sample_count()),
       Field("bytes", jsonl.size())});
}

}  // namespace blot::obs
