#include "obs/trace.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace blot::obs {
namespace {

std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

TraceSpan& TraceSpan::AddChild(std::string name) {
  std::lock_guard lock(mutex_);
  children_.push_back(std::make_unique<TraceSpan>(std::move(name)));
  return *children_.back();
}

void TraceSpan::AddAttribute(std::string key, std::string value) {
  std::lock_guard lock(mutex_);
  attributes_.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddAttribute(std::string key, double value) {
  AddAttribute(std::move(key), FormatValue(value));
}

void TraceSpan::AddAttribute(std::string key, std::uint64_t value) {
  AddAttribute(std::move(key), std::to_string(value));
}

std::string TraceSpan::attribute(std::string_view key) const {
  std::lock_guard lock(mutex_);
  for (const auto& [k, v] : attributes_)
    if (k == key) return v;
  return "";
}

const TraceSpan* TraceSpan::FindChild(std::string_view name) const {
  std::lock_guard lock(mutex_);
  for (const auto& child : children_)
    if (child->name() == name) return child.get();
  return nullptr;
}

std::string TraceSpan::Render() const {
  std::string out;
  RenderInto(out, "", true, true);
  return out;
}

void TraceSpan::RenderInto(std::string& out, const std::string& prefix,
                           bool last, bool root) const {
  std::lock_guard lock(mutex_);
  if (!root) out += prefix + (last ? "└─ " : "├─ ");
  out += name_;
  char buf[48];
  std::snprintf(buf, sizeof(buf), " (%.2f ms)", duration_ms_);
  out += buf;
  for (const auto& [k, v] : attributes_) out += " " + k + "=" + v;
  out += "\n";
  const std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "│  ");
  for (std::size_t i = 0; i < children_.size(); ++i)
    children_[i]->RenderInto(out, child_prefix,
                             i + 1 == children_.size(), false);
}

SpanTimer::SpanTimer(TraceSpan* span) : span_(span) {
  if (span_ != nullptr) start_ns_ = MonotonicNanos();
}

double SpanTimer::ElapsedMs() const {
  if (span_ == nullptr) return 0.0;
  return double(MonotonicNanos() - start_ns_) * 1e-6;
}

SpanTimer::~SpanTimer() {
  if (span_ != nullptr) span_->set_duration_ms(ElapsedMs());
}

}  // namespace blot::obs
