// Structured, machine-readable event log for the BLOT store.
//
// Metrics aggregate; traces follow one query; events record *incidents*:
// a partition was quarantined, a query failed over, a repair ran, the
// cache is thrashing, a snapshot was flushed. Each event is one JSONL
// line with a severity, a category (dot-separated, e.g. "quarantine" or
// "cost_drift.alert"), a human message and typed key/value fields — the
// replacement for ad-hoc stderr prints in the store/health/repair paths,
// and the input `blotmon` renders into an incident timeline
// (docs/observability.md).
//
// Design mirrors the metrics registry's cost discipline: the global log
// starts disabled and `enabled()` is one relaxed atomic load, so
// instrumented paths cost nothing until a sink is opened. Emission is
// lock-sharded: a writer formats its line outside any lock, then appends
// it under one of kShards shard mutexes, so concurrent scans almost
// never contend. Shard buffers drain to the sink (an append-only JSONL
// file) when they grow past a threshold and on Flush(); lines carry a
// global sequence number, so a reader can restore total order after the
// sharded writers interleave.
#ifndef BLOT_OBS_EVENT_LOG_H_
#define BLOT_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace blot::obs {

enum class EventSeverity : std::uint8_t { kDebug, kInfo, kWarn, kError };

std::string_view SeverityName(EventSeverity severity);
// Parses "debug"/"info"/"warn"/"error"; throws InvalidArgument otherwise.
EventSeverity SeverityFromName(std::string_view name);

// Key/value payload of one event. Values are stored as strings; the
// helpers render numbers with round-trippable formatting.
using EventFields = std::vector<std::pair<std::string, std::string>>;

struct Event {
  std::uint64_t seq = 0;       // global order across shards
  std::uint64_t wall_ms = 0;   // unix epoch milliseconds
  std::uint64_t mono_ns = 0;   // MonotonicNanos() at emission
  EventSeverity severity = EventSeverity::kInfo;
  std::string category;
  std::string message;
  EventFields fields;

  // The JSONL representation (no trailing newline).
  std::string ToJson() const;
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  // The process-wide log used by all built-in instrumentation. Disabled
  // until a sink is opened (or set_enabled(true) for in-memory only).
  static EventLog& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Enables the log without a sink: events are kept in the in-memory
  // ring (Recent()) only. Opening a sink enables automatically.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Opens (appending) the JSONL sink and enables the log. Throws
  // ReadError when the file cannot be opened.
  void OpenSink(const std::string& path);
  // Flushes, closes the sink and disables the log.
  void CloseSink();
  bool has_sink() const;

  // Sampling knob for high-frequency low-severity noise: only one in
  // `n` kDebug/kInfo events per category is kept (kWarn/kError always
  // pass). 1 (the default) keeps everything.
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Emits one event. No-op (beyond the enabled() load) when disabled;
  // may drop kDebug/kInfo events per the sampling knob.
  void Emit(EventSeverity severity, std::string_view category,
            std::string_view message, EventFields fields = {});

  // Convenience severities.
  void Info(std::string_view category, std::string_view message,
            EventFields fields = {}) {
    Emit(EventSeverity::kInfo, category, message, std::move(fields));
  }
  void Warn(std::string_view category, std::string_view message,
            EventFields fields = {}) {
    Emit(EventSeverity::kWarn, category, message, std::move(fields));
  }

  // Drains every shard buffer to the sink and flushes it.
  void Flush();

  // The most recent `max` events (any severity, post-sampling), oldest
  // first — for tests and in-process tooling. Capacity is bounded
  // (kRecentCapacity per shard); older events are only in the sink.
  std::vector<Event> Recent(std::size_t max = 64) const;

  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  // Resets counters, the sequence number and the in-memory ring (the
  // sink, if open, is left as-is). For tests.
  void ResetForTest();

  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kRecentCapacity = 128;  // per shard
  static constexpr std::size_t kFlushThresholdBytes = 16 * 1024;

 private:
  struct Shard {
    std::mutex mutex;
    std::string pending;        // formatted JSONL lines awaiting the sink
    std::deque<Event> recent;   // bounded ring for Recent()
    // Per-category counters driving the sampling knob.
    std::vector<std::pair<std::string, std::uint64_t>> category_counts;
  };

  Shard& ShardForThisThread();
  // Appends `shard`'s pending bytes to the sink. Caller holds the shard
  // mutex; takes the sink mutex.
  void DrainLocked(Shard& shard);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> sampled_out_{0};

  mutable std::mutex sink_mutex_;
  void* sink_ = nullptr;  // std::FILE*, kept opaque in the header

  mutable Shard shards_[kShards];
};

// Field helpers: EventFields entries with numeric formatting shared
// with the metrics JSON exporter.
std::pair<std::string, std::string> Field(std::string key,
                                          std::string value);
std::pair<std::string, std::string> Field(std::string key, const char* value);
std::pair<std::string, std::string> Field(std::string key, double value);
template <typename T>
  requires std::is_integral_v<T>
std::pair<std::string, std::string> Field(std::string key, T value) {
  return {std::move(key), std::to_string(value)};
}

}  // namespace blot::obs

#endif  // BLOT_OBS_EVENT_LOG_H_
