#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"

namespace blot::obs {
namespace {

std::uint64_t WallMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::FILE* AsFile(void* sink) { return static_cast<std::FILE*>(sink); }

}  // namespace

std::string_view SeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug: return "debug";
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarn: return "warn";
    case EventSeverity::kError: return "error";
  }
  return "info";
}

EventSeverity SeverityFromName(std::string_view name) {
  if (name == "debug") return EventSeverity::kDebug;
  if (name == "info") return EventSeverity::kInfo;
  if (name == "warn") return EventSeverity::kWarn;
  if (name == "error") return EventSeverity::kError;
  throw InvalidArgument("unknown event severity: " + std::string(name));
}

std::string Event::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq) +
                    ",\"wall_ms\":" + std::to_string(wall_ms) +
                    ",\"mono_ns\":" + std::to_string(mono_ns) +
                    ",\"severity\":\"" + std::string(SeverityName(severity)) +
                    "\",\"category\":\"" + JsonEscapeString(category) +
                    "\",\"message\":\"" + JsonEscapeString(message) + "\"";
  if (!fields.empty()) {
    out += ",\"fields\":{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscapeString(fields[i].first) + "\":\"" +
             JsonEscapeString(fields[i].second) + "\"";
    }
    out += "}";
  }
  return out + "}";
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

EventLog::~EventLog() {
  if (sink_ != nullptr) CloseSink();
}

void EventLog::OpenSink(const std::string& path) {
  std::lock_guard lock(sink_mutex_);
  if (sink_ != nullptr) {
    std::fclose(AsFile(sink_));
    sink_ = nullptr;
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    throw ReadError("EventLog: cannot open sink: " + path);
  sink_ = f;
  enabled_.store(true, std::memory_order_relaxed);
  // The global log is a leaked singleton, so its destructor never runs;
  // flush at process exit so an error path that skips CloseSink (e.g. a
  // tool exiting through an exception handler) still lands its incident
  // events — exactly the runs where the log matters most.
  static const bool flush_registered = [] {
    return std::atexit([] { Global().Flush(); }) == 0;
  }();
  (void)flush_registered;
}

void EventLog::CloseSink() {
  Flush();
  std::lock_guard lock(sink_mutex_);
  if (sink_ != nullptr) {
    std::fclose(AsFile(sink_));
    sink_ = nullptr;
  }
  enabled_.store(false, std::memory_order_relaxed);
}

bool EventLog::has_sink() const {
  std::lock_guard lock(sink_mutex_);
  return sink_ != nullptr;
}

void EventLog::set_sample_every(std::uint32_t n) {
  sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

EventLog::Shard& EventLog::ShardForThisThread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void EventLog::DrainLocked(Shard& shard) {
  if (shard.pending.empty()) return;
  std::lock_guard sink_lock(sink_mutex_);
  if (sink_ != nullptr) {
    std::fwrite(shard.pending.data(), 1, shard.pending.size(),
                AsFile(sink_));
  }
  shard.pending.clear();
}

void EventLog::Emit(EventSeverity severity, std::string_view category,
                    std::string_view message, EventFields fields) {
  if (!enabled()) return;

  Event event;
  event.wall_ms = WallMillis();
  event.mono_ns = MonotonicNanos();
  event.severity = severity;
  event.category = std::string(category);
  event.message = std::string(message);
  event.fields = std::move(fields);

  Shard& shard = ShardForThisThread();
  std::lock_guard lock(shard.mutex);

  // Sampling: kDebug/kInfo events pass one-in-n per (shard, category).
  // Sharding makes the count approximate, which is fine for a rate knob.
  const std::uint32_t every = sample_every();
  if (every > 1 && severity <= EventSeverity::kInfo) {
    std::uint64_t* count = nullptr;
    for (auto& [cat, n] : shard.category_counts)
      if (cat == event.category) { count = &n; break; }
    if (count == nullptr)
      count = &shard.category_counts.emplace_back(event.category, 0).second;
    if ((*count)++ % every != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  emitted_.fetch_add(1, std::memory_order_relaxed);

  shard.pending += event.ToJson();
  shard.pending += '\n';
  shard.recent.push_back(std::move(event));
  while (shard.recent.size() > kRecentCapacity) shard.recent.pop_front();
  if (shard.pending.size() >= kFlushThresholdBytes) DrainLocked(shard);
}

void EventLog::Flush() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    DrainLocked(shard);
  }
  std::lock_guard lock(sink_mutex_);
  if (sink_ != nullptr) std::fflush(AsFile(sink_));
}

std::vector<Event> EventLog::Recent(std::size_t max) const {
  std::vector<Event> out;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(out.end(), shard.recent.begin(), shard.recent.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  if (out.size() > max) out.erase(out.begin(), out.end() - max);
  return out;
}

void EventLog::ResetForTest() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    DrainLocked(shard);
    shard.recent.clear();
    shard.category_counts.clear();
  }
  next_seq_.store(1, std::memory_order_relaxed);
  emitted_.store(0, std::memory_order_relaxed);
  sampled_out_.store(0, std::memory_order_relaxed);
}

std::pair<std::string, std::string> Field(std::string key,
                                          std::string value) {
  return {std::move(key), std::move(value)};
}

std::pair<std::string, std::string> Field(std::string key,
                                          const char* value) {
  return {std::move(key), std::string(value)};
}

std::pair<std::string, std::string> Field(std::string key, double value) {
  return {std::move(key), FormatJsonNumber(value)};
}

}  // namespace blot::obs
