// Per-query stage profiles: where did this query's wall time go?
//
// The metrics registry answers "how is the store doing overall"; a
// QueryProfile answers "what did THIS query spend its time on" — the
// signal the cost model (Eq. 6-12) needs to stay honest. BlotStore
// populates one per routed query (attached to RoutedResult) and
// Replica::Execute fills in the scan-internal sub-stages.
//
// Stages come in two tiers with different additivity guarantees:
//
//  * Top-level stages (route, execute, failover, repair) are disjoint
//    wall-clock intervals measured on the calling thread, so their sum
//    tracks the query's total wall time (blotctl --profile relies on
//    this: sum within 10% of total).
//  * Sub-stages (cache_probe, decode, filter, zone_map_prune, simd) are
//    accumulated per partition inside the scan and nest within
//    `execute`. Under a thread pool, partitions scan concurrently, so
//    sub-stage times are CPU time across workers and may exceed the
//    execute wall time; `parallel_scan` flags that case for tools.
//
// zone_map_prune is the time spent parsing-and-skipping block headers
// that the zone map pruned; simd is the time spent inside the
// vectorized block decode+filter kernels (surviving blocks only), a
// refinement of decode/filter for the blocked wire format.
#ifndef BLOT_OBS_PROFILE_H_
#define BLOT_OBS_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace blot::obs {

class TraceSpan;

// Order matters: the first kTopLevelStageCount entries are the disjoint
// top-level stages, the rest nest inside kExecute.
enum class Stage : std::uint8_t {
  kRoute = 0,
  kExecute,
  kFailover,
  kRepair,
  kCacheProbe,
  kDecode,
  kFilter,
  kZoneMapPrune,  // appended after kFilter: persisted indices stay stable
  kSimd,
  kHedge,  // wall time of the backup attempt in a hedged read
};
inline constexpr std::size_t kTopLevelStageCount = 4;
inline constexpr std::size_t kStageCount = 10;

// "route", "execute", ... — the label value used by the
// query.stage_ms{stage=...} histograms and every exporter.
std::string_view StageName(Stage stage);

struct QueryProfile {
  // Wall milliseconds and bytes handled per stage, indexed by Stage.
  // `bytes` means: bytes read from encoded partitions for kDecode,
  // bytes served from cache for kCacheProbe, 0 where it has no meaning.
  std::array<double, kStageCount> stage_ms{};
  std::array<std::uint64_t, kStageCount> stage_bytes{};

  // Scan shape.
  std::uint64_t partitions_touched = 0;  // scanned (cache or decode)
  std::uint64_t partitions_skipped = 0;  // pruned by the partition index
  std::uint64_t records_scanned = 0;
  std::uint64_t blocks_scanned = 0;          // blocked format: decoded blocks
  std::uint64_t blocks_pruned = 0;           // blocked format: zone-map skips
  std::uint64_t partitions_zone_pruned = 0;  // whole-partition zone skips
  std::string scan_engine;                   // "scalar"/"sse4.2"/"avx2"
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_hit_bytes = 0;
  std::uint64_t cache_miss_bytes = 0;

  // Routing outcome.
  std::size_t replica_index = 0;
  std::uint32_t attempts = 1;       // 1 = no failover
  bool degraded = false;            // served by a non-first-choice replica
  bool parallel_scan = false;       // sub-stage times are CPU, not wall
  double estimated_cost_ms = 0.0;   // model's prediction for the winner
  double measured_cost_ms = 0.0;    // observed execute time
  double total_ms = 0.0;            // end-to-end wall time in the store

  double stage(Stage s) const {
    return stage_ms[static_cast<std::size_t>(s)];
  }
  void AddStage(Stage s, double ms, std::uint64_t bytes = 0) {
    stage_ms[static_cast<std::size_t>(s)] += ms;
    stage_bytes[static_cast<std::size_t>(s)] += bytes;
  }

  // Sum of the disjoint top-level stages — the additive decomposition of
  // total_ms.
  double TopLevelSumMs() const;

  // Folds another profile's scan sub-stages (everything past the
  // top-level stages) and scan-shape counters into this one. Used by the
  // hedged-read coordinator: each racing attempt fills its own profile
  // off-thread, and the winner's is merged into the query's profile
  // after the race — the query profile is never written concurrently.
  void MergeScanFrom(const QueryProfile& other);

  // |measured - estimated| / measured * 100, 0 when unmeasured.
  double CostErrorPct() const;

  // One JSON object (single line, no trailing newline).
  std::string ToJson() const;

  // Attaches the profile as `profile.*` attributes on `span`.
  void ExportToSpan(TraceSpan& span) const;

  // Human-readable per-stage table for blotctl --profile.
  std::string Render() const;
};

// Observes the profile into the global registry's per-stage histograms
// (query.stage_ms{stage=...}) and stage byte counters. No-op when the
// registry is disabled; hot-path safe (handles are cached).
void RecordProfile(const QueryProfile& profile);

}  // namespace blot::obs

#endif  // BLOT_OBS_PROFILE_H_
