#include "obs/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot::obs {

CostDriftMonitor::CostDriftMonitor(CostDriftOptions options)
    : options_(options) {
  require(options_.window > 0, "CostDriftMonitor: window must be > 0");
  require(options_.min_samples > 0,
          "CostDriftMonitor: min_samples must be > 0");
  require(options_.alert_error_pct > 0.0,
          "CostDriftMonitor: alert_error_pct must be > 0");
}

CostDriftMonitor::ReplicaStats CostDriftMonitor::ComputeStats(
    const Window& window) {
  ReplicaStats stats;
  stats.samples = window.signed_errors.size();
  stats.alerting = window.alerting;
  if (stats.samples == 0) return stats;
  double sum_abs = 0.0, sum_signed = 0.0;
  for (const double e : window.signed_errors) {
    sum_abs += std::abs(e);
    sum_signed += e;
    stats.max_abs_error_pct = std::max(stats.max_abs_error_pct,
                                       std::abs(e));
  }
  stats.mean_abs_error_pct = sum_abs / double(stats.samples);
  stats.mean_signed_error_pct = sum_signed / double(stats.samples);
  return stats;
}

void CostDriftMonitor::Observe(const QueryProfile& profile) {
  if (profile.measured_cost_ms <= 0.0) return;
  // Signed error: positive means the model underestimated (execution
  // was more expensive than predicted).
  const double signed_error_pct =
      (profile.measured_cost_ms - profile.estimated_cost_ms) /
      profile.measured_cost_ms * 100.0;

  ReplicaStats stats;
  bool fired_alert = false, fired_clear = false;
  {
    std::lock_guard lock(mutex_);
    Window& window = windows_[profile.replica_index];
    window.signed_errors.push_back(signed_error_pct);
    while (window.signed_errors.size() > options_.window)
      window.signed_errors.pop_front();
    stats = ComputeStats(window);
    if (stats.samples >= options_.min_samples) {
      const bool over = stats.mean_abs_error_pct > options_.alert_error_pct;
      fired_alert = over && !window.alerting;
      fired_clear = !over && window.alerting;
      window.alerting = over;
      stats.alerting = over;
    }
  }

  const std::string replica = std::to_string(profile.replica_index);
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    const Labels labels = {{"replica", replica}};
    registry.GetGauge("cost_drift.error_pct", labels)
        .Set(stats.mean_abs_error_pct);
    registry.GetGauge("cost_drift.alerting", labels)
        .Set(stats.alerting ? 1.0 : 0.0);
  }

  EventLog& log = EventLog::Global();
  if (fired_alert) {
    log.Warn("cost_drift.alert",
             "cost model error exceeds threshold",
             {Field("replica", profile.replica_index),
              Field("mean_abs_error_pct", stats.mean_abs_error_pct),
              Field("mean_signed_error_pct", stats.mean_signed_error_pct),
              Field("max_abs_error_pct", stats.max_abs_error_pct),
              Field("window_samples", stats.samples),
              Field("threshold_pct", options_.alert_error_pct)});
  } else if (fired_clear) {
    log.Info("cost_drift.clear", "cost model error back under threshold",
             {Field("replica", profile.replica_index),
              Field("mean_abs_error_pct", stats.mean_abs_error_pct),
              Field("threshold_pct", options_.alert_error_pct)});
  }
}

CostDriftMonitor::ReplicaStats CostDriftMonitor::StatsFor(
    std::size_t replica_index) const {
  std::lock_guard lock(mutex_);
  const auto it = windows_.find(replica_index);
  if (it == windows_.end()) return {};
  return ComputeStats(it->second);
}

std::vector<std::pair<std::size_t, CostDriftMonitor::ReplicaStats>>
CostDriftMonitor::AllStats() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::size_t, ReplicaStats>> out;
  out.reserve(windows_.size());
  for (const auto& [index, window] : windows_)
    out.emplace_back(index, ComputeStats(window));
  return out;
}

bool CostDriftMonitor::AnyAlerting() const {
  std::lock_guard lock(mutex_);
  for (const auto& [index, window] : windows_)
    if (window.alerting) return true;
  return false;
}

}  // namespace blot::obs
