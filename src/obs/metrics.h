// Process-wide metrics for the BLOT store: counters, gauges and
// fixed-bucket histograms, keyed by name + label set.
//
// The registry exists so that the cost model's estimates (Eq. 6-12) can be
// compared against what execution actually does: every routed query
// records its estimated and measured cost, every partition decode its
// codec and duration, and so on (see docs/observability.md for the metric
// catalogue). Instrumented hot paths guard their clock reads with
// MetricsRegistry::enabled(), a single relaxed atomic load, so the layer
// costs nothing when disabled; metric objects themselves are lock-free
// atomics and are always safe to touch from any thread.
//
// Metric handles returned by GetCounter/GetGauge/GetHistogram are stable
// for the registry's lifetime — hot call sites look them up once and cache
// the pointer.
#ifndef BLOT_OBS_METRICS_H_
#define BLOT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace blot::obs {

// Label set for one metric instance, e.g. {{"codec", "GZIP"}}. Order is
// irrelevant for identity; the registry canonicalizes by sorting.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper edges of the
// finite buckets, strictly increasing; observations above the last bound
// land in an implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the final element is the
  // overflow bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Percentile estimate by linear interpolation inside the bucket;
  // `p` in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  void Reset();

  // Exponential latency buckets in milliseconds, 0.001 ms .. 60 s — the
  // default for every *_ms histogram.
  static const std::vector<double>& DefaultLatencyBoundsMs();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Immutable copy of one histogram, used by exporters and tests.
struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / double(count); }
  double Percentile(double p) const;
};

struct CounterSnapshot {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  double value = 0.0;
};

// Point-in-time copy of every registered metric, sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name,
                                     const Labels& labels = {}) const;
  const HistogramSnapshot* FindHistogram(std::string_view name,
                                         const Labels& labels = {}) const;

  // {"counters": [...], "gauges": [...], "histograms": [...]} — each
  // histogram carries per-bucket counts plus
  // count/sum/mean/p50/p90/p95/p99.
  std::string ToJson() const;
  // Prometheus text exposition format ('.' in names becomes '_',
  // histograms emit cumulative `_bucket{le=...}` series plus
  // summary-style `{quantile="..."}` lines for p50/p95/p99).
  std::string ToPrometheus() const;
};

// Thread-safe metric registry. Get* registers on first use and returns
// the existing instance afterwards; mismatched histogram bounds for an
// existing name+labels throw InvalidArgument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by all built-in instrumentation.
  // Disabled at startup: hot paths skip their clock reads until
  // set_enabled(true).
  static MetricsRegistry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Counter& GetCounter(std::string_view name, Labels labels = {});
  Gauge& GetGauge(std::string_view name, Labels labels = {});
  // Empty `bounds` means Histogram::DefaultLatencyBoundsMs().
  Histogram& GetHistogram(std::string_view name, Labels labels = {},
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric's value; registrations (and cached handles)
  // stay valid.
  void Reset();

 private:
  using Key = std::pair<std::string, Labels>;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// Wall-clock stopwatch for *_ms histograms: records elapsed milliseconds
// into `histogram` on destruction. A null histogram disables the timer
// (no clock read), so call sites can write
//   ScopedTimerMs timer(registry.enabled() ? &h : nullptr);
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* histogram);
  ~ScopedTimerMs();
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

  // Milliseconds elapsed since construction (0 when disabled).
  double ElapsedMs() const;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_ = 0;
};

// Monotonic clock in nanoseconds, shared by all instrumentation.
std::uint64_t MonotonicNanos();

// The percentile estimator behind Histogram::Percentile, exposed so
// out-of-process consumers of snapshot JSONL (blotmon --summary) can
// reproduce the registry's quantiles bit-for-bit from (bounds, counts):
// linear interpolation inside the covering bucket; the overflow bucket
// reports its lower edge. `p` in [0, 100]; 0 for an empty histogram.
double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& counts,
                           std::uint64_t total, double p);

// JSON formatting helpers shared by the metrics, event-log and snapshot
// exporters (and their tests).
//
// Shortest round-trippable number: integral values print bare, others
// with enough digits to survive JSON parse-back.
std::string FormatJsonNumber(double v);
// Escapes `"` `\` and control characters for a JSON string literal.
std::string JsonEscapeString(std::string_view s);

}  // namespace blot::obs

#endif  // BLOT_OBS_METRICS_H_
