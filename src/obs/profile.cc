#include "obs/profile.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace blot::obs {
namespace {

constexpr std::array<std::string_view, kStageCount> kStageNames = {
    "route",   "execute", "failover", "repair",
    "cache_probe", "decode", "filter", "zone_map_prune", "simd", "hedge",
};

}  // namespace

std::string_view StageName(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

double QueryProfile::TopLevelSumMs() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < kTopLevelStageCount; ++i) sum += stage_ms[i];
  return sum;
}

void QueryProfile::MergeScanFrom(const QueryProfile& other) {
  for (std::size_t i = kTopLevelStageCount; i < kStageCount; ++i) {
    stage_ms[i] += other.stage_ms[i];
    stage_bytes[i] += other.stage_bytes[i];
  }
  partitions_touched += other.partitions_touched;
  partitions_skipped += other.partitions_skipped;
  records_scanned += other.records_scanned;
  blocks_scanned += other.blocks_scanned;
  blocks_pruned += other.blocks_pruned;
  partitions_zone_pruned += other.partitions_zone_pruned;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_hit_bytes += other.cache_hit_bytes;
  cache_miss_bytes += other.cache_miss_bytes;
  if (scan_engine.empty()) scan_engine = other.scan_engine;
  parallel_scan = parallel_scan || other.parallel_scan;
}

double QueryProfile::CostErrorPct() const {
  if (measured_cost_ms <= 0.0) return 0.0;
  return std::abs(measured_cost_ms - estimated_cost_ms) /
         measured_cost_ms * 100.0;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"stages\":{";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (i > 0) out += ",";
    out += "\"" + std::string(kStageNames[i]) +
           "\":{\"ms\":" + FormatJsonNumber(stage_ms[i]) +
           ",\"bytes\":" + std::to_string(stage_bytes[i]) + "}";
  }
  out += "},\"partitions_touched\":" + std::to_string(partitions_touched) +
         ",\"partitions_skipped\":" + std::to_string(partitions_skipped) +
         ",\"records_scanned\":" + std::to_string(records_scanned) +
         ",\"blocks_scanned\":" + std::to_string(blocks_scanned) +
         ",\"blocks_pruned\":" + std::to_string(blocks_pruned) +
         ",\"partitions_zone_pruned\":" +
         std::to_string(partitions_zone_pruned) +
         ",\"scan_engine\":\"" + scan_engine + "\"" +
         ",\"cache_hits\":" + std::to_string(cache_hits) +
         ",\"cache_misses\":" + std::to_string(cache_misses) +
         ",\"cache_hit_bytes\":" + std::to_string(cache_hit_bytes) +
         ",\"cache_miss_bytes\":" + std::to_string(cache_miss_bytes) +
         ",\"replica_index\":" + std::to_string(replica_index) +
         ",\"attempts\":" + std::to_string(attempts) +
         ",\"degraded\":" + (degraded ? "true" : "false") +
         ",\"parallel_scan\":" + (parallel_scan ? "true" : "false") +
         ",\"estimated_cost_ms\":" + FormatJsonNumber(estimated_cost_ms) +
         ",\"measured_cost_ms\":" + FormatJsonNumber(measured_cost_ms) +
         ",\"cost_error_pct\":" + FormatJsonNumber(CostErrorPct()) +
         ",\"total_ms\":" + FormatJsonNumber(total_ms) + "}";
  return out;
}

void QueryProfile::ExportToSpan(TraceSpan& span) const {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stage_ms[i] == 0.0 && stage_bytes[i] == 0) continue;
    span.AddAttribute("profile." + std::string(kStageNames[i]) + "_ms",
                      stage_ms[i]);
    if (stage_bytes[i] != 0)
      span.AddAttribute("profile." + std::string(kStageNames[i]) + "_bytes",
                        stage_bytes[i]);
  }
  span.AddAttribute("profile.partitions_touched", partitions_touched);
  span.AddAttribute("profile.partitions_skipped", partitions_skipped);
  if (blocks_scanned != 0 || blocks_pruned != 0) {
    span.AddAttribute("profile.blocks_scanned", blocks_scanned);
    span.AddAttribute("profile.blocks_pruned", blocks_pruned);
    span.AddAttribute("profile.partitions_zone_pruned",
                      partitions_zone_pruned);
  }
  if (!scan_engine.empty())
    span.AddAttribute("profile.scan_engine", scan_engine);
  span.AddAttribute("profile.cache_hit_bytes", cache_hit_bytes);
  span.AddAttribute("profile.cache_miss_bytes", cache_miss_bytes);
  span.AddAttribute("profile.attempts", std::uint64_t{attempts});
  span.AddAttribute("profile.cost_error_pct", CostErrorPct());
  span.AddAttribute("profile.total_ms", total_ms);
}

std::string QueryProfile::Render() const {
  char buf[160];
  std::string out;
  out += "stage            wall_ms      bytes\n";
  out += "--------------- -------- ----------\n";
  const auto line = [&](std::string_view name, double ms,
                        std::uint64_t bytes, bool indent) {
    std::snprintf(buf, sizeof(buf), "%s%-*s %8.3f %10llu\n",
                  indent ? "  " : "", indent ? 13 : 15,
                  std::string(name).c_str(), ms,
                  static_cast<unsigned long long>(bytes));
    out += buf;
  };
  for (std::size_t i = 0; i < kTopLevelStageCount; ++i) {
    line(kStageNames[i], stage_ms[i], stage_bytes[i], false);
    if (static_cast<Stage>(i) == Stage::kExecute) {
      for (std::size_t s = kTopLevelStageCount; s < kStageCount; ++s)
        line(kStageNames[s], stage_ms[s], stage_bytes[s], true);
    }
  }
  std::snprintf(buf, sizeof(buf),
                "total %.3f ms (stages sum %.3f ms)%s\n", total_ms,
                TopLevelSumMs(),
                parallel_scan ? " [parallel scan: sub-stages are CPU time]"
                              : "");
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "replica=%zu attempts=%u degraded=%s partitions=%llu/%llu "
      "cache_hits=%llu cache_misses=%llu\n",
      replica_index, attempts, degraded ? "yes" : "no",
      static_cast<unsigned long long>(partitions_touched),
      static_cast<unsigned long long>(partitions_touched +
                                      partitions_skipped),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses));
  out += buf;
  if (blocks_scanned != 0 || blocks_pruned != 0 || !scan_engine.empty()) {
    std::snprintf(
        buf, sizeof(buf),
        "engine=%s blocks=%llu scanned, %llu zone-pruned "
        "(+%llu whole partitions)\n",
        scan_engine.empty() ? "n/a" : scan_engine.c_str(),
        static_cast<unsigned long long>(blocks_scanned),
        static_cast<unsigned long long>(blocks_pruned),
        static_cast<unsigned long long>(partitions_zone_pruned));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "estimated_cost=%.3f ms measured_cost=%.3f ms "
                "error=%.1f%%\n",
                estimated_cost_ms, measured_cost_ms, CostErrorPct());
  out += buf;
  return out;
}

void RecordProfile(const QueryProfile& profile) {
  MetricsRegistry& registry = MetricsRegistry::global();
  if (!registry.enabled()) return;
  // One histogram + bytes counter per stage, resolved once.
  struct StageMetrics {
    Histogram* ms;
    Counter* bytes;
  };
  static const auto* stage_metrics = [] {
    auto* metrics = new std::array<StageMetrics, kStageCount>();
    MetricsRegistry& r = MetricsRegistry::global();
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const Labels labels = {
          {"stage", std::string(kStageNames[i])}};
      (*metrics)[i] = {&r.GetHistogram("query.stage_ms", labels),
                       &r.GetCounter("query.stage_bytes_total", labels)};
    }
    return metrics;
  }();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    // Skip stages this query never entered so p50s aren't drowned in
    // zeros (failover/repair are rare; decode is absent on cache hits).
    if (profile.stage_ms[i] == 0.0 && profile.stage_bytes[i] == 0) continue;
    (*stage_metrics)[i].ms->Observe(profile.stage_ms[i]);
    (*stage_metrics)[i].bytes->Increment(profile.stage_bytes[i]);
  }
  static Counter* profiled =
      &MetricsRegistry::global().GetCounter("query.profiled_total");
  profiled->Increment();
}

}  // namespace blot::obs
