// Time-series metrics: periodic whole-registry snapshots in a ring.
//
// The registry's counters are end-of-process totals; for an always-on
// store we need metrics *over time* — was the cache hit rate falling
// before the incident, when did cost error start climbing? The
// MetricsSnapshotter samples the entire registry on a background thread
// at a fixed interval into a fixed-capacity ring buffer (oldest samples
// evicted), and serializes the ring as delta-encoded JSONL that
// `blotmon --summary` can reconstruct exactly (docs/observability.md
// documents the schema).
//
// JSONL encoding (`blot.snapshot.v1`): the first retained sample is
// absolute ("base":true); every later line stores counter values,
// histogram bucket counts and histogram count/sum as deltas against the
// previous line. Gauges are always absolute (they are point-in-time
// readings, deltas would be meaningless). Histogram bucket bounds are
// emitted only when the histogram first appears, so steady-state lines
// stay small. Reconstruction is cumulative summation keyed by
// (name, labels) — a metric's first appearance is its delta from zero.
#ifndef BLOT_OBS_SNAPSHOT_H_
#define BLOT_OBS_SNAPSHOT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace blot::obs {

// One registry sample with its timestamps.
struct TimedSnapshot {
  std::uint64_t seq = 0;      // monotonically increasing sample number
  std::uint64_t wall_ms = 0;  // unix epoch milliseconds
  std::uint64_t mono_ns = 0;  // MonotonicNanos() at sampling
  MetricsSnapshot metrics;
};

struct SnapshotterOptions {
  std::chrono::milliseconds interval{1000};
  std::size_t capacity = 256;  // ring size; oldest samples are evicted
};

class MetricsSnapshotter {
 public:
  explicit MetricsSnapshotter(
      SnapshotterOptions options = {},
      MetricsRegistry* registry = &MetricsRegistry::global());
  ~MetricsSnapshotter();  // stops the background thread
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  // Starts the background sampling thread (idempotent).
  void Start();
  // Stops and joins it, then records one final sample so the state
  // between the last periodic tick and shutdown is never lost — a
  // started snapshotter always ends with >= 1 sample, however briefly
  // it ran. Idempotent (the flush happens only when a thread was
  // actually joined); also called by the destructor.
  void Stop();
  bool running() const;

  // Takes one sample synchronously on the calling thread — used by the
  // background loop, by tools for a final sample before flushing, and
  // by tests that want determinism without a thread.
  void SampleNow();

  // Copy of the ring, oldest first.
  std::vector<TimedSnapshot> Samples() const;
  std::size_t sample_count() const;
  // Total samples ever taken (>= sample_count() once the ring wraps).
  std::uint64_t samples_taken() const;

  // The ring as delta-encoded JSONL (see file comment). Empty string
  // when no samples have been taken.
  std::string ToJsonl() const;

  // Writes ToJsonl() to `path` (truncating) and emits a
  // `snapshot.flush` event. Throws ReadError when the file cannot be
  // written.
  void WriteJsonlFile(const std::string& path) const;

  const SnapshotterOptions& options() const { return options_; }

 private:
  void Loop();

  const SnapshotterOptions options_;
  MetricsRegistry* const registry_;

  mutable std::mutex mutex_;            // guards ring_ and next_seq_
  std::deque<TimedSnapshot> ring_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t samples_taken_ = 0;

  mutable std::mutex thread_mutex_;     // guards thread_ and stop_
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace blot::obs

#endif  // BLOT_OBS_SNAPSHOT_H_
