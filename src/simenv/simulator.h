// Discrete execution simulator for BLOT query processing.
//
// Executes the paper's query-processing procedure (Section II-D) against a
// replica sketch and charges simulated wall time from the environment
// model, with multiplicative measurement noise: the same role the
// MapReduce jobs play in the paper's evaluation, but machine-independent
// and scalable to arbitrary dataset sizes.
//
// Two aggregate times are reported:
//   total_cost_ms — the sum over involved partitions (Eq. 7), the paper's
//                   query-cost metric;
//   makespan_ms   — the parallel completion time with a bounded mapper
//                   pool (each mapper scans one partition, as in §V-A).
#ifndef BLOT_SIMENV_SIMULATOR_H_
#define BLOT_SIMENV_SIMULATOR_H_

#include <cstdint>

#include "simenv/environment.h"
#include "simenv/replica_sketch.h"
#include "util/rng.h"

namespace blot {

struct SimQueryResult {
  double total_cost_ms = 0.0;
  double makespan_ms = 0.0;
  std::size_t partitions_scanned = 0;
  std::uint64_t records_scanned = 0;
};

struct SimulatorOptions {
  // Multiplicative noise applied per partition scan; 0 disables noise.
  double noise_fraction = 0.03;
  // Concurrent map slots for the makespan metric.
  std::size_t num_mappers = 20;
  std::uint64_t seed = 7;
};

class Simulator {
 public:
  explicit Simulator(EnvironmentModel environment,
                     const SimulatorOptions& options = {});

  const EnvironmentModel& environment() const { return environment_; }

  // Simulated time to scan one partition of `records` records (Eq. 6 plus
  // noise). This is the quantity the measurement procedure of Section V-B
  // observes.
  double PartitionScanMs(const EncodingScheme& scheme, std::uint64_t records);

  // Runs one range query against the sketch.
  SimQueryResult ExecuteQuery(const ReplicaSketch& replica,
                              const STRange& query);

 private:
  double Noise();

  EnvironmentModel environment_;
  SimulatorOptions options_;
  Rng rng_;
};

}  // namespace blot

#endif  // BLOT_SIMENV_SIMULATOR_H_
