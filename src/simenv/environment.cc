#include "simenv/environment.h"

#include "util/error.h"

namespace blot {

EnvironmentModel::EnvironmentModel(
    std::string name, std::map<std::string, ScanCostParams> params_by_encoding)
    : name_(std::move(name)),
      params_by_encoding_(std::move(params_by_encoding)) {
  for (const auto& [encoding, params] : params_by_encoding_) {
    require(params.scan_ms_per_krecord > 0 && params.extra_ms >= 0,
            "EnvironmentModel: non-positive parameters for " + encoding);
  }
}

EnvironmentModel EnvironmentModel::AmazonS3Emr() {
  // Table II, "Amazon S3 and EMR".
  return EnvironmentModel(
      "amazon-s3-emr",
      {
          {"ROW-PLAIN", {85.02, 32689}},
          {"ROW-SNAPPY", {90.24, 30187}},
          {"COL-SNAPPY", {56.98, 30518}},
          {"ROW-GZIP", {90.65, 28698}},
          {"COL-GZIP", {51.72, 28725}},
          {"ROW-LZMA", {54.39, 29029}},
          {"COL-LZMA", {38.69, 29609}},
      });
}

EnvironmentModel EnvironmentModel::LocalHadoop() {
  // Table II, "Local Hadoop Cluster".
  return EnvironmentModel(
      "local-hadoop",
      {
          {"ROW-PLAIN", {606.78, 5312}},
          {"ROW-SNAPPY", {598.84, 5316}},
          {"COL-SNAPPY", {175.75, 4150}},
          {"ROW-GZIP", {488.32, 5349}},
          {"COL-GZIP", {177.15, 4427}},
          {"ROW-LZMA", {265.41, 5244}},
          {"COL-LZMA", {159.98, 4551}},
      });
}

EnvironmentModel EnvironmentModel::CpuBoundLocal() {
  // ms per thousand records, from bench/micro_codec DecodePartition
  // throughputs (ROW-PLAIN assumes memory-bandwidth deserialization);
  // ExtraTime is a couple of ms of open/seek per storage unit.
  return EnvironmentModel(
      "cpu-bound-local",
      {
          {"ROW-PLAIN", {0.05, 2.0}},
          {"ROW-SNAPPY", {0.13, 2.0}},
          {"COL-SNAPPY", {0.35, 2.0}},
          {"ROW-GZIP", {0.55, 2.0}},
          {"COL-GZIP", {0.41, 2.0}},
          {"ROW-LZMA", {1.35, 2.0}},
          {"COL-LZMA", {1.22, 2.0}},
      });
}

const ScanCostParams& EnvironmentModel::Params(
    const EncodingScheme& scheme) const {
  const auto it = params_by_encoding_.find(scheme.Name());
  require(it != params_by_encoding_.end(),
          "EnvironmentModel " + name_ + ": unsupported encoding " +
              scheme.Name());
  return it->second;
}

bool EnvironmentModel::Supports(const EncodingScheme& scheme) const {
  return params_by_encoding_.contains(scheme.Name());
}

double EnvironmentModel::PartitionScanMs(const EncodingScheme& scheme,
                                         std::uint64_t records) const {
  const ScanCostParams& p = Params(scheme);
  return static_cast<double>(records) / 1000.0 * p.scan_ms_per_krecord +
         p.extra_ms;
}

}  // namespace blot
