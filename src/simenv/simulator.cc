#include "simenv/simulator.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "util/error.h"

namespace blot {

Simulator::Simulator(EnvironmentModel environment,
                     const SimulatorOptions& options)
    : environment_(std::move(environment)),
      options_(options),
      rng_(options.seed) {
  require(options_.noise_fraction >= 0 && options_.noise_fraction < 1,
          "Simulator: noise_fraction must be in [0, 1)");
  require(options_.num_mappers >= 1, "Simulator: need at least one mapper");
}

double Simulator::Noise() {
  if (options_.noise_fraction == 0) return 1.0;
  return std::max(0.1, 1.0 + rng_.NextGaussian() * options_.noise_fraction);
}

double Simulator::PartitionScanMs(const EncodingScheme& scheme,
                                  std::uint64_t records) {
  return environment_.PartitionScanMs(scheme, records) * Noise();
}

SimQueryResult Simulator::ExecuteQuery(const ReplicaSketch& replica,
                                       const STRange& query) {
  SimQueryResult result;
  const std::vector<std::size_t> involved =
      replica.index.InvolvedPartitions(query);
  result.partitions_scanned = involved.size();

  // Mapper pool: a min-heap of slot completion times.
  std::priority_queue<double, std::vector<double>, std::greater<>> slots;
  for (std::size_t p : involved) {
    const std::uint64_t records = replica.counts[p];
    result.records_scanned += records;
    const double scan_ms =
        PartitionScanMs(replica.config.encoding, records);
    result.total_cost_ms += scan_ms;
    double start = 0.0;
    if (slots.size() >= options_.num_mappers) {
      start = slots.top();
      slots.pop();
    }
    slots.push(start + scan_ms);
    result.makespan_ms = std::max(result.makespan_ms, start + scan_ms);
  }
  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    static obs::Counter& queries_total =
        registry.GetCounter("sim.queries_total");
    static obs::Counter& partitions_total =
        registry.GetCounter("sim.partitions_scanned_total");
    static obs::Counter& records_total =
        registry.GetCounter("sim.records_scanned_total");
    static obs::Histogram& cost_ms =
        registry.GetHistogram("sim.query_cost_ms");
    static obs::Histogram& makespan_ms =
        registry.GetHistogram("sim.makespan_ms");
    static obs::Histogram& utilization =
        registry.GetHistogram("sim.mapper_utilization", {},
                              std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                                  0.6, 0.7, 0.8, 0.9,
                                                  1.0});
    queries_total.Increment();
    partitions_total.Increment(result.partitions_scanned);
    records_total.Increment(result.records_scanned);
    cost_ms.Observe(result.total_cost_ms);
    makespan_ms.Observe(result.makespan_ms);
    // Mapper-pool accounting: fraction of the pool's makespan capacity
    // spent scanning. 1.0 means perfectly parallel partition scans.
    if (result.makespan_ms > 0)
      utilization.Observe(result.total_cost_ms /
                          (result.makespan_ms *
                           double(options_.num_mappers)));
  }
  return result;
}

}  // namespace blot
