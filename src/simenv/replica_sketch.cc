#include "simenv/replica_sketch.h"

#include <cmath>

#include "util/error.h"

namespace blot {

ReplicaSketch ReplicaSketch::FromReplica(const Replica& replica) {
  ReplicaSketch sketch;
  sketch.config = replica.config();
  sketch.universe = replica.universe();
  sketch.index = replica.index();
  sketch.counts.reserve(replica.NumPartitions());
  for (std::size_t p = 0; p < replica.NumPartitions(); ++p)
    sketch.counts.push_back(replica.partition(p).num_records);
  sketch.total_records = replica.NumRecords();
  sketch.storage_bytes = replica.StorageBytes();
  return sketch;
}

ReplicaSketch ReplicaSketch::FromSample(const Dataset& sample,
                                        const ReplicaConfig& config,
                                        const STRange& universe,
                                        std::uint64_t total_records,
                                        double compression_ratio) {
  require(!sample.empty(), "ReplicaSketch::FromSample: empty sample");
  require(compression_ratio > 0,
          "ReplicaSketch::FromSample: non-positive compression ratio");
  PartitionedData partitioned =
      PartitionDataset(sample, config.partitioning, universe);
  ReplicaSketch sketch;
  sketch.config = config;
  sketch.universe = universe;
  const double scale =
      static_cast<double>(total_records) / static_cast<double>(sample.size());
  sketch.counts.reserve(partitioned.members.size());
  for (const auto& members : partitioned.members)
    sketch.counts.push_back(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(members.size()) * scale)));
  sketch.index = PartitionIndex(std::move(partitioned.ranges));
  sketch.total_records = total_records;
  sketch.storage_bytes = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(total_records) * kRecordRowBytes *
                   compression_ratio));
  return sketch;
}

}  // namespace blot
