#include "simenv/cluster.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace blot {

SimCluster::SimCluster(EnvironmentModel environment,
                       const ClusterConfig& config)
    : environment_(std::move(environment)), config_(config),
      rng_(config.seed) {
  require(config_.num_nodes >= 1, "SimCluster: need at least one node");
  require(config_.map_slots_per_node >= 1,
          "SimCluster: need at least one slot per node");
  require(config_.replication >= 1, "SimCluster: replication must be >= 1");
  require(config_.remote_read_penalty >= 1.0,
          "SimCluster: remote penalty must be >= 1");
  require(config_.locality_wait_fraction >= 0,
          "SimCluster: locality wait must be non-negative");
  require(config_.slow_factor >= 1.0,
          "SimCluster: slow factor must be >= 1");
  require(config_.noise_fraction >= 0 && config_.noise_fraction < 1,
          "SimCluster: noise fraction out of range");
}

SimCluster::Placement SimCluster::PlaceReplica(const ReplicaSketch& replica) {
  const std::size_t copies =
      std::min(config_.replication, config_.num_nodes);
  Placement placement(replica.index.NumPartitions());
  for (auto& nodes : placement) {
    // Distinct nodes per storage unit: first `copies` entries of a random
    // permutation (rack-awareness is out of scope).
    const std::vector<std::size_t> perm = rng_.Permutation(config_.num_nodes);
    nodes.assign(perm.begin(),
                 perm.begin() + static_cast<std::ptrdiff_t>(copies));
  }
  return placement;
}

double SimCluster::TaskDuration(const ReplicaSketch& replica,
                                std::size_t partition, bool local,
                                std::size_t node) {
  double duration = environment_.PartitionScanMs(
      replica.config.encoding, replica.counts[partition]);
  if (!local) duration *= config_.remote_read_penalty;
  if (node == config_.slow_node) duration *= config_.slow_factor;
  if (config_.noise_fraction > 0)
    duration *= std::max(0.1, 1.0 + rng_.NextGaussian() *
                                        config_.noise_fraction);
  return duration;
}

SimCluster::JobResult SimCluster::RunQuery(
    const ReplicaSketch& replica, const Placement& placement,
    const STRange& query, std::optional<FailureInjection> failure) {
  require(placement.size() == replica.index.NumPartitions(),
          "SimCluster::RunQuery: placement does not match replica");
  if (failure)
    require(failure->node < config_.num_nodes,
            "SimCluster::RunQuery: bad failure node");

  // slot_free[n][k]: time the k-th slot of node n becomes available.
  std::vector<std::vector<double>> slot_free(
      config_.num_nodes,
      std::vector<double>(config_.map_slots_per_node, 0.0));

  JobResult result;
  const std::vector<std::size_t> involved =
      replica.index.InvolvedPartitions(query);
  result.tasks = involved.size();

  // Picks the best slot for a task; `not_before` constrains the start
  // time (used for re-execution after the failure) and `exclude` bars the
  // dead node. Returns (node, slot, start, local) or nullopt if no node
  // is usable.
  struct Choice {
    std::size_t node, slot;
    double start;
    bool local;
  };
  const auto pick_slot = [&](const std::vector<std::size_t>& holders,
                             double not_before,
                             std::optional<std::size_t> exclude,
                             double local_duration_hint)
      -> std::optional<Choice> {
    std::optional<Choice> best_local, best_any;
    for (std::size_t n = 0; n < config_.num_nodes; ++n) {
      if (exclude && n == *exclude) continue;
      const bool is_holder =
          std::find(holders.begin(), holders.end(), n) != holders.end();
      for (std::size_t k = 0; k < config_.map_slots_per_node; ++k) {
        double start = std::max(slot_free[n][k], not_before);
        // A slot on the to-fail node cannot start work at/after the
        // failure instant.
        if (failure && n == failure->node && start >= failure->at_ms &&
            !exclude)
          continue;
        const Choice choice{n, k, start, is_holder};
        if (is_holder && (!best_local || start < best_local->start))
          best_local = choice;
        if (!best_any || start < best_any->start) best_any = choice;
      }
    }
    // Delay scheduling: take the local slot unless waiting for it costs
    // more than the configured fraction of the task's local duration.
    if (best_local && best_any &&
        best_local->start <=
            best_any->start +
                config_.locality_wait_fraction * local_duration_hint + 1e-9)
      return best_local;
    return best_any;
  };

  // True when every copy of partition p lives on the failed node.
  const auto all_copies_on_failed = [&](std::size_t p) {
    if (!failure) return false;
    for (std::size_t holder : placement[p])
      if (holder != failure->node) return false;
    return true;
  };

  struct ExecutedTask {
    std::size_t partition;
    std::vector<std::size_t> holders;
    double start, duration, end, expected;
  };
  std::vector<ExecutedTask> executed;
  executed.reserve(involved.size());

  for (const std::size_t p : involved) {
    const double local_hint = environment_.PartitionScanMs(
        replica.config.encoding, replica.counts[p]);
    const auto first = pick_slot(placement[p], 0.0, std::nullopt, local_hint);
    ensure(first.has_value(), "SimCluster: no schedulable slot");
    // A task starting after the failure cannot read data whose only
    // copies died with the node.
    if (failure && first->start >= failure->at_ms &&
        all_copies_on_failed(p)) {
      result.completed = false;
      continue;
    }
    double duration = TaskDuration(replica, p, first->local, first->node);
    double end = first->start + duration;

    const bool interrupted = failure && first->node == failure->node &&
                             first->start < failure->at_ms &&
                             end > failure->at_ms;
    if (!interrupted) {
      slot_free[first->node][first->slot] = end;
      result.total_task_ms += duration;
      result.makespan_ms = std::max(result.makespan_ms, end);
      if (first->local) ++result.local_tasks;
      executed.push_back(
          {p, placement[p], first->start, duration, end, local_hint});
      continue;
    }

    // The node died mid-task: the partial work is lost and the task
    // re-executes on a surviving node, reading a surviving copy. The dead
    // slot is occupied up to the failure instant (afterwards pick_slot
    // rejects it).
    slot_free[first->node][first->slot] = failure->at_ms;
    result.total_task_ms += failure->at_ms - first->start;  // wasted work
    ++result.reexecuted_tasks;
    std::vector<std::size_t> surviving_holders;
    for (std::size_t holder : placement[p])
      if (holder != failure->node) surviving_holders.push_back(holder);
    if (surviving_holders.empty()) {
      // Sole copy died: without diverse/exact replicas the job fails.
      result.completed = false;
      continue;
    }
    const auto retry = pick_slot(surviving_holders, failure->at_ms,
                                 failure->node, local_hint);
    ensure(retry.has_value(), "SimCluster: no surviving slot");
    duration = TaskDuration(replica, p, retry->local, retry->node);
    end = retry->start + duration;
    slot_free[retry->node][retry->slot] = end;
    result.total_task_ms += duration;
    result.makespan_ms = std::max(result.makespan_ms, end);
    if (retry->local) ++result.local_tasks;
    executed.push_back(
        {p, surviving_holders, retry->start, duration, end, local_hint});
  }

  if (config_.speculative_execution && !executed.empty()) {
    // Straggler mitigation: tasks in the job's tail that have overrun
    // their expected duration get a backup attempt on the
    // earliest-available other slot; the first finisher wins (the loser
    // is killed, so the backup slot is occupied only until the win time).
    double makespan = result.makespan_ms;
    std::vector<std::size_t> order(executed.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return executed[a].end > executed[b].end;
    });
    double new_makespan = 0;
    for (std::size_t i : order) {
      const ExecutedTask& task = executed[i];
      const double launch =
          task.start + task.expected * config_.speculation_after;
      const bool straggler = task.end > makespan * 0.8 && task.end > launch;
      if (!straggler) {
        new_makespan = std::max(new_makespan, task.end);
        continue;
      }
      const auto backup =
          pick_slot(task.holders, launch,
                    failure ? std::optional<std::size_t>(failure->node)
                            : std::nullopt,
                    task.expected);
      // Only launch when the backup is projected to beat the original;
      // mid-job there is rarely an idle slot early enough, which is why
      // real speculation fires in the final wave.
      if (!backup || backup->start + task.expected >= task.end) {
        new_makespan = std::max(new_makespan, task.end);
        continue;
      }
      ++result.speculative_backups;
      const double backup_duration =
          TaskDuration(replica, task.partition, backup->local,
                       backup->node);
      const double backup_end = backup->start + backup_duration;
      const double effective_end = std::min(task.end, backup_end);
      slot_free[backup->node][backup->slot] = effective_end;
      result.total_task_ms += effective_end - backup->start;
      if (backup_end < task.end) ++result.speculative_wins;
      new_makespan = std::max(new_makespan, effective_end);
    }
    result.makespan_ms = new_makespan;
  }
  return result;
}

}  // namespace blot
