// A replica sketch: the metadata the cost model and simulator need about a
// candidate replica, without its physical bytes.
//
// The paper stresses that "though the full dataset in our working system
// is more than 100 GB, we only need a small portion of the data to build
// the cost model and select diverse replicas for the whole dataset"
// (Section V-A). A sketch captures exactly that portion: the partition
// ranges and (scaled) per-partition record counts produced by partitioning
// a sample, plus the storage estimate from the measured compression
// ratio. Sketches are how the evaluation scales to the paper's 370 GB and
// 3,700 GB configurations (Figure 6) without materializing the data.
#ifndef BLOT_SIMENV_REPLICA_SKETCH_H_
#define BLOT_SIMENV_REPLICA_SKETCH_H_

#include <cstdint>
#include <vector>

#include "blot/partition_index.h"
#include "blot/replica.h"

namespace blot {

struct ReplicaSketch {
  ReplicaConfig config;
  STRange universe;
  PartitionIndex index;                // partition ranges
  std::vector<std::uint64_t> counts;   // records per partition
  std::uint64_t total_records = 0;
  std::uint64_t storage_bytes = 0;

  // Exact sketch of a materialized replica.
  static ReplicaSketch FromReplica(const Replica& replica);

  // Sketch of a hypothetical replica of `total_records` records whose
  // distribution matches `sample`: partition boundaries come from
  // partitioning the sample, per-partition counts are scaled
  // proportionally, and storage is total_records * row bytes *
  // `compression_ratio`.
  static ReplicaSketch FromSample(const Dataset& sample,
                                  const ReplicaConfig& config,
                                  const STRange& universe,
                                  std::uint64_t total_records,
                                  double compression_ratio);

  double MeanRecordsPerPartition() const {
    return index.NumPartitions() == 0
               ? 0.0
               : static_cast<double>(total_records) /
                     static_cast<double>(index.NumPartitions());
  }
};

}  // namespace blot

#endif  // BLOT_SIMENV_REPLICA_SKETCH_H_
