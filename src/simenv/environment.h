// Execution-environment models (Section IV-A, Table II).
//
// The paper reduces each deployment environment to two per-encoding
// constants: ScanRate (records scanned per unit time) and ExtraTime (the
// fixed cost of initializing a scan — task startup, locating the storage
// unit, loading the decoder). Both evaluation environments are modeled:
//
//   * Amazon S3 + EMR — partitions are S3 objects scanned by EMR map
//     tasks: huge ExtraTime (~30 s task startup), scan rate bounded by
//     network transfer of compressed bytes;
//   * local Hadoop cluster — partitions are HDFS files: small ExtraTime
//     (~5 s), scan rate bounded by disk transfer.
//
// The default constants are the paper's Table II measurements, with
// 1/ScanRate interpreted as milliseconds per thousand records (the only
// reading consistent with Figure 5's cost-vs-partition-size axes).
#ifndef BLOT_SIMENV_ENVIRONMENT_H_
#define BLOT_SIMENV_ENVIRONMENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "blot/encoding_scheme.h"

namespace blot {

// The two constants of Eq. 6 for one encoding scheme in one environment.
struct ScanCostParams {
  double scan_ms_per_krecord = 0.0;  // 1/ScanRate, ms per 1000 records
  double extra_ms = 0.0;             // ExtraTime, ms
};

class EnvironmentModel {
 public:
  EnvironmentModel(std::string name,
                   std::map<std::string, ScanCostParams> params_by_encoding);

  // The paper's Table II environments.
  static EnvironmentModel AmazonS3Emr();
  static EnvironmentModel LocalHadoop();

  // A third, post-paper design point: local NVMe storage whose bandwidth
  // exceeds decompression throughput, so scanning is CPU-bound. In the
  // paper's 2013 environments compression is a pure win (fewer bytes
  // through the bottleneck: LZMA2 is both smallest AND fastest in Table
  // II); on this environment the classic ratio/speed trade-off
  // re-emerges. ScanRates are derived from this repository's codec
  // microbenchmarks (records/s of DecodePartition on taxi data).
  static EnvironmentModel CpuBoundLocal();

  const std::string& name() const { return name_; }

  // Parameters for one encoding scheme; throws InvalidArgument for
  // schemes the environment does not support (e.g. COL-PLAIN, which the
  // paper excludes).
  const ScanCostParams& Params(const EncodingScheme& scheme) const;
  bool Supports(const EncodingScheme& scheme) const;

  // Ground-truth cost of scanning one partition of `records` records
  // under `scheme` (Eq. 6), in milliseconds, noise-free.
  double PartitionScanMs(const EncodingScheme& scheme,
                         std::uint64_t records) const;

 private:
  std::string name_;
  std::map<std::string, ScanCostParams> params_by_encoding_;
};

}  // namespace blot

#endif  // BLOT_SIMENV_ENVIRONMENT_H_
