#include "simenv/measurement.h"

#include "util/error.h"

namespace blot {

MeasuredScanParams MeasureScanParams(Simulator& simulator,
                                     const EncodingScheme& scheme,
                                     const MeasurementOptions& options) {
  require(options.partition_sizes.size() >= 2,
          "MeasureScanParams: need at least two partition sizes");
  require(options.partitions_per_set >= 1,
          "MeasureScanParams: need at least one partition per set");

  MeasuredScanParams measured;
  std::vector<double> xs, ys;
  for (const std::uint64_t size : options.partition_sizes) {
    double total_ms = 0.0;
    for (std::size_t i = 0; i < options.partitions_per_set; ++i)
      total_ms += simulator.PartitionScanMs(scheme, size);
    const double mean_ms =
        total_ms / static_cast<double>(options.partitions_per_set);
    measured.points.emplace_back(size, mean_ms);
    xs.push_back(static_cast<double>(size) / 1000.0);  // kilorecords
    ys.push_back(mean_ms);
  }
  const LinearFit fit = FitLinear(xs, ys);
  measured.params.scan_ms_per_krecord = fit.slope;
  measured.params.extra_ms = fit.intercept;
  measured.r_squared = fit.r_squared;
  return measured;
}

}  // namespace blot
