// A discrete-event cluster simulator for parallel BLOT query processing.
//
// The paper executes queries as map-only MapReduce jobs: "we launch a
// map-only MapReduce job ... with each mapper scanning exactly one of the
// involved partitions" (Section V-A), and notes that parallel processing
// over partitions is straightforward (Section II-D). EnvironmentModel
// captures the per-task cost; this module adds the cluster-level
// behaviors a distributed deployment exhibits:
//
//   * data placement — every storage unit is placed on `replication`
//     distinct nodes, HDFS-style;
//   * slot scheduling — each node runs a bounded number of concurrent
//     map tasks; tasks are assigned to the earliest-available slot,
//     preferring nodes that hold a copy of the partition (locality);
//   * remote reads — a task scheduled off-copy pays a read penalty;
//   * node failure — a node can fail mid-job: its in-flight tasks are
//     re-executed on surviving nodes, and partitions all of whose copies
//     died make the job fail (which is why replication matters — and why
//     diverse replicas can stand in for exact copies, Section II-E).
//
// The simulator reports both the makespan (parallel completion time) and
// the total task time (the Eq. 7 sum the cost model estimates).
#ifndef BLOT_SIMENV_CLUSTER_H_
#define BLOT_SIMENV_CLUSTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "simenv/environment.h"
#include "simenv/replica_sketch.h"
#include "util/rng.h"

namespace blot {

struct ClusterConfig {
  std::size_t num_nodes = 8;
  std::size_t map_slots_per_node = 2;
  // Copies per storage unit (HDFS-style block replication).
  std::size_t replication = 3;
  // Scan-time multiplier for a task reading a partition it does not host.
  double remote_read_penalty = 1.5;
  // Delay scheduling (Zaharia et al.): wait up to this fraction of the
  // task's local duration for a data-local slot before going remote.
  double locality_wait_fraction = 0.5;
  // Per-task multiplicative noise; 0 disables.
  double noise_fraction = 0.05;
  // Node heterogeneity: tasks on `slow_node` (if < num_nodes) run
  // `slow_factor`x longer — an overloaded or degraded machine, the
  // classic cause of stragglers that speculation exists to absorb.
  std::size_t slow_node = static_cast<std::size_t>(-1);
  double slow_factor = 1.0;
  // Speculative execution (Hadoop's straggler mitigation): tasks still
  // running near the end of the job get a backup attempt on an idle slot;
  // the earlier finisher wins. 0 disables.
  bool speculative_execution = false;
  // A backup launches once the original has run for this multiple of its
  // expected duration.
  double speculation_after = 1.0;
  std::uint64_t seed = 13;
};

// A node failure injected at a simulated time (ms from job start).
struct FailureInjection {
  std::size_t node = 0;
  double at_ms = 0.0;
};

class SimCluster {
 public:
  SimCluster(EnvironmentModel environment, const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  // Placement of one replica's partitions across nodes. placement[p] is
  // the list of nodes holding partition p (size = min(replication,
  // num_nodes), distinct).
  using Placement = std::vector<std::vector<std::size_t>>;
  Placement PlaceReplica(const ReplicaSketch& replica);

  struct JobResult {
    bool completed = true;       // false if data was lost entirely
    double makespan_ms = 0.0;    // parallel completion time
    double total_task_ms = 0.0;  // sum of task durations (Eq. 7 view)
    std::size_t tasks = 0;
    std::size_t local_tasks = 0;     // scheduled on a copy-holding node
    std::size_t reexecuted_tasks = 0;  // re-run after the node failure
    std::size_t speculative_backups = 0;  // backups launched
    std::size_t speculative_wins = 0;     // backups that finished first
  };

  // Runs a map-only job scanning the partitions `query` involves, with an
  // optional mid-job node failure.
  JobResult RunQuery(const ReplicaSketch& replica, const Placement& placement,
                     const STRange& query,
                     std::optional<FailureInjection> failure = std::nullopt);

 private:
  double TaskDuration(const ReplicaSketch& replica, std::size_t partition,
                      bool local, std::size_t node);

  EnvironmentModel environment_;
  ClusterConfig config_;
  Rng rng_;
};

}  // namespace blot

#endif  // BLOT_SIMENV_CLUSTER_H_
