// The ScanRate / ExtraTime measurement procedure of Section V-B.
//
// "For each measurement, we generate 5 sets of partitions with each set
// containing 20 partitions. ... we compute the average processing time of
// all mappers and use it as the (measured) value of Cost(q, p). ... In the
// last step, we perform linear regression to fit the measured points and
// use the fitted parameters as 1/ScanRate and ExtraTime."
//
// This module runs that exact procedure against the simulator and returns
// the fitted parameters; the Table II bench compares them to the
// environment's ground truth, and the cost model can be driven by either.
#ifndef BLOT_SIMENV_MEASUREMENT_H_
#define BLOT_SIMENV_MEASUREMENT_H_

#include <cstdint>
#include <vector>

#include "simenv/simulator.h"
#include "util/stats.h"

namespace blot {

struct MeasuredScanParams {
  ScanCostParams params;  // fitted 1/ScanRate and ExtraTime
  double r_squared = 0.0;
  // The averaged data points (partition size in records, mean cost in ms).
  std::vector<std::pair<std::uint64_t, double>> points;
};

struct MeasurementOptions {
  // Partition sizes (records) of the 5 sets; defaults span the sizes the
  // candidate partitioning schemes actually produce.
  std::vector<std::uint64_t> partition_sizes = {20000, 60000, 120000, 200000,
                                                300000};
  std::size_t partitions_per_set = 20;
};

// Measures one encoding scheme in `simulator`'s environment.
MeasuredScanParams MeasureScanParams(Simulator& simulator,
                                     const EncodingScheme& scheme,
                                     const MeasurementOptions& options = {});

}  // namespace blot

#endif  // BLOT_SIMENV_MEASUREMENT_H_
