#include "blot/segment_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

namespace fs = std::filesystem;

class SegmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("blot_segment_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);

    TaxiFleetConfig config;
    config.num_taxis = 8;
    config.samples_per_taxi = 300;
    dataset_ = GenerateTaxiFleet(config);
    universe_ = config.Universe();
  }

  void TearDown() override { fs::remove_all(dir_); }

  Replica BuildReplica(const char* encoding = "COL-GZIP",
                       EncodingPolicy policy = EncodingPolicy::kUniform) {
    return Replica::Build(
        dataset_,
        {{.spatial_partitions = 8, .temporal_partitions = 4},
         EncodingScheme::FromName(encoding),
         policy},
        universe_);
  }

  fs::path dir_;
  Dataset dataset_;
  STRange universe_;
};

TEST_F(SegmentStoreTest, SaveLoadRoundTrip) {
  const Replica original = BuildReplica();
  SegmentStore::Save(original, dir_);
  ASSERT_TRUE(SegmentStore::Exists(dir_));
  const Replica loaded = SegmentStore::Load(dir_);

  EXPECT_EQ(loaded.config(), original.config());
  EXPECT_EQ(loaded.universe(), original.universe());
  EXPECT_EQ(loaded.NumPartitions(), original.NumPartitions());
  EXPECT_EQ(loaded.NumRecords(), original.NumRecords());
  EXPECT_EQ(loaded.StorageBytes(), original.StorageBytes());
  for (std::size_t p = 0; p < original.NumPartitions(); ++p) {
    EXPECT_EQ(loaded.partition(p).data, original.partition(p).data);
    EXPECT_EQ(loaded.index().Range(p), original.index().Range(p));
  }
  EXPECT_EQ(loaded.Reconstruct(), original.Reconstruct());
}

TEST_F(SegmentStoreTest, LoadedReplicaAnswersQueries) {
  SegmentStore::Save(BuildReplica(), dir_);
  const Replica loaded = SegmentStore::Load(dir_);
  const STRange query = STRange::FromCentroid(
      {universe_.Width() / 3, universe_.Height() / 3,
       universe_.Duration() / 3},
      universe_.Centroid());
  EXPECT_EQ(loaded.Execute(query).records.size(),
            dataset_.FilterByRange(query).size());
}

TEST_F(SegmentStoreTest, HybridPolicyRoundTrips) {
  const Replica original =
      BuildReplica("ROW-PLAIN", EncodingPolicy::kBestCodecPerPartition);
  SegmentStore::Save(original, dir_);
  const Replica loaded = SegmentStore::Load(dir_);
  EXPECT_EQ(loaded.config().policy,
            EncodingPolicy::kBestCodecPerPartition);
  for (std::size_t p = 0; p < original.NumPartitions(); ++p)
    EXPECT_EQ(loaded.partition(p).codec, original.partition(p).codec);
  EXPECT_EQ(loaded.Reconstruct(), original.Reconstruct());
}

TEST_F(SegmentStoreTest, SaveOverwritesAtomically) {
  SegmentStore::Save(BuildReplica("ROW-SNAPPY"), dir_);
  const Replica second = BuildReplica("COL-LZMA");
  SegmentStore::Save(second, dir_);
  const Replica loaded = SegmentStore::Load(dir_);
  EXPECT_EQ(loaded.config().encoding.Name(), "COL-LZMA");
  // No stray temporary files remain.
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().extension(), entry.path().extension() == ".tmp"
                                            ? ""
                                            : entry.path().extension());
}

TEST_F(SegmentStoreTest, MissingDirectoryThrows) {
  EXPECT_FALSE(SegmentStore::Exists(dir_));
  EXPECT_THROW(SegmentStore::Load(dir_), InvalidArgument);
  EXPECT_THROW(SegmentStore::DiskBytes(dir_), InvalidArgument);
}

TEST_F(SegmentStoreTest, CorruptManifestDetected) {
  SegmentStore::Save(BuildReplica(), dir_);
  const fs::path manifest = dir_ / "manifest.blot";
  std::fstream file(manifest,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(64);
  file.put('\xFF');
  file.close();
  EXPECT_THROW(SegmentStore::Load(dir_), CorruptData);
}

TEST_F(SegmentStoreTest, TruncatedSegmentsDetectedOnRead) {
  SegmentStore::Save(BuildReplica(), dir_);
  const fs::path segments = dir_ / "segments.dat";
  const auto size = fs::file_size(segments);
  fs::resize_file(segments, size / 2);
  // Either the load itself or the first partition read must fail.
  try {
    const Replica loaded = SegmentStore::Load(dir_);
    EXPECT_THROW(
        {
          for (std::size_t p = 0; p < loaded.NumPartitions(); ++p)
            loaded.DecodePartitionRecords(p);
        },
        CorruptData);
  } catch (const CorruptData&) {
    SUCCEED();
  }
}

TEST_F(SegmentStoreTest, FlippedSegmentByteCaughtByChecksum) {
  SegmentStore::Save(BuildReplica(), dir_);
  const fs::path segments = dir_ / "segments.dat";
  std::fstream file(segments,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(fs::file_size(segments) / 2));
  file.put('\x5A');
  file.close();
  const Replica loaded = SegmentStore::Load(dir_);
  EXPECT_THROW(
      {
        for (std::size_t p = 0; p < loaded.NumPartitions(); ++p)
          loaded.DecodePartitionRecords(p);
      },
      CorruptData);
}

TEST_F(SegmentStoreTest, DiskBytesAccountsBothFiles) {
  const Replica replica = BuildReplica();
  SegmentStore::Save(replica, dir_);
  EXPECT_GT(SegmentStore::DiskBytes(dir_), replica.StorageBytes());
}

}  // namespace
}  // namespace blot
