// Equivalence tests for the fused decode-filter kernels: for every
// layout x codec and a spread of query shapes, DeserializeRecordsInRange /
// DecodePartitionInRange must return exactly what decode-then-filter
// returns, in the same order, while reporting the true record count.
#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "blot/encoding_scheme.h"
#include "blot/layout.h"
#include "blot/replica.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

std::vector<Record> NaiveFilter(const std::vector<Record>& records,
                                const STRange& range) {
  std::vector<Record> out;
  for (const Record& r : records)
    if (range.Contains(r.Position())) out.push_back(r);
  return out;
}

std::vector<EncodingScheme> SchemesUnderTest() {
  // The paper's 7 schemes plus the excluded COL-PLAIN: the fused column
  // kernel must be correct whether or not a codec sits in front of it.
  std::vector<EncodingScheme> schemes = AllEncodingSchemes();
  schemes.push_back({Layout::kColumn, CodecKind::kNone});
  return schemes;
}

struct FusedScanTest : public ::testing::Test {
  Dataset dataset;
  STRange universe;

  void SetUp() override {
    TaxiFleetConfig config;
    config.num_taxis = 12;
    config.samples_per_taxi = 300;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
  }

  std::vector<STRange> QueryShapes() const {
    const double w = universe.Width(), h = universe.Height();
    const double d = universe.Duration();
    const Record& probe = dataset.records()[dataset.size() / 2];
    return {
        universe,  // everything matches
        // Disjoint from the universe: nothing matches, so the column
        // kernel's early-out (skip attribute columns) is exercised.
        STRange::FromBounds(universe.x_max() + 1.0, universe.x_max() + 2.0,
                            universe.y_min(), universe.y_max(),
                            universe.t_min(), universe.t_max()),
        // Selective corner box.
        STRange::FromBounds(universe.x_min(), universe.x_min() + w * 0.15,
                            universe.y_min(), universe.y_min() + h * 0.15,
                            universe.t_min(),
                            universe.t_min() + d * 0.25),
        // Spatially wide, temporally thin slab.
        STRange::FromBounds(universe.x_min(), universe.x_max(),
                            universe.y_min(), universe.y_max(),
                            universe.t_min() + d * 0.5,
                            universe.t_min() + d * 0.52),
        // Degenerate zero-extent range pinned on one real record:
        // closed-bound handling must keep that exact point.
        STRange::FromBounds(probe.x, probe.x, probe.y, probe.y,
                            static_cast<double>(probe.time),
                            static_cast<double>(probe.time)),
    };
  }
};

TEST_F(FusedScanTest, MatchesDecodeThenFilterForAllSchemes) {
  for (const EncodingScheme& scheme : SchemesUnderTest()) {
    const Bytes data = EncodePartition(dataset.records(), scheme);
    const std::vector<Record> all = DecodePartition(data, scheme);
    ASSERT_EQ(all.size(), dataset.size()) << scheme.Name();
    for (const STRange& query : QueryShapes()) {
      std::uint64_t total = 0;
      const std::vector<Record> fused =
          DecodePartitionInRange(data, scheme, query, &total);
      EXPECT_EQ(total, dataset.size())
          << scheme.Name() << " on " << query.ToString();
      EXPECT_EQ(fused, NaiveFilter(all, query))
          << scheme.Name() << " on " << query.ToString();
    }
  }
}

TEST_F(FusedScanTest, EmptyPartitionYieldsNothing) {
  for (const EncodingScheme& scheme : SchemesUnderTest()) {
    const Bytes data = EncodePartition({}, scheme);
    std::uint64_t total = 99;
    EXPECT_TRUE(DecodePartitionInRange(data, scheme, universe, &total).empty())
        << scheme.Name();
    EXPECT_EQ(total, 0u) << scheme.Name();
  }
}

TEST_F(FusedScanTest, TotalRecordsOutParamIsOptional) {
  const EncodingScheme scheme{Layout::kRow, CodecKind::kNone};
  const Bytes data = EncodePartition(dataset.records(), scheme);
  EXPECT_EQ(DecodePartitionInRange(data, scheme, universe).size(),
            dataset.size());
}

TEST_F(FusedScanTest, TruncatedInputThrows) {
  for (const Layout layout : {Layout::kRow, Layout::kColumn}) {
    const EncodingScheme scheme{layout, CodecKind::kNone};
    Bytes data = EncodePartition(dataset.records(), scheme);
    data.resize(data.size() / 2);
    EXPECT_THROW(DecodePartitionInRange(data, scheme, universe), Error)
        << scheme.Name();
  }
}

TEST_F(FusedScanTest, ReplicaScanPartitionInRangeMatchesDecode) {
  for (const char* name : {"ROW-SNAPPY", "COL-GZIP"}) {
    const Replica replica = Replica::Build(
        dataset,
        {{.spatial_partitions = 8, .temporal_partitions = 4},
         EncodingScheme::FromName(name)},
        universe);
    for (const STRange& query : QueryShapes()) {
      for (std::size_t p : replica.index().InvolvedPartitions(query)) {
        EXPECT_EQ(replica.ScanPartitionInRange(p, query),
                  NaiveFilter(replica.DecodePartitionRecords(p), query))
            << name << " partition " << p;
      }
    }
  }
}

// With the cache disabled (the default), Execute runs the fused path;
// its results must match brute force over the raw dataset.
TEST_F(FusedScanTest, ExecuteEqualsBruteForce) {
  // (oid, time) alone is not a total order — the generator can emit
  // coincident samples — so tie-break on every field.
  auto sorted = [](std::vector<Record> records) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return std::tie(a.oid, a.time, a.x, a.y, a.speed, a.heading,
                                a.status, a.passengers, a.fare_cents) <
                       std::tie(b.oid, b.time, b.x, b.y, b.speed, b.heading,
                                b.status, b.passengers, b.fare_cents);
              });
    return records;
  };
  for (const EncodingScheme& scheme : SchemesUnderTest()) {
    const Replica replica = Replica::Build(
        dataset,
        {{.spatial_partitions = 8, .temporal_partitions = 4}, scheme},
        universe);
    for (const STRange& query : QueryShapes()) {
      const QueryResult result = replica.Execute(query);
      EXPECT_EQ(sorted(result.records),
                sorted(dataset.FilterByRange(query)))
          << scheme.Name() << " on " << query.ToString();
      EXPECT_EQ(result.stats.cache_hits, 0u);
      EXPECT_EQ(result.stats.cache_misses, 0u);
    }
  }
}

// Under the per-partition codec policy the fused kernel must honor each
// stored partition's own codec, not the replica default.
TEST_F(FusedScanTest, HybridEncodingPolicyUsesPerPartitionCodec) {
  const Replica replica = Replica::Build(
      dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP"),
       EncodingPolicy::kBestCodecPerPartition},
      universe);
  for (const STRange& query : QueryShapes()) {
    for (std::size_t p : replica.index().InvolvedPartitions(query)) {
      EXPECT_EQ(replica.ScanPartitionInRange(p, query),
                NaiveFilter(replica.DecodePartitionRecords(p), query));
    }
  }
}

}  // namespace
}  // namespace blot
