#include "blot/encoding_scheme.h"

#include <gtest/gtest.h>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

std::vector<Record> FleetRecords() {
  TaxiFleetConfig config;
  config.num_taxis = 8;
  config.samples_per_taxi = 500;
  Dataset d = GenerateTaxiFleet(config);
  d.SortByTime();
  return d.records();
}

TEST(EncodingSchemeTest, PaperCandidateSetHasSevenSchemes) {
  const auto schemes = AllEncodingSchemes();
  EXPECT_EQ(schemes.size(), 7u);
  // COL-PLAIN is excluded.
  for (const EncodingScheme& s : schemes)
    EXPECT_FALSE(s.layout == Layout::kColumn && s.codec == CodecKind::kNone);
  // ROW-PLAIN is included.
  bool has_row_plain = false;
  for (const EncodingScheme& s : schemes)
    if (s.layout == Layout::kRow && s.codec == CodecKind::kNone)
      has_row_plain = true;
  EXPECT_TRUE(has_row_plain);
}

TEST(EncodingSchemeTest, NamesRoundTrip) {
  for (const EncodingScheme& s : AllEncodingSchemes())
    EXPECT_EQ(EncodingScheme::FromName(s.Name()), s);
  EXPECT_EQ(EncodingScheme({Layout::kRow, CodecKind::kGzipLike}).Name(),
            "ROW-GZIP");
  EXPECT_THROW(EncodingScheme::FromName("ROWGZIP"), InvalidArgument);
  EXPECT_THROW(EncodingScheme::FromName("ROW-ZSTD"), InvalidArgument);
}

class EncodingSchemeRoundTripTest
    : public ::testing::TestWithParam<EncodingScheme> {};

TEST_P(EncodingSchemeRoundTripTest, EncodeDecodeRoundTrip) {
  const std::vector<Record> records = FleetRecords();
  const Bytes encoded = EncodePartition(records, GetParam());
  EXPECT_EQ(DecodePartition(encoded, GetParam()), records);
}

TEST_P(EncodingSchemeRoundTripTest, EmptyPartition) {
  const Bytes encoded = EncodePartition({}, GetParam());
  EXPECT_TRUE(DecodePartition(encoded, GetParam()).empty());
}

TEST_P(EncodingSchemeRoundTripTest, CorruptedBytesThrow) {
  const std::vector<Record> records = FleetRecords();
  Bytes encoded = EncodePartition(records, GetParam());
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(DecodePartition(encoded, GetParam()), CorruptData);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EncodingSchemeRoundTripTest,
    ::testing::ValuesIn(AllEncodingSchemes()),
    [](const ::testing::TestParamInfo<EncodingScheme>& info) {
      std::string name = info.param.Name();
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(CompressionRatioTest, TableIOrderingHolds) {
  // Table I's structure: compression lowers the ratio, the column layout
  // beats the row layout under every codec, and stronger codecs compress
  // more: SNAPPY > GZIP > LZMA (in ratio) per layout.
  const std::vector<Record> records = FleetRecords();
  const auto ratio = [&](const char* name) {
    return MeasureCompressionRatio(records,
                                   EncodingScheme::FromName(name));
  };
  const double row_plain = ratio("ROW-PLAIN");
  const double row_snappy = ratio("ROW-SNAPPY");
  const double row_gzip = ratio("ROW-GZIP");
  const double row_lzma = ratio("ROW-LZMA");
  const double col_snappy = ratio("COL-SNAPPY");
  const double col_gzip = ratio("COL-GZIP");
  const double col_lzma = ratio("COL-LZMA");

  EXPECT_NEAR(row_plain, 1.0, 0.01);  // raw rows ~= baseline
  EXPECT_LT(row_snappy, row_plain);
  EXPECT_LT(row_gzip, row_snappy);
  EXPECT_LT(row_lzma, row_gzip);
  EXPECT_LT(col_snappy, row_snappy);
  EXPECT_LT(col_gzip, row_gzip);
  EXPECT_LT(col_lzma, row_lzma);
  EXPECT_LT(col_lzma, col_gzip);
}

TEST(CompressionRatioTest, RejectsEmptySample) {
  EXPECT_THROW(
      MeasureCompressionRatio({}, {Layout::kRow, CodecKind::kNone}),
      InvalidArgument);
}

}  // namespace
}  // namespace blot
