// Tests for the per-partition encoding policy (the paper's "separate
// encoding scheme for each partition" generalization).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "blot/replica.h"
#include "gen/taxi_generator.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
  }
};

TEST(HybridEncodingTest, NameCarriesPolicySuffix) {
  const ReplicaConfig uniform{
      {.spatial_partitions = 4, .temporal_partitions = 4},
      EncodingScheme::FromName("COL-GZIP")};
  EXPECT_EQ(uniform.Name(), "KD4xT4/COL-GZIP");
  const ReplicaConfig hybrid{
      {.spatial_partitions = 4, .temporal_partitions = 4},
      EncodingScheme::FromName("COL-GZIP"),
      EncodingPolicy::kBestCodecPerPartition};
  EXPECT_EQ(hybrid.Name(), "KD4xT4/COL-GZIP+HYBRID");
}

TEST(HybridEncodingTest, RoundTripsLogicalView) {
  const Fixture f;
  const Replica hybrid = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 8},
       EncodingScheme::FromName("COL-PLAIN"),
       EncodingPolicy::kBestCodecPerPartition},
      f.universe);
  const auto totally_sorted = [](std::vector<Record> records) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return std::tie(a.oid, a.time, a.x, a.y, a.speed, a.heading,
                                a.status, a.passengers, a.fare_cents) <
                       std::tie(b.oid, b.time, b.x, b.y, b.speed, b.heading,
                                b.status, b.passengers, b.fare_cents);
              });
    return records;
  };
  EXPECT_EQ(totally_sorted(hybrid.Reconstruct().records()),
            totally_sorted(f.dataset.records()));
}

TEST(HybridEncodingTest, NeverLargerThanAnyUniformCodec) {
  // Per-partition best-of-all-codecs is at most the size of every uniform
  // choice over the same layout (plus nothing: identical serialization).
  const Fixture f;
  const PartitioningSpec spec{.spatial_partitions = 8,
                              .temporal_partitions = 4};
  const Replica hybrid = Replica::Build(
      f.dataset,
      {spec, {Layout::kColumn, CodecKind::kGzipLike},
       EncodingPolicy::kBestCodecPerPartition},
      f.universe);
  for (const CodecKind kind :
       {CodecKind::kSnappyLike, CodecKind::kGzipLike, CodecKind::kLzmaLike}) {
    const Replica uniform = Replica::Build(
        f.dataset, {spec, {Layout::kColumn, kind}}, f.universe);
    EXPECT_LE(hybrid.StorageBytes(), uniform.StorageBytes())
        << CodecKindName(kind);
  }
}

TEST(HybridEncodingTest, PartitionsRecordChosenCodec) {
  const Fixture f;
  const Replica hybrid = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP"),
       EncodingPolicy::kBestCodecPerPartition},
      f.universe);
  std::set<CodecKind> used;
  for (std::size_t p = 0; p < hybrid.NumPartitions(); ++p)
    used.insert(hybrid.partition(p).codec);
  // Compressible taxi data never keeps the identity codec.
  EXPECT_FALSE(used.contains(CodecKind::kNone));
  EXPECT_GE(used.size(), 1u);
}

TEST(HybridEncodingTest, QueriesReturnGroundTruth) {
  const Fixture f;
  const Replica hybrid = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 16, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN"),
       EncodingPolicy::kBestCodecPerPartition},
      f.universe);
  const STRange query = STRange::FromCentroid(
      {f.universe.Width() / 4, f.universe.Height() / 4,
       f.universe.Duration() / 4},
      f.universe.Centroid());
  EXPECT_EQ(hybrid.Execute(query).records.size(),
            f.dataset.FilterByRange(query).size());
}

TEST(HybridEncodingTest, UniformPolicyStoresConfiguredCodec) {
  const Fixture f;
  const Replica uniform = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-SNAPPY")},
      f.universe);
  for (std::size_t p = 0; p < uniform.NumPartitions(); ++p)
    EXPECT_EQ(uniform.partition(p).codec, CodecKind::kSnappyLike);
}

}  // namespace
}  // namespace blot
