#include "blot/layout.h"

#include <gtest/gtest.h>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

std::vector<Record> FleetRecords(std::size_t taxis, std::size_t samples) {
  TaxiFleetConfig config;
  config.num_taxis = taxis;
  config.samples_per_taxi = samples;
  return GenerateTaxiFleet(config).records();
}

class LayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(LayoutTest, EmptyRoundTrip) {
  const Bytes data = SerializeRecords({}, GetParam());
  EXPECT_TRUE(DeserializeRecords(data, GetParam()).empty());
}

TEST_P(LayoutTest, SingleRecordRoundTrip) {
  Record r;
  r.oid = 7;
  r.time = 1193875200;
  r.x = 121.5;
  r.y = 31.25;
  r.speed = 33.5f;
  r.heading = 359;
  r.status = 1;
  r.passengers = 4;
  r.fare_cents = 12345;
  const std::vector<Record> records = {r};
  EXPECT_EQ(DeserializeRecords(SerializeRecords(records, GetParam()),
                               GetParam()),
            records);
}

TEST_P(LayoutTest, FleetRoundTrip) {
  const std::vector<Record> records = FleetRecords(5, 400);
  EXPECT_EQ(DeserializeRecords(SerializeRecords(records, GetParam()),
                               GetParam()),
            records);
}

TEST_P(LayoutTest, ExtremeValuesRoundTrip) {
  Record r;
  r.oid = 0xFFFFFFFFu;
  r.time = std::numeric_limits<std::int64_t>::max();
  r.x = -179.9999999;
  r.y = 89.9999999;
  r.speed = std::numeric_limits<float>::max();
  r.heading = 0xFFFF;
  r.status = 0xFF;
  r.passengers = 0xFF;
  r.fare_cents = 0xFFFFFFFFu;
  Record zero;
  zero.time = std::numeric_limits<std::int64_t>::min();
  const std::vector<Record> records = {r, zero, r};
  EXPECT_EQ(DeserializeRecords(SerializeRecords(records, GetParam()),
                               GetParam()),
            records);
}

TEST_P(LayoutTest, TruncatedInputThrows) {
  const std::vector<Record> records = FleetRecords(2, 100);
  Bytes data = SerializeRecords(records, GetParam());
  data.resize(data.size() / 3);
  EXPECT_THROW(DeserializeRecords(data, GetParam()), CorruptData);
}

TEST_P(LayoutTest, TrailingGarbageThrows) {
  const std::vector<Record> records = FleetRecords(1, 50);
  Bytes data = SerializeRecords(records, GetParam());
  data.push_back(0x00);
  EXPECT_THROW(DeserializeRecords(data, GetParam()), CorruptData);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LayoutTest, ::testing::Values(Layout::kRow, Layout::kColumn),
    [](const ::testing::TestParamInfo<Layout>& info) {
      return std::string(LayoutName(info.param));
    });

TEST(LayoutPropertyTest, RowLayoutIsFixedWidth) {
  const std::vector<Record> records = FleetRecords(2, 100);
  const Bytes legacy =
      SerializeRecords(records, Layout::kRow, LayoutFormat::kLegacy);
  // Varint count prefix (2 bytes for 200) + fixed rows.
  EXPECT_EQ(legacy.size(), 2 + records.size() * kRecordRowBytes);
  // The blocked format adds only per-block framing on top of the same
  // fixed rows: count + block size prefixes, then one ~55-byte header
  // (count, flags, zone bounds, payload length) per 512-record block.
  const Bytes blocked = SerializeRecords(records, Layout::kRow);
  const std::size_t blocks =
      (records.size() + kScanBlockRecords - 1) / kScanBlockRecords;
  EXPECT_GT(blocked.size(), records.size() * kRecordRowBytes);
  EXPECT_LE(blocked.size(), records.size() * kRecordRowBytes + 4 + 64 * blocks);
}

TEST(LayoutPropertyTest, ColumnLayoutIsSmallerOnTrajectoryData) {
  // Per-column delta/XOR coding exploits trajectory continuity, so the
  // column layout should beat rows even before general compression —
  // this is the premise of Table I's ROW vs COL gap.
  TaxiFleetConfig config;
  config.num_taxis = 1;  // single trajectory maximizes continuity
  config.samples_per_taxi = 2000;
  const std::vector<Record> records = GenerateTaxiFleet(config).records();
  const Bytes row = SerializeRecords(records, Layout::kRow);
  const Bytes col = SerializeRecords(records, Layout::kColumn);
  EXPECT_LT(col.size(), row.size());
}

TEST(LayoutPropertyTest, LayoutNamesRoundTrip) {
  EXPECT_EQ(LayoutFromName("ROW"), Layout::kRow);
  EXPECT_EQ(LayoutFromName("COL"), Layout::kColumn);
  EXPECT_THROW(LayoutFromName("PAX"), InvalidArgument);
}

}  // namespace
}  // namespace blot
