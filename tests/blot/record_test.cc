#include "blot/record.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace blot {
namespace {

Record SampleRecord() {
  Record r;
  r.oid = 1234;
  r.time = 1193875265;
  r.x = 121.4737123;
  r.y = 31.2304567;
  r.speed = 42.5f;
  r.heading = 270;
  r.status = 1;
  r.passengers = 2;
  r.fare_cents = 2350;
  return r;
}

TEST(RecordTest, HasEightAttributes) {
  // 3 core (oid, time, loc) + 5 common; loc spans two CSV columns.
  EXPECT_EQ(RecordFieldNames().size(), 9u);
}

TEST(RecordTest, RowBytesMatchesSchema) {
  EXPECT_EQ(kRecordRowBytes, 40u);
}

TEST(RecordTest, CsvRoundTripIsExact) {
  const Record r = SampleRecord();
  EXPECT_EQ(RecordFromCsv(RecordToCsv(r)), r);
}

TEST(RecordTest, CsvRoundTripPreservesFullDoublePrecision) {
  Record r = SampleRecord();
  r.x = 121.47371230000001;
  r.y = 0.1 + 0.2;  // not representable exactly
  EXPECT_EQ(RecordFromCsv(RecordToCsv(r)), r);
}

TEST(RecordTest, CsvRejectsWrongFieldCount) {
  EXPECT_THROW(RecordFromCsv({"1", "2"}), CorruptData);
}

TEST(RecordTest, CsvRejectsMalformedNumbers) {
  auto fields = RecordToCsv(SampleRecord());
  fields[0] = "not-a-number";
  EXPECT_THROW(RecordFromCsv(fields), CorruptData);
  fields = RecordToCsv(SampleRecord());
  fields[1] = "12.5x";
  EXPECT_THROW(RecordFromCsv(fields), CorruptData);
}

TEST(RecordTest, PositionProjectsCoreAttributes) {
  const Record r = SampleRecord();
  const STPoint p = r.Position();
  EXPECT_DOUBLE_EQ(p.x, r.x);
  EXPECT_DOUBLE_EQ(p.y, r.y);
  EXPECT_DOUBLE_EQ(p.t, static_cast<double>(r.time));
}

}  // namespace
}  // namespace blot
