#include "blot/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct FleetFixture {
  Dataset dataset;
  STRange universe;

  FleetFixture() {
    TaxiFleetConfig config;
    config.num_taxis = 20;
    config.samples_per_taxi = 500;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
  }
};

class PartitionerTest : public ::testing::TestWithParam<PartitioningSpec> {};

TEST_P(PartitionerTest, ProducesExactPartitionCount) {
  const FleetFixture f;
  const PartitionedData pd = PartitionDataset(f.dataset, GetParam(),
                                              f.universe);
  EXPECT_EQ(pd.NumPartitions(), GetParam().TotalPartitions());
  EXPECT_EQ(pd.members.size(), pd.ranges.size());
}

TEST_P(PartitionerTest, EveryRecordAssignedExactlyOnce) {
  const FleetFixture f;
  const PartitionedData pd = PartitionDataset(f.dataset, GetParam(),
                                              f.universe);
  std::vector<int> seen(f.dataset.size(), 0);
  for (const auto& members : pd.members)
    for (std::uint32_t i : members) seen[i]++;
  for (std::size_t i = 0; i < seen.size(); ++i)
    ASSERT_EQ(seen[i], 1) << "record " << i;
}

TEST_P(PartitionerTest, MembersLieInsidePartitionRange) {
  const FleetFixture f;
  const PartitionedData pd = PartitionDataset(f.dataset, GetParam(),
                                              f.universe);
  for (std::size_t p = 0; p < pd.NumPartitions(); ++p)
    for (std::uint32_t i : pd.members[p])
      ASSERT_TRUE(
          pd.ranges[p].Contains(f.dataset.records()[i].Position()))
          << "partition " << p << " record " << i;
}

TEST_P(PartitionerTest, RangesStayWithinUniverse) {
  const FleetFixture f;
  const PartitionedData pd = PartitionDataset(f.dataset, GetParam(),
                                              f.universe);
  for (const STRange& r : pd.ranges) EXPECT_TRUE(f.universe.Contains(r));
}

TEST_P(PartitionerTest, RangesCoverUniverseVolume) {
  // Tiling: partition volumes sum to the universe volume (no gaps or
  // overlapping interiors beyond shared boundaries).
  const FleetFixture f;
  const PartitionedData pd = PartitionDataset(f.dataset, GetParam(),
                                              f.universe);
  double total = 0;
  for (const STRange& r : pd.ranges) total += r.Volume();
  EXPECT_NEAR(total / f.universe.Volume(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PartitionerTest,
    ::testing::Values(
        PartitioningSpec{.spatial_partitions = 4, .temporal_partitions = 4},
        PartitioningSpec{.spatial_partitions = 16, .temporal_partitions = 8},
        PartitioningSpec{.spatial_partitions = 64, .temporal_partitions = 16},
        PartitioningSpec{.spatial_partitions = 7, .temporal_partitions = 3},
        PartitioningSpec{.spatial_partitions = 1, .temporal_partitions = 32},
        PartitioningSpec{.spatial_partitions = 32, .temporal_partitions = 1},
        PartitioningSpec{.spatial_partitions = 16,
                         .temporal_partitions = 4,
                         .method = SpatialMethod::kGrid},
        PartitioningSpec{.spatial_partitions = 12,
                         .temporal_partitions = 6,
                         .method = SpatialMethod::kGrid}),
    [](const ::testing::TestParamInfo<PartitioningSpec>& info) {
      return info.param.Name();
    });

TEST(PartitionerSkewTest, KdTreeIsNearlyBalancedOnClusteredData) {
  // The k-d scheme's equal-count splits must keep skew near 1 even though
  // taxi data is spatially clustered (the cost model's assumption).
  const FleetFixture f;
  const PartitioningSpec spec{.spatial_partitions = 64,
                              .temporal_partitions = 8};
  const PartitionedData pd = PartitionDataset(f.dataset, spec, f.universe);
  EXPECT_LT(PartitionSkew(pd, f.dataset.size()), 1.25);
}

TEST(PartitionerSkewTest, GridIsSkewedOnClusteredData) {
  const FleetFixture f;
  const PartitioningSpec spec{.spatial_partitions = 64,
                              .temporal_partitions = 8,
                              .method = SpatialMethod::kGrid};
  const PartitionedData pd = PartitionDataset(f.dataset, spec, f.universe);
  // Hotspot clustering concentrates records in few cells.
  EXPECT_GT(PartitionSkew(pd, f.dataset.size()), 2.0);
}

TEST(PartitionerEdgeTest, EmptyDatasetYieldsUniformTiling) {
  const STRange universe = STRange::FromBounds(0, 1, 0, 1, 0, 1);
  const PartitioningSpec spec{.spatial_partitions = 4,
                              .temporal_partitions = 4};
  const PartitionedData pd = PartitionDataset(Dataset(), spec, universe);
  EXPECT_EQ(pd.NumPartitions(), 16u);
  double total = 0;
  for (const STRange& r : pd.ranges) total += r.Volume();
  EXPECT_NEAR(total, universe.Volume(), 1e-12);
}

TEST(PartitionerEdgeTest, SinglePartition) {
  const FleetFixture f;
  const PartitioningSpec spec{.spatial_partitions = 1,
                              .temporal_partitions = 1};
  const PartitionedData pd = PartitionDataset(f.dataset, spec, f.universe);
  ASSERT_EQ(pd.NumPartitions(), 1u);
  EXPECT_EQ(pd.members[0].size(), f.dataset.size());
  EXPECT_EQ(pd.ranges[0], f.universe);
}

TEST(PartitionerEdgeTest, DuplicatePositionsHandled) {
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    Record r;
    r.oid = static_cast<std::uint32_t>(i);
    r.time = 500;
    r.x = 0.5;
    r.y = 0.5;
    d.Append(r);
  }
  const STRange universe = STRange::FromBounds(0, 1, 0, 1, 0, 1000);
  const PartitioningSpec spec{.spatial_partitions = 8,
                              .temporal_partitions = 4};
  const PartitionedData pd = PartitionDataset(d, spec, universe);
  std::size_t assigned = 0;
  for (const auto& members : pd.members) assigned += members.size();
  EXPECT_EQ(assigned, 100u);
  for (std::size_t p = 0; p < pd.NumPartitions(); ++p)
    for (std::uint32_t i : pd.members[p])
      ASSERT_TRUE(pd.ranges[p].Contains(d.records()[i].Position()));
}

TEST(PartitionerEdgeTest, ValidatesArguments) {
  const STRange universe = STRange::FromBounds(0, 1, 0, 1, 0, 1);
  EXPECT_THROW(
      PartitionDataset(Dataset(), {.spatial_partitions = 0}, universe),
      InvalidArgument);
  EXPECT_THROW(PartitionDataset(Dataset(),
                                {.spatial_partitions = 2,
                                 .temporal_partitions = 0},
                                universe),
               InvalidArgument);
  Dataset outside;
  Record r;
  r.x = 5;  // outside [0,1]
  r.y = 0.5;
  r.time = 0;
  outside.Append(r);
  EXPECT_THROW(PartitionDataset(outside, {.spatial_partitions = 2},
                                universe),
               InvalidArgument);
}

TEST(PartitionerSpecTest, NameIsStable) {
  const PartitioningSpec spec{.spatial_partitions = 64,
                              .temporal_partitions = 32};
  EXPECT_EQ(spec.Name(), "KD64xT32");
  const PartitioningSpec grid{.spatial_partitions = 16,
                              .temporal_partitions = 8,
                              .method = SpatialMethod::kGrid};
  EXPECT_EQ(grid.Name(), "GRID16xT8");
  EXPECT_EQ(spec.TotalPartitions(), 2048u);
}

}  // namespace
}  // namespace blot
