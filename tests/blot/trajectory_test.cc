#include "blot/trajectory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  Replica replica;

  Fixture()
      : replica(Build()) {}

  Replica Build() {
    TaxiFleetConfig config;
    config.num_taxis = 30;
    config.samples_per_taxi = 300;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    return Replica::Build(
        dataset,
        {{.spatial_partitions = 32, .temporal_partitions = 8},
         EncodingScheme::FromName("COL-GZIP")},
        universe);
  }

  std::vector<Record> BruteForce(std::uint32_t oid, std::int64_t t0,
                                 std::int64_t t1) const {
    std::vector<Record> out;
    for (const Record& r : dataset.records())
      if (r.oid == oid && r.time >= t0 && r.time <= t1) out.push_back(r);
    std::stable_sort(out.begin(), out.end(),
                     [](const Record& a, const Record& b) {
                       return a.time < b.time;
                     });
    return out;
  }
};

TEST(ObjectDigestTest, NeverFalseNegative) {
  Rng rng(1);
  std::vector<Record> records;
  std::set<std::uint32_t> present;
  for (int i = 0; i < 200; ++i) {
    Record r;
    r.oid = static_cast<std::uint32_t>(rng.NextUint64(10000));
    present.insert(r.oid);
    records.push_back(r);
  }
  const ObjectDigest digest = ObjectDigest::Build(records);
  for (std::uint32_t oid : present) EXPECT_TRUE(digest.MayContain(oid));
}

TEST(ObjectDigestTest, PrunesOutOfRangeAndMostAbsentOids) {
  std::vector<Record> records;
  for (std::uint32_t oid = 100; oid < 110; ++oid) {
    Record r;
    r.oid = oid;
    records.push_back(r);
  }
  const ObjectDigest digest = ObjectDigest::Build(records);
  EXPECT_FALSE(digest.MayContain(99));
  EXPECT_FALSE(digest.MayContain(110));
  EXPECT_TRUE(digest.MayContain(105));
}

TEST(ObjectDigestTest, EmptyDigestContainsNothing) {
  const ObjectDigest digest = ObjectDigest::Build({});
  EXPECT_TRUE(digest.empty());
  EXPECT_FALSE(digest.MayContain(0));
}

TEST(ObjectDigestTest, BloomFalsePositiveRateIsBounded) {
  // 10 distinct oids set <= 20 of 64 bits; absent oids within [min,max]
  // should usually be rejected.
  std::vector<Record> records;
  for (std::uint32_t oid = 0; oid < 5000; oid += 500) {
    Record r;
    r.oid = oid;
    records.push_back(r);
  }
  const ObjectDigest digest = ObjectDigest::Build(records);
  int false_positives = 0, probes = 0;
  for (std::uint32_t oid = 1; oid < 5000; ++oid) {
    if (oid % 500 == 0) continue;
    ++probes;
    if (digest.MayContain(oid)) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.25);
}

TEST(TrajectoryIndexTest, QueryMatchesBruteForce) {
  const Fixture f;
  const TrajectoryIndex index(f.replica);
  for (const std::uint32_t oid : {0u, 7u, 29u}) {
    const std::int64_t t0 = f.dataset.records()[0].time + 86400;
    const std::int64_t t1 = t0 + 86400 * 7;
    const auto result = index.Query(f.replica, oid, t0, t1);
    const auto expected = f.BruteForce(oid, t0, t1);
    ASSERT_EQ(result.records.size(), expected.size()) << "oid " << oid;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(result.records[i], expected[i]);
  }
}

TEST(TrajectoryIndexTest, WholeWindowReturnsFullTrajectory) {
  const Fixture f;
  const TrajectoryIndex index(f.replica);
  const auto result =
      index.Query(f.replica, 5, std::numeric_limits<std::int64_t>::min(),
                  std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(result.records.size(), 300u);
  // Ordered by time.
  for (std::size_t i = 1; i < result.records.size(); ++i)
    EXPECT_LE(result.records[i - 1].time, result.records[i].time);
}

TEST(TrajectoryIndexTest, DigestPruningSkipsPartitions) {
  const Fixture f;
  const TrajectoryIndex index(f.replica);
  const std::int64_t t0 = f.dataset.records()[0].time;
  const auto result = index.Query(f.replica, 3, t0, t0 + 86400 * 3);
  EXPECT_GT(result.partitions_considered, 0u);
  // One taxi visits few of the 32 spatial cells in 3 days: pruning must
  // bite hard.
  EXPECT_LT(result.partitions_scanned,
            result.partitions_considered / 2);
  EXPECT_GT(result.records.size(), 0u);
}

TEST(TrajectoryIndexTest, UnknownObjectScansLittleAndReturnsNothing) {
  const Fixture f;
  const TrajectoryIndex index(f.replica);
  const auto result = index.Query(
      f.replica, 9999, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.partitions_scanned, 0u);  // min/max prunes everything
}

TEST(TrajectoryIndexTest, ParallelMatchesSerial) {
  const Fixture f;
  ThreadPool pool(4);
  const TrajectoryIndex serial(f.replica);
  const TrajectoryIndex parallel(f.replica, &pool);
  const std::int64_t t0 = f.dataset.records()[0].time;
  const auto a = serial.Query(f.replica, 11, t0, t0 + 86400 * 5);
  const auto b = parallel.Query(f.replica, 11, t0, t0 + 86400 * 5, &pool);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.partitions_scanned, b.partitions_scanned);
}

TEST(TrajectoryIndexTest, ValidatesArguments) {
  const Fixture f;
  const TrajectoryIndex index(f.replica);
  EXPECT_THROW(index.Query(f.replica, 1, 100, 50), InvalidArgument);
}

}  // namespace
}  // namespace blot
