// Zone-map edge cases and format-versioning tests: the blocked wire
// format's pruning must never change answers — only skip work — and
// segment directories written before zone maps existed must keep
// loading (as kLegacy, never zone-skipped).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "blot/encoding_scheme.h"
#include "blot/layout.h"
#include "blot/partitioner.h"
#include "blot/segment_store.h"
#include "codec/codec.h"
#include "gen/taxi_generator.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot {
namespace {

namespace fs = std::filesystem;

std::vector<Record> FleetRecords(std::size_t taxis, std::size_t samples) {
  TaxiFleetConfig config;
  config.num_taxis = taxis;
  config.samples_per_taxi = samples;
  return GenerateTaxiFleet(config).records();
}

std::vector<Record> Filter(const std::vector<Record>& records,
                           const STRange& range) {
  std::vector<Record> out;
  for (const Record& r : records)
    if (range.Contains({r.x, r.y, double(r.time)})) out.push_back(r);
  return out;
}

// Scans `records` through the blocked format with pruning on and off and
// checks both against a straight filter; returns the pruned-run counters.
ScanCounters ExpectPrunedEqualsUnpruned(const std::vector<Record>& records,
                                        Layout layout, const STRange& query) {
  const Bytes data = SerializeRecords(records, layout);
  const std::vector<Record> expected = Filter(records, query);
  ScanCounters pruned;
  std::uint64_t total = 0;
  EXPECT_EQ(DeserializeRecordsInRange(data, layout, query, &total,
                                      LayoutFormat::kBlocked,
                                      /*prune_blocks=*/true, &pruned),
            expected);
  EXPECT_EQ(total, records.size());
  ScanCounters unpruned;
  EXPECT_EQ(DeserializeRecordsInRange(data, layout, query, nullptr,
                                      LayoutFormat::kBlocked,
                                      /*prune_blocks=*/false, &unpruned),
            expected);
  EXPECT_EQ(unpruned.blocks_pruned, 0u);
  EXPECT_EQ(unpruned.blocks_total, pruned.blocks_total);
  return pruned;
}

class ZoneMapLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(ZoneMapLayoutTest, EmptyPartitionScans) {
  const Bytes data = SerializeRecords({}, GetParam());
  ScanCounters counters;
  EXPECT_TRUE(DeserializeRecordsInRange(
                  data, GetParam(),
                  STRange::FromBounds(0, 1, 0, 1, 0, 1), nullptr,
                  LayoutFormat::kBlocked, true, &counters)
                  .empty());
  EXPECT_EQ(counters.blocks_total, 0u);
}

TEST_P(ZoneMapLayoutTest, SingleRecordBlocks) {
  // One record: a single block of one; zone is the degenerate point.
  Record r;
  r.oid = 3;
  r.time = 1000;
  r.x = 5.0;
  r.y = 7.0;
  const std::vector<Record> records = {r};
  // A query containing the point keeps the block...
  ScanCounters hit = ExpectPrunedEqualsUnpruned(
      records, GetParam(), STRange::FromBounds(0, 10, 0, 10, 0, 2000));
  EXPECT_EQ(hit.blocks_total, 1u);
  EXPECT_EQ(hit.blocks_pruned, 0u);
  // ...and a disjoint query prunes it without decoding.
  ScanCounters miss = ExpectPrunedEqualsUnpruned(
      records, GetParam(), STRange::FromBounds(100, 200, 100, 200, 0, 2000));
  EXPECT_EQ(miss.blocks_total, 1u);
  EXPECT_EQ(miss.blocks_pruned, 1u);
}

TEST_P(ZoneMapLayoutTest, AllRecordsFilteredOut) {
  // The query intersects every block's zone (time matches) but no record
  // (location misses): blocks are decoded, nothing is returned, and the
  // match-count short-circuit (column layout skips attribute columns)
  // must not corrupt the scan position of subsequent blocks.
  std::vector<Record> records = FleetRecords(4, 400);
  std::int64_t t_min = records.front().time, t_max = t_min;
  for (const Record& r : records) {
    t_min = std::min(t_min, r.time);
    t_max = std::max(t_max, r.time);
  }
  const STRange query = STRange::FromBounds(
      1e6, 2e6, 1e6, 2e6, double(t_min), double(t_max));
  ScanCounters counters = ExpectPrunedEqualsUnpruned(records, GetParam(),
                                                     query);
  EXPECT_EQ(counters.blocks_pruned, counters.blocks_total);
}

TEST_P(ZoneMapLayoutTest, DegenerateMinEqualsMaxZone) {
  // All records at one point and one instant: zone min == max in every
  // dimension; boundary queries must treat the zone as closed.
  std::vector<Record> records;
  for (int i = 0; i < 700; ++i) {  // > one block
    Record r;
    r.oid = std::uint32_t(i);
    r.time = 5000;
    r.x = 42.0;
    r.y = -17.0;
    records.push_back(r);
  }
  // Query whose corner touches the degenerate zone exactly.
  ScanCounters touch = ExpectPrunedEqualsUnpruned(
      records, GetParam(),
      STRange::FromBounds(42.0, 50.0, -20.0, -17.0, 5000, 5000));
  EXPECT_EQ(touch.blocks_pruned, 0u);
  // Disjoint by the smallest representable margin above.
  ScanCounters miss = ExpectPrunedEqualsUnpruned(
      records, GetParam(),
      STRange::FromBounds(std::nextafter(42.0, 100.0), 50.0, -20.0, -17.0,
                          5000, 5000));
  EXPECT_EQ(miss.blocks_pruned, miss.blocks_total);
}

TEST_P(ZoneMapLayoutTest, NanCoordinatesDisableTheBlockZone) {
  // A NaN coordinate makes min/max meaningless: such blocks carry no
  // zone and are never pruned, for any query.
  std::vector<Record> records = FleetRecords(1, 100);
  records[50].x = std::numeric_limits<double>::quiet_NaN();
  ScanCounters counters = ExpectPrunedEqualsUnpruned(
      records, GetParam(),
      STRange::FromBounds(1e6, 2e6, 1e6, 2e6, 0, 1));  // misses everything
  EXPECT_EQ(counters.blocks_total, 1u);
  EXPECT_EQ(counters.blocks_pruned, 0u);
}

TEST_P(ZoneMapLayoutTest, SelectiveQueryPrunesMostBlocks) {
  // Time-sorted data + a ~10% time window: pruning must both skip most
  // blocks and stay answer-identical. This is the access pattern the
  // zone maps exist for.
  std::vector<Record> records = FleetRecords(6, 500);
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.time < b.time; });
  const double t_lo = double(records.front().time);
  const double t_hi = double(records.back().time);
  const STRange query = STRange::FromBounds(
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(), t_lo,
      t_lo + (t_hi - t_lo) * 0.1);
  ScanCounters counters =
      ExpectPrunedEqualsUnpruned(records, GetParam(), query);
  EXPECT_GT(counters.blocks_total, 4u);
  EXPECT_GT(counters.blocks_pruned, counters.blocks_total / 2);
}

TEST_P(ZoneMapLayoutTest, BlockedAndLegacyFormatsAgree) {
  const std::vector<Record> records = FleetRecords(3, 333);
  const Bytes blocked = SerializeRecords(records, GetParam());
  const Bytes legacy =
      SerializeRecords(records, GetParam(), LayoutFormat::kLegacy);
  EXPECT_EQ(DeserializeRecords(blocked, GetParam()),
            DeserializeRecords(legacy, GetParam(), LayoutFormat::kLegacy));
  const STRange query = STRange::FromBounds(-1e9, 1e9, -1e9, 1e9,
                                            double(records[10].time),
                                            double(records[200].time));
  EXPECT_EQ(DeserializeRecordsInRange(blocked, GetParam(), query),
            DeserializeRecordsInRange(legacy, GetParam(), query, nullptr,
                                      LayoutFormat::kLegacy));
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ZoneMapLayoutTest,
    ::testing::Values(Layout::kRow, Layout::kColumn),
    [](const ::testing::TestParamInfo<Layout>& info) {
      return std::string(LayoutName(info.param));
    });

// --- Segment versioning -------------------------------------------------

class SegmentVersioningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("blot_zone_map_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    TaxiFleetConfig config;
    config.num_taxis = 6;
    config.samples_per_taxi = 250;
    dataset_ = GenerateTaxiFleet(config);
    universe_ = config.Universe();
  }

  void TearDown() override { fs::remove_all(dir_); }

  Replica BuildReplica(const char* encoding = "COL-SNAPPY") {
    return Replica::Build(dataset_,
                          {{.spatial_partitions = 4, .temporal_partitions = 4},
                           EncodingScheme::FromName(encoding)},
                          universe_);
  }

  static void WriteFile(const fs::path& path, const Bytes& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out.write(reinterpret_cast<const char*>(contents.data()),
              std::streamsize(contents.size()));
  }

  static void PutRange(ByteWriter& w, const STRange& r) {
    w.PutF64(r.x_min());
    w.PutF64(r.x_max());
    w.PutF64(r.y_min());
    w.PutF64(r.y_max());
    w.PutF64(r.t_min());
    w.PutF64(r.t_max());
  }

  fs::path dir_;
  Dataset dataset_;
  STRange universe_;
};

TEST_F(SegmentVersioningTest, Version2RoundTripPreservesFormatAndZones) {
  const Replica original = BuildReplica();
  SegmentStore::Save(original, dir_);
  const Replica loaded = SegmentStore::Load(dir_);
  ASSERT_EQ(loaded.NumPartitions(), original.NumPartitions());
  bool any_zone = false;
  for (std::size_t p = 0; p < original.NumPartitions(); ++p) {
    const StoredPartition& before = original.partition(p);
    const StoredPartition& after = loaded.partition(p);
    EXPECT_EQ(after.format, before.format);
    EXPECT_EQ(after.format, LayoutFormat::kBlocked);
    ASSERT_EQ(after.has_zone, before.has_zone);
    if (before.has_zone) {
      any_zone = true;
      EXPECT_EQ(after.zone, before.zone);
    }
  }
  EXPECT_TRUE(any_zone);  // real data must produce zones
  EXPECT_EQ(loaded.Reconstruct(), original.Reconstruct());
}

TEST_F(SegmentVersioningTest, HandWrittenVersion1ManifestLoadsAsLegacy) {
  // Reconstruct the exact pre-zone-map on-disk shape: a version-1
  // manifest (no per-partition format/zone fields) over legacy-format
  // payloads, written by hand. Load must come back as kLegacy with no
  // zones and answer queries identically to a fresh replica.
  const Replica modern = BuildReplica();
  const EncodingScheme scheme = modern.config().encoding;

  Bytes segments;
  std::vector<std::uint64_t> offsets;
  std::vector<Bytes> payloads;
  for (std::size_t p = 0; p < modern.NumPartitions(); ++p) {
    const std::vector<Record> records = modern.DecodePartitionRecords(p);
    Bytes data = EncodePartition(records, scheme, LayoutFormat::kLegacy);
    offsets.push_back(segments.size());
    segments.insert(segments.end(), data.begin(), data.end());
    payloads.push_back(std::move(data));
  }
  fs::create_directories(dir_);
  WriteFile(dir_ / "segments.dat", segments);

  ByteWriter manifest;
  manifest.PutU64(0x31474553544F4C42ull);  // "BLOTSEG1"
  manifest.PutU32(1);                      // pre-zone-map version
  manifest.PutString(scheme.Name());
  manifest.PutU8(0);  // uniform policy
  manifest.PutString(
      SpatialMethodName(modern.config().partitioning.method));
  manifest.PutVarint(modern.config().partitioning.spatial_partitions);
  manifest.PutVarint(modern.config().partitioning.temporal_partitions);
  PutRange(manifest, modern.universe());
  manifest.PutVarint(modern.NumPartitions());
  for (std::size_t p = 0; p < modern.NumPartitions(); ++p) {
    PutRange(manifest, modern.index().Range(p));
    manifest.PutVarint(modern.partition(p).num_records);
    manifest.PutVarint(offsets[p]);
    manifest.PutVarint(payloads[p].size());
    manifest.PutU64(Fnv1a64(payloads[p]));
    manifest.PutString(std::string(CodecKindName(modern.partition(p).codec)));
    // Deliberately no format / zone fields: version 1 predates them.
  }
  manifest.PutU64(Fnv1a64(manifest.buffer()));
  WriteFile(dir_ / "manifest.blot", manifest.buffer());

  const Replica loaded = SegmentStore::Load(dir_);
  for (std::size_t p = 0; p < loaded.NumPartitions(); ++p) {
    EXPECT_EQ(loaded.partition(p).format, LayoutFormat::kLegacy);
    EXPECT_FALSE(loaded.partition(p).has_zone);
  }
  // Legacy partitions answer queries (fused scan, no block pruning)
  // identically to the modern replica.
  const STRange query = STRange::FromCentroid(
      {universe_.Width() / 3, universe_.Height() / 3,
       universe_.Duration() / 3},
      universe_.Centroid());
  EXPECT_EQ(loaded.Execute(query).records, modern.Execute(query).records);
  EXPECT_EQ(loaded.Reconstruct(), modern.Reconstruct());
}

TEST_F(SegmentVersioningTest, UnknownManifestVersionRejected) {
  SegmentStore::Save(BuildReplica(), dir_);
  Bytes manifest;
  {
    std::ifstream in(dir_ / "manifest.blot", std::ios::binary);
    manifest.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  manifest[8] = 99;  // version field follows the 8-byte magic
  // Re-seal the tampered manifest so the version check (not the
  // checksum) is what rejects it.
  const BytesView body(manifest.data(), manifest.size() - 8);
  const std::uint64_t checksum = Fnv1a64(body);
  for (int i = 0; i < 8; ++i)
    manifest[manifest.size() - 8 + i] =
        std::uint8_t(checksum >> (8 * i));
  WriteFile(dir_ / "manifest.blot", manifest);
  EXPECT_THROW(SegmentStore::Load(dir_), CorruptData);
}

}  // namespace
}  // namespace blot
