#include "blot/aggregate.h"

#include <gtest/gtest.h>

#include <set>

#include "core/workload.h"
#include "gen/taxi_generator.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  Replica replica;

  Fixture()
      : replica(Build()) {}

  Replica Build() {
    TaxiFleetConfig config;
    config.num_taxis = 12;
    config.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    return Replica::Build(
        dataset,
        {{.spatial_partitions = 16, .temporal_partitions = 8},
         EncodingScheme::FromName("COL-GZIP")},
        universe);
  }

  // Ground-truth statistics by direct filter.
  RangeStatistics BruteForce(const STRange& query) const {
    RangeStatistics s;
    std::set<std::uint32_t> objects;
    for (const Record& r : dataset.FilterByRange(query)) {
      ++s.count;
      if (r.status == 1) {
        ++s.occupied;
        s.fare_cents_sum += r.fare_cents;
      }
      s.speed_sum += r.speed;
      s.first_time = std::min(s.first_time, r.time);
      s.last_time = std::max(s.last_time, r.time);
      objects.insert(r.oid);
    }
    s.distinct_objects = objects.size();
    return s;
  }
};

TEST(AggregateTest, MatchesBruteForceAcrossQuerySizes) {
  const Fixture f;
  Rng rng(3);
  for (const double frac : {0.05, 0.2, 0.5, 1.0}) {
    const STRange query = SampleQueryInstance(
        {{f.universe.Width() * frac, f.universe.Height() * frac,
          f.universe.Duration() * frac}},
        f.universe, rng);
    const RangeStatistics got = AggregateRange(f.replica, query);
    const RangeStatistics want = f.BruteForce(query);
    EXPECT_EQ(got.count, want.count) << "frac " << frac;
    EXPECT_EQ(got.occupied, want.occupied);
    EXPECT_EQ(got.distinct_objects, want.distinct_objects);
    EXPECT_DOUBLE_EQ(got.fare_cents_sum, want.fare_cents_sum);
    EXPECT_NEAR(got.speed_sum, want.speed_sum,
                1e-9 * std::max(1.0, want.speed_sum));
    EXPECT_EQ(got.first_time, want.first_time);
    EXPECT_EQ(got.last_time, want.last_time);
  }
}

TEST(AggregateTest, WholeUniverseCoversEverything) {
  const Fixture f;
  const RangeStatistics s = AggregateRange(f.replica, f.universe);
  EXPECT_EQ(s.count, f.dataset.size());
  EXPECT_EQ(s.distinct_objects, 12u);
  EXPECT_EQ(s.stats.partitions_scanned, f.replica.NumPartitions());
  EXPECT_GT(s.MeanSpeed(), 0.0);
  EXPECT_GT(s.OccupancyRate(), 0.0);
  EXPECT_LT(s.OccupancyRate(), 1.0);
}

TEST(AggregateTest, EmptyRangeYieldsZeroes) {
  const Fixture f;
  const RangeStatistics s = AggregateRange(
      f.replica, STRange::FromBounds(0, 1, 0, 1, 0, 1));
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.distinct_objects, 0u);
  EXPECT_EQ(s.MeanSpeed(), 0.0);
  EXPECT_EQ(s.OccupancyRate(), 0.0);
  EXPECT_EQ(s.stats.partitions_scanned, 0u);
}

TEST(AggregateTest, ParallelMatchesSerial) {
  const Fixture f;
  ThreadPool pool(4);
  Rng rng(5);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() * 0.4, f.universe.Height() * 0.4,
        f.universe.Duration() * 0.4}},
      f.universe, rng);
  const RangeStatistics serial = AggregateRange(f.replica, query);
  const RangeStatistics parallel = AggregateRange(f.replica, query, &pool);
  EXPECT_EQ(serial.count, parallel.count);
  EXPECT_EQ(serial.occupied, parallel.occupied);
  EXPECT_EQ(serial.distinct_objects, parallel.distinct_objects);
  EXPECT_DOUBLE_EQ(serial.fare_cents_sum, parallel.fare_cents_sum);
}

TEST(AggregateTest, ScanAccountingMatchesQueryPath) {
  const Fixture f;
  Rng rng(7);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() * 0.3, f.universe.Height() * 0.3,
        f.universe.Duration() * 0.3}},
      f.universe, rng);
  const RangeStatistics agg = AggregateRange(f.replica, query);
  const QueryResult full = f.replica.Execute(query);
  EXPECT_EQ(agg.stats.partitions_scanned, full.stats.partitions_scanned);
  EXPECT_EQ(agg.stats.records_scanned, full.stats.records_scanned);
  EXPECT_EQ(agg.stats.bytes_read, full.stats.bytes_read);
  EXPECT_EQ(agg.count, full.records.size());
}

}  // namespace
}  // namespace blot
