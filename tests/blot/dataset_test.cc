#include "blot/dataset.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

Dataset SmallFleet() {
  TaxiFleetConfig config;
  config.num_taxis = 10;
  config.samples_per_taxi = 200;
  return GenerateTaxiFleet(config);
}

TEST(DatasetTest, BoundingBoxCoversAllRecords) {
  const Dataset d = SmallFleet();
  const STRange box = d.BoundingBox();
  for (const Record& r : d.records())
    EXPECT_TRUE(box.Contains(r.Position()));
}

TEST(DatasetTest, BoundingBoxOfEmptyDatasetIsEmpty) {
  EXPECT_TRUE(Dataset().BoundingBox().empty());
}

TEST(DatasetTest, SampleWithoutReplacement) {
  const Dataset d = SmallFleet();
  Rng rng(3);
  const Dataset sample = d.Sample(500, rng);
  EXPECT_EQ(sample.size(), 500u);
  // All sampled records occur in the original.
  std::multiset<std::int64_t> times;
  for (const Record& r : d.records()) times.insert(r.time);
  for (const Record& r : sample.records())
    EXPECT_TRUE(times.contains(r.time));
}

TEST(DatasetTest, SampleLargerThanDatasetReturnsAll) {
  const Dataset d = SmallFleet();
  Rng rng(3);
  EXPECT_EQ(d.Sample(d.size() * 2, rng).size(), d.size());
}

TEST(DatasetTest, FilterByRangeMatchesManualScan) {
  const Dataset d = SmallFleet();
  const STRange box = d.BoundingBox();
  const STRange query = STRange::FromCentroid(
      {box.Width() / 4, box.Height() / 4, box.Duration() / 4},
      box.Centroid());
  const auto filtered = d.FilterByRange(query);
  std::size_t expected = 0;
  for (const Record& r : d.records())
    if (query.Contains(r.Position())) ++expected;
  EXPECT_EQ(filtered.size(), expected);
  EXPECT_GT(filtered.size(), 0u);
  EXPECT_LT(filtered.size(), d.size());
}

TEST(DatasetTest, SortByObjectAndTime) {
  Dataset d = SmallFleet();
  d.SortByObjectAndTime();
  for (std::size_t i = 1; i < d.size(); ++i) {
    const Record& a = d.records()[i - 1];
    const Record& b = d.records()[i];
    EXPECT_TRUE(a.oid < b.oid || (a.oid == b.oid && a.time <= b.time));
  }
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset d = SmallFleet();
  std::stringstream buffer;
  d.WriteCsv(buffer);
  EXPECT_EQ(Dataset::ReadCsv(buffer), d);
}

TEST(DatasetTest, CsvRejectsBadHeader) {
  std::stringstream buffer("a,b,c\n1,2,3\n");
  EXPECT_THROW(Dataset::ReadCsv(buffer), CorruptData);
}

TEST(DatasetTest, BinaryRoundTrip) {
  Dataset d = SmallFleet();
  std::stringstream buffer;
  d.WriteBinary(buffer);
  EXPECT_EQ(Dataset::ReadBinary(buffer), d);
}

TEST(DatasetTest, BinaryRejectsTruncation) {
  Dataset d = SmallFleet();
  std::stringstream buffer;
  d.WriteBinary(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 7);
  std::stringstream truncated(bytes);
  EXPECT_THROW(Dataset::ReadBinary(truncated), CorruptData);
}

TEST(DatasetTest, AppendDataset) {
  Dataset a = SmallFleet();
  const std::size_t original = a.size();
  Dataset b;
  b.Append(Record{.oid = 99});
  a.Append(b);
  EXPECT_EQ(a.size(), original + 1);
  EXPECT_EQ(a.records().back().oid, 99u);
}

}  // namespace
}  // namespace blot
