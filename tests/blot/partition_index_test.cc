#include "blot/partition_index.h"

#include <gtest/gtest.h>

#include "blot/partitioner.h"
#include "core/workload.h"
#include "gen/taxi_generator.h"
#include "util/rng.h"

namespace blot {
namespace {

PartitionIndex FleetIndex(STRange& universe_out) {
  TaxiFleetConfig config;
  config.num_taxis = 15;
  config.samples_per_taxi = 300;
  const Dataset d = GenerateTaxiFleet(config);
  universe_out = config.Universe();
  PartitionedData pd = PartitionDataset(
      d, {.spatial_partitions = 16, .temporal_partitions = 8}, universe_out);
  return PartitionIndex(std::move(pd.ranges));
}

TEST(PartitionIndexTest, InvolvedMatchesBruteForce) {
  STRange universe;
  const PartitionIndex index = FleetIndex(universe);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const GroupedQuery q{{universe.Width() * rng.NextDouble(0.01, 0.8),
                          universe.Height() * rng.NextDouble(0.01, 0.8),
                          universe.Duration() * rng.NextDouble(0.01, 0.8)}};
    const STRange query = SampleQueryInstance(q, universe, rng);
    const auto involved = index.InvolvedPartitions(query);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < index.NumPartitions(); ++i)
      if (index.Range(i).Intersects(query)) expected.push_back(i);
    EXPECT_EQ(involved, expected);
    EXPECT_EQ(index.CountInvolved(query), expected.size());
  }
}

TEST(PartitionIndexTest, FullUniverseQueryInvolvesAllPartitions) {
  STRange universe;
  const PartitionIndex index = FleetIndex(universe);
  EXPECT_EQ(index.CountInvolved(universe), index.NumPartitions());
}

TEST(PartitionIndexTest, DisjointQueryInvolvesNone) {
  STRange universe;
  const PartitionIndex index = FleetIndex(universe);
  const STRange far = STRange::FromBounds(500, 501, 500, 501, 0, 1);
  EXPECT_EQ(index.CountInvolved(far), 0u);
  EXPECT_TRUE(index.InvolvedPartitions(far).empty());
}

TEST(PartitionIndexTest, CoverEqualsUniverseForTilingSchemes) {
  STRange universe;
  const PartitionIndex index = FleetIndex(universe);
  const STRange cover = index.Cover();
  EXPECT_NEAR(cover.x_min(), universe.x_min(), 1e-12);
  EXPECT_NEAR(cover.x_max(), universe.x_max(), 1e-12);
  EXPECT_NEAR(cover.t_min(), universe.t_min(), 1e-9);
  EXPECT_NEAR(cover.t_max(), universe.t_max(), 1e-9);
}

TEST(PartitionIndexTest, RandomNonTilingRangesMatchBruteForce) {
  // The temporal bucketing must be correct for arbitrary (overlapping,
  // gappy, skewed-duration) range sets, not just partitioner tilings.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<STRange> ranges;
    const std::size_t n = 1 + rng.NextUint64(400);
    for (std::size_t i = 0; i < n; ++i) {
      const double x0 = rng.NextDouble(0, 100);
      const double y0 = rng.NextDouble(0, 100);
      const double t0 = rng.NextDouble(0, 1000);
      ranges.push_back(STRange::FromBounds(
          x0, x0 + rng.NextDouble(0, 30), y0, y0 + rng.NextDouble(0, 30),
          t0, t0 + rng.NextExponential(0.01)));
    }
    const PartitionIndex index(ranges);
    for (int q = 0; q < 30; ++q) {
      const double x0 = rng.NextDouble(-10, 110);
      const double y0 = rng.NextDouble(-10, 110);
      const double t0 = rng.NextDouble(-100, 1100);
      const STRange query = STRange::FromBounds(
          x0, x0 + rng.NextDouble(0, 50), y0, y0 + rng.NextDouble(0, 50),
          t0, t0 + rng.NextDouble(0, 500));
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < ranges.size(); ++i)
        if (ranges[i].Intersects(query)) expected.push_back(i);
      ASSERT_EQ(index.InvolvedPartitions(query), expected)
          << "trial " << trial << " query " << q;
    }
  }
}

TEST(PartitionIndexTest, ZeroDurationUniverse) {
  // All partitions at the same instant: bucketing degenerates to one
  // bucket and must still work.
  std::vector<STRange> ranges;
  for (int i = 0; i < 10; ++i)
    ranges.push_back(
        STRange::FromBounds(i, i + 1, 0, 1, 42, 42));
  const PartitionIndex index(ranges);
  EXPECT_EQ(index.CountInvolved(STRange::FromBounds(0, 100, 0, 1, 42, 42)),
            10u);
  EXPECT_EQ(index.CountInvolved(STRange::FromBounds(0, 100, 0, 1, 43, 44)),
            0u);
}

TEST(PartitionIndexTest, EmptyIndex) {
  const PartitionIndex index;
  EXPECT_EQ(index.NumPartitions(), 0u);
  EXPECT_TRUE(index.Cover().empty());
  EXPECT_EQ(index.CountInvolved(STRange::FromBounds(0, 1, 0, 1, 0, 1)), 0u);
}

}  // namespace
}  // namespace blot
