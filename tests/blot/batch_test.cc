#include "blot/batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/fixtures.h"
#include "core/workload.h"

namespace blot {
namespace {

using test::Sorted;

struct Fixture : test::TaxiFixture {
  Replica replica;

  Fixture()
      : TaxiFixture(12, 300),
        replica(Replica::Build(
            dataset,
            {{.spatial_partitions = 16, .temporal_partitions = 8},
             EncodingScheme::FromName("COL-GZIP")},
            universe)) {}

  // An overlapping grid of queries, like a heat-map computation.
  std::vector<STRange> GridQueries(int cells) const {
    std::vector<STRange> queries;
    for (int gx = 0; gx < cells; ++gx) {
      for (int gy = 0; gy < cells; ++gy) {
        queries.push_back(STRange::FromBounds(
            universe.x_min() + universe.Width() * gx / cells,
            universe.x_min() + universe.Width() * (gx + 1) / cells,
            universe.y_min() + universe.Height() * gy / cells,
            universe.y_min() + universe.Height() * (gy + 1) / cells,
            universe.t_min(), universe.t_max()));
      }
    }
    return queries;
  }
};

TEST(ExecuteBatchTest, MatchesPerQueryExecution) {
  const Fixture f;
  const std::vector<STRange> queries = f.GridQueries(4);
  const BatchResult batch = ExecuteBatch(f.replica, queries);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Sorted(batch.per_query[q]),
              Sorted(f.replica.Execute(queries[q]).records))
        << "query " << q;
  }
}

TEST(ExecuteBatchTest, SharedScanBeatsNaiveScanCount) {
  const Fixture f;
  // Whole-month grid cells: each partition is involved in several cells'
  // queries, so sharing must be substantial.
  const std::vector<STRange> queries = f.GridQueries(6);
  const BatchResult batch = ExecuteBatch(f.replica, queries);
  EXPECT_GT(batch.naive_partition_scans, batch.stats.partitions_scanned);
  EXPECT_LE(batch.stats.partitions_scanned, f.replica.NumPartitions());
  // 36 overlapping queries over 128 partitions: at least 2x sharing.
  EXPECT_GT(static_cast<double>(batch.naive_partition_scans) /
                static_cast<double>(batch.stats.partitions_scanned),
            2.0);
}

TEST(ExecuteBatchTest, EmptyBatch) {
  const Fixture f;
  const BatchResult batch = ExecuteBatch(f.replica, {});
  EXPECT_TRUE(batch.per_query.empty());
  EXPECT_EQ(batch.stats.partitions_scanned, 0u);
}

TEST(ExecuteBatchTest, DisjointQueriesStillCorrect) {
  const Fixture f;
  const std::vector<STRange> queries = {
      STRange::FromBounds(0, 1, 0, 1, 0, 1),  // far away: no matches
      f.universe,                              // everything
  };
  const BatchResult batch = ExecuteBatch(f.replica, queries);
  EXPECT_TRUE(batch.per_query[0].empty());
  EXPECT_EQ(batch.per_query[1].size(), f.dataset.size());
}

TEST(ExecuteBatchTest, ParallelMatchesSerial) {
  const Fixture f;
  ThreadPool pool(4);
  const std::vector<STRange> queries = f.GridQueries(3);
  const BatchResult serial = ExecuteBatch(f.replica, queries);
  const BatchResult parallel = ExecuteBatch(f.replica, queries, &pool);
  ASSERT_EQ(serial.per_query.size(), parallel.per_query.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(Sorted(serial.per_query[q]), Sorted(parallel.per_query[q]));
  EXPECT_EQ(serial.stats.records_scanned, parallel.stats.records_scanned);
}

}  // namespace
}  // namespace blot
