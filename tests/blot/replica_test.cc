#include "blot/replica.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixtures.h"
#include "core/workload.h"
#include "util/error.h"

namespace blot {
namespace {

using test::Sorted;

struct Fixture : test::TaxiFixture {
  Fixture() : TaxiFixture(12, 400) {}
};

class ReplicaTest : public ::testing::TestWithParam<ReplicaConfig> {};

TEST_P(ReplicaTest, QueriesMatchBruteForceGroundTruth) {
  const Fixture f;
  const Replica replica =
      Replica::Build(f.dataset, GetParam(), f.universe);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const GroupedQuery q{
        {f.universe.Width() * rng.NextDouble(0.05, 0.6),
         f.universe.Height() * rng.NextDouble(0.05, 0.6),
         f.universe.Duration() * rng.NextDouble(0.05, 0.6)}};
    const STRange query = SampleQueryInstance(q, f.universe, rng);
    const QueryResult result = replica.Execute(query);
    EXPECT_EQ(Sorted(result.records),
              Sorted(f.dataset.FilterByRange(query)))
        << "trial " << trial;
    EXPECT_GE(result.stats.records_scanned, result.records.size());
  }
}

TEST_P(ReplicaTest, ReconstructRecoversLogicalView) {
  const Fixture f;
  const Replica replica =
      Replica::Build(f.dataset, GetParam(), f.universe);
  EXPECT_EQ(Sorted(replica.Reconstruct().records()),
            Sorted(f.dataset.records()));
}

TEST_P(ReplicaTest, StorageAccounting) {
  const Fixture f;
  const Replica replica =
      Replica::Build(f.dataset, GetParam(), f.universe);
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < replica.NumPartitions(); ++p)
    total += replica.partition(p).data.size();
  EXPECT_EQ(replica.StorageBytes(), total);
  EXPECT_GT(replica.StorageBytes(), 0u);
  EXPECT_EQ(replica.NumRecords(), f.dataset.size());
  EXPECT_EQ(replica.NumPartitions(),
            GetParam().partitioning.TotalPartitions());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ReplicaTest,
    ::testing::Values(
        ReplicaConfig{{.spatial_partitions = 4, .temporal_partitions = 4},
                      EncodingScheme::FromName("ROW-PLAIN")},
        ReplicaConfig{{.spatial_partitions = 16, .temporal_partitions = 8},
                      EncodingScheme::FromName("ROW-GZIP")},
        ReplicaConfig{{.spatial_partitions = 16, .temporal_partitions = 8},
                      EncodingScheme::FromName("COL-LZMA")},
        ReplicaConfig{{.spatial_partitions = 64, .temporal_partitions = 4},
                      EncodingScheme::FromName("COL-SNAPPY")},
        ReplicaConfig{{.spatial_partitions = 8,
                       .temporal_partitions = 8,
                       .method = SpatialMethod::kGrid},
                      EncodingScheme::FromName("ROW-SNAPPY")}),
    [](const ::testing::TestParamInfo<ReplicaConfig>& info) {
      std::string name = info.param.Name();
      for (char& c : name)
        if (c == '-' || c == '/') c = '_';
      return name;
    });

TEST(ReplicaParallelTest, ParallelBuildAndQueryMatchSerial) {
  const Fixture f;
  const ReplicaConfig config{
      {.spatial_partitions = 16, .temporal_partitions = 8},
      EncodingScheme::FromName("COL-GZIP")};
  ThreadPool pool(4);
  const Replica serial = Replica::Build(f.dataset, config, f.universe);
  const Replica parallel =
      Replica::Build(f.dataset, config, f.universe, &pool);
  EXPECT_EQ(serial.StorageBytes(), parallel.StorageBytes());

  Rng rng(13);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() / 3, f.universe.Height() / 3,
        f.universe.Duration() / 3}},
      f.universe, rng);
  const QueryResult a = serial.Execute(query);
  const QueryResult b = parallel.Execute(query, &pool);
  EXPECT_EQ(Sorted(a.records), Sorted(b.records));
  EXPECT_EQ(a.stats.records_scanned, b.stats.records_scanned);
}

TEST(ReplicaIntegrityTest, CorruptPartitionDetectedOnRead) {
  const Fixture f;
  Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-GZIP")},
      f.universe);
  StoredPartition& victim = replica.MutablePartition(3);
  ASSERT_FALSE(victim.data.empty());
  victim.data[victim.data.size() / 2] ^= 0xFF;
  EXPECT_THROW(replica.DecodePartitionRecords(3), CorruptData);
  // Untouched partitions still decode.
  EXPECT_NO_THROW(replica.DecodePartitionRecords(0));
}

TEST(ReplicaRecoveryTest, DiverseReplicaRecoversAnother) {
  const Fixture f;
  const Replica row_replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 16, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-SNAPPY")},
      f.universe);
  // Rebuild a differently-organized replica purely from the survivor.
  const ReplicaConfig lost_config{
      {.spatial_partitions = 4, .temporal_partitions = 16},
      EncodingScheme::FromName("COL-LZMA")};
  const Replica recovered = RecoverReplica(row_replica, lost_config);
  EXPECT_EQ(recovered.config(), lost_config);
  EXPECT_EQ(Sorted(recovered.Reconstruct().records()),
            Sorted(f.dataset.records()));
  // And the recovered replica answers queries identically.
  Rng rng(17);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() / 4, f.universe.Height() / 4,
        f.universe.Duration() / 4}},
      f.universe, rng);
  EXPECT_EQ(Sorted(recovered.Execute(query).records),
            Sorted(f.dataset.FilterByRange(query)));
}

TEST(ReplicaEdgeTest, QueryOutsideUniverseReturnsNothing) {
  const Fixture f;
  const Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN")},
      f.universe);
  const QueryResult result =
      replica.Execute(STRange::FromBounds(0, 1, 0, 1, 0, 1));
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.stats.partitions_scanned, 0u);
}

TEST(ReplicaEdgeTest, ConfigNameIsStable) {
  const ReplicaConfig config{
      {.spatial_partitions = 64, .temporal_partitions = 32},
      EncodingScheme::FromName("COL-GZIP")};
  EXPECT_EQ(config.Name(), "KD64xT32/COL-GZIP");
}

}  // namespace
}  // namespace blot
