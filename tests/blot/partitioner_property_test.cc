// Property tests: partitioning invariants over randomized datasets —
// uniform, clustered, degenerate, and adversarial distributions, across a
// sweep of schemes. These pin down the contracts every other layer
// relies on: exact partition counts, exactly-once record assignment,
// geometric containment, and universe tiling.
#include <gtest/gtest.h>

#include <numeric>

#include "blot/partitioner.h"
#include "util/rng.h"

namespace blot {
namespace {

enum class Distribution { kUniform, kClustered, kDiagonal, kSinglePoint,
                          kTwoClumps };

Dataset MakeDataset(Distribution distribution, std::size_t n, Rng& rng,
                    const STRange& universe) {
  Dataset dataset;
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    r.oid = static_cast<std::uint32_t>(i);
    switch (distribution) {
      case Distribution::kUniform:
        r.x = rng.NextDouble(universe.x_min(), universe.x_max());
        r.y = rng.NextDouble(universe.y_min(), universe.y_max());
        r.time = rng.NextInt64(static_cast<std::int64_t>(universe.t_min()),
                               static_cast<std::int64_t>(universe.t_max()));
        break;
      case Distribution::kClustered: {
        const double cx = universe.Centroid().x + rng.NextGaussian() * 0.05;
        const double cy = universe.Centroid().y + rng.NextGaussian() * 0.05;
        r.x = std::clamp(cx, universe.x_min(), universe.x_max());
        r.y = std::clamp(cy, universe.y_min(), universe.y_max());
        r.time = rng.NextInt64(static_cast<std::int64_t>(universe.t_min()),
                               static_cast<std::int64_t>(universe.t_max()));
        break;
      }
      case Distribution::kDiagonal: {
        const double f = rng.NextDouble();
        r.x = universe.x_min() + universe.Width() * f;
        r.y = universe.y_min() + universe.Height() * f;
        r.time = static_cast<std::int64_t>(universe.t_min() +
                                           universe.Duration() * f);
        break;
      }
      case Distribution::kSinglePoint:
        r.x = universe.Centroid().x;
        r.y = universe.Centroid().y;
        r.time = static_cast<std::int64_t>(universe.Centroid().t);
        break;
      case Distribution::kTwoClumps: {
        const bool first = rng.NextBool();
        r.x = first ? universe.x_min() : universe.x_max();
        r.y = first ? universe.y_min() : universe.y_max();
        r.time = static_cast<std::int64_t>(
            first ? universe.t_min() : universe.t_max());
        break;
      }
    }
    dataset.Append(r);
  }
  return dataset;
}

struct PropertyCase {
  Distribution distribution;
  std::size_t records;
  PartitioningSpec spec;
};

class PartitionerPropertyTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(PartitionerPropertyTest, InvariantsHoldAcrossRandomSchemes) {
  const STRange universe =
      STRange::FromBounds(120, 122, 30, 32, 0, 2419200);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000 + 1);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 1 + rng.NextUint64(3000);
    const Dataset dataset = MakeDataset(GetParam(), n, rng, universe);
    const PartitioningSpec spec{
        .spatial_partitions = 1 + rng.NextUint64(40),
        .temporal_partitions = 1 + rng.NextUint64(20),
        .method = rng.NextBool() ? SpatialMethod::kKdTree
                                 : SpatialMethod::kGrid};
    const PartitionedData pd = PartitionDataset(dataset, spec, universe);

    // Exact partition count.
    ASSERT_EQ(pd.NumPartitions(), spec.TotalPartitions());
    // Every record assigned exactly once.
    std::vector<int> seen(dataset.size(), 0);
    for (const auto& members : pd.members)
      for (std::uint32_t index : members) {
        ASSERT_LT(index, dataset.size());
        seen[index]++;
      }
    ASSERT_EQ(std::accumulate(seen.begin(), seen.end(), 0),
              static_cast<int>(dataset.size()));
    for (int count : seen) ASSERT_EQ(count, 1);
    // Geometric containment of members; ranges within universe.
    double volume = 0;
    for (std::size_t p = 0; p < pd.NumPartitions(); ++p) {
      ASSERT_TRUE(universe.Contains(pd.ranges[p]));
      volume += pd.ranges[p].Volume();
      for (std::uint32_t index : pd.members[p])
        ASSERT_TRUE(pd.ranges[p].Contains(
            dataset.records()[index].Position()))
            << spec.Name() << " trial " << trial;
    }
    // Tiling (volumes sum to the universe volume).
    ASSERT_NEAR(volume / universe.Volume(), 1.0, 1e-9)
        << spec.Name() << " trial " << trial;
  }
}

TEST_P(PartitionerPropertyTest, KdTreeSkewStaysBoundedWhenDataIsSpread) {
  // Equal-count splitting keeps skew low whenever records are distinct
  // (ties force imbalance only for degenerate distributions).
  if (GetParam() == Distribution::kSinglePoint ||
      GetParam() == Distribution::kTwoClumps)
    GTEST_SKIP() << "degenerate distributions legitimately skew";
  const STRange universe =
      STRange::FromBounds(120, 122, 30, 32, 0, 2419200);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000 + 2);
  const Dataset dataset = MakeDataset(GetParam(), 8000, rng, universe);
  const PartitioningSpec spec{.spatial_partitions = 16,
                              .temporal_partitions = 8};
  const PartitionedData pd = PartitionDataset(dataset, spec, universe);
  EXPECT_LT(PartitionSkew(pd, dataset.size()), 1.5) << spec.Name();
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, PartitionerPropertyTest,
    ::testing::Values(Distribution::kUniform, Distribution::kClustered,
                      Distribution::kDiagonal, Distribution::kSinglePoint,
                      Distribution::kTwoClumps),
    [](const ::testing::TestParamInfo<Distribution>& info) {
      switch (info.param) {
        case Distribution::kUniform: return "Uniform";
        case Distribution::kClustered: return "Clustered";
        case Distribution::kDiagonal: return "Diagonal";
        case Distribution::kSinglePoint: return "SinglePoint";
        case Distribution::kTwoClumps: return "TwoClumps";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace blot
