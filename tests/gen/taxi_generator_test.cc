#include "gen/taxi_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/error.h"

namespace blot {
namespace {

TaxiFleetConfig SmallConfig() {
  TaxiFleetConfig config;
  config.num_taxis = 20;
  config.samples_per_taxi = 300;
  return config;
}

TEST(TaxiGeneratorTest, ProducesRequestedRecordCount) {
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  EXPECT_EQ(d.size(), config.TotalRecords());
}

TEST(TaxiGeneratorTest, DeterministicForSameSeed) {
  const TaxiFleetConfig config = SmallConfig();
  EXPECT_EQ(GenerateTaxiFleet(config), GenerateTaxiFleet(config));
}

TEST(TaxiGeneratorTest, DifferentSeedsDiffer) {
  TaxiFleetConfig a = SmallConfig();
  TaxiFleetConfig b = SmallConfig();
  b.seed = a.seed + 1;
  EXPECT_NE(GenerateTaxiFleet(a), GenerateTaxiFleet(b));
}

TEST(TaxiGeneratorTest, AllRecordsInsideUniverse) {
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  const STRange universe = config.Universe();
  for (const Record& r : d.records())
    ASSERT_TRUE(universe.Contains(r.Position()));
}

TEST(TaxiGeneratorTest, PerTaxiTimesAreNonDecreasing) {
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  std::map<std::uint32_t, std::int64_t> last_time;
  for (const Record& r : d.records()) {
    const auto it = last_time.find(r.oid);
    if (it != last_time.end()) {
      ASSERT_GE(r.time, it->second);
    }
    last_time[r.oid] = r.time;
  }
  EXPECT_EQ(last_time.size(), config.num_taxis);
}

TEST(TaxiGeneratorTest, TrajectoriesAreContinuous) {
  // Consecutive samples of one taxi should be close: a taxi at <= 90 km/h
  // for one mean interval cannot jump across the city.
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  const double interval_hours =
      static_cast<double>(config.duration_seconds) /
      static_cast<double>(config.samples_per_taxi) / 3600.0;
  const double max_step_deg = 90.0 * 1.5 * interval_hours / 111.0 + 1e-6;
  std::map<std::uint32_t, const Record*> previous;
  for (const Record& r : d.records()) {
    const auto it = previous.find(r.oid);
    if (it != previous.end()) {
      const double step =
          std::hypot(r.x - it->second->x, r.y - it->second->y);
      ASSERT_LE(step, max_step_deg);
    }
    previous[r.oid] = &r;
  }
}

TEST(TaxiGeneratorTest, SpatialDistributionIsClustered) {
  // Hotspot attraction must concentrate records: the densest decile of a
  // 10x10 grid should hold far more than 10% of records.
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  std::map<std::pair<int, int>, std::size_t> grid;
  for (const Record& r : d.records()) {
    const int gx = std::min(9, static_cast<int>((r.x - config.x_min) /
                                                (config.x_max - config.x_min) *
                                                10));
    const int gy = std::min(9, static_cast<int>((r.y - config.y_min) /
                                                (config.y_max - config.y_min) *
                                                10));
    grid[{gx, gy}]++;
  }
  std::vector<std::size_t> counts;
  for (const auto& [cell, count] : grid) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, counts.size()); ++i)
    top10 += counts[i];
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(d.size()), 0.3);
}

TEST(TaxiGeneratorTest, OccupancyTogglesAndFaresAccumulate) {
  const TaxiFleetConfig config = SmallConfig();
  const Dataset d = GenerateTaxiFleet(config);
  std::size_t occupied = 0, vacant = 0;
  bool fare_grows = false;
  std::map<std::uint32_t, const Record*> previous;
  for (const Record& r : d.records()) {
    if (r.status == 1) {
      ++occupied;
      EXPECT_GE(r.passengers, 1);
      EXPECT_GT(r.fare_cents, 0u);
    } else {
      ++vacant;
      EXPECT_EQ(r.passengers, 0);
    }
    const auto it = previous.find(r.oid);
    if (it != previous.end() && it->second->status == 1 && r.status == 1 &&
        r.fare_cents > it->second->fare_cents)
      fare_grows = true;
    previous[r.oid] = &r;
  }
  EXPECT_GT(occupied, d.size() / 10);
  EXPECT_GT(vacant, d.size() / 10);
  EXPECT_TRUE(fare_grows);
}

TEST(TaxiGeneratorTest, SpeedAndHeadingInRange) {
  const Dataset d = GenerateTaxiFleet(SmallConfig());
  for (const Record& r : d.records()) {
    ASSERT_GE(r.speed, 0.0f);
    ASSERT_LE(r.speed, 90.0f);
    ASSERT_LT(r.heading, 360);
  }
}

TEST(TaxiGeneratorTest, ValidatesConfig) {
  TaxiFleetConfig config = SmallConfig();
  config.num_taxis = 0;
  EXPECT_THROW(GenerateTaxiFleet(config), InvalidArgument);
  config = SmallConfig();
  config.x_min = config.x_max;
  EXPECT_THROW(GenerateTaxiFleet(config), InvalidArgument);
  config = SmallConfig();
  config.hotspot_bias = 1.5;
  EXPECT_THROW(GenerateTaxiFleet(config), InvalidArgument);
}

}  // namespace
}  // namespace blot
