// Acceptance suite for the differential harness: a long clean run with
// full encoding/partitioning coverage and zero mismatches, determinism of
// the whole report, and the closed loop on failure injection — a fault
// campaign with repair disabled must produce mismatches that replay
// exactly from the printed iteration seed.
#include "testing/differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace blot::testing {
namespace {

TEST(IterationSeedTest, RoundZeroIsTheBaseSeedItself) {
  // This is what makes `blotfuzz --seed=<iteration_seed> --rounds=1` an
  // exact replay.
  EXPECT_EQ(IterationSeed(42, 0), 42u);
  EXPECT_EQ(IterationSeed(0xDEADBEEF, 0), 0xDEADBEEFu);
  EXPECT_NE(IterationSeed(42, 1), IterationSeed(42, 2));
  EXPECT_NE(IterationSeed(42, 1), IterationSeed(43, 1));
}

TEST(ReproCommandTest, CarriesEveryOptionThatShapesTheIteration) {
  DifferentialOptions options;
  options.queries_per_iteration = 5;
  options.replicas_per_iteration = 2;
  options.cache_budget_bytes = 1024;
  options.profile.max_records = 77;
  options.fault_plan = ParseFaultSpec("p=0.3;kinds=bitflip");
  options.failover_enabled = false;
  // Seeds are uniform uint64, frequently above INT64_MAX; the repro
  // line must print them unsigned.
  const std::string repro = ReproCommand(options, 11064657849904403925ull);
  EXPECT_NE(repro.find("--seed=11064657849904403925"), std::string::npos)
      << repro;
  EXPECT_NE(repro.find("--rounds=1"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--queries=5"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--replicas=2"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--cache-bytes=1024"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--max-records=77"), std::string::npos) << repro;
  EXPECT_NE(repro.find("--inject-faults="), std::string::npos) << repro;
  EXPECT_NE(repro.find("--no-repair"), std::string::npos) << repro;
}

// The acceptance bar: 200 seeded iterations, every execution path vs the
// oracle, zero mismatches, with the seed-drawn replica configurations
// covering all 7 encodings and at least 3 distinct partitionings.
TEST(DifferentialHarnessTest, TwoHundredCleanIterationsWithFullCoverage) {
  DifferentialOptions options;
  options.seed = 20140714;  // ICDCS'14
  options.iterations = 200;
  options.queries_per_iteration = 6;
  options.replicas_per_iteration = 3;
  options.profile.max_records = 192;  // keep the suite fast

  const DifferentialReport report = RunDifferential(options);
  for (const Mismatch& m : report.mismatches)
    ADD_FAILURE() << m.check << " " << m.query << ": " << m.detail << "\n  "
                  << m.repro;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations, 200u);
  EXPECT_EQ(report.queries_checked, 200u * 6u);
  EXPECT_GT(report.checks_run, report.queries_checked);
  EXPECT_EQ(report.encodings_covered.size(), 7u)
      << "encodings covered: " << report.encodings_covered.size();
  EXPECT_GE(report.partitionings_covered.size(), 3u);
}

TEST(DifferentialHarnessTest, ReportIsDeterministic) {
  DifferentialOptions options;
  options.seed = 7;
  options.iterations = 5;
  const DifferentialReport a = RunDifferential(options);
  const DifferentialReport b = RunDifferential(options);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.queries_checked, b.queries_checked);
  EXPECT_EQ(a.encodings_covered, b.encodings_covered);
  EXPECT_EQ(a.partitionings_covered, b.partitionings_covered);
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

TEST(DifferentialHarnessTest, FaultsWithFailoverStayEquivalent) {
  // The paper's chaos-equivalence claim: with failover on, injected
  // faults may cost availability (structured QueryFailedError) but never
  // correctness.
  DifferentialOptions options;
  options.seed = 42;
  options.iterations = 10;
  options.fault_plan =
      ParseFaultSpec("p=0.4;kinds=bitflip,readerror,truncate");
  options.failover_enabled = true;
  const DifferentialReport report = RunDifferential(options);
  for (const Mismatch& m : report.mismatches)
    ADD_FAILURE() << m.check << ": " << m.detail;
  EXPECT_TRUE(report.ok());
}

TEST(DifferentialHarnessTest, InjectedFaultsWithoutRepairAreCaught) {
  // With failover and repair disabled every injected fault the routed
  // query touches must surface as a mismatch — this is the harness
  // proving its own detection machinery end to end.
  DifferentialOptions options;
  options.seed = 42;
  options.iterations = 5;
  options.fault_plan = ParseFaultSpec("p=0.6;kinds=bitflip");
  options.failover_enabled = false;
  const DifferentialReport report = RunDifferential(options);
  ASSERT_FALSE(report.mismatches.empty());
  for (const Mismatch& m : report.mismatches) {
    EXPECT_NE(m.repro.find("--seed=" + std::to_string(m.iteration_seed)),
              std::string::npos);
    EXPECT_NE(m.repro.find("--no-repair"), std::string::npos);
    EXPECT_FALSE(m.detail.empty());
  }
}

TEST(DifferentialHarnessTest, MismatchReplaysExactlyFromIterationSeed) {
  // Find a failing iteration in a multi-round campaign, then re-run just
  // that iteration the way the printed repro command would: same
  // mismatch set, independent of which round it originally was.
  DifferentialOptions campaign;
  campaign.seed = 1234;
  campaign.iterations = 6;
  campaign.fault_plan = ParseFaultSpec("p=0.6;kinds=bitflip,torn");
  campaign.failover_enabled = false;
  const DifferentialReport report = RunDifferential(campaign);
  ASSERT_FALSE(report.mismatches.empty());

  const Mismatch& found = report.mismatches.front();
  DifferentialOptions replay = campaign;
  replay.seed = found.iteration_seed;
  replay.iterations = 1;
  const DifferentialReport replayed = RunDifferential(replay);

  ASSERT_FALSE(replayed.mismatches.empty());
  const bool reproduced = std::any_of(
      replayed.mismatches.begin(), replayed.mismatches.end(),
      [&](const Mismatch& m) {
        return m.check == found.check && m.query == found.query &&
               m.detail == found.detail;
      });
  EXPECT_TRUE(reproduced)
      << "original: " << found.check << " " << found.query
      << "\n  not among " << replayed.mismatches.size()
      << " replayed mismatches";

  // And the replay is itself stable.
  const DifferentialReport again = RunDifferential(replay);
  ASSERT_EQ(again.mismatches.size(), replayed.mismatches.size());
  for (std::size_t i = 0; i < again.mismatches.size(); ++i) {
    EXPECT_EQ(again.mismatches[i].check, replayed.mismatches[i].check);
    EXPECT_EQ(again.mismatches[i].detail, replayed.mismatches[i].detail);
  }
}

}  // namespace
}  // namespace blot::testing
