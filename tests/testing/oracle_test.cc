#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/generator.h"
#include "util/rng.h"

namespace blot::testing {
namespace {

Record At(double x, double y, std::int64_t time, std::uint32_t oid = 0) {
  Record r;
  r.oid = oid;
  r.time = time;
  r.x = x;
  r.y = y;
  return r;
}

TEST(RecordTotalLessTest, IsAStrictTotalOrderOverAllFields) {
  const Record a = At(1, 2, 3, 4);
  EXPECT_FALSE(RecordTotalLess(a, a));  // irreflexive

  // Any single differing field breaks the tie, including the trailing
  // attributes a position-only order would ignore.
  Record b = a;
  b.fare_cents = 1;
  EXPECT_TRUE(RecordTotalLess(a, b) != RecordTotalLess(b, a));
  Record c = a;
  c.passengers = 9;
  EXPECT_TRUE(RecordTotalLess(a, c) != RecordTotalLess(c, a));
}

TEST(CanonicalTest, ShuffledMultisetsSortIdentically) {
  Rng rng(5);
  const STRange universe = DefaultTestUniverse();
  DatasetProfile profile;
  profile.duplicate_fraction = 0.5;  // equal records stress tie-breaking
  const Dataset dataset = GenerateDataset(rng, universe, profile);

  std::vector<Record> shuffled = dataset.records();
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[rng.NextUint64(i)]);
  EXPECT_EQ(Canonical(shuffled), Canonical(dataset.records()));
}

TEST(OracleTest, AgreesWithDatasetFilterOnGeneratedWorkloads) {
  // Two independent containment implementations (the oracle rederives
  // closed bounds from raw coordinates; FilterByRange uses STRange) must
  // agree everywhere, including the degenerate query shapes.
  for (std::uint64_t seed : {1u, 17u, 4242u}) {
    Rng rng(seed);
    const STRange universe = DefaultTestUniverse();
    const Dataset dataset = GenerateDataset(rng, universe);
    const Oracle oracle(dataset);
    for (const STRange& query :
         GenerateQueries(rng, 12, universe, dataset)) {
      const std::vector<Record> got = oracle.RangeQuery(query);
      EXPECT_EQ(Canonical(got), Canonical(dataset.FilterByRange(query)))
          << "seed " << seed << " query " << query.ToString();
      EXPECT_EQ(oracle.Count(query), got.size());
    }
  }
}

TEST(OracleTest, ClosedBoundsIncludeBoundaryExactRecords) {
  const Oracle oracle(std::vector<Record>{At(0, 0, 0), At(4, 4, 100),
                                          At(2, 2, 50)});
  // Bounds exactly on the outer records: closed ranges include both.
  EXPECT_EQ(oracle.Count(STRange::FromBounds(0, 4, 0, 4, 0, 100)), 3u);
  EXPECT_EQ(oracle.Count(STRange::FromBounds(0, 0, 0, 0, 0, 0)), 1u);
  // Nudged just inside, the boundary records fall out.
  EXPECT_EQ(oracle.Count(STRange::FromBounds(0.5, 3.5, 0.5, 3.5, 1, 99)),
            1u);
}

TEST(OracleTest, EmptyRangeMatchesNothing) {
  const Oracle oracle(std::vector<Record>{At(1, 1, 1)});
  const STRange empty;
  ASSERT_TRUE(empty.empty());
  EXPECT_TRUE(oracle.RangeQuery(empty).empty());
  EXPECT_EQ(oracle.Count(empty), 0u);
}

TEST(DiffRecordsTest, EqualMultisetsInAnyOrderDiffEmpty) {
  const std::vector<Record> a = {At(1, 1, 1), At(2, 2, 2), At(1, 1, 1)};
  const std::vector<Record> b = {At(2, 2, 2), At(1, 1, 1), At(1, 1, 1)};
  EXPECT_TRUE(DiffRecords(a, b).empty());
  EXPECT_EQ(DescribeDiff(DiffRecords(a, b)), "");
}

TEST(DiffRecordsTest, ReportsMissingAndUnexpectedWithMultiplicity) {
  const std::vector<Record> expected = {At(1, 1, 1), At(1, 1, 1),
                                        At(3, 3, 3)};
  const std::vector<Record> actual = {At(1, 1, 1), At(9, 9, 9)};
  const RecordDiff diff = DiffRecords(actual, expected);
  ASSERT_EQ(diff.missing.size(), 2u);  // one duplicate 1s + the 3s
  ASSERT_EQ(diff.unexpected.size(), 1u);
  EXPECT_EQ(diff.unexpected[0], At(9, 9, 9));

  const std::string description = DescribeDiff(diff);
  EXPECT_NE(description.find("2 missing"), std::string::npos)
      << description;
  EXPECT_NE(description.find("1 unexpected"), std::string::npos)
      << description;
}

TEST(DescribeRecordTest, MentionsIdentityAndPosition) {
  const std::string s = DescribeRecord(At(1.5, -2.5, 77, 42));
  EXPECT_NE(s.find("42"), std::string::npos) << s;
  EXPECT_NE(s.find("77"), std::string::npos) << s;
  EXPECT_NE(s.find("1.5"), std::string::npos) << s;
}

}  // namespace
}  // namespace blot::testing
