// Standalone verification of the metamorphic relations the differential
// harness relies on — implemented here from scratch so a bug in the
// harness's own relation code cannot certify itself.
#include <gtest/gtest.h>

#include <cmath>

#include "blot/replica.h"
#include "core/cost_model.h"
#include "simenv/replica_sketch.h"
#include "testing/generator.h"
#include "testing/oracle.h"
#include "util/rng.h"

namespace blot::testing {
namespace {

struct MetamorphicTest : ::testing::Test {
  STRange universe = DefaultTestUniverse();
  Rng rng{20140714};
  Dataset dataset = [this] {
    DatasetProfile profile;
    profile.min_records = 120;
    profile.max_records = 300;
    return GenerateDataset(rng, universe, profile);
  }();

  Replica Build(const char* encoding, std::size_t spatial,
                std::size_t temporal) {
    return Replica::Build(dataset,
                          {{.spatial_partitions = spatial,
                            .temporal_partitions = temporal},
                           EncodingScheme::FromName(encoding)},
                          universe);
  }
};

TEST_F(MetamorphicTest, SplitUnionEqualsWholeOnEveryAxis) {
  const Replica replica = Build("ROW-GZIP", 8, 4);
  for (int trial = 0; trial < 10; ++trial) {
    const STRange whole =
        GenerateQuery(rng, QueryShape::kRandom, universe, dataset);
    const std::vector<Record> expected =
        Canonical(replica.Execute(whole).records);

    // Split along x: [lo, mid] u [nextafter(mid), hi] partitions the
    // closed range exactly — no record can land in both halves.
    const double mid = whole.x_min() + (whole.x_max() - whole.x_min()) / 2;
    const STRange left =
        STRange::FromBounds(whole.x_min(), mid, whole.y_min(),
                            whole.y_max(), whole.t_min(), whole.t_max());
    const STRange right = STRange::FromBounds(
        std::nextafter(mid, whole.x_max() + 1), whole.x_max(),
        whole.y_min(), whole.y_max(), whole.t_min(), whole.t_max());

    std::vector<Record> merged = replica.Execute(left).records;
    const std::vector<Record> rhs = replica.Execute(right).records;
    merged.insert(merged.end(), rhs.begin(), rhs.end());
    EXPECT_EQ(Canonical(merged), expected) << "trial " << trial;
  }
}

TEST_F(MetamorphicTest, AllReplicaPairsAgreeWithoutAnOracle) {
  const Replica replicas[] = {Build("ROW-PLAIN", 1, 1),
                              Build("COL-SNAPPY", 4, 4),
                              Build("ROW-LZMA", 16, 2)};
  for (const STRange& query :
       GenerateQueries(rng, 10, universe, dataset)) {
    const std::vector<Record> first =
        Canonical(replicas[0].Execute(query).records);
    for (std::size_t r = 1; r < 3; ++r)
      EXPECT_EQ(Canonical(replicas[r].Execute(query).records), first)
          << "replica " << r << " query " << query.ToString();
  }
}

TEST_F(MetamorphicTest, QueryCostIsFiniteNonNegativeAndMonotone) {
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const Replica replica = Build("COL-GZIP", 8, 8);
  const ReplicaSketch sketch = ReplicaSketch::FromReplica(replica);
  for (int trial = 0; trial < 20; ++trial) {
    const STRange query =
        GenerateQuery(rng, QueryShape::kRandom, universe, dataset);
    const double cost = model.QueryCostMs(sketch, query);
    ASSERT_TRUE(std::isfinite(cost));
    ASSERT_GE(cost, 0.0);
    const STRange grown = query.Expanded(rng.NextDouble(0.0, 8.0),
                                         rng.NextDouble(0.0, 8.0),
                                         rng.NextDouble(0.0, 128.0));
    EXPECT_GE(model.QueryCostMs(sketch, grown), cost - 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace blot::testing
