#include "testing/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "testing/oracle.h"
#include "util/rng.h"

namespace blot::testing {
namespace {

TEST(GeneratorTest, PureFunctionOfTheSeed) {
  // The whole repro story rests on this: one seed, one dataset, one
  // query batch — byte for byte.
  for (std::uint64_t seed : {1u, 99u, 123456u}) {
    Rng a(seed), b(seed);
    const STRange universe = DefaultTestUniverse();
    const Dataset da = GenerateDataset(a, universe);
    const Dataset db = GenerateDataset(b, universe);
    ASSERT_EQ(da.records(), db.records()) << "seed " << seed;
    EXPECT_EQ(GenerateQueries(a, 10, universe, da),
              GenerateQueries(b, 10, universe, db))
        << "seed " << seed;
  }
}

TEST(GeneratorTest, DistinctSeedsProduceDistinctDatasets) {
  Rng a(1), b(2);
  const STRange universe = DefaultTestUniverse();
  EXPECT_NE(GenerateDataset(a, universe).records(),
            GenerateDataset(b, universe).records());
}

TEST(GeneratorTest, EveryRecordLiesInsideTheUniverse) {
  const STRange universe = DefaultTestUniverse();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DatasetProfile profile;
    profile.extreme_fraction = 0.4;
    profile.boundary_fraction = 0.4;
    for (const Record& r :
         GenerateDataset(rng, universe, profile).records())
      EXPECT_TRUE(universe.Contains(r.Position()))
          << "seed " << seed << ": " << DescribeRecord(r);
  }
}

TEST(GeneratorTest, RespectsSizeBounds) {
  DatasetProfile profile;
  profile.min_records = 5;
  profile.max_records = 9;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const std::size_t n =
        GenerateDataset(rng, DefaultTestUniverse(), profile).size();
    EXPECT_GE(n, 5u);
    EXPECT_LE(n, 9u);
  }
}

TEST(GeneratorTest, DuplicateFractionProducesCoordinateCollisions) {
  DatasetProfile profile;
  profile.min_records = 100;
  profile.max_records = 200;
  profile.duplicate_fraction = 0.6;
  Rng rng(7);
  const Dataset dataset =
      GenerateDataset(rng, DefaultTestUniverse(), profile);

  std::map<std::pair<double, double>, int> positions;
  int collisions = 0;
  for (const Record& r : dataset.records())
    if (positions[{r.x, r.y}]++ > 0) ++collisions;
  EXPECT_GT(collisions, static_cast<int>(dataset.size()) / 4);
}

TEST(GeneratorTest, FirstSixQueriesCoverEveryShape) {
  const STRange universe = DefaultTestUniverse();
  Rng rng(11);
  DatasetProfile profile;
  profile.min_records = 50;
  const Dataset dataset = GenerateDataset(rng, universe, profile);
  const Oracle oracle(dataset);
  const std::vector<STRange> queries =
      GenerateQueries(rng, 6, universe, dataset);
  ASSERT_EQ(queries.size(), 6u);

  // The documented cycle: empty, point, full-extent, boundary, thin
  // slab, random.
  EXPECT_TRUE(queries[0].empty());
  EXPECT_GE(oracle.Count(queries[1]), 1u);  // point at a real record
  EXPECT_EQ(oracle.Count(queries[2]), dataset.size());  // full extent
  EXPECT_GE(oracle.Count(queries[3]), 1u);  // record sits on the bound
  EXPECT_FALSE(queries[4].empty());
  EXPECT_FALSE(queries[5].empty());

  // The boundary query straddles: at least one matching record lies
  // exactly on one of its bounds (the closed-bound edge case).
  bool on_edge = false;
  for (const Record& r : oracle.RangeQuery(queries[3])) {
    const STRange& q = queries[3];
    if (r.x == q.x_min() || r.x == q.x_max() || r.y == q.y_min() ||
        r.y == q.y_max() ||
        static_cast<double>(r.time) == q.t_min() ||
        static_cast<double>(r.time) == q.t_max())
      on_edge = true;
  }
  EXPECT_TRUE(on_edge);
}

TEST(GeneratorTest, PointAndBoundaryFallBackOnEmptyDatasets) {
  const STRange universe = DefaultTestUniverse();
  const Dataset empty;
  Rng rng(13);
  // Must not throw; falls back to random sub-ranges.
  const STRange point =
      GenerateQuery(rng, QueryShape::kPoint, universe, empty);
  const STRange boundary =
      GenerateQuery(rng, QueryShape::kBoundary, universe, empty);
  EXPECT_FALSE(point.empty());
  EXPECT_FALSE(boundary.empty());
}

TEST(GeneratorTest, ExtremeRecordsStayFiniteAndInUniverse) {
  const STRange universe = DefaultTestUniverse();
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Record r = ExtremeRecord(rng, universe);
    EXPECT_TRUE(universe.Contains(r.Position())) << DescribeRecord(r);
  }
}

TEST(GeneratorTest, QueryShapeNamesAreDistinct) {
  EXPECT_NE(QueryShapeName(QueryShape::kEmpty),
            QueryShapeName(QueryShape::kFullExtent));
  EXPECT_NE(QueryShapeName(QueryShape::kPoint),
            QueryShapeName(QueryShape::kBoundary));
}

}  // namespace
}  // namespace blot::testing
