#include "core/access_aware.h"

#include <filesystem>

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "blot/segment_store.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

// A hand-built planning instance: 2 partitions x 2 codecs.
//   codec 0 "small/slow": sizes {10, 10}, scan 100 ms/krec
//   codec 1 "big/fast":   sizes {30, 30}, scan 10 ms/krec
// Partition 0 is hot (access 10), partition 1 cold (access 0.1); both
// hold 1000 records.
AccessAwareInputs TinyInputs() {
  AccessAwareInputs inputs;
  inputs.codec_choices = {CodecKind::kLzmaLike, CodecKind::kSnappyLike};
  inputs.sizes = {{10, 10}, {30, 30}};
  inputs.params = {{100.0, 0.0}, {10.0, 0.0}};
  inputs.access = {10.0, 0.1};
  inputs.counts = {1000, 1000};
  return inputs;
}

TEST(PlanAccessAwareTest, TightBudgetKeepsSmallestEverywhere) {
  const AccessAwarePlan plan = PlanAccessAwareEncoding(TinyInputs(), 20);
  EXPECT_EQ(plan.codecs,
            (std::vector<CodecKind>{CodecKind::kLzmaLike,
                                    CodecKind::kLzmaLike}));
  EXPECT_EQ(plan.total_bytes, 20u);
  // cost = 10*100 + 0.1*100.
  EXPECT_DOUBLE_EQ(plan.expected_cost_ms, 1010.0);
}

TEST(PlanAccessAwareTest, PartialBudgetUpgradesTheHotPartitionFirst) {
  // Room for exactly one upgrade (+20 bytes): the hot partition wins.
  const AccessAwarePlan plan = PlanAccessAwareEncoding(TinyInputs(), 40);
  EXPECT_EQ(plan.codecs[0], CodecKind::kSnappyLike);
  EXPECT_EQ(plan.codecs[1], CodecKind::kLzmaLike);
  EXPECT_DOUBLE_EQ(plan.expected_cost_ms, 10 * 10.0 + 0.1 * 100.0);
  EXPECT_EQ(plan.total_bytes, 40u);
}

TEST(PlanAccessAwareTest, LooseBudgetUpgradesEverything) {
  const AccessAwarePlan plan = PlanAccessAwareEncoding(TinyInputs(), 1000);
  EXPECT_EQ(plan.codecs[0], CodecKind::kSnappyLike);
  EXPECT_EQ(plan.codecs[1], CodecKind::kSnappyLike);
}

TEST(PlanAccessAwareTest, BudgetBelowFloorThrows) {
  EXPECT_THROW(PlanAccessAwareEncoding(TinyInputs(), 19), InvalidArgument);
}

TEST(PlanAccessAwareTest, RandomInstancesRespectBudgetAndBeatBaseline) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t partitions = 3 + rng.NextUint64(20);
    AccessAwareInputs inputs;
    inputs.codec_choices = {CodecKind::kLzmaLike, CodecKind::kGzipLike,
                            CodecKind::kSnappyLike};
    inputs.params = {{rng.NextDouble(50, 200), rng.NextDouble(0, 100)},
                     {rng.NextDouble(20, 100), rng.NextDouble(0, 100)},
                     {rng.NextDouble(5, 40), rng.NextDouble(0, 100)}};
    inputs.sizes.assign(3, std::vector<std::uint64_t>(partitions));
    inputs.access.resize(partitions);
    inputs.counts.resize(partitions);
    std::uint64_t floor_bytes = 0;
    for (std::size_t p = 0; p < partitions; ++p) {
      const std::uint64_t base = 100 + rng.NextUint64(1000);
      inputs.sizes[0][p] = base;
      inputs.sizes[1][p] = base + rng.NextUint64(500);
      inputs.sizes[2][p] = base + rng.NextUint64(1500);
      inputs.access[p] = rng.NextDouble(0.01, 5.0);
      inputs.counts[p] = 100 + rng.NextUint64(10000);
      floor_bytes += base;
    }
    const std::uint64_t budget =
        floor_bytes + rng.NextUint64(partitions * 1000);
    const AccessAwarePlan plan = PlanAccessAwareEncoding(inputs, budget);
    EXPECT_LE(plan.total_bytes, budget);
    // The plan never costs more than the all-smallest baseline.
    const AccessAwarePlan baseline =
        PlanAccessAwareEncoding(inputs, floor_bytes);
    EXPECT_LE(plan.expected_cost_ms, baseline.expected_cost_ms + 1e-9);
  }
}

// The build tests use the CPU-bound environment: in the paper's IO-bound
// environments LZMA is both smallest and fastest (Table II), so no
// per-partition trade-off exists and the planner correctly picks one
// codec everywhere.
struct BuildFixture {
  Dataset dataset;
  STRange universe;
  Workload workload;
  CostModel model{EnvironmentModel::CpuBoundLocal()};

  BuildFixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    // Hot corner of space, frequently queried.
    workload.Add({{universe.Width() * 0.1, universe.Height() * 0.1,
                   universe.Duration() * 0.1}},
                 10.0);
    workload.Add({universe.Size()}, 0.1);
  }
};

TEST(BuildAccessAwareReplicaTest, RoundTripsAndRespectsBudget) {
  const BuildFixture f;
  // Budget: halfway between the smallest and largest uniform encodings.
  const Replica smallest = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-LZMA")},
      f.universe);
  const Replica fastest = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN")},
      f.universe);
  const std::uint64_t budget =
      (smallest.StorageBytes() + fastest.StorageBytes()) / 2;

  const AccessAwareBuildResult result = BuildAccessAwareReplica(
      f.dataset, {.spatial_partitions = 8, .temporal_partitions = 4},
      Layout::kRow, f.universe, f.workload, f.model, budget);
  EXPECT_LE(result.replica.StorageBytes(), budget);
  EXPECT_EQ(result.replica.StorageBytes(), result.plan.total_bytes);
  EXPECT_EQ(result.replica.NumRecords(), f.dataset.size());

  // Queries still return exact ground truth.
  Rng rng(3);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() * 0.2, f.universe.Height() * 0.2,
        f.universe.Duration() * 0.2}},
      f.universe, rng);
  EXPECT_EQ(result.replica.Execute(query).records.size(),
            f.dataset.FilterByRange(query).size());

  // A mid-range budget should produce a genuine mix of codecs.
  const std::set<CodecKind> used(result.plan.codecs.begin(),
                                 result.plan.codecs.end());
  EXPECT_GE(used.size(), 2u);
}

TEST(BuildAccessAwareReplicaTest, HotPartitionsGetFasterCodecs) {
  const BuildFixture f;
  const PartitioningSpec spec{.spatial_partitions = 16,
                              .temporal_partitions = 4};
  // A budget tight enough that only some partitions can upgrade — the
  // planner must spend it on the hot ones.
  const Replica smallest = Replica::Build(
      f.dataset, {spec, EncodingScheme::FromName("ROW-LZMA")}, f.universe);
  const AccessAwareBuildResult result = BuildAccessAwareReplica(
      f.dataset, spec, Layout::kRow, f.universe, f.workload, f.model,
      smallest.StorageBytes() * 9 / 8);
  PartitionedData pd = PartitionDataset(f.dataset, spec, f.universe);
  const PartitionIndex index(std::move(pd.ranges));
  const std::vector<double> access =
      PartitionAccessFrequencies(index, f.universe, f.workload);
  // Mean access of upgraded (non-smallest-codec) partitions exceeds the
  // mean access of the ones kept smallest.
  double upgraded_access = 0, kept_access = 0;
  std::size_t upgraded = 0, kept = 0;
  for (std::size_t p = 0; p < result.plan.codecs.size(); ++p) {
    if (result.plan.codecs[p] == CodecKind::kLzmaLike) {
      kept_access += access[p];
      ++kept;
    } else {
      upgraded_access += access[p];
      ++upgraded;
    }
  }
  ASSERT_GT(upgraded, 0u);
  ASSERT_GT(kept, 0u);
  EXPECT_GT(upgraded_access / static_cast<double>(upgraded),
            kept_access / static_cast<double>(kept));
}

TEST(BuildAccessAwareReplicaTest, PlanPersistsThroughSegmentStore) {
  // The per-partition codec choices must survive a save/load cycle.
  const BuildFixture f;
  const AccessAwareBuildResult result = BuildAccessAwareReplica(
      f.dataset, {.spatial_partitions = 8, .temporal_partitions = 4},
      Layout::kRow, f.universe, f.workload, f.model,
      static_cast<std::uint64_t>(f.dataset.size()) * kRecordRowBytes);
  const auto dir = std::filesystem::temp_directory_path() /
                   "blot_access_aware_persist_test";
  std::filesystem::remove_all(dir);
  SegmentStore::Save(result.replica, dir);
  const Replica loaded = SegmentStore::Load(dir);
  std::filesystem::remove_all(dir);
  ASSERT_EQ(loaded.NumPartitions(), result.replica.NumPartitions());
  for (std::size_t p = 0; p < loaded.NumPartitions(); ++p)
    EXPECT_EQ(loaded.partition(p).codec, result.plan.codecs[p]);
  EXPECT_EQ(loaded.Reconstruct().size(), f.dataset.size());
}

TEST(PartitionAccessFrequenciesTest, HotRegionGetsMoreAccess) {
  const BuildFixture f;
  PartitionedData pd = PartitionDataset(
      f.dataset, {.spatial_partitions = 16, .temporal_partitions = 4},
      f.universe);
  const PartitionIndex index(std::move(pd.ranges));
  const auto access = PartitionAccessFrequencies(index, f.universe,
                                                 f.workload);
  ASSERT_EQ(access.size(), index.NumPartitions());
  // Every partition is touched by the full-scan query at least.
  for (double a : access) EXPECT_GE(a, 0.1 - 1e-9);
  // And the small frequent query makes some partitions much hotter.
  const double max_access = *std::max_element(access.begin(), access.end());
  const double min_access = *std::min_element(access.begin(), access.end());
  EXPECT_GT(max_access, min_access * 2);
}

}  // namespace
}  // namespace blot
