// BlotStore integration tests for partial replicas (Section VII).
#include <gtest/gtest.h>

#include <map>

#include "core/partial.h"
#include "core/store.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  STRange hotspot;
  CostModel model{EnvironmentModel::LocalHadoop()};

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 15;
    config.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    hotspot = DensestSpatialBox(dataset, universe, 0.5);
  }
};

TEST(StorePartialTest, PartialReplicaStoresOnlyCoveredRecords) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  const std::size_t partial = store.AddPartialReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("COL-GZIP")},
      f.hotspot);
  EXPECT_FALSE(store.IsFullReplica(partial));
  EXPECT_TRUE(store.IsFullReplica(0));
  EXPECT_EQ(store.replica(partial).NumRecords(),
            f.dataset.FilterByRange(f.hotspot).size());
  EXPECT_LT(store.replica(partial).NumRecords(), f.dataset.size());
}

TEST(StorePartialTest, RoutingHonorsCoverage) {
  const Fixture f;
  // Scan-dominated parameters so the partial replica's smaller partitions
  // are clearly cheaper (at toy record counts the Table II ExtraTime
  // constants would flatten the difference; routing logic is what is
  // under test here).
  std::map<std::string, ScanCostParams> params;
  params["ROW-PLAIN"] = {1000.0, 100.0};
  const CostModel scan_model{std::move(params)};

  BlotStore store(f.dataset, f.universe);
  const std::size_t full = store.AddReplica(
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN")});
  const std::size_t partial = store.AddPartialReplica(
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN")},
      f.hotspot);

  // A small query deep inside the hotspot routes to the partial replica:
  // same partition count over a smaller region means fewer records
  // scanned per involved partition.
  const STRange inside = STRange::FromCentroid(
      {f.hotspot.Width() * 0.05, f.hotspot.Height() * 0.05,
       f.universe.Duration() * 0.05},
      f.hotspot.Centroid());
  EXPECT_EQ(store.RouteQuery(inside, scan_model), partial);

  // A query crossing the coverage boundary must use the full replica even
  // though the partial would be cheaper.
  const STRange crossing = STRange::FromCentroid(
      {f.hotspot.Width() * 0.1, f.hotspot.Height() * 0.1,
       f.universe.Duration() * 0.05},
      {f.hotspot.x_min(), f.hotspot.Centroid().y,
       f.universe.Centroid().t});
  EXPECT_EQ(store.RouteQuery(crossing, scan_model), full);
}

TEST(StorePartialTest, ResultsMatchGroundTruthThroughEitherRoute) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("COL-LZMA")});
  store.AddPartialReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("ROW-SNAPPY")},
      f.hotspot);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const double frac = rng.NextDouble(0.02, 0.4);
    const STRange query = SampleQueryInstance(
        {{f.universe.Width() * frac, f.universe.Height() * frac,
          f.universe.Duration() * frac}},
        f.universe, rng);
    const auto routed = store.Execute(query, f.model);
    EXPECT_EQ(routed.result.records.size(),
              f.dataset.FilterByRange(query).size())
        << "trial " << trial;
  }
}

TEST(StorePartialTest, PartialRecoveredFromFull) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  const std::size_t full = store.AddReplica(
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-GZIP")});
  const std::size_t partial = store.AddPartialReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP")},
      f.hotspot);
  const std::uint64_t restored = store.RecoverReplicaFrom(partial, full);
  EXPECT_EQ(restored, f.dataset.FilterByRange(f.hotspot).size());
  EXPECT_EQ(store.replica(partial).universe(), f.hotspot);
}

TEST(StorePartialTest, FullCannotBeRecoveredFromPartial) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  const std::size_t full = store.AddReplica(
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-GZIP")});
  const std::size_t partial = store.AddPartialReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP")},
      f.hotspot);
  EXPECT_THROW(store.RecoverReplicaFrom(full, partial), InvalidArgument);
}

TEST(StorePartialTest, ValidatesCoverage) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  EXPECT_THROW(store.AddPartialReplica(
                   {{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-PLAIN")},
                   STRange::FromBounds(0, 1, 0, 1, 0, 1)),
               InvalidArgument);
  EXPECT_THROW(store.AddPartialReplica(
                   {{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-PLAIN")},
                   f.universe),
               InvalidArgument);
}

}  // namespace
}  // namespace blot
