// The fault injector's contract: deterministic per (seed, replica,
// partition), spec grammar round-trips, bounded fire budgets, and
// mutation helpers that really change bytes. The integration with the
// Replica read path is covered by failover_test.cc; this file pins the
// injector itself.
#include "core/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/error.h"

namespace blot {
namespace {

Bytes MakeBytes(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  return data;
}

TEST(FaultSpecTest, ParsesEveryKey) {
  const FaultPlan plan = ParseFaultSpec(
      "seed=42;p=0.5;kinds=bitflip,readerror;replica=KD4xT4/ROW-SNAPPY;"
      "partition=3;fires=2;latency=9");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.probability, 0.5);
  ASSERT_EQ(plan.kinds.size(), 2u);
  EXPECT_EQ(plan.kinds[0], FaultKind::kBitFlip);
  EXPECT_EQ(plan.kinds[1], FaultKind::kReadError);
  EXPECT_EQ(plan.replica, "KD4xT4/ROW-SNAPPY");
  ASSERT_TRUE(plan.partition.has_value());
  EXPECT_EQ(*plan.partition, 3u);
  EXPECT_EQ(plan.max_fires_per_target, 2u);
  EXPECT_EQ(plan.latency_ms, 9u);
}

TEST(FaultSpecTest, DefaultsMatchFaultPlanDefaults) {
  const FaultPlan parsed = ParseFaultSpec("seed=7");
  const FaultPlan defaults;
  EXPECT_DOUBLE_EQ(parsed.probability, defaults.probability);
  EXPECT_EQ(parsed.kinds.size(), defaults.kinds.size());
  EXPECT_EQ(parsed.replica, defaults.replica);
  EXPECT_FALSE(parsed.partition.has_value());
  EXPECT_EQ(parsed.max_fires_per_target, defaults.max_fires_per_target);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(ParseFaultSpec("bogus=1"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("seed=notanumber"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("p=2.5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("kinds=frobnicate"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("seed"), InvalidArgument);
}

TEST(FaultSpecTest, ParsesLatencyDistributions) {
  const FaultPlan pareto = ParseFaultSpec("kinds=latency;latency=pareto:5:50");
  EXPECT_EQ(pareto.latency_dist, FaultPlan::LatencyDist::kPareto);
  EXPECT_DOUBLE_EQ(pareto.latency_min, 5.0);
  EXPECT_DOUBLE_EQ(pareto.latency_max, 50.0);

  const FaultPlan spike =
      ParseFaultSpec("kinds=latency;latency=spike:200:0.05");
  EXPECT_EQ(spike.latency_dist, FaultPlan::LatencyDist::kSpike);
  EXPECT_DOUBLE_EQ(spike.latency_min, 200.0);
  EXPECT_DOUBLE_EQ(spike.spike_probability, 0.05);

  // The scalar grammar keeps its original fixed-delay meaning.
  const FaultPlan fixed = ParseFaultSpec("kinds=latency;latency=7");
  EXPECT_EQ(fixed.latency_dist, FaultPlan::LatencyDist::kFixed);
  EXPECT_EQ(fixed.latency_ms, 7u);
}

TEST(FaultSpecTest, RejectsMalformedLatencyDistributions) {
  EXPECT_THROW(ParseFaultSpec("latency=pareto:5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=pareto:50:5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=pareto:0:5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=pareto:abc:5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=spike:200"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=spike:200:1.5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=spike:0:0.5"), InvalidArgument);
  EXPECT_THROW(ParseFaultSpec("latency=weibull:1:2"), InvalidArgument);
}

TEST(FaultInjectorTest, SuspendMakesReadsCleanWithoutTouchingBudgets) {
  FaultInjector injector;
  FaultPlan plan;
  plan.seed = 11;
  plan.probability = 1.0;
  plan.max_fires_per_target = 1;
  injector.Arm(plan);

  {
    // Every read under suspension is clean, however many targets fire
    // without it.
    FaultInjector::Suspend suspend(injector);
    for (std::size_t p = 0; p < 16; ++p)
      EXPECT_FALSE(injector.OnPartitionRead("R", p, 64).fire);
    EXPECT_EQ(injector.stats().fired_total, 0u);
  }

  // The suspended reads consumed no fire budget: each target's single
  // allotted fire is still available afterwards.
  std::size_t fired = 0;
  for (std::size_t p = 0; p < 16; ++p)
    if (injector.OnPartitionRead("R", p, 64).fire) ++fired;
  EXPECT_EQ(fired, 16u);
  // And the budget now really is spent.
  for (std::size_t p = 0; p < 16; ++p)
    EXPECT_FALSE(injector.OnPartitionRead("R", p, 64).fire);
}

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.probability = 0.5;
  plan.max_fires_per_target = 0;  // never exhaust, so re-reads compare
  FaultInjector a;
  a.Arm(plan);
  FaultInjector b;
  b.Arm(plan);
  for (std::size_t p = 0; p < 64; ++p) {
    const FaultDecision da = a.OnPartitionRead("R", p, 100);
    const FaultDecision db = b.OnPartitionRead("R", p, 100);
    EXPECT_EQ(da.fire, db.fire) << "partition " << p;
    if (da.fire) {
      EXPECT_EQ(da.kind, db.kind) << "partition " << p;
      EXPECT_EQ(da.param, db.param) << "partition " << p;
    }
  }
  // A different seed must not reproduce the same firing pattern.
  plan.seed = 99;
  FaultInjector c;
  c.Arm(plan);
  std::size_t differing = 0;
  for (std::size_t p = 0; p < 64; ++p)
    if (c.OnPartitionRead("R", p, 100).fire !=
        a.OnPartitionRead("R", p, 100).fire)
      ++differing;
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, ProbabilityBoundsFiring) {
  FaultPlan plan;
  plan.probability = 0.0;
  FaultInjector never;
  never.Arm(plan);
  for (std::size_t p = 0; p < 32; ++p)
    EXPECT_FALSE(never.OnPartitionRead("R", p, 64).fire);
  plan.probability = 1.0;
  FaultInjector always;
  always.Arm(plan);
  for (std::size_t p = 0; p < 32; ++p)
    EXPECT_TRUE(always.OnPartitionRead("R", p, 64).fire);
}

TEST(FaultInjectorTest, FireBudgetSilencesTargetAfterExhaustion) {
  FaultPlan plan;
  plan.max_fires_per_target = 1;
  FaultInjector injector;
  injector.Arm(plan);
  EXPECT_TRUE(injector.OnPartitionRead("R", 0, 64).fire);
  EXPECT_FALSE(injector.OnPartitionRead("R", 0, 64).fire);
  // Other targets keep their own budgets.
  EXPECT_TRUE(injector.OnPartitionRead("R", 1, 64).fire);
  EXPECT_TRUE(injector.OnPartitionRead("S", 0, 64).fire);

  plan.max_fires_per_target = 0;  // unlimited
  injector.Arm(plan);
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(injector.OnPartitionRead("R", 0, 64).fire);
}

TEST(FaultInjectorTest, TargetingRestrictsReplicaAndPartition) {
  FaultPlan plan;
  plan.replica = "VICTIM";
  plan.partition = 7;
  FaultInjector injector;
  injector.Arm(plan);
  EXPECT_FALSE(injector.OnPartitionRead("OTHER", 7, 64).fire);
  EXPECT_FALSE(injector.OnPartitionRead("VICTIM", 6, 64).fire);
  EXPECT_TRUE(injector.OnPartitionRead("VICTIM", 7, 64).fire);
}

TEST(FaultInjectorTest, EmptyPartitionsOnlySufferNonMutationFaults) {
  FaultPlan plan;  // corruption kinds only
  FaultInjector injector;
  injector.Arm(plan);
  // data_size 0: nothing to mutate, so the read must pass untouched.
  EXPECT_FALSE(injector.OnPartitionRead("R", 0, 0).fire);
  plan.kinds = {FaultKind::kReadError};
  injector.Arm(plan);
  EXPECT_TRUE(injector.OnPartitionRead("R", 0, 0).fire);
}

TEST(FaultInjectorTest, StatsCountFiresByKindAndTarget) {
  FaultPlan plan;
  plan.kinds = {FaultKind::kReadError};
  FaultInjector injector;
  injector.Arm(plan);
  for (std::size_t p = 0; p < 4; ++p) injector.OnPartitionRead("R", p, 64);
  injector.OnPartitionRead("R", 0, 64);  // budget exhausted, no fire
  const FaultInjector::Stats stats = injector.stats();
  EXPECT_EQ(stats.fired_total, 4u);
  EXPECT_EQ(stats.read_errors, 4u);
  EXPECT_EQ(stats.targets_hit, 4u);
  EXPECT_EQ(stats.bit_flips + stats.truncations + stats.torn_reads, 0u);
  // Disarm keeps stats; re-arm resets them.
  injector.Disarm();
  EXPECT_EQ(injector.stats().fired_total, 4u);
  injector.Arm(plan);
  EXPECT_EQ(injector.stats().fired_total, 0u);
}

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.OnPartitionRead("R", 0, 64).fire);
  injector.Arm({});
  EXPECT_TRUE(injector.enabled());
  injector.Disarm();
  EXPECT_FALSE(injector.OnPartitionRead("R", 1, 64).fire);
}

TEST(FaultMutationTest, FlipBitChangesExactlyOneBit) {
  Bytes data = MakeBytes(32);
  const Bytes original = data;
  FaultInjector::FlipBit(data, 1000);
  ASSERT_EQ(data.size(), original.size());
  std::size_t bits_changed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint8_t diff = data[i] ^ original[i];
    while (diff != 0) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1u);
  Bytes empty;
  FaultInjector::FlipBit(empty, 5);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultMutationTest, TruncateAlwaysShortensNonEmptyData) {
  for (std::uint64_t salt = 0; salt < 16; ++salt) {
    Bytes data = MakeBytes(64);
    FaultInjector::Truncate(data, salt);
    EXPECT_LT(data.size(), 64u) << "salt " << salt;
  }
}

TEST(FaultMutationTest, ZeroTailZeroesASuffix) {
  Bytes data = MakeBytes(64);
  const Bytes original = data;
  FaultInjector::ZeroTail(data, 3);
  ASSERT_EQ(data.size(), original.size());
  // Find the first changed byte; everything after it must be zero.
  std::size_t first = 0;
  while (first < data.size() && data[first] == original[first]) ++first;
  ASSERT_LT(first, data.size()) << "torn read changed nothing";
  for (std::size_t i = first; i < data.size(); ++i)
    EXPECT_EQ(data[i], 0u) << "byte " << i;
}

TEST(FaultMutationTest, ApplyMutationRejectsNonMutationKinds) {
  Bytes data = MakeBytes(16);
  EXPECT_THROW(
      FaultInjector::ApplyMutation(data, FaultKind::kReadError, 1),
      InvalidArgument);
  EXPECT_THROW(FaultInjector::ApplyMutation(data, FaultKind::kLatency, 1),
               InvalidArgument);
  FaultInjector::ApplyMutation(data, FaultKind::kBitFlip, 1);
  EXPECT_NE(data, MakeBytes(16));
}

TEST(FaultMutationTest, CorruptFileMutatesOnDisk) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "blot_corrupt_file_test.bin";
  const Bytes original = MakeBytes(128);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(original.data()),
              static_cast<std::streamsize>(original.size()));
  }
  FaultInjector::CorruptFile(path, FaultKind::kBitFlip, 17);
  std::ifstream in(path, std::ios::binary);
  const Bytes mutated((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(mutated.size(), original.size());
  EXPECT_NE(mutated, original);
  std::filesystem::remove(path);
}

TEST(FaultCampaignTest, DerivesDistinctSeedsAndAlwaysDisarms) {
  FaultPlan plan;
  plan.seed = 5;
  std::vector<std::uint64_t> seeds;
  RunFaultCampaign(plan, 4, [&](std::size_t round, std::uint64_t seed) {
    EXPECT_EQ(round, seeds.size());
    EXPECT_TRUE(FaultInjector::Global().enabled());
    seeds.push_back(seed);
  });
  EXPECT_FALSE(FaultInjector::Global().enabled());
  ASSERT_EQ(seeds.size(), 4u);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]);

  // Disarms on exception too.
  EXPECT_THROW(RunFaultCampaign(plan, 2,
                                [](std::size_t, std::uint64_t) {
                                  throw InvalidArgument("boom");
                                }),
               InvalidArgument);
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

}  // namespace
}  // namespace blot
