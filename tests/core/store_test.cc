#include "core/store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixtures.h"
#include "util/error.h"

namespace blot {
namespace {

using test::Sorted;

struct Fixture : test::TaxiFixture {
  CostModel model{EnvironmentModel::AmazonS3Emr()};
};

TEST(BlotStoreTest, RejectsEmptyDataset) {
  EXPECT_THROW({ BlotStore store{Dataset{}}; }, InvalidArgument);
}

TEST(BlotStoreTest, AddReplicaRejectsDuplicates) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  const ReplicaConfig config{
      {.spatial_partitions = 4, .temporal_partitions = 4},
      EncodingScheme::FromName("ROW-GZIP")};
  EXPECT_EQ(store.AddReplica(config), 0u);
  EXPECT_THROW(store.AddReplica(config), InvalidArgument);
  EXPECT_EQ(store.NumReplicas(), 1u);
}

TEST(BlotStoreTest, RoutingPicksCheapestReplicaPerQuery) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  const std::size_t coarse = store.AddReplica(
      {{.spatial_partitions = 2, .temporal_partitions = 2},
       EncodingScheme::FromName("ROW-PLAIN")});
  const std::size_t fine = store.AddReplica(
      {{.spatial_partitions = 64, .temporal_partitions = 16},
       EncodingScheme::FromName("ROW-PLAIN")});

  // A tiny query should route to the fine replica (pruning), a
  // whole-universe query to the coarse one (ExtraTime per partition).
  const STRange tiny = STRange::FromCentroid(
      {f.universe.Width() * 0.01, f.universe.Height() * 0.01,
       f.universe.Duration() * 0.01},
      f.universe.Centroid());
  EXPECT_EQ(store.RouteQuery(tiny, f.model), fine);
  EXPECT_EQ(store.RouteQuery(f.universe, f.model), coarse);
}

TEST(BlotStoreTest, ExecuteReturnsGroundTruthRecords) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("COL-GZIP")});
  store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const STRange query = STRange::FromCentroid(
        {f.universe.Width() * rng.NextDouble(0.05, 0.5),
         f.universe.Height() * rng.NextDouble(0.05, 0.5),
         f.universe.Duration() * rng.NextDouble(0.05, 0.5)},
        {rng.NextDouble(f.universe.x_min(), f.universe.x_max()),
         rng.NextDouble(f.universe.y_min(), f.universe.y_max()),
         rng.NextDouble(f.universe.t_min(), f.universe.t_max())});
    const BlotStore::RoutedResult routed = store.Execute(query, f.model);
    EXPECT_EQ(Sorted(routed.result.records),
              Sorted(f.dataset.FilterByRange(query)));
    EXPECT_LT(routed.replica_index, store.NumReplicas());
    EXPECT_GT(routed.estimated_cost_ms, 0.0);
  }
}

TEST(BlotStoreTest, TotalStorageSumsReplicas) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-PLAIN")});
  store.AddReplica({{.spatial_partitions = 8, .temporal_partitions = 4},
                    EncodingScheme::FromName("COL-LZMA")});
  EXPECT_EQ(store.TotalStorageBytes(),
            store.replica(0).StorageBytes() + store.replica(1).StorageBytes());
}

TEST(BlotStoreTest, RecoveryRestoresCorruptedReplica) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  const std::size_t a = store.AddReplica(
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-GZIP")},
      nullptr);
  const std::size_t b = store.AddReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("COL-LZMA")},
      nullptr);
  // Recover b from a and verify the logical view is intact.
  const std::uint64_t restored = store.RecoverReplicaFrom(b, a);
  EXPECT_EQ(restored, f.dataset.size());
  EXPECT_EQ(Sorted(store.replica(b).Reconstruct().records()),
            Sorted(f.dataset.records()));
  EXPECT_THROW(store.RecoverReplicaFrom(a, a), InvalidArgument);
  EXPECT_THROW(store.RecoverReplicaFrom(5, a), InvalidArgument);
}

TEST(BlotStoreTest, BatchExecutionMatchesSingleQueryExecution) {
  const Fixture f;
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 2, .temporal_partitions = 2},
                    EncodingScheme::FromName("ROW-PLAIN")});
  store.AddReplica({{.spatial_partitions = 32, .temporal_partitions = 8},
                    EncodingScheme::FromName("ROW-PLAIN")});
  // A mixed batch: small queries (route fine) and the whole universe
  // (routes coarse).
  std::vector<STRange> queries;
  Rng rng(9);
  for (int i = 0; i < 6; ++i)
    queries.push_back(SampleQueryInstance(
        {{f.universe.Width() * 0.05, f.universe.Height() * 0.05,
          f.universe.Duration() * 0.05}},
        f.universe, rng));
  queries.push_back(f.universe);

  const auto batch = store.ExecuteBatch(queries, f.model);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto single = store.Execute(queries[q], f.model);
    EXPECT_EQ(batch.replica_of[q], single.replica_index) << "query " << q;
    EXPECT_EQ(Sorted(batch.per_query[q]), Sorted(single.result.records))
        << "query " << q;
  }
  EXPECT_LE(batch.stats.partitions_scanned, batch.naive_partition_scans);
}

TEST(BlotStoreTest, ParallelPathsAgreeWithSerial) {
  const Fixture f;
  ThreadPool pool(4);
  BlotStore store(f.dataset, f.universe);
  store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                    EncodingScheme::FromName("ROW-GZIP")},
                   &pool);
  const STRange query = STRange::FromCentroid(
      {f.universe.Width() / 3, f.universe.Height() / 3,
       f.universe.Duration() / 3},
      f.universe.Centroid());
  const auto serial = store.Execute(query, f.model);
  const auto parallel = store.Execute(query, f.model, &pool);
  EXPECT_EQ(Sorted(serial.result.records), Sorted(parallel.result.records));
}

}  // namespace
}  // namespace blot
