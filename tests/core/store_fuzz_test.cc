// Corruption fuzz for the persisted store: for every encoding scheme,
// every store file is bit-flipped, truncated and torn (via the fault
// injector's mutation helpers), and BlotStore::Load must either reject
// the store with a structured blot::Error or load a store that still
// answers queries correctly or fails them with a blot::Error — never a
// crash, never silently wrong results.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fixtures.h"
#include "core/fault_injection.h"
#include "core/store.h"
#include "util/error.h"

namespace blot {
namespace {

namespace fs = std::filesystem;

using test::Sorted;

std::vector<std::string> AllSchemeNames() {
  std::vector<std::string> names;
  for (const EncodingScheme& scheme : AllEncodingSchemes())
    names.push_back(scheme.Name());
  return names;
}

class StoreFuzzTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    std::string safe = GetParam();
    std::replace(safe.begin(), safe.end(), '/', '_');
    dir_ = fs::temp_directory_path() / ("blot_store_fuzz_" + safe);
    fs::remove_all(dir_);
    const test::TaxiFixture fleet(6, 200);
    dataset_ = fleet.dataset;
    universe_ = fleet.universe;

    BlotStore store(dataset_, universe_);
    store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                      EncodingScheme::FromName(GetParam())});
    store.Save(dir_ / "pristine");
  }

  void TearDown() override { fs::remove_all(dir_); }

  // Fresh copy of the pristine store to mutilate.
  fs::path FreshCopy(const std::string& label) {
    const fs::path copy = dir_ / label;
    fs::remove_all(copy);
    fs::copy(dir_ / "pristine", copy, fs::copy_options::recursive);
    return copy;
  }

  // Every file a saved store consists of, relative to its directory.
  std::vector<fs::path> StoreFiles() const {
    std::vector<fs::path> files;
    for (const auto& entry :
         fs::recursive_directory_iterator(dir_ / "pristine"))
      if (entry.is_regular_file())
        files.push_back(fs::relative(entry.path(), dir_ / "pristine"));
    return files;
  }

  fs::path dir_;
  Dataset dataset_;
  STRange universe_;
};

TEST_P(StoreFuzzTest, LoadSurvivesCorruptionOfEveryFile) {
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const std::vector<Record> truth = Sorted(dataset_.records());
  const std::vector<fs::path> files = StoreFiles();
  ASSERT_GE(files.size(), 4u);  // store manifest, dataset, replica files

  std::size_t label = 0;
  for (const fs::path& file : files) {
    for (const FaultKind kind :
         {FaultKind::kBitFlip, FaultKind::kTruncate, FaultKind::kTornRead}) {
      for (const std::uint64_t salt : {3u, 7777u}) {
        SCOPED_TRACE(file.string() + " " +
                     std::string(FaultKindName(kind)) + " salt " +
                     std::to_string(salt));
        const fs::path copy = FreshCopy("case_" + std::to_string(label++));
        FaultInjector::CorruptFile(copy / file, kind, salt);
        try {
          BlotStore loaded = BlotStore::Load(copy);
          // Checksums over encoded partitions are verified lazily on
          // read, so a Load that passed must still never serve corrupt
          // bytes: a full scan either matches ground truth exactly or
          // fails with a structured error.
          try {
            const BlotStore::RoutedResult routed =
                loaded.Execute(universe_, model);
            EXPECT_EQ(Sorted(routed.result.records), truth);
          } catch (const Error&) {
            // Detected at read time (CorruptData / QueryFailedError).
          }
        } catch (const Error&) {
          // Detected at load time. Any blot::Error is acceptable; an
          // uncaught foreign exception or a crash is not.
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, StoreFuzzTest, ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      std::replace(name.begin(), name.end(), '/', '_');
      return name;
    });

}  // namespace
}  // namespace blot
