// Property tests on the analytic cost model (Eq. 8-12): monotonicity,
// bounds, and consistency relations that must hold for every partitioning
// and query size — complementing the Monte-Carlo agreement tests.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "gen/taxi_generator.h"
#include "util/rng.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 200;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
  }

  PartitionIndex Index(std::size_t spatial, std::size_t temporal,
                       SpatialMethod method = SpatialMethod::kKdTree) const {
    PartitionedData pd = PartitionDataset(
        dataset,
        {.spatial_partitions = spatial,
         .temporal_partitions = temporal,
         .method = method},
        universe);
    return PartitionIndex(std::move(pd.ranges));
  }
};

TEST(CostModelPropertyTest, ProbabilityBoundsHoldEverywhere) {
  const Fixture f;
  const PartitionIndex index = f.Index(16, 8);
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const RangeSize size = {
        f.universe.Width() * rng.NextDouble(1e-4, 2.0),
        f.universe.Height() * rng.NextDouble(1e-4, 2.0),
        f.universe.Duration() * rng.NextDouble(1e-4, 2.0)};
    const std::size_t p = rng.NextUint64(index.NumPartitions());
    const double prob =
        IntersectionProbability(index.Range(p), size, f.universe);
    ASSERT_GE(prob, 0.0);
    ASSERT_LE(prob, 1.0);
  }
}

TEST(CostModelPropertyTest, ExpectedNpMonotoneInEveryDimension) {
  const Fixture f;
  const PartitionIndex index = f.Index(16, 8);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    RangeSize size = {f.universe.Width() * rng.NextDouble(0.01, 0.8),
                      f.universe.Height() * rng.NextDouble(0.01, 0.8),
                      f.universe.Duration() * rng.NextDouble(0.01, 0.8)};
    const double base =
        ExpectedInvolvedPartitions(index, size, f.universe);
    for (int dim = 0; dim < 3; ++dim) {
      RangeSize larger = size;
      (dim == 0 ? larger.w : dim == 1 ? larger.h : larger.t) *= 1.3;
      const double grown =
          ExpectedInvolvedPartitions(index, larger, f.universe);
      ASSERT_GE(grown, base - 1e-9)
          << "dim " << dim << " trial " << trial;
    }
  }
}

TEST(CostModelPropertyTest, ExpectedNpBetweenOneAndPartitionCount) {
  const Fixture f;
  Rng rng(3);
  for (const std::size_t spatial : {1u, 4u, 16u, 64u}) {
    const PartitionIndex index = f.Index(spatial, 8);
    for (int trial = 0; trial < 50; ++trial) {
      const RangeSize size = {
          f.universe.Width() * rng.NextDouble(1e-3, 1.0),
          f.universe.Height() * rng.NextDouble(1e-3, 1.0),
          f.universe.Duration() * rng.NextDouble(1e-3, 1.0)};
      const double np =
          ExpectedInvolvedPartitions(index, size, f.universe);
      // A tiling index always intersects at least one partition.
      ASSERT_GE(np, 1.0 - 1e-9);
      ASSERT_LE(np, static_cast<double>(index.NumPartitions()) + 1e-9);
    }
  }
}

TEST(CostModelPropertyTest, WholeUniverseQueryInvolvesEverything) {
  const Fixture f;
  for (const std::size_t temporal : {1u, 4u, 32u}) {
    const PartitionIndex index = f.Index(16, temporal);
    EXPECT_NEAR(
        ExpectedInvolvedPartitions(index, f.universe.Size(), f.universe),
        static_cast<double>(index.NumPartitions()), 1e-9);
  }
}

TEST(CostModelPropertyTest, RefiningPartitioningRaisesExpectedNp) {
  // More partitions of the same universe => no fewer expected involved
  // partitions, for any query size.
  const Fixture f;
  const PartitionIndex coarse = f.Index(4, 4);
  const PartitionIndex fine = f.Index(16, 16);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const RangeSize size = {
        f.universe.Width() * rng.NextDouble(0.01, 1.0),
        f.universe.Height() * rng.NextDouble(0.01, 1.0),
        f.universe.Duration() * rng.NextDouble(0.01, 1.0)};
    ASSERT_GE(ExpectedInvolvedPartitions(fine, size, f.universe) + 1e-9,
              ExpectedInvolvedPartitions(coarse, size, f.universe));
  }
}

TEST(CostModelPropertyTest, GroupedCostMonotoneInQuerySize) {
  const Fixture f;
  const ReplicaSketch sketch = ReplicaSketch::FromSample(
      f.dataset,
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("ROW-GZIP")},
      f.universe, 1'000'000, 0.5);
  const CostModel model(EnvironmentModel::AmazonS3Emr());
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const double frac = rng.NextDouble(0.01, 0.5);
    const GroupedQuery small{{f.universe.Width() * frac,
                              f.universe.Height() * frac,
                              f.universe.Duration() * frac}};
    const GroupedQuery large{{f.universe.Width() * frac * 1.5,
                              f.universe.Height() * frac * 1.5,
                              f.universe.Duration() * frac * 1.5}};
    ASSERT_LE(model.QueryCostMs(sketch, small),
              model.QueryCostMs(sketch, large) + 1e-9);
  }
}

}  // namespace
}  // namespace blot
