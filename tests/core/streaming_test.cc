#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/partial.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset initial;
  Dataset incoming;
  STRange universe;
  CostModel model{EnvironmentModel::LocalHadoop()};

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 300;
    initial = GenerateTaxiFleet(config);
    universe = config.Universe();
    TaxiFleetConfig later = config;
    later.seed = config.seed + 1;
    later.num_taxis = 4;
    later.samples_per_taxi = 200;
    incoming = GenerateTaxiFleet(later);
  }

  BlotStore MakeStore() const {
    BlotStore store(initial, universe);
    store.AddReplica({{.spatial_partitions = 8, .temporal_partitions = 4},
                      EncodingScheme::FromName("ROW-SNAPPY")});
    store.AddReplica({{.spatial_partitions = 32, .temporal_partitions = 8},
                      EncodingScheme::FromName("COL-GZIP")});
    return store;
  }
};

TEST(StreamingStoreTest, RequiresAReplica) {
  const Fixture f;
  EXPECT_THROW(StreamingStore(BlotStore(f.initial, f.universe)),
               InvalidArgument);
}

TEST(StreamingStoreTest, IngestedRecordsAreQueryableBeforeCompaction) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), /*compact_threshold=*/0);
  for (const Record& r : f.incoming.records()) store.Ingest(r);
  EXPECT_EQ(store.DeltaSize(), f.incoming.size());
  EXPECT_EQ(store.compactions(), 0u);

  Dataset all = f.initial;
  all.Append(f.incoming);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const STRange query = SampleQueryInstance(
        {{f.universe.Width() * 0.3, f.universe.Height() * 0.3,
          f.universe.Duration() * 0.3}},
        f.universe, rng);
    EXPECT_EQ(store.Execute(query, f.model).result.records.size(),
              all.FilterByRange(query).size())
        << "trial " << trial;
  }
}

TEST(StreamingStoreTest, CompactionFoldsDeltaIntoReplicas) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), /*compact_threshold=*/0);
  for (const Record& r : f.incoming.records()) store.Ingest(r);
  store.Compact();
  EXPECT_EQ(store.DeltaSize(), 0u);
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_EQ(store.TotalRecords(), f.initial.size() + f.incoming.size());
  EXPECT_EQ(store.store().replica(0).NumRecords(),
            f.initial.size() + f.incoming.size());

  // Queries remain correct after the rebuild.
  Dataset all = f.initial;
  all.Append(f.incoming);
  Rng rng(5);
  const STRange query = SampleQueryInstance(
      {{f.universe.Width() * 0.4, f.universe.Height() * 0.4,
        f.universe.Duration() * 0.4}},
      f.universe, rng);
  EXPECT_EQ(store.Execute(query, f.model).result.records.size(),
            all.FilterByRange(query).size());
}

TEST(StreamingStoreTest, AutoCompactionTriggersAtThreshold) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), /*compact_threshold=*/100);
  std::size_t triggered = 0;
  for (const Record& r : f.incoming.records())
    if (store.Ingest(r)) ++triggered;
  EXPECT_EQ(triggered, f.incoming.size() / 100);
  EXPECT_EQ(store.compactions(), triggered);
  EXPECT_LT(store.DeltaSize(), 100u);
}

TEST(StreamingStoreTest, PartialReplicasSurviveCompaction) {
  const Fixture f;
  BlotStore base = f.MakeStore();
  const STRange hotspot = DensestSpatialBox(f.initial, f.universe, 0.5);
  base.AddPartialReplica(
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP")},
      hotspot);
  StreamingStore store(std::move(base), 0);
  for (const Record& r : f.incoming.records()) store.Ingest(r);
  store.Compact();
  ASSERT_EQ(store.store().NumReplicas(), 3u);
  EXPECT_FALSE(store.store().IsFullReplica(2));
  Dataset all = f.initial;
  all.Append(f.incoming);
  EXPECT_EQ(store.store().replica(2).NumRecords(),
            all.FilterByRange(hotspot).size());
}

TEST(StreamingStoreTest, BatchQueriesSeeDeltaRecords) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), /*compact_threshold=*/0);
  for (const Record& r : f.incoming.records()) store.Ingest(r);

  Dataset all = f.initial;
  all.Append(f.incoming);
  std::vector<STRange> queries;
  Rng rng(11);
  for (int i = 0; i < 4; ++i)
    queries.push_back(SampleQueryInstance(
        {{f.universe.Width() * 0.3, f.universe.Height() * 0.3,
          f.universe.Duration() * 0.3}},
        f.universe, rng));
  const auto batch = store.ExecuteBatch(queries, f.model);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(batch.per_query[q].size(),
              all.FilterByRange(queries[q]).size())
        << "query " << q;
}

TEST(StreamingStoreTest, RejectsRecordsOutsideUniverse) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), 0);
  Record outside;
  outside.x = 500;
  outside.y = 500;
  outside.time = 0;
  EXPECT_THROW(store.Ingest(outside), InvalidArgument);
}

TEST(StreamingStoreTest, CompactOnEmptyDeltaIsNoop) {
  const Fixture f;
  StreamingStore store(f.MakeStore(), 0);
  store.Compact();
  EXPECT_EQ(store.compactions(), 0u);
  EXPECT_EQ(store.TotalRecords(), f.initial.size());
}

}  // namespace
}  // namespace blot
