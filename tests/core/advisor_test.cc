// End-to-end pipeline test: sample -> ratios -> candidates -> cost matrix
// -> selection, on synthetic taxi data, for both solvers.
#include "core/advisor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/taxi_generator.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  Workload workload;
  CostModel model{EnvironmentModel::AmazonS3Emr()};
  AdvisorOptions options;
  // Advise for a paper-scale dataset (65M records) distributed like the
  // generated sample: at toy scales ExtraTime dominates every query and
  // partitioning granularity stops mattering.
  std::uint64_t total_records = 65'000'000;

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 20;
    config.samples_per_taxi = 500;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();

    // "Wildly varied range sizes" as in Section V-C.
    for (const double frac : {0.01, 0.05, 0.1, 0.3, 0.6, 0.9})
      workload.Add({{universe.Width() * frac, universe.Height() * frac,
                     universe.Duration() * frac}},
                   1.0);

    // A trimmed candidate space keeps the test fast.
    options.candidate_space.spatial_counts = {4, 16, 64, 256};
    options.candidate_space.temporal_counts = {4, 16};
    options.sample_records = 5000;
  }

  double ThreeReplicaBudget() const {
    // The paper's budget: 3x the storage of the optimal single replica —
    // approximated here as 3x the ROW-PLAIN storage.
    return 3.0 * static_cast<double>(total_records) * kRecordRowBytes;
  }
};

TEST(AdvisorTest, GreedyPipelineSelectsDiverseReplicas) {
  const Fixture f;
  const AdvisorReport report =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget(), f.options);
  EXPECT_FALSE(report.chosen.empty());
  EXPECT_TRUE(std::isfinite(report.selection.workload_cost));
  // Sanity: selection cost bracketed by ideal and best-single.
  EXPECT_GE(report.selection.workload_cost, report.ideal_cost_ms - 1e-6);
  EXPECT_LE(report.selection.workload_cost,
            report.best_single_cost_ms + 1e-6);
  // Diverse replicas must beat the single-configuration baseline.
  EXPECT_LT(report.selection.workload_cost, report.best_single_cost_ms);
  EXPECT_GT(report.SpeedupOverSingle(), 1.0);
  // Budget respected.
  EXPECT_LE(report.selection.storage_used, f.ThreeReplicaBudget());
  // Compression ratios were measured for all 7 schemes.
  EXPECT_EQ(report.compression_ratios.size(), 7u);
}

TEST(AdvisorTest, MipMatchesOrBeatsGreedy) {
  const Fixture f;
  AdvisorOptions greedy_options = f.options;
  greedy_options.algorithm = SelectionAlgorithm::kGreedy;
  AdvisorOptions mip_options = f.options;
  mip_options.algorithm = SelectionAlgorithm::kMip;

  const AdvisorReport greedy =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget(), greedy_options);
  const AdvisorReport mip =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget(), mip_options);
  EXPECT_TRUE(mip.selection.optimal);
  EXPECT_LE(mip.selection.workload_cost,
            greedy.selection.workload_cost + 1e-6);
  EXPECT_GE(mip.selection.workload_cost, mip.ideal_cost_ms - 1e-6);
}

TEST(AdvisorTest, DominancePruningShrinksCandidates) {
  const Fixture f;
  const AdvisorReport report =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget(), f.options);
  EXPECT_EQ(report.candidates_before_pruning, 4u * 2u * 7u);
  EXPECT_LT(report.candidates.size(), report.candidates_before_pruning);
  EXPECT_GE(report.candidates.size(), 1u);
}

TEST(AdvisorTest, WorkloadReductionKeepsPipelineWorking) {
  Fixture f;
  // Blow the workload up to 60 queries, then reduce to 6 clusters.
  Workload big;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const double frac = std::exp(rng.NextDouble(std::log(0.01), 0.0));
    big.Add({{f.universe.Width() * frac, f.universe.Height() * frac,
              f.universe.Duration() * frac}},
            rng.NextDouble(0.5, 2.0));
  }
  f.options.max_workload_size = 6;
  const AdvisorReport report =
      AdviseReplicas(f.dataset, f.universe, f.total_records, big, f.model,
                     f.ThreeReplicaBudget(), f.options);
  EXPECT_FALSE(report.chosen.empty());
  EXPECT_TRUE(std::isfinite(report.selection.workload_cost));
}

TEST(AdvisorTest, LargerBudgetNeverHurts) {
  const Fixture f;
  const AdvisorReport tight =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget() * 0.5, f.options);
  const AdvisorReport loose =
      AdviseReplicas(f.dataset, f.universe, f.total_records, f.workload,
                     f.model, f.ThreeReplicaBudget() * 2.0, f.options);
  EXPECT_LE(loose.selection.workload_cost,
            tight.selection.workload_cost + 1e-6);
}

TEST(AdvisorTest, ScaledRunFromSampleWorks) {
  // Pass a sample dataset but a 100x total record count (the Figure 6
  // scaling mode).
  const Fixture f;
  const std::uint64_t scaled_total = f.dataset.size() * 100;
  const AdvisorReport report =
      AdviseReplicas(f.dataset, f.universe, scaled_total, f.workload,
                     f.model,
                     3.0 * static_cast<double>(scaled_total) * kRecordRowBytes,
                     f.options);
  EXPECT_FALSE(report.chosen.empty());
  EXPECT_GT(report.selection.storage_used,
            static_cast<double>(scaled_total));  // scaled storage
}

}  // namespace
}  // namespace blot
