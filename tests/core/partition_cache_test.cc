#include "core/partition_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "blot/batch.h"
#include "blot/replica.h"
#include "common/fixtures.h"
#include "core/workload.h"
#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

using test::GlobalCacheGuard;
using test::Sorted;
using Fixture = test::TaxiFixture;

std::vector<Record> MakeRecords(std::size_t n, std::uint32_t oid) {
  std::vector<Record> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].oid = oid;
    records[i].time = static_cast<std::int64_t>(i);
    records[i].x = 0.1 * static_cast<double>(i);
    records[i].y = 0.2 * static_cast<double>(i);
  }
  return records;
}

TEST(PartitionCacheTest, DisabledByDefaultAndInert) {
  PartitionCache& cache = PartitionCache::Global();
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  // Insert still hands back the (pinned) records but retains nothing.
  const auto pinned = cache.Insert(1, 0, MakeRecords(10, 7));
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->size(), 10u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(PartitionCacheTest, HitMissSemantics) {
  PartitionCache cache(1 << 20, 1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, MakeRecords(10, 1));
  const auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 10u);
  EXPECT_EQ((*hit)[3].oid, 1u);
  // Same partition of a different replica is a different key.
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);

  const PartitionCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, PartitionCache::EntryBytes(*hit));
  EXPECT_NEAR(s.HitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(PartitionCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  const std::uint64_t entry_bytes =
      PartitionCache::EntryBytes(MakeRecords(100, 0));
  // Room for three entries in the single shard.
  PartitionCache cache(3 * entry_bytes, 1);
  cache.Insert(1, 0, MakeRecords(100, 0));
  cache.Insert(1, 1, MakeRecords(100, 1));
  cache.Insert(1, 2, MakeRecords(100, 2));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch partition 0 so partition 1 is now the least recently used.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 3, MakeRecords(100, 3));

  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 3 * entry_bytes);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);  // the LRU victim
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(1, 3), nullptr);
}

TEST(PartitionCacheTest, OversizeEntryIsNotCached) {
  PartitionCache cache(PartitionCache::EntryBytes(MakeRecords(10, 0)), 1);
  const auto pinned = cache.Insert(1, 0, MakeRecords(10000, 0));
  ASSERT_NE(pinned, nullptr);  // caller still gets the records
  EXPECT_EQ(pinned->size(), 10000u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(PartitionCacheTest, PinnedEntrySurvivesEviction) {
  const std::uint64_t entry_bytes =
      PartitionCache::EntryBytes(MakeRecords(100, 0));
  PartitionCache cache(entry_bytes, 1);  // exactly one entry fits
  cache.Insert(1, 0, MakeRecords(100, 42));
  const auto pinned = cache.Lookup(1, 0);
  ASSERT_NE(pinned, nullptr);

  // Displace it while we hold the pin.
  cache.Insert(1, 1, MakeRecords(100, 43));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);

  // The pinned snapshot is untouched by the eviction.
  EXPECT_EQ(pinned->size(), 100u);
  EXPECT_EQ(pinned->front().oid, 42u);
  EXPECT_EQ(pinned->back().time, 99);
}

TEST(PartitionCacheTest, InsertRaceKeepsResidentEntry) {
  PartitionCache cache(1 << 20, 1);
  const auto first = cache.Insert(1, 0, MakeRecords(10, 1));
  // A second decode of the same partition loses to the resident entry.
  const auto second = cache.Insert(1, 0, MakeRecords(10, 1));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(PartitionCacheTest, InvalidateAndConfigure) {
  PartitionCache cache(1 << 20, 4);
  for (std::size_t p = 0; p < 8; ++p)
    cache.Insert(7, p, MakeRecords(50, static_cast<std::uint32_t>(p)));
  EXPECT_EQ(cache.stats().entries, 8u);

  cache.Invalidate(7, 3);
  EXPECT_EQ(cache.Lookup(7, 3), nullptr);
  EXPECT_EQ(cache.stats().entries, 7u);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  cache.InvalidateReplica(7, 8);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);

  for (std::size_t p = 0; p < 8; ++p)
    cache.Insert(7, p, MakeRecords(50, static_cast<std::uint32_t>(p)));
  cache.Configure(0);  // shrink to disabled: everything evicted
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(PartitionCacheIntegrationTest, CachedExecutionMatchesUncached) {
  const Fixture f;
  const Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("COL-GZIP")},
      f.universe);
  Rng rng(3);
  std::vector<STRange> queries;
  for (int i = 0; i < 12; ++i)
    queries.push_back(SampleQueryInstance(
        {{f.universe.Width() * 0.2, f.universe.Height() * 0.2,
          f.universe.Duration() * 0.3}},
        f.universe, rng));

  std::vector<std::vector<Record>> uncached;
  for (const STRange& q : queries)
    uncached.push_back(Sorted(replica.Execute(q).records));

  GlobalCacheGuard guard(64 << 20);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const QueryResult result = replica.Execute(queries[i]);
      EXPECT_EQ(Sorted(result.records), uncached[i])
          << "pass " << pass << " query " << i;
      EXPECT_EQ(result.stats.cache_hits + result.stats.cache_misses,
                result.stats.partitions_scanned);
    }
  }
  const PartitionCache::Stats s = PartitionCache::Global().stats();
  EXPECT_GT(s.hits, 0u);   // the second pass must hit
  EXPECT_GT(s.misses, 0u);  // the first pass must miss
}

TEST(PartitionCacheIntegrationTest, BatchExecutionMatchesUncached) {
  const Fixture f;
  const Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("ROW-SNAPPY")},
      f.universe);
  std::vector<STRange> queries;
  for (int gx = 0; gx < 3; ++gx)
    queries.push_back(STRange::FromBounds(
        f.universe.x_min() + f.universe.Width() * gx / 3,
        f.universe.x_min() + f.universe.Width() * (gx + 1) / 3,
        f.universe.y_min(), f.universe.y_max(), f.universe.t_min(),
        f.universe.t_max()));

  const BatchResult uncached = ExecuteBatch(replica, queries);

  GlobalCacheGuard guard(64 << 20);
  const BatchResult cold = ExecuteBatch(replica, queries);
  const BatchResult warm = ExecuteBatch(replica, queries);
  ASSERT_EQ(cold.per_query.size(), uncached.per_query.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Sorted(cold.per_query[q]), Sorted(uncached.per_query[q]));
    EXPECT_EQ(Sorted(warm.per_query[q]), Sorted(uncached.per_query[q]));
  }
  EXPECT_EQ(cold.stats.cache_misses, cold.stats.partitions_scanned);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.partitions_scanned);
  EXPECT_EQ(warm.stats.bytes_read, 0u);
  EXPECT_EQ(warm.stats.records_scanned, cold.stats.records_scanned);
}

TEST(PartitionCacheIntegrationTest, CorruptionAfterCachingIsDetected) {
  const Fixture f;
  GlobalCacheGuard guard(64 << 20);
  Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-GZIP")},
      f.universe);
  // Populate the cache with every partition.
  const QueryResult all = replica.Execute(f.universe);
  EXPECT_EQ(all.records.size(), f.dataset.size());
  EXPECT_GT(PartitionCache::Global().stats().entries, 0u);

  // Corrupt one stored partition. MutablePartition must both invalidate
  // the cached decode (else the stale entry would mask the damage) and
  // re-arm checksum verification (else the read would trust the bytes).
  StoredPartition& victim = replica.MutablePartition(5);
  ASSERT_FALSE(victim.data.empty());
  victim.data[victim.data.size() / 2] ^= 0xFF;
  EXPECT_THROW(replica.Execute(f.universe), CorruptData);
}

TEST(PartitionCacheIntegrationTest, RecoveryRestoresCachedQueries) {
  const Fixture f;
  GlobalCacheGuard guard(64 << 20);
  Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-SNAPPY")},
      f.universe);
  const Replica healthy = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 2},
       EncodingScheme::FromName("ROW-PLAIN")},
      f.universe);
  replica.Execute(f.universe);  // warm the cache
  StoredPartition& victim = replica.MutablePartition(2);
  victim.data.clear();
  victim.checksum = 0;
  EXPECT_THROW(replica.Execute(f.universe), Error);

  replica = RecoverReplica(healthy, replica.config());
  EXPECT_EQ(Sorted(replica.Execute(f.universe).records),
            Sorted(f.dataset.records()));
}

// Many threads hammering overlapping hot partitions through a cache too
// small to hold them all: lookups, inserts, evictions and pin-handoffs
// race while results must stay exact. Run under TSan in CI.
TEST(PartitionCacheConcurrencyTest, ParallelQueriesStayCorrect) {
  const Fixture f(8, 250);
  const Replica replica = Replica::Build(
      f.dataset,
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP")},
      f.universe);
  // Budget chosen so each of the 16 shards holds ~1.5 entries: with 32
  // partitions, pigeonhole puts >= 2 keys in some shard, guaranteeing
  // evictions once every partition has been decoded.
  const std::uint64_t budget =
      PartitionCache::EntryBytes(replica.DecodePartitionRecords(0)) * 24;
  GlobalCacheGuard guard(budget);

  Rng rng(29);
  std::vector<STRange> queries;
  std::vector<std::vector<Record>> expected;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(SampleQueryInstance(
        {{f.universe.Width() * 0.4, f.universe.Height() * 0.4,
          f.universe.Duration() * 0.4}},
        f.universe, rng));
    expected.push_back(Sorted(f.dataset.FilterByRange(queries.back())));
  }

  std::atomic<int> mismatches{0};
  const auto worker = [&](unsigned seed) {
    Rng thread_rng(seed);
    for (int iter = 0; iter < 40; ++iter) {
      const std::size_t i = thread_rng.NextUint64(queries.size());
      const QueryResult result = replica.Execute(queries[i]);
      if (Sorted(result.records) != expected[i]) mismatches.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 6; ++t) threads.emplace_back(worker, 100 + t);
  // Meanwhile, ThreadPool-parallel executions share the same cache.
  ThreadPool pool(4);
  for (int iter = 0; iter < 10; ++iter) {
    const QueryResult result = replica.Execute(queries[iter % 16], &pool);
    EXPECT_EQ(Sorted(result.records), expected[iter % 16]);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Touch every partition, then the tight budget must have evicted.
  replica.Execute(f.universe);
  EXPECT_GT(PartitionCache::Global().stats().evictions, 0u);
}

}  // namespace
}  // namespace blot
