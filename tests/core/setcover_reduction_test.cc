// Exercises Theorem 1's reduction: any set-cover decision instance maps to
// a replica-selection instance such that the cover exists iff the optimal
// workload cost is zero. Running the reduction against our exact solvers
// on random instances validates both the construction and the solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/mip_selection.h"
#include "core/selection.h"
#include "util/rng.h"

namespace blot {
namespace {

struct SetCoverInstance {
  std::size_t num_elements;
  std::vector<std::set<std::size_t>> sets;
  std::size_t k;  // cover size bound
};

// Theorem 1's construction, with +infinity replaced by a finite penalty
// (solvers require finite costs): the optimal cost is zero iff a cover of
// size <= k exists, and >= kPenalty otherwise.
constexpr double kPenalty = 1e6;

SelectionInput BuildReduction(const SetCoverInstance& instance) {
  SelectionInput input;
  const std::size_t n = instance.num_elements;
  const std::size_t m = instance.sets.size();
  input.weights.assign(n, 1.0);
  input.storage_bytes.assign(m, 1.0);
  input.budget_bytes = static_cast<double>(instance.k);
  input.cost.assign(n, std::vector<double>(m, kPenalty));
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t element : instance.sets[j])
      input.cost[element][j] = 0.0;
  return input;
}

bool BruteForceCoverExists(const SetCoverInstance& instance) {
  const std::size_t m = instance.sets.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > instance.k) continue;
    std::set<std::size_t> covered;
    for (std::size_t j = 0; j < m; ++j)
      if (mask & (std::uint64_t{1} << j))
        covered.insert(instance.sets[j].begin(), instance.sets[j].end());
    if (covered.size() == instance.num_elements) return true;
  }
  return false;
}

SetCoverInstance RandomInstance(Rng& rng) {
  SetCoverInstance instance;
  instance.num_elements = 3 + rng.NextUint64(4);
  const std::size_t num_sets = 3 + rng.NextUint64(5);
  for (std::size_t j = 0; j < num_sets; ++j) {
    std::set<std::size_t> s;
    const std::size_t size = 1 + rng.NextUint64(instance.num_elements);
    for (std::size_t i = 0; i < size; ++i)
      s.insert(rng.NextUint64(instance.num_elements));
    instance.sets.push_back(std::move(s));
  }
  instance.k = 1 + rng.NextUint64(num_sets);
  return instance;
}

TEST(SetCoverReductionTest, FeasibleCoverYieldsZeroCost) {
  // U = {0,1,2}, sets {0,1}, {1,2}, {2}; k = 2 -> cover {0,1}+{1,2}.
  SetCoverInstance instance{3, {{0, 1}, {1, 2}, {2}}, 2};
  const SelectionInput input = BuildReduction(instance);
  const SelectionResult r = SelectExhaustive(input);
  EXPECT_NEAR(r.workload_cost, 0.0, 1e-9);
  EXPECT_LE(r.chosen.size(), 2u);
}

TEST(SetCoverReductionTest, InfeasibleCoverYieldsPenaltyCost) {
  // Element 2 is only in set {2}; with k = 1 no single set covers all.
  SetCoverInstance instance{3, {{0, 1}, {1}, {2}}, 1};
  const SelectionInput input = BuildReduction(instance);
  const SelectionResult r = SelectExhaustive(input);
  EXPECT_GE(r.workload_cost, kPenalty - 1e-9);
}

TEST(SetCoverReductionTest, ExhaustiveDecidesRandomInstances) {
  Rng rng(59);
  for (int t = 0; t < 40; ++t) {
    const SetCoverInstance instance = RandomInstance(rng);
    const bool expected = BruteForceCoverExists(instance);
    const SelectionResult r =
        SelectExhaustive(BuildReduction(instance));
    const bool decided = r.workload_cost < kPenalty / 2;
    EXPECT_EQ(decided, expected) << "trial " << t;
  }
}

TEST(SetCoverReductionTest, MipDecidesRandomInstances) {
  Rng rng(61);
  for (int t = 0; t < 20; ++t) {
    const SetCoverInstance instance = RandomInstance(rng);
    const bool expected = BruteForceCoverExists(instance);
    const SelectionResult r = SelectMip(BuildReduction(instance));
    ASSERT_TRUE(r.optimal) << "trial " << t;
    EXPECT_EQ(r.workload_cost < kPenalty / 2, expected) << "trial " << t;
  }
}

}  // namespace
}  // namespace blot
