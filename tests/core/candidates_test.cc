#include "core/candidates.h"

#include <gtest/gtest.h>

#include "core/mip_selection.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset sample;
  STRange universe;
  Workload workload;
  CostModel model{EnvironmentModel::AmazonS3Emr()};
  std::map<std::string, double> ratios;

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 300;
    sample = GenerateTaxiFleet(config);
    universe = config.Universe();
    for (const double frac : {0.02, 0.1, 0.4, 1.0})
      workload.Add({{universe.Width() * frac, universe.Height() * frac,
                     universe.Duration() * frac}},
                   1.0);
    ratios = MeasureCompressionRatios(sample, AllEncodingSchemes(), 3000);
  }
};

TEST(EnumerateReplicaConfigsTest, PaperSpaceIs25x7) {
  const auto configs = EnumerateReplicaConfigs({});
  EXPECT_EQ(configs.size(), 25u * 7u);
  // All distinct names.
  std::set<std::string> names;
  for (const ReplicaConfig& config : configs) names.insert(config.Name());
  EXPECT_EQ(names.size(), configs.size());
}

TEST(MeasureCompressionRatiosTest, CoversAllSchemesInRange) {
  const Fixture f;
  EXPECT_EQ(f.ratios.size(), 7u);
  for (const auto& [name, ratio] : f.ratios) {
    EXPECT_GT(ratio, 0.0) << name;
    EXPECT_LT(ratio, 1.2) << name;
  }
}

TEST(BuildSelectionInputGroupedTest, MatchesSketchBasedBuilder) {
  // The grouped fast path (geometry computed once per partitioning) must
  // produce the same cost matrix as sketch-by-sketch construction.
  const Fixture f;
  const std::vector<PartitioningSpec> partitionings = {
      {.spatial_partitions = 4, .temporal_partitions = 4},
      {.spatial_partitions = 16, .temporal_partitions = 8},
  };
  const std::uint64_t total_records = 5'000'000;
  const double budget = 1e12;

  const CandidateMatrixResult grouped = BuildSelectionInputGrouped(
      f.sample, f.universe, partitionings, AllEncodingSchemes(), f.ratios,
      total_records, f.workload, f.model, budget);

  std::vector<ReplicaSketch> sketches = BuildCandidateSketches(
      f.sample, f.universe, grouped.configs, total_records, f.ratios);
  const SelectionInput reference =
      BuildSelectionInput(sketches, f.workload, f.model, budget);

  ASSERT_EQ(grouped.input.NumQueries(), reference.NumQueries());
  ASSERT_EQ(grouped.input.NumReplicas(), reference.NumReplicas());
  for (std::size_t i = 0; i < reference.NumQueries(); ++i)
    for (std::size_t j = 0; j < reference.NumReplicas(); ++j)
      EXPECT_NEAR(grouped.input.cost[i][j], reference.cost[i][j],
                  reference.cost[i][j] * 1e-6 + 1e-6)
          << "i=" << i << " j=" << j;
  for (std::size_t j = 0; j < reference.NumReplicas(); ++j)
    EXPECT_NEAR(grouped.input.storage_bytes[j], reference.storage_bytes[j],
                reference.storage_bytes[j] * 1e-9 + 1.0)
        << "j=" << j;
}

TEST(BuildSelectionInputGroupedTest, ColumnOrderIsPartitioningMajor) {
  const Fixture f;
  const std::vector<PartitioningSpec> partitionings = {
      {.spatial_partitions = 4, .temporal_partitions = 4},
      {.spatial_partitions = 16, .temporal_partitions = 8},
  };
  const CandidateMatrixResult grouped = BuildSelectionInputGrouped(
      f.sample, f.universe, partitionings, AllEncodingSchemes(), f.ratios,
      1'000'000, f.workload, f.model, 1e12);
  ASSERT_EQ(grouped.configs.size(), 14u);
  EXPECT_EQ(grouped.configs[0].partitioning.Name(), "KD4xT4");
  EXPECT_EQ(grouped.configs[6].partitioning.Name(), "KD4xT4");
  EXPECT_EQ(grouped.configs[7].partitioning.Name(), "KD16xT8");
  EXPECT_EQ(grouped.configs[0].encoding, AllEncodingSchemes()[0]);
}

TEST(SelectMipTest, NodeLimitFallsBackToGreedyHonestly) {
  // Starve the node budget: the result must carry the greedy solution and
  // be marked non-optimal.
  const Fixture f;
  const CandidateMatrixResult matrix = BuildSelectionInputGrouped(
      f.sample, f.universe,
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       {.spatial_partitions = 16, .temporal_partitions = 8},
       {.spatial_partitions = 64, .temporal_partitions = 16}},
      AllEncodingSchemes(), f.ratios, 500'000'000, f.workload, f.model,
      3.0 * 500'000'000.0 * kRecordRowBytes);
  MipSelectionOptions options;
  options.mip.max_nodes = 0;
  const SelectionResult result = SelectMip(matrix.input, options);
  const SelectionResult greedy = SelectGreedy(matrix.input);
  EXPECT_FALSE(result.optimal);
  EXPECT_EQ(result.chosen, greedy.chosen);
  EXPECT_NEAR(result.workload_cost, greedy.workload_cost, 1e-9);
}

}  // namespace
}  // namespace blot
