// Fault-tolerant query execution end to end: health state machine,
// quarantine on read faults, failover to the next-cheapest replica,
// partition-granular self-healing repair, and the chaos-equivalence
// guarantee — faults in up to R-1 replicas' copies of any partition must
// never change a query's result (docs/robustness.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fixtures.h"
#include "core/fault_injection.h"
#include "core/health.h"
#include "core/partition_cache.h"
#include "core/store.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot {
namespace {

using test::Sorted;

// --- HealthMap unit coverage -------------------------------------------

TEST(HealthMapTest, StateMachineTransitions) {
  HealthMap health;
  health.AddReplica(4);
  EXPECT_EQ(health.NumReplicas(), 1u);
  EXPECT_TRUE(health.AllOk(0));
  EXPECT_EQ(health.Get(0, 2), PartitionHealth::kOk);

  // ok -> suspect -> ok (clean read clears suspicion).
  EXPECT_EQ(health.MarkSuspect(0, 2), PartitionHealth::kSuspect);
  EXPECT_FALSE(health.AllOk(0));
  health.MarkOk(0, 2);
  EXPECT_TRUE(health.AllOk(0));

  // Two unattributed strikes escalate to quarantined.
  EXPECT_EQ(health.MarkSuspect(0, 1), PartitionHealth::kSuspect);
  EXPECT_EQ(health.MarkSuspect(0, 1), PartitionHealth::kQuarantined);

  // Attributed faults quarantine directly; re-quarantine reports no
  // change.
  EXPECT_TRUE(health.Quarantine(0, 3));
  EXPECT_FALSE(health.Quarantine(0, 3));
  EXPECT_EQ(health.QuarantinedCount(), 2u);

  // Repair returns partitions to ok.
  health.MarkOk(0, 1);
  health.MarkOk(0, 3);
  EXPECT_TRUE(health.AllOk(0));
  EXPECT_EQ(health.QuarantinedCount(), 0u);
}

TEST(HealthMapTest, QueriesOverPartitionSets) {
  HealthMap health;
  health.AddReplica(8);
  health.AddReplica(4);
  health.Quarantine(0, 5);
  health.MarkSuspect(1, 0);

  EXPECT_TRUE(health.AnyQuarantined(0, {1, 5}));
  EXPECT_FALSE(health.AnyQuarantined(0, {1, 2}));
  EXPECT_TRUE(health.AnySuspect(1, {0, 3}));
  EXPECT_FALSE(health.AnySuspect(1, {2, 3}));

  const std::vector<HealthMap::Target> quarantined = health.Quarantined();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].replica, 0u);
  EXPECT_EQ(quarantined[0].partition, 5u);

  const HealthMap::Counts counts = health.CountsFor(1);
  EXPECT_EQ(counts.ok, 3u);
  EXPECT_EQ(counts.suspect, 1u);
  EXPECT_EQ(counts.quarantined, 0u);
}

TEST(HealthMapTest, ResetReplicaReturnsEverythingToOk) {
  HealthMap health;
  health.AddReplica(4);
  health.Quarantine(0, 0);
  health.MarkSuspect(0, 1);
  health.ResetReplica(0, 6);  // rebuild may change the partition count
  EXPECT_TRUE(health.AllOk(0));
  EXPECT_EQ(health.CountsFor(0).ok, 6u);
  EXPECT_EQ(health.QuarantinedCount(), 0u);
}

// --- Store-level failover, quarantine and repair -----------------------

struct FailoverTest : ::testing::Test, test::TaxiFixture {
  CostModel model{EnvironmentModel::LocalHadoop()};

  void TearDown() override {
    FaultInjector::Global().Disarm();
    PartitionCache::Global().Configure(0);
    obs::MetricsRegistry::global().set_enabled(false);
  }

  BlotStore MakeStore(std::size_t replicas = 2) {
    return test::MakeStandardStore(dataset, universe, replicas);
  }

  STRange CentroidQuery(double fraction) const {
    return test::CentroidQuery(universe, fraction);
  }

  std::vector<std::size_t> CorruptInvolved(BlotStore& store,
                                           std::size_t replica,
                                           const STRange& query) {
    return test::CorruptInvolved(store, replica, query);
  }
};

TEST_F(FailoverTest, FailoverServesIdenticalResultsAndQuarantines) {
  BlotStore store = MakeStore();
  FailoverPolicy policy;
  policy.repair = RepairMode::kNone;  // inspect the quarantine first
  store.SetFailoverPolicy(policy);

  const STRange query = CentroidQuery(0.3);
  const std::vector<Record> truth = dataset.FilterByRange(query);
  ASSERT_FALSE(truth.empty());

  const std::size_t victim = store.RouteQuery(query, model);
  const std::vector<std::size_t> corrupted =
      CorruptInvolved(store, victim, query);
  ASSERT_FALSE(corrupted.empty());

  const BlotStore::RoutedResult routed = store.Execute(query, model);
  EXPECT_EQ(Sorted(routed.result.records), Sorted(truth));
  EXPECT_NE(routed.replica_index, victim);
  EXPECT_TRUE(routed.degraded);
  EXPECT_GE(routed.attempts, 2u);
  EXPECT_EQ(routed.served_by,
            store.replica(routed.replica_index).config().Name());

  // Exactly the faulty storage units are quarantined.
  for (const std::size_t p : corrupted)
    EXPECT_EQ(store.health().Get(victim, p), PartitionHealth::kQuarantined);
  EXPECT_EQ(store.health().QuarantinedCount(), corrupted.size());

  // Routing now avoids the victim without touching it.
  EXPECT_NE(store.RouteQuery(query, model), victim);
}

TEST_F(FailoverTest, RepairQuarantinedRestoresDataAndHealth) {
  BlotStore store = MakeStore();
  FailoverPolicy policy;
  policy.repair = RepairMode::kNone;
  store.SetFailoverPolicy(policy);

  const STRange query = CentroidQuery(0.3);
  const std::size_t victim = store.RouteQuery(query, model);
  const std::vector<std::size_t> corrupted =
      CorruptInvolved(store, victim, query);
  store.Execute(query, model);  // quarantine via failover
  ASSERT_EQ(store.health().QuarantinedCount(), corrupted.size());

  const std::size_t repaired = store.RepairQuarantined();
  EXPECT_GE(repaired, 1u);
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
  EXPECT_TRUE(store.health().AllOk(victim));

  // The repaired replica holds the full logical view again and serves
  // the query first-choice, undegraded.
  EXPECT_EQ(Sorted(store.replica(victim).Reconstruct().records()),
            Sorted(dataset.records()));
  const BlotStore::RoutedResult routed = store.Execute(query, model);
  EXPECT_FALSE(routed.degraded);
  EXPECT_EQ(routed.attempts, 1u);
  EXPECT_EQ(Sorted(routed.result.records),
            Sorted(dataset.FilterByRange(query)));
}

TEST_F(FailoverTest, SyncRepairPolicySelfHealsWithinExecute) {
  BlotStore store = MakeStore();  // default policy: RepairMode::kSync
  const STRange query = CentroidQuery(0.25);
  const std::size_t victim = store.RouteQuery(query, model);
  CorruptInvolved(store, victim, query);

  const BlotStore::RoutedResult routed = store.Execute(query, model);
  EXPECT_EQ(Sorted(routed.result.records),
            Sorted(dataset.FilterByRange(query)));
  // The same Execute call already repaired what it quarantined.
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
  EXPECT_TRUE(store.health().AllOk(victim));
}

TEST_F(FailoverTest, BackgroundRepairPolicyHealsAfterWait) {
  ThreadPool pool(2);
  BlotStore store = MakeStore();
  FailoverPolicy policy;
  policy.repair = RepairMode::kBackground;
  store.SetFailoverPolicy(policy);

  const STRange query = CentroidQuery(0.25);
  const std::size_t victim = store.RouteQuery(query, model);
  CorruptInvolved(store, victim, query);
  store.Execute(query, model, &pool);
  store.WaitForRepairs();
  // Single-threaded after Execute returned, so the background task could
  // not have lost the try_to_lock race.
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
  EXPECT_EQ(Sorted(store.replica(victim).Reconstruct().records()),
            Sorted(dataset.records()));
}

TEST_F(FailoverTest, TotalLossRaisesStructuredQueryFailedError) {
  BlotStore store = MakeStore();
  FailoverPolicy policy;
  policy.repair = RepairMode::kNone;
  store.SetFailoverPolicy(policy);

  const STRange query = CentroidQuery(0.2);
  // Destroy every replica's copy of the partitions the query needs.
  for (std::size_t r = 0; r < store.NumReplicas(); ++r)
    CorruptInvolved(store, r, query);

  try {
    store.Execute(query, model);
    FAIL() << "expected QueryFailedError";
  } catch (const QueryFailedError& e) {
    EXPECT_FALSE(e.lost().empty());
    EXPECT_NE(std::string(e.what()).find("partition"), std::string::npos);
  }
  // The failed attempts quarantined what they found; the store itself is
  // not poisoned — the error was per-query.
  EXPECT_GT(store.health().QuarantinedCount(), 0u);
}

TEST_F(FailoverTest, RecoveryRefreshesCacheIdentitySoStaleDecodesNeverServe) {
  PartitionCache::Global().Configure(64u << 20);
  BlotStore store = MakeStore();

  // Warm the cache with decodes of both replicas.
  const STRange query = CentroidQuery(0.4);
  store.Execute(query, model);
  store.Execute(universe, model);

  const std::uint64_t old_id = store.replica(1).cache_id();
  store.RecoverReplicaFrom(1, 0);
  EXPECT_NE(store.replica(1).cache_id(), old_id);

  // Partition-granular repair refreshes identity too.
  const std::uint64_t pre_repair_id = store.replica(1).cache_id();
  store.RecoverPartition(1, 0, 0);
  EXPECT_NE(store.replica(1).cache_id(), pre_repair_id);

  // Post-recovery queries are correct — cached pre-recovery decodes can
  // never satisfy them (fresh ids miss; stale entries are unreachable).
  const BlotStore::RoutedResult routed = store.Execute(query, model);
  EXPECT_EQ(Sorted(routed.result.records),
            Sorted(dataset.FilterByRange(query)));
}

TEST_F(FailoverTest, BatchSharedScanFallsBackAndStaysCorrect) {
  BlotStore store = MakeStore();
  std::vector<STRange> queries;
  Rng rng(11);
  for (int i = 0; i < 5; ++i)
    queries.push_back(SampleQueryInstance(
        {{universe.Width() * 0.1, universe.Height() * 0.1,
          universe.Duration() * 0.1}},
        universe, rng));
  queries.push_back(universe);

  // Corrupt one replica's copy of everything the universe query needs,
  // so at least its group's shared scan fails.
  const std::size_t victim = store.RouteQuery(universe, model);
  CorruptInvolved(store, victim, universe);

  const BlotStore::RoutedBatchResult batch =
      store.ExecuteBatch(queries, model);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(Sorted(batch.per_query[q]),
              Sorted(dataset.FilterByRange(queries[q])))
        << "query " << q;
}

TEST_F(FailoverTest, MetricsAccountForEveryInjectedFault) {
  auto& registry = obs::MetricsRegistry::global();
  registry.Reset();
  registry.set_enabled(true);

  BlotStore store = MakeStore();
  const STRange query = CentroidQuery(0.3);
  const std::size_t victim = store.RouteQuery(query, model);

  FaultPlan plan;
  plan.seed = 77;
  plan.kinds = {FaultKind::kBitFlip};
  plan.replica = store.replica(victim).config().Name();
  plan.max_fires_per_target = 0;  // faulty until repaired
  FaultInjector::Global().Arm(plan);

  const BlotStore::RoutedResult routed = store.Execute(query, model);
  FaultInjector::Global().Disarm();
  EXPECT_EQ(Sorted(routed.result.records),
            Sorted(dataset.FilterByRange(query)));
  EXPECT_TRUE(routed.degraded);

  const FaultInjector::Stats injected = FaultInjector::Global().stats();
  ASSERT_GT(injected.fired_total, 0u);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::CounterSnapshot* attempts =
      snap.FindCounter("failover.attempts_total");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->value, routed.attempts);
  const obs::CounterSnapshot* rerouted =
      snap.FindCounter("failover.queries_rerouted_total");
  ASSERT_NE(rerouted, nullptr);
  EXPECT_EQ(rerouted->value, 1u);
  // Every distinct faulty storage unit the query touched was quarantined
  // and then repaired (sync policy): the books must balance.
  const obs::CounterSnapshot* quarantined =
      snap.FindCounter("quarantine.partitions_total");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value, injected.targets_hit);
  const obs::CounterSnapshot* repaired =
      snap.FindCounter("repair.partitions_total");
  const obs::CounterSnapshot* rebuilds =
      snap.FindCounter("repair.full_rebuilds_total");
  const std::uint64_t healed =
      (repaired != nullptr ? repaired->value : 0) +
      (rebuilds != nullptr ? rebuilds->value : 0);
  EXPECT_GE(healed, 1u);
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
}

// The acceptance bar: across a randomized campaign (seed overridable via
// BLOT_CHAOS_SEED for CI soaks), faults confined to one replica at a
// time — and, below, to R-1 replicas at once — never change any query's
// result and never surface an exception to the caller.
TEST_F(FailoverTest, ChaosCampaignPreservesResultEquivalence) {
  std::uint64_t seed = 20140714;  // ICDCS'14
  if (const char* env = std::getenv("BLOT_CHAOS_SEED"))
    seed = std::strtoull(env, nullptr, 10);

  BlotStore store = MakeStore(3);
  std::vector<STRange> queries;
  Rng rng(seed ^ 0x5EED);
  for (int i = 0; i < 4; ++i)
    queries.push_back(SampleQueryInstance(
        {{universe.Width() * 0.2, universe.Height() * 0.2,
          universe.Duration() * 0.2}},
        universe, rng));
  queries.push_back(universe);
  std::vector<std::vector<Record>> truth;
  for (const STRange& q : queries)
    truth.push_back(Sorted(dataset.FilterByRange(q)));

  for (std::size_t victim = 0; victim < store.NumReplicas(); ++victim) {
    FaultPlan plan;
    plan.seed = seed;
    plan.probability = 0.7;
    plan.kinds = {FaultKind::kBitFlip, FaultKind::kTruncate,
                  FaultKind::kTornRead, FaultKind::kReadError};
    plan.replica = store.replica(victim).config().Name();
    RunFaultCampaign(plan, 3, [&](std::size_t round, std::uint64_t) {
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const BlotStore::RoutedResult routed =
            store.Execute(queries[q], model);  // must not throw
        EXPECT_EQ(Sorted(routed.result.records), truth[q])
            << "victim " << victim << " round " << round << " query " << q;
      }
    });
    // Sync repair healed everything the campaign broke.
    EXPECT_EQ(store.health().QuarantinedCount(), 0u) << "victim " << victim;
  }
}

TEST_F(FailoverTest, SurvivesFaultsInAllButOneReplica) {
  BlotStore store = MakeStore(3);
  const STRange query = CentroidQuery(0.3);
  const std::vector<Record> truth = dataset.FilterByRange(query);

  // Destroy R-1 = 2 replicas' copies of everything the query needs; the
  // third replica must serve it byte-identically (replicas the router
  // never attempted may stay corrupt but untouched).
  const std::vector<std::size_t> corrupted0 =
      CorruptInvolved(store, 0, query);
  const std::vector<std::size_t> corrupted1 =
      CorruptInvolved(store, 1, query);
  const BlotStore::RoutedResult routed = store.Execute(query, model);
  EXPECT_EQ(routed.replica_index, 2u);
  EXPECT_EQ(Sorted(routed.result.records), Sorted(truth));

  // Explicit partition-granular repair brings both damaged replicas back
  // (sources with corrupt copies are quarantined and skipped; the clean
  // survivor supplies the payload).
  for (const std::size_t p : corrupted0) store.RecoverPartition(0, p);
  for (const std::size_t p : corrupted1) store.RecoverPartition(1, p);
  store.RepairQuarantined();  // sweep any quarantines repair uncovered
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
  EXPECT_EQ(Sorted(store.replica(0).Reconstruct().records()),
            Sorted(dataset.records()));
  EXPECT_EQ(Sorted(store.replica(1).Reconstruct().records()),
            Sorted(dataset.records()));
}

}  // namespace
}  // namespace blot
