#include "core/selection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

// A tiny hand-checkable instance: 3 queries, 3 replicas.
//   r0: cheap storage, good for q0 only.
//   r1: cheap storage, good for q1 only.
//   r2: big storage, decent everywhere.
SelectionInput TinyInstance(double budget) {
  SelectionInput input;
  input.cost = {{1, 100, 10},   // q0
                {100, 1, 10},   // q1
                {50, 50, 10}};  // q2
  input.weights = {1, 1, 1};
  input.storage_bytes = {10, 10, 25};
  input.budget_bytes = budget;
  return input;
}

SelectionInput RandomInstance(Rng& rng, std::size_t n, std::size_t m) {
  SelectionInput input;
  input.weights.resize(n);
  input.storage_bytes.resize(m);
  for (auto& w : input.weights) w = rng.NextDouble(0.5, 2.0);
  for (auto& s : input.storage_bytes) s = rng.NextDouble(5, 50);
  input.cost.assign(n, std::vector<double>(m));
  for (auto& row : input.cost)
    for (auto& c : row) c = rng.NextDouble(1, 1000);
  double total = 0;
  for (double s : input.storage_bytes) total += s;
  input.budget_bytes = total * rng.NextDouble(0.2, 0.6);
  return input;
}

TEST(SubsetWorkloadCostTest, MatchesManualComputation) {
  const SelectionInput input = TinyInstance(100);
  const std::size_t all[] = {0, 1, 2};
  EXPECT_DOUBLE_EQ(SubsetWorkloadCost(input, all), 1 + 1 + 10);
  const std::size_t only2[] = {2};
  EXPECT_DOUBLE_EQ(SubsetWorkloadCost(input, only2), 30);
  EXPECT_TRUE(std::isinf(SubsetWorkloadCost(input, {})));
}

TEST(GreedyTest, RespectsBudget) {
  for (double budget : {10.0, 20.0, 25.0, 45.0, 100.0}) {
    const SelectionResult r = SelectGreedy(TinyInstance(budget));
    EXPECT_LE(r.storage_used, budget);
    EXPECT_FALSE(r.chosen.empty());
  }
}

TEST(GreedyTest, PicksComplementaryReplicasWhenAffordable) {
  // Budget 45 admits all three; {r0, r1, r2} costs 12, and greedy should
  // find a set costing no more than the best single (30).
  const SelectionResult r = SelectGreedy(TinyInstance(45));
  EXPECT_LE(r.workload_cost, 30.0);
  EXPECT_GE(r.chosen.size(), 2u);
}

TEST(GreedyTest, TinyBudgetStillSelectsSomething) {
  const SelectionResult r = SelectGreedy(TinyInstance(10));
  EXPECT_EQ(r.chosen.size(), 1u);
  EXPECT_TRUE(std::isfinite(r.workload_cost));
}

TEST(GreedyTest, ImpossibleBudgetReturnsEmpty) {
  const SelectionResult r = SelectGreedy(TinyInstance(5));
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_TRUE(std::isinf(r.workload_cost));
}

TEST(ExhaustiveTest, FindsOptimumOnTinyInstance) {
  const SelectionResult r = SelectExhaustive(TinyInstance(45));
  EXPECT_TRUE(r.optimal);
  // Optimal: all three replicas (storage 45) -> cost 12.
  EXPECT_DOUBLE_EQ(r.workload_cost, 12.0);
  EXPECT_EQ(r.chosen.size(), 3u);
}

TEST(ExhaustiveTest, BudgetBindsOptimum) {
  const SelectionResult r = SelectExhaustive(TinyInstance(20));
  EXPECT_TRUE(r.optimal);
  // {r0, r1}: cost 1 + 1 + 50 = 52; {r2} infeasible at 25 > 20.
  EXPECT_DOUBLE_EQ(r.workload_cost, 52.0);
}

TEST(GreedyVsExhaustiveTest, ApproximationRatioIsReasonable) {
  // The paper observes greedy approximation ratios below ~1.3 in most
  // cases; on random instances we tolerate a bit more but verify it is
  // never catastrophic and usually close.
  Rng rng(31);
  double worst = 1.0;
  int within_1_3 = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 4 + rng.NextUint64(5), 5 + rng.NextUint64(6));
    const SelectionResult greedy = SelectGreedy(input);
    const SelectionResult exact = SelectExhaustive(input);
    if (!std::isfinite(exact.workload_cost)) continue;
    ASSERT_TRUE(std::isfinite(greedy.workload_cost));
    const double ratio = greedy.workload_cost / exact.workload_cost;
    EXPECT_GE(ratio, 1.0 - 1e-9);
    worst = std::max(worst, ratio);
    if (ratio <= 1.3) ++within_1_3;
  }
  EXPECT_LT(worst, 2.0);
  EXPECT_GT(within_1_3, kTrials * 3 / 4);
}

TEST(BestSingleTest, PicksCheapestAffordableSingle) {
  const SelectionResult r = SelectBestSingle(TinyInstance(100));
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 2u);  // r2 covers all queries at 30 total
  EXPECT_DOUBLE_EQ(r.workload_cost, 30.0);
}

TEST(BestSingleTest, HonorsBudget) {
  const SelectionResult r = SelectBestSingle(TinyInstance(15));
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_NE(r.chosen[0], 2u);
}

TEST(IdealTest, LowerBoundsEverything) {
  const SelectionInput input = TinyInstance(20);
  const SelectionResult ideal = SelectIdeal(input);
  EXPECT_DOUBLE_EQ(ideal.workload_cost, 12.0);
  EXPECT_LE(ideal.workload_cost, SelectGreedy(input).workload_cost);
  EXPECT_LE(ideal.workload_cost, SelectExhaustive(input).workload_cost);
  EXPECT_LE(ideal.workload_cost, SelectBestSingle(input).workload_cost);
}

TEST(PruneDominatedTest, RemovesStrictlyWorseReplica) {
  SelectionInput input;
  input.cost = {{10, 20}, {10, 20}};
  input.weights = {1, 1};
  input.storage_bytes = {5, 10};  // r1 worse cost AND bigger
  input.budget_bytes = 100;
  const auto kept = PruneDominated(input);
  EXPECT_EQ(kept, (std::vector<std::size_t>{0}));
}

TEST(PruneDominatedTest, KeepsParetoIncomparableReplicas) {
  SelectionInput input;
  input.cost = {{10, 20}, {20, 10}};
  input.weights = {1, 1};
  input.storage_bytes = {5, 5};
  input.budget_bytes = 100;
  const auto kept = PruneDominated(input);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(PruneDominatedTest, PairDominanceRemovesCoveredReplica) {
  // r2 is beaten on q0 by r0 and on q1 by r1, and storage(r0)+storage(r1)
  // <= storage(r2): the pair dominates it.
  SelectionInput input;
  input.cost = {{1, 50, 5}, {50, 1, 5}};
  input.weights = {1, 1};
  input.storage_bytes = {4, 4, 10};
  input.budget_bytes = 100;
  const auto kept = PruneDominated(input, /*check_pairs=*/true);
  EXPECT_EQ(kept, (std::vector<std::size_t>{0, 1}));
  // Without pair checking it survives.
  const auto kept_single = PruneDominated(input, /*check_pairs=*/false);
  EXPECT_EQ(kept_single.size(), 3u);
}

TEST(PruneDominatedTest, IdenticalReplicasKeepExactlyOne) {
  SelectionInput input;
  input.cost = {{7, 7, 7}};
  input.weights = {1};
  input.storage_bytes = {5, 5, 5};
  input.budget_bytes = 100;
  EXPECT_EQ(PruneDominated(input).size(), 1u);
}

TEST(PruneDominatedTest, PruningPreservesOptimalCost) {
  Rng rng(37);
  for (int t = 0; t < 25; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 4 + rng.NextUint64(4), 6 + rng.NextUint64(5));
    const double before = SelectExhaustive(input).workload_cost;
    const auto kept = PruneDominated(input);
    const SelectionInput restricted = RestrictCandidates(input, kept);
    const double after = SelectExhaustive(restricted).workload_cost;
    if (std::isinf(before)) {
      EXPECT_TRUE(std::isinf(after));
    } else {
      EXPECT_NEAR(after, before, before * 1e-12) << "trial " << t;
    }
  }
}

TEST(RestrictCandidatesTest, RemapsCostsAndStorage) {
  const SelectionInput input = TinyInstance(45);
  const std::size_t keep[] = {2, 0};
  const SelectionInput restricted = RestrictCandidates(input, keep);
  EXPECT_EQ(restricted.NumReplicas(), 2u);
  EXPECT_DOUBLE_EQ(restricted.storage_bytes[0], 25);
  EXPECT_DOUBLE_EQ(restricted.storage_bytes[1], 10);
  EXPECT_DOUBLE_EQ(restricted.cost[0][0], 10);
  EXPECT_DOUBLE_EQ(restricted.cost[0][1], 1);
}

TEST(GreedyPropertyTest, BudgetAndDeterminismOnRandomInstances) {
  Rng rng(101);
  for (int t = 0; t < 40; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 2 + rng.NextUint64(8), 3 + rng.NextUint64(10));
    const SelectionResult a = SelectGreedy(input);
    const SelectionResult b = SelectGreedy(input);
    // Deterministic.
    EXPECT_EQ(a.chosen, b.chosen) << "trial " << t;
    // Budget respected; storage accounting consistent.
    EXPECT_LE(a.storage_used, input.budget_bytes + 1e-9);
    double storage = 0;
    for (std::size_t j : a.chosen) storage += input.storage_bytes[j];
    EXPECT_NEAR(storage, a.storage_used, 1e-9);
    // Reported cost equals the recomputed subset cost.
    EXPECT_EQ(a.workload_cost, SubsetWorkloadCost(input, a.chosen));
    // No duplicate choices.
    std::set<std::size_t> unique(a.chosen.begin(), a.chosen.end());
    EXPECT_EQ(unique.size(), a.chosen.size());
  }
}

TEST(GreedyPropertyTest, AddingCandidatesNeverHurtsIdeal) {
  // SelectIdeal over a superset of candidates is at least as good —
  // sanity for the monotone structure the selectors rely on.
  Rng rng(103);
  for (int t = 0; t < 20; ++t) {
    const SelectionInput big =
        RandomInstance(rng, 3 + rng.NextUint64(5), 6 + rng.NextUint64(6));
    std::vector<std::size_t> subset;
    for (std::size_t j = 0; j + 2 < big.NumReplicas(); ++j)
      subset.push_back(j);
    const SelectionInput small = RestrictCandidates(big, subset);
    EXPECT_LE(SelectIdeal(big).workload_cost,
              SelectIdeal(small).workload_cost + 1e-9)
        << "trial " << t;
  }
}

TEST(SelectionInputTest, CheckRejectsMalformedInstances) {
  SelectionInput input = TinyInstance(45);
  input.weights.pop_back();
  EXPECT_THROW(input.Check(), InvalidArgument);
  input = TinyInstance(45);
  input.storage_bytes[1] = 0;
  EXPECT_THROW(input.Check(), InvalidArgument);
  input = TinyInstance(45);
  input.cost[1][1] = -3;
  EXPECT_THROW(input.Check(), InvalidArgument);
}

}  // namespace
}  // namespace blot
