#include <gtest/gtest.h>

#include <filesystem>

#include "core/partial.h"
#include "core/store.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

namespace fs = std::filesystem;

class StorePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("blot_store_persist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    TaxiFleetConfig config;
    config.num_taxis = 8;
    config.samples_per_taxi = 250;
    dataset_ = GenerateTaxiFleet(config);
    universe_ = config.Universe();
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  Dataset dataset_;
  STRange universe_;
};

TEST_F(StorePersistenceTest, SaveLoadRoundTripsReplicasAndDataset) {
  BlotStore store(dataset_, universe_);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                    EncodingScheme::FromName("COL-LZMA")});
  store.Save(dir_);

  BlotStore loaded = BlotStore::Load(dir_);
  EXPECT_EQ(loaded.dataset(), store.dataset());
  EXPECT_EQ(loaded.universe(), store.universe());
  ASSERT_EQ(loaded.NumReplicas(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.replica(i).config(), store.replica(i).config());
    EXPECT_EQ(loaded.replica(i).StorageBytes(),
              store.replica(i).StorageBytes());
  }

  // The loaded store answers queries identically.
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange query = STRange::FromCentroid(
      {universe_.Width() / 4, universe_.Height() / 4,
       universe_.Duration() / 4},
      universe_.Centroid());
  EXPECT_EQ(loaded.Execute(query, model).result.records.size(),
            store.Execute(query, model).result.records.size());
}

TEST_F(StorePersistenceTest, PartialReplicasSurviveRoundTrip) {
  BlotStore store(dataset_, universe_);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-GZIP")});
  const STRange hotspot = DensestSpatialBox(dataset_, universe_, 0.5);
  store.AddPartialReplica(
      {{.spatial_partitions = 8, .temporal_partitions = 4},
       EncodingScheme::FromName("COL-GZIP")},
      hotspot);
  store.Save(dir_);

  BlotStore loaded = BlotStore::Load(dir_);
  ASSERT_EQ(loaded.NumReplicas(), 2u);
  EXPECT_TRUE(loaded.IsFullReplica(0));
  EXPECT_FALSE(loaded.IsFullReplica(1));
  EXPECT_EQ(loaded.replica(1).universe(), hotspot);
  EXPECT_EQ(loaded.replica(1).NumRecords(),
            dataset_.FilterByRange(hotspot).size());
}

TEST_F(StorePersistenceTest, SaveOverwritesPreviousStore) {
  BlotStore store(dataset_, universe_);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-PLAIN")});
  store.Save(dir_);
  store.AddReplica({{.spatial_partitions = 8, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-GZIP")});
  store.Save(dir_);
  EXPECT_EQ(BlotStore::Load(dir_).NumReplicas(), 2u);
}

TEST_F(StorePersistenceTest, MissingStoreThrows) {
  EXPECT_THROW(BlotStore::Load(dir_), InvalidArgument);
}

TEST_F(StorePersistenceTest, MissingReplicaDirectoryDetected) {
  BlotStore store(dataset_, universe_);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-PLAIN")});
  store.Save(dir_);
  fs::remove_all(dir_ / "replica_000");
  EXPECT_THROW(BlotStore::Load(dir_), InvalidArgument);
}

}  // namespace
}  // namespace blot
