// Hedged reads and the latency signal behind them: LatencyMap warm-up,
// EWMA prediction and brownout penalties; the hedge race (backup fires on
// a slow primary, first complete answer wins, the loser is cancelled);
// winner/loser accounting in the attempt log; and the observed slowness
// feeding back into routing (docs/robustness.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blot/encoding_scheme.h"
#include "common/fixtures.h"
#include "core/cost_model.h"
#include "core/fault_injection.h"
#include "core/latency_map.h"
#include "core/store.h"
#include "simenv/environment.h"
#include "util/error.h"

namespace blot {
namespace {

using test::Sorted;
using test::TaxiFixture;

CostModel Model() { return CostModel{EnvironmentModel::LocalHadoop()}; }

struct ScopedInjector {
  explicit ScopedInjector(const FaultPlan& plan) {
    FaultInjector::Global().Arm(plan);
  }
  ~ScopedInjector() { FaultInjector::Global().Disarm(); }
};

// Stalls every partition read of `replica` by `stall_ms`, on every read.
FaultPlan StallPlan(double stall_ms, const std::string& replica) {
  FaultPlan plan;
  plan.seed = 23;
  plan.probability = 1.0;
  plan.kinds = {FaultKind::kLatency};
  plan.max_fires_per_target = 0;
  plan.latency_ms = static_cast<std::uint32_t>(stall_ms);
  plan.replica = replica;
  return plan;
}

// A store with two near-peer replicas (same partitioning, sibling
// encodings), so a hedged backup attempt can genuinely win the race.
BlotStore MakeNearPeerStore(const Dataset& dataset, const STRange& universe) {
  BlotStore store(dataset, universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 2},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 2,
                     .method = SpatialMethod::kGrid},
                    EncodingScheme::FromName("COL-SNAPPY")});
  return store;
}

// --- LatencyMap unit coverage ------------------------------------------

TEST(LatencyMapTest, ColdReplicaPredictsNothing) {
  LatencyMap map;
  map.AddReplica();
  EXPECT_EQ(map.NumReplicas(), 1u);
  EXPECT_DOUBLE_EQ(map.ExpectedMs(0, 8), 0.0);
  // Below the warm-up floor the EWMA stays out of decisions.
  for (std::uint64_t i = 0; i + 1 < LatencyMap::kMinObservations; ++i) {
    map.Observe(0, 1, 10.0);
    EXPECT_DOUBLE_EQ(map.ExpectedMs(0, 8), 0.0);
  }
  map.Observe(0, 1, 10.0);
  EXPECT_GT(map.ExpectedMs(0, 8), 0.0);
}

TEST(LatencyMapTest, EwmaPredictsPerPartitionRate) {
  LatencyMap map;
  map.AddReplica();
  // Steady 10ms-per-partition attempts: the EWMA converges to the rate
  // and ExpectedMs scales linearly with the partition count.
  for (int i = 0; i < 8; ++i) map.Observe(0, 4, 40.0);
  EXPECT_NEAR(map.Get(0).ewma_ms_per_partition, 10.0, 1e-9);
  EXPECT_NEAR(map.ExpectedMs(0, 6), 60.0, 1e-9);
  // Zero-partition attempts still count as one partition: no division
  // by zero, no infinite rate.
  map.Observe(0, 0, 5.0);
  EXPECT_GT(map.Get(0).ewma_ms_per_partition, 0.0);
}

TEST(LatencyMapTest, BrownoutPenaltySparesHonestDifferencesAndCaps) {
  LatencyMap map;
  for (int r = 0; r < 3; ++r) map.AddReplica();
  for (std::uint64_t i = 0; i < LatencyMap::kMinObservations; ++i) {
    map.Observe(0, 1, 10.0);    // the fastest replica
    map.Observe(1, 1, 25.0);    // 2.5x: an honest encoding difference
    map.Observe(2, 1, 1000.0);  // 100x: a brownout
  }
  EXPECT_DOUBLE_EQ(map.BrownoutPenalty(0), 1.0);
  // Below kBrownoutRatio the penalty must not bias routing at all.
  EXPECT_DOUBLE_EQ(map.BrownoutPenalty(1), 1.0);
  // A genuine brownout is penalized but capped: never priced out of
  // serving as the last healthy copy.
  EXPECT_DOUBLE_EQ(map.BrownoutPenalty(2), LatencyMap::kMaxPenalty);
}

TEST(LatencyMapTest, ColdReplicasAreNeverPenalized) {
  LatencyMap map;
  map.AddReplica();
  map.AddReplica();
  for (std::uint64_t i = 0; i < LatencyMap::kMinObservations; ++i)
    map.Observe(0, 1, 1.0);
  // Replica 1 has no observations: no penalty either way.
  EXPECT_DOUBLE_EQ(map.BrownoutPenalty(1), 1.0);
}

// --- The hedge race ----------------------------------------------------

TEST(HedgingTest, SlowPrimaryTriggersBackupThatWins) {
  const TaxiFixture fixture;
  Dataset dataset = fixture.dataset;
  BlotStore store = MakeNearPeerStore(dataset, fixture.universe);
  const STRange query = fixture.universe;
  const std::vector<Record> expected =
      Sorted(store.Execute(query, Model()).result.records);

  // Stall only the replica routing prefers, so the backup runs clean
  // and must win the race.
  const std::size_t primary =
      store.RouteQueryDetailed(query, Model()).replica_index;
  const std::string primary_name = store.replica(primary).config().Name();
  const ScopedInjector injector(StallPlan(60.0, primary_name));

  BlotStore::ExecOptions exec;
  exec.hedge_ms = 10.0;
  const BlotStore::RoutedResult routed = store.Execute(query, Model(), exec);

  EXPECT_TRUE(routed.hedged);
  EXPECT_TRUE(routed.hedge_backup_won);
  EXPECT_NE(routed.replica_index, primary);
  EXPECT_EQ(Sorted(routed.result.records), expected);
  EXPECT_FALSE(routed.partial);

  // Winner/loser accounting: two attempts, the backup marked as the
  // serving one, the cancelled primary carrying its loss.
  EXPECT_EQ(routed.attempts, 2u);
  ASSERT_EQ(routed.attempt_log.size(), 2u);
  EXPECT_EQ(routed.attempt_log[0].replica_index, primary);
  EXPECT_FALSE(routed.attempt_log[0].success);
  EXPECT_FALSE(routed.attempt_log[0].fault.empty());
  EXPECT_TRUE(routed.attempt_log[1].success);
  EXPECT_EQ(routed.attempt_log[1].replica_index, routed.replica_index);
}

TEST(HedgingTest, HedgedResultsStayBitIdenticalWithoutFaults) {
  const TaxiFixture fixture;
  Dataset dataset = fixture.dataset;
  BlotStore store = MakeNearPeerStore(dataset, fixture.universe);

  // With no faults, hedging is pure mechanism: whether or not the backup
  // fires (or even wins a benign race), the records must be identical to
  // the unhedged answer. An absurdly low threshold makes the backup
  // launch on effectively every query.
  for (const double fraction : {0.2, 0.5, 0.9}) {
    const STRange query = test::CentroidQuery(fixture.universe, fraction);
    const std::vector<Record> expected =
        Sorted(store.Execute(query, Model()).result.records);
    BlotStore::ExecOptions exec;
    exec.hedge_ms = 0.001;
    const BlotStore::RoutedResult routed =
        store.Execute(query, Model(), exec);
    EXPECT_EQ(Sorted(routed.result.records), expected);
    EXPECT_FALSE(routed.partial);
  }
}

TEST(HedgingTest, SingleCandidateFallsBackToPlainExecution) {
  const TaxiFixture fixture;
  Dataset dataset = fixture.dataset;
  BlotStore store(dataset, fixture.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 2},
                    EncodingScheme::FromName("ROW-SNAPPY")});

  const STRange query = fixture.universe;
  BlotStore::ExecOptions exec;
  exec.hedge_ms = 0.001;
  // One covering replica: nothing to race, no hedge accounting.
  const BlotStore::RoutedResult routed = store.Execute(query, Model(), exec);
  EXPECT_FALSE(routed.hedged);
  EXPECT_FALSE(routed.hedge_backup_won);
  EXPECT_EQ(routed.attempts, 1u);
}

TEST(HedgingTest, ObservedStallsFeedBrownoutReroute) {
  const TaxiFixture fixture;
  Dataset dataset = fixture.dataset;
  BlotStore store = MakeNearPeerStore(dataset, fixture.universe);
  const STRange query = test::CentroidQuery(fixture.universe, 0.5);
  const std::vector<Record> expected =
      Sorted(store.Execute(query, Model()).result.records);

  const std::size_t primary =
      store.RouteQueryDetailed(query, Model()).replica_index;
  const std::string primary_name = store.replica(primary).config().Name();
  const ScopedInjector injector(StallPlan(30.0, primary_name));

  // Phase 1 — hedged: the stalled primary loses every race, and each
  // winning backup attempt teaches the latency map the *healthy* rate.
  // (The primary's EWMA is still cold, so the hedge threshold is the
  // caller's floor, not an average the stalls have already inflated.)
  BlotStore::ExecOptions exec;
  exec.hedge_ms = 8.0;
  for (std::uint64_t i = 0; i < LatencyMap::kMinObservations; ++i) {
    const BlotStore::RoutedResult routed = store.Execute(query, Model(), exec);
    EXPECT_TRUE(routed.hedge_backup_won);
    EXPECT_EQ(Sorted(routed.result.records), expected);
  }

  // Phase 2 — unhedged: the stalled primary now serves to completion
  // (slowly) and teaches the map its browned-out rate.
  for (std::uint64_t i = 0; i < LatencyMap::kMinObservations; ++i) {
    const BlotStore::RoutedResult routed = store.Execute(query, Model());
    EXPECT_EQ(Sorted(routed.result.records), expected);
  }

  // Both sides warmed: the slowness observed above must now reroute the
  // query away from the browned-out primary.
  EXPECT_GE(store.latency().Get(primary).observations,
            LatencyMap::kMinObservations);
  EXPECT_GT(store.latency().BrownoutPenalty(primary), 1.0);
  EXPECT_NE(store.RouteQueryDetailed(query, Model()).replica_index, primary);
}

}  // namespace
}  // namespace blot
