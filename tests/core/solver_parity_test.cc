// Solver parity on small instances (<= 10 candidates): the exhaustive
// optimum is the ground truth, the MIP must reproduce it exactly, and
// greedy (Algorithm 1) must satisfy its approximation guarantee — the
// better of greedy and best-single achieves at least (1 - 1/e)/2 of the
// optimal cost *gain*, the classic budgeted-maximum-coverage bound the
// paper invokes for Algorithm 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/fixtures.h"
#include "core/mip_selection.h"
#include "core/selection.h"
#include "simenv/replica_sketch.h"
#include "util/rng.h"

namespace blot {
namespace {

SelectionInput RandomInstance(Rng& rng, std::size_t queries,
                              std::size_t candidates) {
  SelectionInput input;
  input.weights.resize(queries);
  input.storage_bytes.resize(candidates);
  for (auto& w : input.weights) w = rng.NextDouble(0.5, 2.0);
  for (auto& s : input.storage_bytes) s = rng.NextDouble(5, 50);
  input.cost.assign(queries, std::vector<double>(candidates));
  for (auto& row : input.cost)
    for (auto& c : row) c = rng.NextDouble(1, 1000);
  double total = 0;
  for (double s : input.storage_bytes) total += s;
  // Wide budget spread: sometimes only one candidate fits, sometimes all.
  input.budget_bytes = total * rng.NextDouble(0.15, 0.9);
  // Guarantee feasibility: the smallest candidate always fits.
  input.budget_bytes = std::max(
      input.budget_bytes, *std::min_element(input.storage_bytes.begin(),
                                            input.storage_bytes.end()));
  return input;
}

// Cost gain of `result` over the worst feasible single candidate — the
// baseline Algorithm 1's guarantee is stated against (its greedy starts
// from the worst single and improves).
double Gain(const SelectionInput& input, double cost) {
  double worst_single = 0;
  for (std::size_t j = 0; j < input.NumReplicas(); ++j) {
    if (input.storage_bytes[j] > input.budget_bytes) continue;
    const std::size_t only[] = {j};
    worst_single = std::max(worst_single, SubsetWorkloadCost(input, only));
  }
  return worst_single - cost;
}

void CheckParity(const SelectionInput& input, std::uint64_t seed) {
  const SelectionResult exhaustive = SelectExhaustive(input);
  ASSERT_TRUE(exhaustive.optimal) << "seed " << seed;

  // MIP == exhaustive: same optimal cost (the chosen sets may differ
  // only when ties exist, so compare costs, then verify feasibility).
  const SelectionResult mip = SelectMip(input);
  EXPECT_TRUE(mip.optimal) << "seed " << seed;
  EXPECT_NEAR(mip.workload_cost, exhaustive.workload_cost,
              1e-6 * (1.0 + std::abs(exhaustive.workload_cost)))
      << "seed " << seed;
  EXPECT_LE(mip.storage_used, input.budget_bytes + 1e-9) << "seed " << seed;
  EXPECT_NEAR(SubsetWorkloadCost(input, mip.chosen), mip.workload_cost,
              1e-6 * (1.0 + std::abs(mip.workload_cost)))
      << "seed " << seed;

  // Greedy bound (Algorithm 1): max(greedy, best-single) captures at
  // least (1 - 1/e)/2 of the optimal gain.
  const SelectionResult greedy = SelectGreedy(input);
  const SelectionResult single = SelectBestSingle(input);
  EXPECT_LE(greedy.storage_used, input.budget_bytes + 1e-9)
      << "seed " << seed;
  EXPECT_GE(greedy.workload_cost, exhaustive.workload_cost - 1e-9)
      << "seed " << seed;

  const double best_heuristic_cost =
      std::min(greedy.workload_cost, single.workload_cost);
  const double optimal_gain = Gain(input, exhaustive.workload_cost);
  const double heuristic_gain = Gain(input, best_heuristic_cost);
  constexpr double kBound = (1.0 - 1.0 / 2.718281828459045) / 2.0;
  if (optimal_gain > 1e-9)
    EXPECT_GE(heuristic_gain, kBound * optimal_gain - 1e-6)
        << "seed " << seed << ": heuristic gain " << heuristic_gain
        << " vs optimal gain " << optimal_gain;
}

TEST(SolverParityTest, RandomInstancesUpToTenCandidates) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 1000003);
    const std::size_t queries = 2 + rng.NextUint64(7);
    const std::size_t candidates = 2 + rng.NextUint64(9);  // <= 10
    CheckParity(RandomInstance(rng, queries, candidates), seed);
  }
}

TEST(SolverParityTest, DegenerateInstances) {
  // One candidate: all solvers must agree exactly.
  Rng rng(99);
  SelectionInput one = RandomInstance(rng, 4, 1);
  CheckParity(one, 99);

  // Identical candidates: any singleton is optimal; greedy must not pay
  // for duplicates.
  SelectionInput twins = RandomInstance(rng, 3, 2);
  twins.cost[0][1] = twins.cost[0][0];
  twins.cost[1][1] = twins.cost[1][0];
  twins.cost[2][1] = twins.cost[2][0];
  twins.storage_bytes[1] = twins.storage_bytes[0];
  CheckParity(twins, 100);

  // Budget admitting everything: exhaustive picks the all-useful set and
  // greedy's bound still holds.
  SelectionInput rich = RandomInstance(rng, 5, 6);
  rich.budget_bytes = 1e9;
  CheckParity(rich, 101);
}

// Parity on an instance built the production way: real replicas of the
// taxi fleet, sketched, costed by the cost model — not a synthetic
// matrix. Catches disagreements the random instances can't (e.g. cost
// ties from shared partitionings).
TEST(SolverParityTest, CostModelDerivedInstance) {
  const test::TaxiFixture f(6, 200);
  std::vector<ReplicaSketch> sketches;
  for (const char* name :
       {"ROW-PLAIN", "ROW-GZIP", "COL-SNAPPY", "COL-LZMA"}) {
    for (const std::size_t spatial : {4u, 16u}) {
      const Replica replica = Replica::Build(
          f.dataset,
          {{.spatial_partitions = spatial, .temporal_partitions = 4},
           EncodingScheme::FromName(name)},
          f.universe);
      sketches.push_back(ReplicaSketch::FromReplica(replica));
    }
  }
  ASSERT_LE(sketches.size(), 10u);

  Workload workload({{{{f.universe.Width() * 0.1, f.universe.Height() * 0.1,
                        f.universe.Duration() * 0.1}},
                      3.0},
                     {{{f.universe.Width() * 0.5, f.universe.Height() * 0.5,
                        f.universe.Duration() * 0.5}},
                      1.0}});
  const CostModel model{EnvironmentModel::AmazonS3Emr()};

  double total = 0;
  for (const ReplicaSketch& s : sketches) total += s.storage_bytes;
  for (const double fraction : {0.25, 0.5, 0.9}) {
    const SelectionInput input =
        BuildSelectionInput(sketches, workload, model, total * fraction);
    CheckParity(input, static_cast<std::uint64_t>(fraction * 100));
  }
}

}  // namespace
}  // namespace blot
